"""Ablation: input-buffer depth vs saturation throughput.

The paper's buffer capacity was lost to OCR (DESIGN.md Section 2); this
bench sweeps it, showing the saturation point's sensitivity — deeper
buffers absorb convergence bursts and delay tree saturation, with
diminishing returns.
"""

from repro.flit.config import FlitConfig
from repro.flit.sweep import load_sweep
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.util.tables import format_table


def test_buffer_depth_ablation(benchmark):
    xgft = m_port_n_tree(8, 3)
    scheme = make_scheme(xgft, "disjoint:4")

    def run():
        rows = []
        for depth in (1, 2, 4, 8):
            cfg = FlitConfig(buffer_packets=depth, warmup_cycles=500,
                             measure_cycles=2500, drain_cycles=3000)
            sweep = load_sweep(xgft, scheme, cfg, loads=(0.6, 0.8, 1.0))
            rows.append([depth, sweep.max_throughput])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["buffer (packets)", "max throughput"], rows,
                         title="Ablation: buffer depth, disjoint(4)",
                         floatfmt=".4f")
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    thr = dict(rows)
    assert thr[4] > thr[1]          # deeper buffers help
    assert thr[8] >= thr[4] * 0.93  # with diminishing returns
