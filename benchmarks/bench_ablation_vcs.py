"""Ablation: virtual channels vs head-of-line blocking.

The paper runs a single VC ("since we are evaluating the performance of
the routing schemes"); this bench shows what that choice holds constant:
in the input-FIFO switch model, adding VCs recovers most of the
throughput that HoL blocking costs — and shrinks the artificial
advantage concentration (d-mod-k) enjoys there, moving the model toward
the output-queued regime where the paper's multi-path ordering lives.
"""

from repro.flit.config import FlitConfig
from repro.flit.sweep import load_sweep
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.util.tables import format_table


def test_virtual_channel_ablation(benchmark):
    xgft = m_port_n_tree(8, 3)

    def run():
        rows = []
        for vcs in (1, 2, 4):
            cfg = FlitConfig(switch_model="input-fifo", buffer_packets=2,
                             virtual_channels=vcs, warmup_cycles=500,
                             measure_cycles=2500, drain_cycles=3000)
            row = [vcs]
            for spec in ("d-mod-k", "disjoint:8"):
                sweep = load_sweep(xgft, make_scheme(xgft, spec), cfg,
                                   loads=(0.6, 0.8, 1.0))
                row.append(sweep.max_throughput)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["VCs", "d-mod-k", "disjoint(8)"], rows,
        title="Ablation: virtual channels, input-FIFO switches "
              "(8-port 3-tree, uniform)", floatfmt=".4f",
    )
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    by_vc = {r[0]: r for r in rows}
    # VCs relieve HoL for both schemes ...
    assert by_vc[4][1] > by_vc[1][1]
    assert by_vc[4][2] > by_vc[1][2] * 1.2
    # ... and close (or flip) the concentration gap.
    gap1 = by_vc[1][1] - by_vc[1][2]
    gap4 = by_vc[4][1] - by_vc[4][2]
    assert gap4 < gap1
