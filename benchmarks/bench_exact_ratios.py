"""Benchmark: exact oblivious ratios per scheme and K (LP, small trees).

An exact version of the oblivious-ratio landscape: on an 8-port 2-tree
the LP maximizes the performance ratio over *all* traffic matrices.
d-mod-k's exact ratio equals ``w_2 = 4``; the heuristics shrink it with
K and hit exactly 1 at K = 4; UMULTI is exactly 1 (Theorem 1 over the
whole traffic space, not a sample).
"""

import pytest

from repro.experiments import exact_ratios

from benchmarks.conftest import record


def test_exact_oblivious_ratios(benchmark):
    result = benchmark.pedantic(exact_ratios.run, rounds=1, iterations=1)
    record(benchmark, result)

    by = result.by_label()
    assert by["umulti"] == pytest.approx(1.0, abs=1e-6)
    assert by["d-mod-k"] == pytest.approx(4.0, abs=1e-6)   # = w_2
    assert by["disjoint(2)"] == pytest.approx(2.0, abs=1e-6)  # halves it
    assert by["disjoint(4)"] == pytest.approx(1.0, abs=1e-6)  # K = max
    # The clean 2-level law: PERF = w_2 / K for both d-mod-k heuristics.
    assert by["disjoint(3)"] == pytest.approx(4.0 / 3.0, abs=1e-6)
    assert by["shift-1(3)"] == pytest.approx(4.0 / 3.0, abs=1e-6)
