"""Ablation: flit-level permutation traffic (flow/flit cross-validation).

The paper evaluates permutations at the flow level (Figure 4) and
uniform traffic at the flit level (Table 1 / Figure 5).  This bench
closes the loop: it picks a random permutation, predicts the scheme
ordering from exact flow-level loads, then runs the flit engine on the
same permutation and checks the delivered-throughput ordering agrees —
the flow model's contention ranking is realized by the dynamic network.
"""

from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import FixedPermutation
from repro.flow.simulator import FlowSimulator
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.permutations import derangement, permutation_matrix
from repro.util.tables import format_table

SCHEMES = ("d-mod-k", "disjoint:4", "umulti")


def test_flit_permutation_cross_validation(benchmark):
    xgft = m_port_n_tree(8, 3)
    perm = derangement(xgft.n_procs, seed=7)
    tm = permutation_matrix(perm)
    flow = FlowSimulator(xgft)
    cfg = FlitConfig(warmup_cycles=500, measure_cycles=3000, drain_cycles=3000)

    def run():
        rows = []
        for spec in SCHEMES:
            scheme = make_scheme(xgft, spec)
            mload = flow.evaluate(scheme, tm).max_load
            sim = FlitSimulator(xgft, scheme, cfg)
            thr = max(sim.run(FixedPermutation(load, perm), seed=1).throughput
                      for load in (0.6, 1.0))
            rows.append([spec, mload, thr])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "flow max load", "flit max throughput"], rows,
        title="Cross-validation: one permutation, flow prediction vs flit "
              "measurement", floatfmt=".4f",
    )
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    by = {r[0]: r for r in rows}
    # Flow level: umulti <= disjoint(4) <= d-mod-k in max load ...
    assert by["umulti"][1] <= by["disjoint:4"][1] <= by["d-mod-k"][1]
    # ... and the flit engine delivers the reverse throughput ordering
    # (lower contention => higher saturation throughput).
    assert by["disjoint:4"][2] >= by["d-mod-k"][2] * 0.95
    assert by["umulti"][2] >= by["d-mod-k"][2] * 0.95
