"""Benchmarks regenerating Figure 4 (a)-(d): avg max load vs K.

Each panel runs the paper's adaptive permutation protocol on the paper's
actual topology (up to the 3456-node 24-port 3-tree) at the harness
fidelity and records the regenerated table in the benchmark's extra
info.  Expected shape: heuristics decrease monotonically-ish with K,
disjoint <= random <= shift-1 on 3-level trees, optimum at K = max.
"""

import pytest

from repro.experiments.figure4 import run_panel

from benchmarks.conftest import bench_fidelity, record

# Fewer routing seeds for the random heuristic at bench scale; the paper
# uses five (EXPERIMENTS.md's full run does too).
_SEEDS = (0, 1) if bench_fidelity() == "fast" else (0, 1, 2, 3, 4)


@pytest.mark.parametrize("panel", ["a", "b", "c", "d"])
def test_figure4_panel(benchmark, panel, fidelity_name):
    result = benchmark.pedantic(
        run_panel,
        kwargs=dict(panel=panel, fidelity_name=fidelity_name,
                    random_seeds=_SEEDS),
        rounds=1, iterations=1,
    )
    record(benchmark, result)

    ks = result.ks
    for name, series in result.series.items():
        # Endpoint optimality: at K = max all heuristics equal UMULTI.
        assert series[-1] <= series[0] + 1e-9, name
    # Multi-path at modest K already beats single-path (the headline).
    k_small = min(i for i, k in enumerate(ks) if k >= 4)
    assert result.series["disjoint"][k_small] < result.dmodk
