"""Benchmark regenerating Figure 5: message delay vs offered load.

Runs the paper's eight curves (d-mod-k, disjoint(2,8), shift-1(2,8),
random(1,2,8)) on the 8-port 3-tree under uniform traffic.  Expected
shape: hockey-stick delay curves with the multi-path knees to the right
of the d-mod-k knee.
"""

from repro.experiments import figure5

from benchmarks.conftest import bench_fidelity, record

_FAST = bench_fidelity() == "fast"
_LOADS = (0.2, 0.4, 0.6, 0.8) if _FAST else figure5.DEFAULT_LOADS


def test_figure5(benchmark, fidelity_name):
    result = benchmark.pedantic(
        figure5.run,
        kwargs=dict(fidelity_name=fidelity_name, loads=_LOADS),
        rounds=1, iterations=1,
    )
    record(benchmark, result)

    # Delay grows with offered load for every curve.
    for spec, sweep in result.sweeps.items():
        delays = [d for d in sweep.delays if d == d]
        assert delays[0] < delays[-1], spec
    # Multi-path saturates no earlier than single-path d-mod-k.
    dmodk_sat = result.sweeps["d-mod-k"].saturation_load()
    assert result.sweeps["disjoint:8"].saturation_load() >= dmodk_sat - 0.21
