"""Benchmark harness configuration.

Every paper table/figure has a benchmark that *regenerates its rows* and
prints them (captured by ``pytest -s`` or the benchmark's extra_info).
Benchmarks default to a reduced "fast" fidelity so the whole suite
finishes in minutes; set ``REPRO_BENCH_FIDELITY=normal`` (or ``full``)
to run the paper-scale protocol (EXPERIMENTS.md records such a run).
"""

from __future__ import annotations

import os

import pytest


def bench_fidelity() -> str:
    return os.environ.get("REPRO_BENCH_FIDELITY", "fast")


@pytest.fixture
def fidelity_name() -> str:
    return bench_fidelity()


def record(benchmark, result) -> str:
    """Attach a rendered experiment result to the benchmark record and
    echo it so ``pytest -s`` shows the regenerated rows."""
    text = result.render()
    benchmark.extra_info["rendered"] = text
    print("\n" + text)
    return text
