"""Benchmark regenerating the oblivious-ratio landscape.

Quantifies Section 4.1's message: the worst-case (oblivious) performance
gap of single-path routing and how limited multi-path closes it with K.
On the 8-port 2-tree, PERF(d-mod-k) >= m_1 = 4 is witnessed by the
adversarial permutation; PERF(umulti) = 1 (Theorem 1).
"""

from repro.experiments import ratios

from benchmarks.conftest import record


def test_oblivious_ratios(benchmark):
    result = benchmark.pedantic(
        ratios.run, kwargs=dict(ks=(2, 4), permutation_samples=40),
        rounds=1, iterations=1,
    )
    record(benchmark, result)

    by_label = {r[0]: r[1] for r in result.rows}
    assert by_label["umulti"] == 1.0
    assert by_label["d-mod-k"] >= 2.0
    assert by_label["disjoint(4)"] <= by_label["disjoint(2)"] + 1e-9
    assert by_label["disjoint(2)"] < by_label["d-mod-k"]
