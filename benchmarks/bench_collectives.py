"""Benchmark: shift all-to-all completion cost per routing scheme.

The paper's reference [17] (Zahavi et al.) optimizes fat-tree routing
for shift all-to-all schedules; with synchronized phases the collective
finishes in time proportional to the sum over phases of the maximum
link load.  This bench scores that cost for each scheme on the 16-port
2-tree — a structured-workload complement to Figure 4's random
permutations.
"""

from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.collectives import shift_all_to_all, schedule_cost
from repro.util.tables import format_table

SCHEMES = ("d-mod-k", "shift-1:4", "random:4", "disjoint:4", "umulti")


def test_shift_all_to_all_cost(benchmark):
    xgft = m_port_n_tree(16, 2)  # 128 nodes
    n = xgft.n_procs

    def run():
        rows = []
        for spec in SCHEMES:
            scheme = make_scheme(xgft, spec)
            total, worst = schedule_cost(xgft, scheme, shift_all_to_all(n))
            rows.append([spec, total, worst, total / (n - 1)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "total cost", "worst phase", "slowdown vs optimal"],
        rows,
        title=f"Shift all-to-all completion cost, {xgft} (optimal = {n - 1})",
    )
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    cost = {r[0]: r[1] for r in rows}
    assert cost["umulti"] == n - 1            # every phase optimal
    assert cost["disjoint:4"] <= cost["d-mod-k"]
    assert cost["disjoint:4"] <= cost["random:4"] + 1e-9
