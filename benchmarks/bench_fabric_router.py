"""Benchmark: graph-based (OpenSM-style) routing vs closed-form schemes.

Routes the 8-port 2-tree through the counter-balanced fabric router —
which never sees the XGFT closed forms — and compares average maximum
permutation load against the analytical schemes, intact and with a
failed spine cable (which the closed forms cannot express at all).
"""

import numpy as np

from repro.fabric.evaluate import fabric_link_loads
from repro.fabric.graph import fabric_from_xgft
from repro.fabric.ranking import rank_fabric
from repro.fabric.router import route_fabric
from repro.flow.loads import link_loads
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.util.tables import format_table

N_PERMS = 20


def test_fabric_router_vs_closed_form(benchmark):
    xgft = m_port_n_tree(8, 2)
    fab = fabric_from_xgft(xgft)
    st = rank_fabric(fab)
    leaf = fab.switch_of(0)
    degraded = fab.without_cable(leaf, st.up_neighbors[leaf][0])

    def run():
        perms = [permutation_matrix(random_permutation(xgft.n_procs, s))
                 for s in range(N_PERMS)]
        closed = make_scheme(xgft, "disjoint:4")
        graph = route_fabric(fab, n_offsets=4)
        broken = route_fabric(degraded, n_offsets=4)
        rows = []
        for label, loads_of in (
            ("closed-form disjoint(4)",
             lambda tm: link_loads(xgft, closed, tm)),
            ("fabric router, intact",
             lambda tm: fabric_link_loads(graph, tm)),
            ("fabric router, 1 dead uplink",
             lambda tm: fabric_link_loads(broken, tm)),
        ):
            rows.append([label, float(np.mean([loads_of(tm).max()
                                               for tm in perms]))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["routing", "avg max permutation load"], rows,
        title="Graph-based fabric routing vs closed form (8-port 2-tree, "
              "K=4, 20 permutations)",
    )
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    by = {r[0]: r[1] for r in rows}
    # The subnet-manager-style router lands in the closed form's regime...
    assert by["fabric router, intact"] <= by["closed-form disjoint(4)"] * 1.5
    # ...and a single failure degrades gracefully, not catastrophically.
    assert by["fabric router, 1 dead uplink"] <= by["fabric router, intact"] * 2.5
