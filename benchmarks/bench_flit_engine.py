"""Microbenchmark of the flit-level event engines.

Times a fixed-window run on the paper's 8-port 3-tree at moderate load
and reports the event-processing rate — the figure that bounds how long
Table 1 / Figure 5 regeneration takes — for both the reference heap
engine and the batched calendar-queue engine (which must produce
bit-identical results while clearing the >= 5x speedup gate).
"""

from repro.flit.batched import BatchedFlitSimulator
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree


def _setup():
    xgft = m_port_n_tree(8, 3)
    cfg = FlitConfig(warmup_cycles=200, measure_cycles=1500, drain_cycles=500)
    return xgft, make_scheme(xgft, "disjoint:4"), cfg


def test_engine_event_rate(benchmark):
    xgft, scheme, cfg = _setup()
    sim = FlitSimulator(xgft, scheme, cfg)

    result = benchmark(sim.run, UniformRandom(0.6), seed=1)
    assert result.events > 10_000
    benchmark.extra_info["events"] = result.events
    benchmark.extra_info["events_per_sec"] = (
        result.events / benchmark.stats.stats.mean
    )


def test_batched_engine_event_rate(benchmark):
    xgft, scheme, cfg = _setup()
    reference = FlitSimulator(xgft, scheme, cfg)
    sim = BatchedFlitSimulator(xgft, scheme, cfg)
    workload = UniformRandom(0.6)
    # Parity first (also absorbs the one-time native-kernel compile).
    assert sim.run(workload, seed=1) == reference.run(workload, seed=1)

    result = benchmark(sim.run, workload, seed=1)
    assert result.events > 10_000
    benchmark.extra_info["events"] = result.events
    benchmark.extra_info["events_per_sec"] = (
        result.events / benchmark.stats.stats.mean
    )
