"""Microbenchmark of the flit-level event engine.

Times a fixed-window run on the paper's 8-port 3-tree at moderate load
and reports the event-processing rate — the figure that bounds how long
Table 1 / Figure 5 regeneration takes.
"""

from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree


def test_engine_event_rate(benchmark):
    xgft = m_port_n_tree(8, 3)
    cfg = FlitConfig(warmup_cycles=200, measure_cycles=1500, drain_cycles=500)
    sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:4"), cfg)

    result = benchmark(sim.run, UniformRandom(0.6), seed=1)
    assert result.events > 10_000
    benchmark.extra_info["events"] = result.events
    benchmark.extra_info["events_per_sec"] = (
        result.events / benchmark.stats.stats.mean
    )
