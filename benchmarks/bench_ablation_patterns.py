"""Ablation: heuristic ordering under structured traffic patterns.

Figure 4 uses random permutations; this bench re-runs the flow-level
comparison under the structured patterns from the fat-tree literature
(shift, bit-reversal, bit-complement, transpose, hotspot, adversarial)
to check the disjoint heuristic's lead is not a permutation artifact.
"""

import pytest

from repro.errors import TrafficError
from repro.flow.simulator import FlowSimulator
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.adversarial import theorem2_pattern
from repro.traffic.synthetic import (
    bit_complement,
    bit_reversal,
    hotspot,
    shift_pattern,
    transpose_pattern,
)
from repro.util.tables import format_table

SCHEMES = ("d-mod-k", "shift-1:4", "random:4", "disjoint:4", "umulti")


def _patterns(n):
    yield "shift(1)", shift_pattern(n, 1)
    yield f"shift(n/2)", shift_pattern(n, n // 2)
    yield "bit-reversal", bit_reversal(n)
    yield "bit-complement", bit_complement(n)
    yield "hotspot", hotspot(n, [0, 1], hot_fraction=0.3)
    if int(n**0.5) ** 2 == n:
        yield "transpose", transpose_pattern(n)


def test_pattern_ablation(benchmark):
    xgft = m_port_n_tree(16, 2)  # 128 nodes, power of two
    sim = FlowSimulator(xgft)

    def run():
        rows = []
        for name, tm in _patterns(xgft.n_procs):
            row = [name]
            for spec in SCHEMES:
                row.append(sim.evaluate(make_scheme(xgft, spec), tm).ratio)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["pattern", *SCHEMES], rows,
                         title="Ablation: performance ratio by pattern "
                               "(flow level, 16-port 2-tree)")
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    for row in rows:
        ratios = dict(zip(SCHEMES, row[1:]))
        assert ratios["umulti"] == pytest.approx(1.0)   # Theorem 1
        assert ratios["disjoint:4"] <= ratios["d-mod-k"] + 1e-9
