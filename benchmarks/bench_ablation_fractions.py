"""Ablation: how the traffic fractions f_{i,j} are realized.

The paper defines multi-path routing by per-pair fractions; a simulator
must pick a granularity.  Per-packet spreading realizes the fractions
most faithfully and disperses message-length bursts; per-message keeps a
message on one path (InfiniBand-like, ordering-friendly); round-robin
is deterministic per-packet spreading.  This bench quantifies the
difference for disjoint(8) on the paper's flit topology.
"""

from repro.flit.config import FlitConfig
from repro.flit.sweep import load_sweep
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.util.tables import format_table


def test_path_selection_ablation(benchmark):
    xgft = m_port_n_tree(8, 3)
    scheme = make_scheme(xgft, "disjoint:8")

    def run():
        rows = []
        for mode in ("per-packet", "per-message", "round-robin"):
            cfg = FlitConfig(warmup_cycles=500, measure_cycles=2500,
                             drain_cycles=3000, path_selection=mode)
            sweep = load_sweep(xgft, scheme, cfg, loads=(0.6, 0.8, 1.0))
            rows.append([mode, sweep.max_throughput])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["path selection", "max throughput"], rows,
                         title="Ablation: fraction realization, disjoint(8)",
                         floatfmt=".4f")
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    thr = dict(rows)
    # Packet-granular spreading (random or round-robin) beats or matches
    # per-message: finer interleaving disperses bursts.
    assert max(thr["per-packet"], thr["round-robin"]) >= thr["per-message"] * 0.97
