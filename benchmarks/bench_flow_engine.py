"""Reference vs compiled flow engine: permutations per second.

Times the permutation-MLOAD hot path both ways on one topology —

* **reference**: the per-matrix closed-form evaluator
  (:func:`repro.flow.loads.link_loads`), one permutation at a time;
* **compiled**: :func:`repro.routing.compiled.compile_scheme` once, then
  :meth:`repro.flow.engine.BatchFlowEngine.permutation_mloads` over the
  whole batch —

verifies both engines agree to 1e-9 on every sample, and writes a JSON
report (``bench_flow_report.json``) with permutations/sec per scheme and the
speedup.  The acceptance bar for the compiled engine is a >= 5x speedup
on the default ``mport:8x3`` study.

Usage::

    PYTHONPATH=src python benchmarks/bench_flow_engine.py \
        [--topology mport:8x3] [--samples 256] [--smoke] \
        [--out bench_flow_report.json]

``--smoke`` shrinks the sample count so CI finishes in seconds; the
parity check still runs at full strength.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter

import numpy as np

from repro import __version__
from repro.cli import parse_topology
from repro.flow.engine import BatchFlowEngine
from repro.flow.loads import link_loads
from repro.flow.metrics import max_link_load
from repro.routing.compiled import compile_scheme
from repro.routing.factory import make_scheme
from repro.traffic.permutations import permutation_matrix, random_permutation

SCHEME_SPECS = ("d-mod-k", "shift-1:4", "disjoint:4", "random:4", "umulti")


def _best_of(fn, rounds: int):
    """Minimum wall time over several rounds (robust to scheduler noise);
    returns ``(seconds, last_result)``."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = perf_counter()
        result = fn()
        best = min(best, perf_counter() - t0)
    return best, result


def bench_scheme(xgft, spec: str, samples: int, seed: int,
                 rounds: int = 3) -> dict:
    """Time both engines on the same permutation batch; return the row."""
    scheme = make_scheme(xgft, spec, seed=seed)
    rng = np.random.default_rng(seed)
    perms = np.stack([random_permutation(xgft.n_procs, rng)
                      for _ in range(samples)])

    # Warm both paths (page faults, lazy caches) outside the timings.
    max_link_load(link_loads(xgft, scheme, permutation_matrix(perms[0])))
    BatchFlowEngine(compile_scheme(xgft, scheme)).permutation_mloads(perms[:2])

    t_ref, ref = _best_of(lambda: np.array([
        max_link_load(link_loads(xgft, scheme, permutation_matrix(p)))
        for p in perms
    ]), rounds)

    # One-off cost: route compilation plus engine table setup.
    t_compile, engine = _best_of(
        lambda: BatchFlowEngine(compile_scheme(xgft, scheme)), rounds)
    t_batch, batch = _best_of(
        lambda: engine.permutation_mloads(perms), rounds)

    parity = bool(np.allclose(batch, ref, atol=1e-9))
    t_compiled_total = t_compile + t_batch
    return {
        "scheme": scheme.label,
        "samples": samples,
        "parity_ok": parity,
        "max_abs_diff": float(np.abs(batch - ref).max()),
        "reference_s": t_ref,
        "compile_s": t_compile,
        "batch_eval_s": t_batch,
        "reference_perms_per_s": samples / t_ref if t_ref > 0 else float("inf"),
        "compiled_perms_per_s": (samples / t_batch if t_batch > 0
                                 else float("inf")),
        # Steady-state throughput ratio: what a study sees once the
        # one-off compile is amortized over its thousands of samples.
        "eval_speedup": t_ref / t_batch if t_batch > 0 else float("inf"),
        # End-to-end speedup including the one-off compile.
        "speedup": t_ref / t_compiled_total if t_compiled_total > 0
                   else float("inf"),
        "plan_nbytes": engine.plan.nbytes,
    }


def run(topology_spec: str, samples: int, seed: int, out: str | None) -> dict:
    xgft = parse_topology(topology_spec)
    rows = [bench_scheme(xgft, spec, samples, seed) for spec in SCHEME_SPECS]
    report = {
        "benchmark": "flow_engine",
        "version": __version__,
        "topology": repr(xgft),
        "n_procs": xgft.n_procs,
        "n_links": xgft.n_links,
        "samples": samples,
        "seed": seed,
        "results": rows,
        "min_eval_speedup": min(r["eval_speedup"] for r in rows),
        "min_end_to_end_speedup": min(r["speedup"] for r in rows),
        # Study-scale view: total permutations over total time per engine.
        "study_speedup": (sum(r["reference_s"] for r in rows)
                          / sum(r["compile_s"] + r["batch_eval_s"]
                                for r in rows)),
        "all_parity_ok": all(r["parity_ok"] for r in rows),
    }
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="mport:8x3",
                        help="topology spec (default: mport:8x3, 128 nodes)")
    parser.add_argument("--samples", type=int, default=256,
                        help="permutations per scheme (default 256)")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--smoke", action="store_true",
                        help="small sample count for CI (implies --samples 64)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here (e.g. bench_flow_report.json)")
    args = parser.parse_args(argv)
    samples = 64 if args.smoke else args.samples

    report = run(args.topology, samples, args.seed, args.out)
    print(f"flow engine bench: {report['topology']} "
          f"({report['n_procs']} nodes, {samples} perms/scheme)")
    header = f"{'scheme':<14} {'ref perm/s':>12} {'compiled perm/s':>16} " \
             f"{'eval':>6} {'e2e':>6}  parity"
    print(header)
    for r in report["results"]:
        print(f"{r['scheme']:<14} {r['reference_perms_per_s']:>12.1f} "
              f"{r['compiled_perms_per_s']:>16.1f} "
              f"{r['eval_speedup']:>5.1f}x {r['speedup']:>5.1f}x  "
              f"{'ok' if r['parity_ok'] else 'FAIL'}")
    print(f"min eval speedup: {report['min_eval_speedup']:.1f}x   "
          f"(end-to-end incl. one-off compile: "
          f"{report['min_end_to_end_speedup']:.1f}x, "
          f"whole study {report['study_speedup']:.1f}x)")

    if not report["all_parity_ok"]:
        print("error: engine parity violated", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
