"""Benchmark regenerating the analytical validations (Section 4.1).

Executes Lemma 1 / Theorem 1 / Theorem 2 across topologies and traffic
matrices; the assertions ARE the theorems.
"""

from repro.experiments import theorems

from benchmarks.conftest import record


def test_theorems(benchmark):
    result = benchmark.pedantic(
        theorems.run, kwargs=dict(samples=5), rounds=1, iterations=1
    )
    record(benchmark, result)
    assert result.all_hold
    # Theorem 2 reports sit at the end; measured ratios hit prod(w).
    t2 = [r for r in result.reports if "Theorem 2" in r.name]
    assert len(t2) == 3
    assert all(r.measured >= r.bound - 1e-9 for r in t2)
