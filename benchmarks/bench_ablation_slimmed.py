"""Ablation: slimmed (oversubscribed) fat-trees.

Real installations often slim the top level to cut cost.  Slimming
reduces the path count and concentrates top-level load; this bench
measures how the heuristics' permutation performance degrades with the
slimming factor, and confirms UMULTI stays exactly optimal (Theorem 1
holds for arbitrary XGFTs, slimmed included).
"""

import pytest

from repro.flow.sampling import PermutationStudy
from repro.routing.factory import make_scheme
from repro.topology.variants import slimmed_xgft
from repro.util.tables import format_table

SCHEMES = ("d-mod-k", "disjoint:2", "umulti")


def test_slimmed_tree_ablation(benchmark):
    def run():
        rows = []
        for slim in (0, 1, 2):
            xgft = slimmed_xgft(3, 4, 4, slim)
            study = PermutationStudy(xgft, initial_samples=16, max_samples=64,
                                     rel_precision=0.05, seed=5)
            row = [f"w_top={4 - slim}"]
            for spec in SCHEMES:
                row.append(study.run(make_scheme(xgft, spec)).mean)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["top width", *SCHEMES], rows,
        title="Ablation: avg max permutation load vs top-level slimming "
              "(XGFT(3; 4,4,4; 1,4,w))",
    )
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    # Slimming raises everyone's load (less top capacity) ...
    for col in (1, 2, 3):
        assert rows[2][col] >= rows[0][col] - 1e-9
    # ... and the heuristic ordering persists: disjoint(2) between
    # d-mod-k and the optimal UMULTI at every slimming level.
    for row in rows:
        assert row[3] <= row[2] <= row[1] + 1e-9
