"""Ablation: switch microarchitecture (the DESIGN.md calibration).

Runs the Table 1 core comparison under both switch models.  With
output-queued switches (the default, matching the paper's observed
ordering) multi-path routing wins; with single-FIFO input-buffered
switches the ordering *reverses*, because digit d-mod-k's
destination-private down-paths confine head-of-line blocking while
spreading contaminates more buffers.  This bench documents that finding
as a regeneratable artifact.
"""

import numpy as np

from repro.flit.config import FlitConfig
from repro.flit.sweep import load_sweep
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.util.tables import format_table


def _max_thr(xgft, spec, model):
    cfg = FlitConfig(warmup_cycles=500, measure_cycles=2500,
                     drain_cycles=3000, switch_model=model)
    sweep = load_sweep(xgft, make_scheme(xgft, spec), cfg,
                       loads=(0.6, 0.8, 1.0))
    return sweep.max_throughput


def test_switch_model_ablation(benchmark):
    xgft = m_port_n_tree(8, 3)

    def run():
        rows = []
        for model in ("output-queued", "input-fifo"):
            rows.append([model, _max_thr(xgft, "d-mod-k", model),
                         _max_thr(xgft, "disjoint:8", model)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["switch model", "d-mod-k", "disjoint(8)"], rows,
                         title="Ablation: max throughput by switch model",
                         floatfmt=".4f")
    benchmark.extra_info["rendered"] = table
    print("\n" + table)

    oq = {r[0]: r for r in rows}["output-queued"]
    fifo = {r[0]: r for r in rows}["input-fifo"]
    # Output-queued: multi-path >= single-path (paper's regime).
    assert oq[2] >= oq[1] * 0.97
    # Input-FIFO: concentration wins (the reversal DESIGN.md documents).
    assert fifo[1] > fifo[2]
