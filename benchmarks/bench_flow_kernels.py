"""Microbenchmarks of the vectorized flow-level kernels.

These time the hot paths the Figure 4 protocol leans on: per-permutation
link-load evaluation (up to the 3456-node 24-port 3-tree with K = 144)
and the Lemma 1 lower bound.  Regressions here multiply directly into
experiment wall time.
"""

import pytest

from repro.flow.loads import link_loads
from repro.flow.metrics import ml_lower_bound
from repro.routing.factory import make_scheme
from repro.routing.vectorized import compile_routes
from repro.topology.variants import m_port_n_tree
from repro.traffic.permutations import permutation_matrix, random_permutation


@pytest.fixture(scope="module")
def big_tree():
    return m_port_n_tree(24, 3)  # 3456 processing nodes


@pytest.fixture(scope="module")
def big_perm(big_tree):
    return permutation_matrix(random_permutation(big_tree.n_procs, 0))


@pytest.mark.parametrize("spec", ["d-mod-k", "disjoint:8", "random:8", "umulti"])
def test_link_loads_permutation(benchmark, big_tree, big_perm, spec):
    scheme = make_scheme(big_tree, spec)
    loads = benchmark(link_loads, big_tree, scheme, big_perm)
    assert loads.sum() > 0


def test_ml_lower_bound(benchmark, big_tree, big_perm):
    bound = benchmark(ml_lower_bound, big_tree, big_perm)
    assert bound >= 1.0


def test_route_compilation_128_nodes(benchmark):
    xgft = m_port_n_tree(8, 3)
    scheme = make_scheme(xgft, "disjoint:8")
    table = benchmark(compile_routes, xgft, scheme)
    assert len(table) == xgft.n_procs * (xgft.n_procs - 1)
