"""Overhead of the observability layer (:mod:`repro.obs`).

The recorder must be near-free when disabled: the flow hot path
(``FlowSimulator.max_load``, called hundreds of times per Figure 4
study) goes through one ``get_recorder()`` lookup and an ``enabled``
check, and the flit event loop pays a single integer comparison per
event.  This bench measures both against an uninstrumented baseline and
asserts the disabled-recorder cost stays under 5 % on the flow path;
the enabled-recorder cost is reported for reference.
"""

from __future__ import annotations

from time import perf_counter

from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.flow.loads import link_loads
from repro.flow.metrics import max_link_load
from repro.flow.simulator import FlowSimulator
from repro.obs import Recorder, use_recorder
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.permutations import permutation_matrix, random_permutation


def _best_of(fn, *, rounds: int = 7, reps: int = 5) -> float:
    """Minimum per-call time over several interleaved rounds — robust to
    scheduler noise, which a 5 % bound cannot absorb."""
    best = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (perf_counter() - t0) / reps)
    return best


def test_flow_hot_path_disabled_recorder_under_5_percent():
    xgft = m_port_n_tree(8, 3)  # 128 nodes, the paper's flit topology
    sim = FlowSimulator(xgft)
    scheme = make_scheme(xgft, "disjoint:8")
    tm = permutation_matrix(random_permutation(xgft.n_procs, 0))

    def raw():
        return max_link_load(link_loads(xgft, scheme, tm))

    def noop_recorder():
        return sim.max_load(scheme, tm)  # ambient recorder is the no-op

    def enabled_recorder():
        with use_recorder(Recorder()):
            return sim.max_load(scheme, tm)

    raw(), noop_recorder(), enabled_recorder()  # warm caches/JIT'd paths
    t_raw = _best_of(raw)
    t_noop = _best_of(noop_recorder)
    t_on = _best_of(enabled_recorder)

    overhead_noop = t_noop / t_raw - 1.0
    overhead_on = t_on / t_raw - 1.0
    print(f"\nflow max_load: raw={t_raw * 1e3:.3f}ms "
          f"noop={t_noop * 1e3:.3f}ms ({overhead_noop:+.1%}) "
          f"enabled={t_on * 1e3:.3f}ms ({overhead_on:+.1%})")
    assert t_noop <= t_raw * 1.05, (
        f"disabled recorder costs {overhead_noop:.1%} on the flow hot path"
    )


def test_flit_short_run_overhead_reported():
    xgft = m_port_n_tree(4, 2)
    scheme = make_scheme(xgft, "d-mod-k")
    cfg = FlitConfig(warmup_cycles=200, measure_cycles=800, drain_cycles=500)
    sim = FlitSimulator(xgft, scheme, cfg)
    load = UniformRandom(0.5)

    def disabled():
        return sim.run(load, seed=1)

    def enabled():
        rec = Recorder()
        return sim.run(load, seed=1, recorder=rec)

    base = disabled()
    with_rec = enabled()
    # Telemetry must not perturb the simulation itself.
    assert with_rec.throughput == base.throughput
    assert with_rec.events == base.events

    t_off = _best_of(disabled, rounds=5, reps=3)
    t_on = _best_of(enabled, rounds=5, reps=3)
    print(f"\nflit run: disabled={t_off * 1e3:.1f}ms "
          f"enabled={t_on * 1e3:.1f}ms ({t_on / t_off - 1.0:+.1%})")
    # Even fully enabled, per-interval tracing should stay modest.
    assert t_on <= t_off * 2.0
