"""Overhead of the observability layer (:mod:`repro.obs`).

The recorder must be near-free when disabled: the flow hot path
(``FlowSimulator.max_load``, called hundreds of times per Figure 4
study) goes through one ``get_recorder()`` lookup and an ``enabled``
check, and the flit event loop pays a single integer comparison per
event.  This bench measures both against an uninstrumented baseline and
**asserts** the disabled-recorder cost stays under the 5 % budget on
the flow path; the enabled-recorder cost is reported for reference.

The measurement core is shared with ``repro bench`` (:func:`repro.obs.
bench.measure_obs_overhead`), which surfaces the same numbers —
including the measured overhead fraction and the budget verdict — in
the committed ``BENCH_obs.json`` snapshot.
"""

from __future__ import annotations

from time import perf_counter

from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.obs import Recorder
from repro.obs.bench import OBS_OVERHEAD_BUDGET, measure_obs_overhead
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree


def _best_of(fn, *, rounds: int = 7, reps: int = 5) -> float:
    """Minimum per-call time over several interleaved rounds — robust to
    scheduler noise, which a 5 % bound cannot absorb."""
    best = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (perf_counter() - t0) / reps)
    return best


def test_flow_hot_path_disabled_recorder_under_5_percent():
    # quick=False measures on mport:8x3 — the paper's flit topology.
    m = measure_obs_overhead(quick=False)
    print(f"\nflow max_load: raw={m['raw_s'] * 1e3:.3f}ms "
          f"noop={m['disabled_s'] * 1e3:.3f}ms "
          f"({m['disabled_overhead']:+.1%}) "
          f"enabled={m['enabled_s'] * 1e3:.3f}ms "
          f"({m['enabled_overhead']:+.1%})")
    assert m["budget"] == OBS_OVERHEAD_BUDGET
    assert m["within_budget"], (
        f"disabled recorder costs {m['disabled_overhead']:.1%} on the flow "
        f"hot path (budget {OBS_OVERHEAD_BUDGET:.0%})"
    )


def test_flit_short_run_overhead_reported():
    xgft = m_port_n_tree(4, 2)
    scheme = make_scheme(xgft, "d-mod-k")
    cfg = FlitConfig(warmup_cycles=200, measure_cycles=800, drain_cycles=500)
    sim = FlitSimulator(xgft, scheme, cfg)
    load = UniformRandom(0.5)

    def disabled():
        return sim.run(load, seed=1)

    def enabled():
        rec = Recorder()
        return sim.run(load, seed=1, recorder=rec)

    base = disabled()
    with_rec = enabled()
    # Telemetry must not perturb the simulation itself.
    assert with_rec.throughput == base.throughput
    assert with_rec.events == base.events

    t_off = _best_of(disabled, rounds=5, reps=3)
    t_on = _best_of(enabled, rounds=5, reps=3)
    print(f"\nflit run: disabled={t_off * 1e3:.1f}ms "
          f"enabled={t_on * 1e3:.1f}ms ({t_on / t_off - 1.0:+.1%})")
    # Even fully enabled, per-interval tracing should stay modest.
    assert t_on <= t_off * 2.0
