"""Benchmark regenerating the InfiniBand resource-budget analysis.

The paper's motivation: unlimited multi-path routing exceeds the LID/LMC
budget on real fabrics (144 paths on the 24-port 3-tree), while limited
multi-path with small K fits.  Also reports the effective path diversity
nearby pairs retain under each heuristic's LID realization — a
reproduction-original ablation showing another disjoint advantage.
"""

from repro.experiments import resources

from benchmarks.conftest import record


def test_ib_resources(benchmark):
    result = benchmark.pedantic(resources.run, rounds=1, iterations=1)
    record(benchmark, result)

    by_k = {(r.topology, r.k_paths): r for r in result.reports}
    ranger = "XGFT(3; 12,12,24; 1,12,12)"
    assert not by_k[(ranger, 144)].feasible   # unlimited: impossible
    assert by_k[(ranger, 8)].feasible          # limited: fits
    # Disjoint preserves full diversity for NCA-2 pairs; shift-1 loses it.
    disjoint_nca2 = {k: v for (s, k, l, v) in
                     [r for r in result.diversity_rows] if s == "disjoint" and l == 2}
    shift_nca2 = {k: v for (s, k, l, v) in
                  [r for r in result.diversity_rows] if s == "shift-1" and l == 2}
    assert all(disjoint_nca2[k] >= shift_nca2[k] for k in disjoint_nca2)
    assert disjoint_nca2[4] == 4 and shift_nca2[4] < 4
