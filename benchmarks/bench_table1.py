"""Benchmark regenerating Table 1: max throughput, uniform traffic.

Runs the flit-level load sweep on the paper's 8-port 3-tree for
``K in {1, 2, 4, 8}`` per heuristic.  Paper anchors at K=8: shift-1
67.65 %, random 69.75 %, disjoint 70.35 % — the reproduction checks the
*shape*: multi-path (K >= 2) beats d-mod-k, random(1) trails it, and
disjoint leads at small K.
"""

from repro.experiments import table1

from benchmarks.conftest import bench_fidelity, record

_FAST = bench_fidelity() == "fast"
_LOADS = (0.6, 0.8, 1.0) if _FAST else (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
_SEEDS = (0,) if _FAST else (0, 1, 2, 3, 4)


def test_table1(benchmark, fidelity_name):
    result = benchmark.pedantic(
        table1.run,
        kwargs=dict(fidelity_name=fidelity_name, loads=_LOADS,
                    random_seeds=_SEEDS),
        rounds=1, iterations=1,
    )
    record(benchmark, result)

    # Shape anchors (loose at fast fidelity, tight at full):
    # 1. K=1 random single-path is the weakest scheme.
    assert result.cells["random"][0] < result.dmodk
    # 2. The d-mod-k-based heuristics at K>=2 beat single-path d-mod-k.
    k2 = result.ks.index(2)
    assert result.cells["disjoint"][k2] > result.dmodk * 0.98
    # 3. Throughput at K=8 is at or above K=1 for every heuristic.
    k1, k8 = result.ks.index(1), result.ks.index(8)
    for name in table1.HEURISTICS:
        assert result.cells[name][k8] >= result.cells[name][k1] * 0.97
