"""Serial vs parallel vs cached flit sweeps: wall-clock and replay.

Times the (scheme x load x repeat) grid behind Figure 5 / Table 1 four
ways on one topology —

* **serial**: :func:`repro.runner.sweep.run_sweeps` with ``n_jobs=1``
  (the classic inline path);
* **parallel**: the same grid fanned out over a
  :class:`~repro.runner.pool.PersistentPool` (``--jobs N``);
* **cold cache**: serial again, storing every point into a fresh
  :class:`~repro.runner.cache.ResultCache`;
* **warm cache**: replaying the grid from disk — zero simulator runs —

verifies all four produce bit-identical ``SweepResult`` values, checks
via telemetry that the warm pass computed nothing, and writes a JSON
report (``bench_flit_report.json``) with wall times, the parallel speedup and
the cache replay speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_flit_sweep.py \
        [--topology mport:8x3] [--jobs 4] [--repeats 2] [--smoke] \
        [--out bench_flit_report.json]

``--smoke`` shrinks the topology, window and load grid so CI finishes
in seconds; every parity and telemetry check still runs at full
strength.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from time import perf_counter

from repro import __version__
from repro.cli import parse_topology
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.obs.recorder import Recorder, use_recorder
from repro.routing.factory import make_scheme
from repro.runner.cache import ResultCache
from repro.runner.sweep import run_sweeps

SCHEME_SPECS = ("d-mod-k", "disjoint:4", "random:4")


def _sweeps_equal(a: dict, b: dict) -> bool:
    """Bit-exact comparison of run_sweeps outputs, NaN-tolerant."""
    if set(a) != set(b):
        return False
    for key in a:
        if len(a[key].runs) != len(b[key].runs):
            return False
        for ra, rb in zip(a[key].runs, b[key].runs):
            for field in ra.__dataclass_fields__:
                va, vb = getattr(ra, field), getattr(rb, field)
                if va != vb and not (va != va and vb != vb):
                    return False
    return True


def _timed(fn):
    t0 = perf_counter()
    result = fn()
    return perf_counter() - t0, result


def run(topology_spec: str, loads, repeats: int, jobs: int,
        config: FlitConfig, out: str | None) -> dict:
    xgft = parse_topology(topology_spec)
    sims = {spec: FlitSimulator(xgft, make_scheme(xgft, spec), config)
            for spec in SCHEME_SPECS}
    n_points = len(sims) * len(loads) * repeats

    t_serial, serial = _timed(
        lambda: run_sweeps(sims, loads=loads, repeats=repeats))
    t_parallel, parallel = _timed(
        lambda: run_sweeps(sims, loads=loads, repeats=repeats, n_jobs=jobs))

    cache_dir = tempfile.mkdtemp(prefix="bench-flit-cache-")
    try:
        cold_rec = Recorder()
        with use_recorder(cold_rec):
            t_cold, cold = _timed(lambda: run_sweeps(
                sims, loads=loads, repeats=repeats,
                cache=ResultCache(cache_dir)))
        warm_rec = Recorder()
        with use_recorder(warm_rec):
            t_warm, warm = _timed(lambda: run_sweeps(
                sims, loads=loads, repeats=repeats,
                cache=ResultCache(cache_dir)))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    report = {
        "benchmark": "flit_sweep",
        "version": __version__,
        "topology": repr(xgft),
        "n_procs": xgft.n_procs,
        "schemes": [s.scheme.label for s in sims.values()],
        "loads": list(loads),
        "repeats": repeats,
        "jobs": jobs,
        "n_points": n_points,
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "cold_cache_s": t_cold,
        "warm_cache_s": t_warm,
        "parallel_speedup": t_serial / t_parallel if t_parallel > 0
                            else float("inf"),
        "replay_speedup": t_serial / t_warm if t_warm > 0 else float("inf"),
        "cold_stores": cold_rec.counters.get("runner.cache_store", 0),
        "warm_hits": warm_rec.counters.get("runner.cache_hit", 0),
        "warm_points_computed": warm_rec.counters.get(
            "runner.points_computed", 0),
        "parallel_parity_ok": _sweeps_equal(serial, parallel),
        "cache_parity_ok": (_sweeps_equal(serial, cold)
                            and _sweeps_equal(serial, warm)),
        "warm_replay_ok": (
            warm_rec.counters.get("runner.cache_hit", 0) == n_points
            and "runner.points_computed" not in warm_rec.counters),
    }
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="mport:8x3",
                        help="topology spec (default: mport:8x3, 128 nodes)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel pass")
    parser.add_argument("--repeats", type=int, default=2,
                        help="workload seeds per load point (default 2)")
    parser.add_argument("--smoke", action="store_true",
                        help="small topology/window/grid for CI")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here (e.g. bench_flit_report.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        topology = "mport:4x2"
        loads = (0.2, 0.5, 0.8)
        config = FlitConfig(warmup_cycles=100, measure_cycles=500,
                            drain_cycles=500, seed=args.seed)
    else:
        topology = args.topology
        loads = (0.2, 0.4, 0.6, 0.8)
        config = FlitConfig(warmup_cycles=500, measure_cycles=2500,
                            drain_cycles=2500, seed=args.seed)

    report = run(topology, loads, args.repeats, args.jobs, config, args.out)
    print(f"flit sweep bench: {report['topology']} "
          f"({report['n_points']} grid points, --jobs {report['jobs']})")
    print(f"{'serial':<12} {report['serial_s']:>8.2f}s")
    print(f"{'parallel':<12} {report['parallel_s']:>8.2f}s  "
          f"({report['parallel_speedup']:.1f}x)")
    print(f"{'cold cache':<12} {report['cold_cache_s']:>8.2f}s  "
          f"({report['cold_stores']} points stored)")
    print(f"{'warm cache':<12} {report['warm_cache_s']:>8.2f}s  "
          f"({report['replay_speedup']:.1f}x, {report['warm_hits']} hits, "
          f"{report['warm_points_computed']} computed)")

    ok = (report["parallel_parity_ok"] and report["cache_parity_ok"]
          and report["warm_replay_ok"])
    if not ok:
        print("error: parity or warm-replay check failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
