#!/usr/bin/env python
"""Quickstart: topologies, routing schemes, and both simulators.

Builds the paper's topologies, routes a pair with every scheme, evaluates
a random permutation at the flow level, and runs a short flit-level
simulation — a tour of the whole public API in under a minute.

Run:  python examples/quickstart.py
"""

import repro
from repro.flit import FlitConfig, FlitSimulator, UniformRandom


def main() -> None:
    # 1. Topologies: m-port n-trees are XGFTs (the paper's Section 5 set).
    xgft = repro.m_port_n_tree(8, 3)  # XGFT(3; 4,4,8; 1,4,4), 128 nodes
    print(xgft.describe())
    print()

    # 2. Routing: single-path baselines and limited multi-path heuristics.
    src, dst = 0, 127
    for spec in ("d-mod-k", "shift-1:4", "disjoint:4", "random:4", "umulti"):
        scheme = repro.make_scheme(xgft, spec)
        rs = scheme.route(src, dst)
        print(f"{scheme.label:12s} -> paths {rs.indices[:8]}"
              f"{' ...' if rs.num_paths > 8 else ''}  ({rs.num_paths} total)")
    print()

    # 3. Flow level: maximum link load of a random permutation, and how
    #    far each scheme is from the provable optimum (Theorem 1).
    perm = repro.permutation_matrix(repro.random_permutation(xgft.n_procs, seed=42))
    sim = repro.FlowSimulator(xgft)
    print("flow level, one random permutation:")
    for spec in ("d-mod-k", "shift-1:4", "disjoint:4", "umulti"):
        res = sim.evaluate(repro.make_scheme(xgft, spec), perm)
        print(f"  {spec:12s} max load {res.max_load:6.3f}   "
              f"optimal {res.optimal:.3f}   ratio {res.ratio:.3f}")
    print()

    # 4. Flit level: virtual cut-through with credit flow control.
    cfg = FlitConfig(warmup_cycles=500, measure_cycles=2000, drain_cycles=3000)
    print("flit level, uniform traffic at 60% offered load:")
    for spec in ("d-mod-k", "disjoint:4"):
        fsim = FlitSimulator(xgft, repro.make_scheme(xgft, spec), cfg)
        run = fsim.run(UniformRandom(0.6))
        print(f"  {spec:12s} throughput {run.throughput:.3f}   "
              f"mean delay {run.mean_delay:7.1f} cycles")


if __name__ == "__main__":
    main()
