#!/usr/bin/env python
"""InfiniBand realization: LIDs, forwarding tables, and the K budget.

The paper's motivation made concrete: count the LID address space each
path limit consumes on the evaluated fabrics (unlimited multi-path is
unrealizable on the 24-port 3-tree), compile linear forwarding tables
for a heuristic, and trace packets through them hop by hop.

Run:  python examples/infiniband_lid_budget.py
"""

import repro
from repro.ib import compile_lfts, effective_paths, resource_report, trace_route


def main() -> None:
    print("LID budget per path limit (unicast space: 49151 LIDs):")
    for m, n in ((8, 3), (24, 3)):
        xgft = repro.m_port_n_tree(m, n)
        for k in (1, 4, 8, xgft.max_paths):
            r = resource_report(xgft, k)
            status = "ok" if r.feasible else f"INFEASIBLE: {r.limit_reason}"
            print(f"  {r.topology:28s} K={k:3d}  LMC={r.lmc}  "
                  f"total LIDs={r.total_lids:6d}  {status}")
    print()

    xgft = repro.m_port_n_tree(8, 3)
    scheme = repro.make_scheme(xgft, "disjoint:4")
    tables = compile_lfts(xgft, scheme)
    print(f"compiled LFTs for {scheme.label} on {xgft} "
          f"(LMC {tables.lids.lmc}, {tables.lids.total_lids} LIDs)\n")

    src, dst = 0, 127
    print(f"table-driven traces {src} -> {dst} (one per LID offset):")
    for off in range(tables.lids.lids_per_port):
        hops = trace_route(tables, src, dst, off)
        pretty = " -> ".join(
            str(i) if l == 0 else xgft.node_label(l, i) for l, i in hops
        )
        print(f"  LID {tables.lids.lid(dst, off)}: {pretty}")
    print()

    print("effective path diversity under the LID realization "
          "(nearby NCA-2 pair 0 -> 5):")
    for spec in ("shift-1:4", "disjoint:4"):
        t = compile_lfts(xgft, repro.make_scheme(xgft, spec))
        print(f"  {spec:12s}: {effective_paths(t, 0, 5)} distinct paths "
              f"(disjoint forks low, so it keeps diversity)")


if __name__ == "__main__":
    main()
