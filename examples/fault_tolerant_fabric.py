#!/usr/bin/env python
"""Routing a discovered fabric like a subnet manager — with failures.

The closed-form heuristics assume an intact XGFT.  Real deployments
discover the topology as a graph and route it with OpenSM-style
counter balancing, which keeps working when cables die.  This example
flattens an XGFT into a fabric, routes it with 4 LIDs per host, kills a
spine cable, re-routes, and compares permutation load before and after.

Run:  python examples/fault_tolerant_fabric.py
"""

import numpy as np

import repro
from repro.fabric import (
    fabric_from_xgft,
    fabric_link_loads,
    rank_fabric,
    route_fabric,
    trace,
)
from repro.traffic import permutation_matrix, random_permutation


def avg_max_load(routes, n, seeds=range(10)):
    return float(np.mean([
        fabric_link_loads(routes, permutation_matrix(random_permutation(n, s))).max()
        for s in seeds
    ]))


def main() -> None:
    xgft = repro.m_port_n_tree(8, 2)
    fabric = fabric_from_xgft(xgft)
    structure = rank_fabric(fabric)
    print(f"discovered {fabric} (tree height {structure.max_rank})")

    routes = route_fabric(fabric, n_offsets=4)
    print(f"routed with 4 LIDs/host; unreachable pairs: "
          f"{len(routes.unreachable_pairs())}")
    print("LID routes 0 -> 31 take distinct spines:")
    for offset in range(4):
        print(f"  offset {offset}: {trace(routes, 0, 31, offset)}")

    leaf = fabric.switch_of(0)
    victim = structure.up_neighbors[leaf][0]
    print(f"\ncutting spine cable {leaf} <-> {victim} and re-routing ...")
    degraded = fabric.without_cable(leaf, victim)
    routes2 = route_fabric(degraded, n_offsets=4)
    print(f"unreachable pairs after failure: "
          f"{len(routes2.unreachable_pairs())}")
    print(f"re-routed 0 -> 31 (offset 0): {trace(routes2, 0, 31, 0)}")

    n = fabric.n_hosts
    print(f"\navg max permutation load: intact {avg_max_load(routes, n):.3f}, "
          f"degraded {avg_max_load(routes2, n):.3f} "
          f"(graceful: lost 1/4 of one leaf's uplink capacity)")


if __name__ == "__main__":
    main()
