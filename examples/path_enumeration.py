#!/usr/bin/env python
"""Reproduce the paper's Figure 3 / Section 4.2 worked example.

On ``XGFT(3; 4,4,4; 1,4,2)`` the SD pair (0, 63) has 8 shortest paths.
The paper lists them (Path 0..7), computes the d-mod-k path (Path 7),
the shift-1 selection for K=3 (Paths 7, 0, 1) and the disjoint level-2
set (Paths 7, 1, 3, 5).  This script regenerates all of it from the
library's path enumeration.

Run:  python examples/path_enumeration.py
"""

import repro
from repro.routing import build_path, disjoint_order


def main() -> None:
    xgft = repro.XGFT(3, (4, 4, 4), (1, 4, 2))
    src, dst = 0, 63
    n_paths = xgft.num_shortest_paths(src, dst)
    print(f"{xgft}: {n_paths} shortest paths between {src} and {dst}\n")

    print("ALLPATHS enumeration (leftmost top-level switch first):")
    for t in range(n_paths):
        path = build_path(xgft, src, dst, t)
        print(f"  Path {t}: {path.describe(xgft)}")
    print()

    dmodk = repro.make_scheme(xgft, "d-mod-k")
    t0 = dmodk.route(src, dst).indices[0]
    print(f"d-mod-k path: Path {t0} (paper: Path 7)\n")

    shift = repro.make_scheme(xgft, "shift-1:3")
    print(f"shift-1, K=3: Paths {shift.route(src, dst).indices} "
          f"(paper: 7, 0, 1)")

    disjoint = repro.make_scheme(xgft, "disjoint:4")
    print(f"disjoint, K=4: Paths {disjoint.route(src, dst).indices} "
          f"(paper's level-2 disjoint set: 7, 1, 3, 5)")
    print(f"full disjoint order D_3(0): {disjoint_order(xgft, 3)}\n")

    print("Where the disjoint paths fork (level-1 switches differ):")
    for t in disjoint.route(src, dst).indices:
        path = build_path(xgft, src, dst, t)
        level2 = next(idx for lvl, idx in path.nodes if lvl == 2)
        print(f"  Path {t}: level-2 switch {xgft.node_label(2, level2)}, "
              f"top switch {xgft.node_label(3, path.top_switch[1])}")


if __name__ == "__main__":
    main()
