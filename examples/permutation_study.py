#!/usr/bin/env python
"""A Figure-4-style flow-level study on a small fat-tree.

Runs the paper's adaptive permutation-sampling protocol (99 % CI within
1 %) on the 8-port 3-tree and prints average maximum link load versus the
path limit K for all heuristics — the library's headline experiment at
laptop scale.  Expect: graceful decrease with K, disjoint best, optimal
reached at K = 16.

Run:  python examples/permutation_study.py
"""

import repro
from repro.experiments.figure4 import run_panel


def main() -> None:
    xgft = repro.m_port_n_tree(8, 3)
    result = run_panel(
        "b",
        topology=xgft,
        fidelity_name="normal",
        dense_k=True,
        seed=2012,
    )
    print(result.render())
    print(f"\npermutation samples evaluated: {result.samples_used}")

    # Sanity anchors from the theory: UMULTI is optimal (ratio 1) and the
    # heuristics reach it at K = max_paths.
    last = {h: result.series[h][-1] for h in result.series}
    print(f"at K = {xgft.max_paths}, all heuristics coincide with UMULTI: "
          f"{last}")


if __name__ == "__main__":
    main()
