#!/usr/bin/env python
"""Replaying a collective schedule on the flit-level network.

Compiles a shift all-to-all exchange (the schedule the paper's reference
[17] optimizes routing for) into an injection trace and replays the
*identical* trace under three routing schemes — so every difference in
delay is routing, not workload noise.

Run:  python examples/collective_replay.py
"""

import repro
from repro.flit import FlitConfig, FlitSimulator, phased_trace
from repro.traffic import shift_all_to_all


def main() -> None:
    xgft = repro.m_port_n_tree(8, 2)
    cfg = FlitConfig(warmup_cycles=0, measure_cycles=40_000,
                     drain_cycles=10_000)
    trace = phased_trace(
        shift_all_to_all(xgft.n_procs),
        messages_per_phase=1,
        phase_gap=1200,
    )
    print(f"shift all-to-all on {xgft}: {xgft.n_procs - 1} phases, "
          f"{len(trace)} messages\n")

    print(f"{'scheme':12s} {'mean delay':>10s} {'p95':>8s} {'max':>8s} "
          f"{'completed':>9s}")
    for spec in ("d-mod-k", "disjoint:4", "random:4"):
        sim = FlitSimulator(xgft, repro.make_scheme(xgft, spec), cfg)
        res = sim.run_trace(trace)
        print(f"{spec:12s} {res.mean_delay:10.1f} {res.p95_delay:8.1f} "
              f"{res.max_delay:8.0f} "
              f"{res.messages_completed:5d}/{res.messages_measured}")

    print("\nEvery phase of a shift schedule is a permutation that d-mod-k "
          "routes with zero\ncontention (the Zahavi result), so here the "
          "deterministic single path wins and\nmulti-path spreading only adds "
          "collisions.  The paper's heuristics win on the\npatterns d-mod-k "
          "cannot balance — random permutations (Figure 4) and the\n"
          "adversarial pattern (examples/adversarial_dmodk.py).  Routing is "
          "a bet on the\nworkload; limited multi-path hedges it.")


if __name__ == "__main__":
    main()
