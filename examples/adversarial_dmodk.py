#!/usr/bin/env python
"""Theorem 2 in action: the traffic pattern that breaks d-mod-k.

Constructs the paper's adversarial pattern — every node of the first
subtree sends to a destination that is a multiple of ``prod(w)``, so
d-mod-k funnels the whole subtree's egress through one link — and shows
limited multi-path routing dissolving the hotspot as K grows.

Run:  python examples/adversarial_dmodk.py
"""

import repro
from repro.flow import FlowSimulator
from repro.traffic import theorem2_pattern
from repro.traffic.adversarial import suggest_theorem2_topology, theorem2_bound


def main() -> None:
    xgft = suggest_theorem2_topology(h=2, w=4)
    tm = theorem2_pattern(xgft)
    print(f"topology: {xgft}  ({xgft.n_procs} nodes, prod(w) = {xgft.max_paths})")
    print(f"adversarial pattern: {tm.n_pairs} flows, "
          f"sources 0..{tm.src.max()}, destinations {tm.dst.tolist()}")
    print(f"theorem 2 guarantees a d-mod-k performance ratio >= "
          f"{theorem2_bound(xgft):.0f}\n")

    sim = FlowSimulator(xgft)
    print(f"{'scheme':14s} {'max load':>9s} {'optimal':>8s} {'ratio':>6s}  bottleneck")
    for spec in ("d-mod-k", "shift-1:2", "disjoint:2", "disjoint:4", "umulti"):
        scheme = repro.make_scheme(xgft, spec)
        res = sim.evaluate(scheme, tm)
        print(f"{scheme.label:14s} {res.max_load:9.3f} {res.optimal:8.3f} "
              f"{res.ratio:6.2f}  level {res.bottleneck_level()}")

    print("\nd-mod-k concentrates all flows on one up-link; already K = 2 "
          "halves the hotspot,\nand UMULTI spreads it perfectly (Theorem 1).")


if __name__ == "__main__":
    main()
