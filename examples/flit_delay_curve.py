#!/usr/bin/env python
"""A Figure-5-style flit-level delay curve at laptop scale.

Sweeps offered load on the 8-port 2-tree under uniform traffic, printing
mean message delay and throughput per load point for d-mod-k and
disjoint(4) — the virtual cut-through hockey stick, with the multi-path
knee to the right of the single-path knee.

Run:  python examples/flit_delay_curve.py
"""

import repro
from repro.flit import FlitConfig, FlitSimulator, UniformRandom
from repro.util.ascii_chart import AsciiChart


def main() -> None:
    xgft = repro.m_port_n_tree(8, 2)
    cfg = FlitConfig(warmup_cycles=1000, measure_cycles=4000, drain_cycles=6000)
    loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]

    chart = AsciiChart(width=56, height=14)
    for spec in ("d-mod-k", "disjoint:4"):
        sim = FlitSimulator(xgft, repro.make_scheme(xgft, spec), cfg)
        xs, ys = [], []
        print(f"\n{spec} on {xgft}:")
        print(f"  {'load':>5s} {'throughput':>10s} {'mean delay':>10s} "
              f"{'completed':>10s}")
        for load in loads:
            run = sim.run(UniformRandom(load))
            print(f"  {load:5.2f} {run.throughput:10.3f} "
                  f"{run.mean_delay:10.1f} {run.completion_ratio:10.3f}")
            if not run.saturated:
                xs.append(load)
                ys.append(run.mean_delay)
        chart.add_series(spec, xs, ys)

    print("\n" + chart.render(
        title="mean message delay vs offered load (pre-saturation)",
        xlabel="offered load", ylabel="cycles",
    ))


if __name__ == "__main__":
    main()
