"""Shared fixtures: small topologies and scheme factories.

Tests use small XGFT instances (tens to a few hundred nodes) so the whole
suite stays fast; the structures exercised are identical to the paper's
full-size topologies.

Hypothesis profiles: the default (``dev``) profile explores freely; the
``ci`` profile is derandomized with a capped example budget so CI runs
are reproducible and bounded.  CI selects it via ``CI=true`` in the
environment (or ``HYPOTHESIS_PROFILE=ci``).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.topology.variants import k_ary_n_tree, m_port_n_tree
from repro.topology.xgft import XGFT

settings.register_profile(
    "dev", deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci", deadline=None, derandomize=True, max_examples=15,
    print_blob=True, suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE",
                   "ci" if os.environ.get("CI") else "dev")
)


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json from the current implementation "
             "instead of comparing against them (see docs/testing.md)",
    )


@pytest.fixture
def fig3_xgft() -> XGFT:
    """The paper's Figure 3 topology: XGFT(3; 4,4,4; 1,4,2), 64 nodes."""
    return XGFT(3, (4, 4, 4), (1, 4, 2))


@pytest.fixture
def tree8x2() -> XGFT:
    """8-port 2-tree: XGFT(2; 4,8; 1,4), 32 nodes."""
    return m_port_n_tree(8, 2)


@pytest.fixture
def tree8x3() -> XGFT:
    """8-port 3-tree: XGFT(3; 4,4,8; 1,4,4), 128 nodes — the paper's
    flit-level topology."""
    return m_port_n_tree(8, 3)


@pytest.fixture
def kary2x2() -> XGFT:
    """Tiny 2-ary 2-tree (4 nodes) for hand-computable cases."""
    return k_ary_n_tree(2, 2)


@pytest.fixture
def irregular() -> XGFT:
    """An asymmetric XGFT exercising distinct m_i / w_i at every level."""
    return XGFT(3, (3, 2, 4), (1, 2, 3))


# A diverse topology pool for parametrized structural tests.
TOPOLOGY_POOL = [
    XGFT(1, (4,), (1,)),
    XGFT(2, (2, 2), (1, 2)),
    k_ary_n_tree(2, 2),
    k_ary_n_tree(2, 3),
    k_ary_n_tree(3, 2),
    m_port_n_tree(4, 2),
    m_port_n_tree(4, 3),
    m_port_n_tree(8, 2),
    XGFT(3, (4, 4, 4), (1, 4, 2)),
    XGFT(3, (3, 2, 4), (1, 2, 3)),
    XGFT(2, (3, 5), (2, 3)),  # w_1 > 1: multiple host uplinks
]


def pool_ids() -> list[str]:
    return [repr(x) for x in TOPOLOGY_POOL]
