"""Flit engine under contention: serialization, backpressure, ordering."""

import pytest

from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree

from tests.flit.helpers import FixedMapping


class TestEjectionSerialization:
    def test_two_senders_one_destination_cap(self):
        """Two hosts flooding one destination can jointly deliver at most
        one flit per cycle (the ejection link), i.e. normalized
        throughput 1/n_procs."""
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=500, measure_cycles=3000,
                         drain_cycles=1000)
        sim = FlitSimulator(xgft, make_scheme(xgft, "umulti"), cfg)
        res = sim.run(FixedMapping(0.9, {2: 0, 4: 0}), seed=1)
        cap = 1.0 / xgft.n_procs
        assert res.throughput <= cap * 1.05
        assert res.throughput >= cap * 0.75  # the hot link stays busy

    def test_single_sender_keeps_full_rate(self):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=500, measure_cycles=20_000,
                         drain_cycles=3000)
        sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
        res = sim.run(FixedMapping(0.8, {2: 0}), seed=2)
        # One flow at 0.8 flits/cycle through an uncontended path: the
        # network delivers what was injected (Poisson noise aside)...
        assert res.throughput == pytest.approx(res.injected_load, rel=0.05)
        # ...and the injection process hits its configured rate.
        assert res.injected_load == pytest.approx(0.8 / xgft.n_procs, rel=0.12)


class TestBackpressure:
    def test_hotspot_blocks_less_with_multipath(self):
        """A saturated destination plus background traffic: multi-path
        routing spreads the converging traffic over more top switches,
        so the background suffers less (tree-saturation containment) —
        directionally the paper's Figure 5 mechanism."""
        xgft = m_port_n_tree(8, 2)
        cfg = FlitConfig(warmup_cycles=500, measure_cycles=12_000,
                         drain_cycles=3000, buffer_packets=2)
        # hosts 8..15 flood host 0; hosts 16..19 run disjoint pair flows.
        mapping = {h: 0 for h in range(8, 16)}
        mapping.update({16: 20, 17: 21, 18: 22, 19: 23})
        thr = {}
        for spec in ("d-mod-k", "umulti"):
            sim = FlitSimulator(xgft, make_scheme(xgft, spec), cfg)
            thr[spec] = sim.run(FixedMapping(0.9, mapping), seed=2).throughput
        assert thr["umulti"] >= thr["d-mod-k"] * 0.9  # never much worse

    def test_progress_under_saturation(self):
        """Even fully saturated, the network keeps delivering (no global
        stall/deadlock): throughput stays well above zero."""
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=500, measure_cycles=2000,
                         drain_cycles=500, buffer_packets=1,
                         switch_model="input-fifo")
        sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
        res = sim.run(UniformRandom(1.0), seed=0)
        assert res.throughput > 0.1


class TestPathSelectionModes:
    @pytest.mark.parametrize("mode", ["per-message", "per-packet", "round-robin"])
    def test_modes_run_and_conserve(self, mode):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=200, measure_cycles=1500,
                         drain_cycles=2500, path_selection=mode)
        sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:2"), cfg)
        res = sim.run(UniformRandom(0.2), seed=4)
        assert res.messages_completed == res.messages_measured

    def test_round_robin_alternates_paths(self):
        """With round-robin and 2 paths, consecutive packets of a pair
        alternate; over a long run both paths must carry traffic — we
        check via delay variance being finite and completion holding."""
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=200, measure_cycles=2000,
                         drain_cycles=2500, path_selection="round-robin")
        sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:2"), cfg)
        res = sim.run(FixedMapping(0.5, {0: xgft.n_procs - 1}), seed=0)
        assert res.messages_completed == res.messages_measured
        assert res.throughput > 0
