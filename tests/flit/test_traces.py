"""Trace-driven flit runs: exact replay, synthesis, phased schedules."""

import pytest

from repro.errors import SimulationError
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.traces import (
    TraceEntry,
    TraceWorkload,
    phased_trace,
    synthesize_trace,
)
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.collectives import shift_all_to_all


@pytest.fixture
def sim4x2():
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=0, measure_cycles=3000, drain_cycles=3000)
    return FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)


class TestRunTrace:
    def test_single_entry(self, sim4x2):
        res = sim4x2.run_trace([TraceEntry(10, 0, 7)])
        assert res.messages_measured == 1
        assert res.messages_completed == 1
        assert res.mean_delay > 0

    def test_injections_at_exact_cycles(self, sim4x2):
        # Two messages far apart: both measured, independent delays.
        res = sim4x2.run_trace([TraceEntry(10, 0, 7), TraceEntry(1500, 3, 6)])
        assert res.messages_measured == 2
        assert res.messages_completed == 2

    def test_replay_identical_across_seeds_single_path(self, sim4x2):
        # With a single-path scheme the seed has nothing to randomize.
        trace = [TraceEntry(5, 0, 7), TraceEntry(9, 1, 6), TraceEntry(9, 2, 5)]
        a = sim4x2.run_trace(trace, seed=1)
        b = sim4x2.run_trace(trace, seed=2)
        assert a == b

    def test_requires_workload_or_trace(self, sim4x2):
        with pytest.raises(SimulationError):
            sim4x2.run(None)

    def test_trace_workload_guard(self):
        wl = TraceWorkload([TraceEntry(1, 0, 1)])
        with pytest.raises(SimulationError):
            wl.pick_destination(0, 4, None)

    def test_trace_entry_validation(self):
        with pytest.raises(SimulationError):
            TraceWorkload([TraceEntry(1, 2, 2)])


class TestSynthesize:
    def test_matches_live_statistics(self):
        """A synthesized uniform trace replayed through the engine gives
        statistically equivalent rates to the live workload (the RNG
        streams differ, so agreement is distributional, not per-draw)."""
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=500, measure_cycles=12_000,
                         drain_cycles=4000)
        sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
        live = sim.run(UniformRandom(0.3), seed=5)
        trace = synthesize_trace(UniformRandom(0.3), xgft.n_procs,
                                 cfg.message_flits, cfg.end_of_window, seed=5)
        replay = sim.run_trace(trace)
        assert replay.injected_load == pytest.approx(0.3, rel=0.15)
        assert replay.injected_load == pytest.approx(live.injected_load,
                                                     rel=0.15)
        assert replay.throughput == pytest.approx(replay.injected_load,
                                                  rel=0.05)

    def test_same_trace_different_schemes(self):
        """The point of traces: identical arrivals under two schemes."""
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=0, measure_cycles=4000,
                         drain_cycles=4000)
        trace = synthesize_trace(UniformRandom(0.5), xgft.n_procs,
                                 cfg.message_flits, 3000, seed=2)
        results = {}
        for spec in ("d-mod-k", "umulti"):
            sim = FlitSimulator(xgft, make_scheme(xgft, spec), cfg)
            results[spec] = sim.run_trace(trace)
        assert (results["d-mod-k"].messages_measured
                == results["umulti"].messages_measured)


class TestPhased:
    def test_shift_all_to_all_trace(self):
        entries = phased_trace(shift_all_to_all(8), messages_per_phase=1,
                               phase_gap=500)
        assert len(entries) == 7 * 8
        assert entries[0].cycle == 1
        assert entries[-1].cycle == 1 + 6 * 500

    def test_replay_completes(self):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=0, measure_cycles=5000,
                         drain_cycles=5000)
        sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:2"), cfg)
        entries = phased_trace(shift_all_to_all(xgft.n_procs),
                               messages_per_phase=1, phase_gap=600)
        res = sim.run_trace(entries)
        assert res.messages_completed == res.messages_measured \
            == len(entries)

    def test_validation(self):
        with pytest.raises(SimulationError):
            phased_trace(shift_all_to_all(4), messages_per_phase=0,
                         phase_gap=10)
