"""Flit engine: zero-load latency closed forms and determinism.

Under virtual cut-through with no contention the delivery time of a
message is exactly::

    delay = (m - 1) * P  +  (L - 1) * (wire + routing)  +  wire  +  P

for m packets of P flits over L channels: packets serialize on the first
link, headers pipeline with per-hop latency (wire + routing), and the
tail of the last packet lands one link crossing plus one serialization
after its final send starts.  These tests pin the engine to that
arithmetic.
"""

import pytest

from repro.errors import SimulationError
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree

from tests.flit.helpers import OneShot


def expected_delay(cfg: FlitConfig, n_channels: int) -> int:
    return (
        (cfg.packets_per_message - 1) * cfg.packet_flits
        + (n_channels - 1) * (cfg.wire_delay + cfg.routing_delay)
        + cfg.wire_delay
        + cfg.packet_flits
    )


@pytest.mark.parametrize("switch_model", ["output-queued", "input-fifo"])
@pytest.mark.parametrize("packets", [1, 3])
class TestZeroLoadLatency:
    def test_cross_tree_message(self, switch_model, packets):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(
            packet_flits=8, packets_per_message=packets, buffer_packets=2,
            warmup_cycles=0, measure_cycles=2000, drain_cycles=2000,
            switch_model=switch_model,
        )
        sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
        src, dst = 0, xgft.n_procs - 1  # NCA at the top: 4 channels
        res = sim.run(OneShot(src, dst))
        assert res.messages_measured == 1
        assert res.messages_completed == 1
        assert res.mean_delay == expected_delay(cfg, 4)

    def test_same_leaf_message(self, switch_model, packets):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(
            packet_flits=4, packets_per_message=packets,
            warmup_cycles=0, measure_cycles=2000, drain_cycles=2000,
            switch_model=switch_model,
        )
        sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
        res = sim.run(OneShot(0, 1))  # NCA level 1: 2 channels
        assert res.mean_delay == expected_delay(cfg, 2)


class TestLatencyKnobs:
    def test_wire_delay_scales_per_hop(self):
        xgft = m_port_n_tree(4, 2)
        delays = []
        for wire in (1, 3):
            cfg = FlitConfig(packet_flits=8, packets_per_message=1,
                             wire_delay=wire, warmup_cycles=0,
                             measure_cycles=2000, drain_cycles=2000)
            sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
            delays.append(sim.run(OneShot(0, xgft.n_procs - 1)).mean_delay)
        # 4 channels: 3 pipelined hops + the final crossing = 4 wire units.
        assert delays[1] - delays[0] == 2 * 4

    def test_packet_size_dominates_serialization(self):
        xgft = m_port_n_tree(4, 2)
        delays = []
        for pf in (8, 16):
            cfg = FlitConfig(packet_flits=pf, packets_per_message=2,
                             warmup_cycles=0, measure_cycles=2000,
                             drain_cycles=2000)
            sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
            delays.append(sim.run(OneShot(0, xgft.n_procs - 1)).mean_delay)
        assert delays[1] - delays[0] == 2 * 8  # (m-1)*dP + dP


class TestDeterminism:
    def test_same_seed_same_result(self):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=100, measure_cycles=500, drain_cycles=500)
        sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:2"), cfg)
        a = sim.run(UniformRandom(0.3), seed=5)
        b = sim.run(UniformRandom(0.3), seed=5)
        assert a == b

    def test_different_seed_differs(self):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=100, measure_cycles=500, drain_cycles=500)
        sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:2"), cfg)
        a = sim.run(UniformRandom(0.3), seed=5)
        b = sim.run(UniformRandom(0.3), seed=6)
        assert a != b


class TestConstruction:
    def test_rejects_foreign_scheme(self):
        a = m_port_n_tree(4, 2)
        b = m_port_n_tree(8, 2)
        with pytest.raises(SimulationError):
            FlitSimulator(a, make_scheme(b, "d-mod-k"), FlitConfig())

    def test_routes_cover_all_pairs(self):
        xgft = m_port_n_tree(4, 2)
        sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), FlitConfig())
        n = xgft.n_procs
        assert len(sim.routes) == n * (n - 1)
