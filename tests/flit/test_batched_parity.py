"""Differential suite: the batched engine vs the reference oracle.

The batched engine's contract is *bit-identical* results — every
``FlitRunResult`` field equal (NaN-tolerant for the no-traffic
statistics) across scheme families, tree shapes, switch models, VC
counts, path-selection modes, traces, degraded fabrics and telemetry.
Each case runs twice via the ``kernel`` fixture: once with the
compiled C kernel allowed (skipped when no compiler is present) and
once forced onto the pure-python kernels, so the fallback path is a
first-class citizen of the parity contract.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.faults import DegradedScheme, FaultSpec
from repro.flit import (
    BatchedFlitSimulator,
    ENGINES,
    FixedPermutation,
    FlitConfig,
    FlitSimulator,
    HotspotWorkload,
    UniformRandom,
    flit_engine_class,
    make_flit_simulator,
)
from repro.flit import native
from repro.flit.traces import synthesize_trace
from repro.obs.recorder import Recorder
from repro.routing import make_scheme
from repro.topology import XGFT, m_port_n_tree


@pytest.fixture(params=["native", "python"])
def kernel(request, monkeypatch):
    """Run the test body once per batched-engine backend."""
    if request.param == "python":
        # Pretend the load already failed: available() returns False and
        # the batched engine stays on the pure-python kernels.
        monkeypatch.setattr(native, "_lib", None)
        monkeypatch.setattr(native, "_load_attempted", True)
    elif not native.available():
        pytest.skip("no C compiler available for the native kernel")
    return request.param


def assert_bit_identical(a, b):
    """Field-by-field equality, treating NaN == NaN as equal."""
    for f in a.__dataclass_fields__:
        va, vb = getattr(a, f), getattr(b, f)
        if isinstance(va, float) and math.isnan(va):
            assert isinstance(vb, float) and math.isnan(vb), (f, va, vb)
        else:
            assert va == vb, (f, va, vb)


def both(xgft, spec, config, **kwargs):
    scheme = make_scheme(xgft, spec)
    return (FlitSimulator(xgft, scheme, config, **kwargs),
            BatchedFlitSimulator(xgft, scheme, config, **kwargs))


TREES = {
    "4x2": lambda: m_port_n_tree(4, 2),
    "xgft-3;2,2,2": lambda: XGFT(3, (2, 2, 2), (1, 2, 2)),
}


@pytest.mark.parametrize("tree", sorted(TREES))
@pytest.mark.parametrize("spec", ["d-mod-k", "disjoint:2", "random:2",
                                  "shift-1:2"])
@pytest.mark.parametrize("model", ["output-queued", "input-fifo"])
@pytest.mark.parametrize("vcs", [1, 2])
def test_grid_parity(kernel, tree, spec, model, vcs):
    xgft = TREES[tree]()
    cfg = FlitConfig(warmup_cycles=150, measure_cycles=500,
                     drain_cycles=700, switch_model=model,
                     virtual_channels=vcs, seed=77)
    ref, bat = both(xgft, spec, cfg)
    workload = UniformRandom(0.7)
    assert_bit_identical(ref.run(workload), bat.run(workload))


@pytest.mark.parametrize("selection", ["per-packet", "per-message",
                                       "round-robin"])
def test_path_selection_parity(kernel, selection):
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=150, measure_cycles=500,
                     drain_cycles=700, path_selection=selection, seed=77)
    ref, bat = both(xgft, "disjoint:2", cfg)
    workload = UniformRandom(0.6)
    assert_bit_identical(ref.run(workload), bat.run(workload))


@pytest.mark.parametrize("model", ["output-queued", "input-fifo"])
def test_trace_parity(kernel, model):
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=100, measure_cycles=400,
                     drain_cycles=600, switch_model=model, seed=5)
    trace = synthesize_trace(UniformRandom(0.5), xgft.n_procs,
                             cfg.message_flits, cfg.end_of_window, seed=9)
    ref, bat = both(xgft, "d-mod-k", cfg)
    assert_bit_identical(ref.run_trace(trace), bat.run_trace(trace))


def test_zero_delay_parity(kernel):
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=100, measure_cycles=300,
                     drain_cycles=500, wire_delay=0, routing_delay=0, seed=3)
    ref, bat = both(xgft, "disjoint:2", cfg)
    workload = UniformRandom(0.6)
    assert_bit_identical(ref.run(workload), bat.run(workload))


def test_degraded_parity(kernel):
    xgft = m_port_n_tree(8, 2)
    fabric = None
    for attempt in range(50):
        candidate = FaultSpec(link_rate=0.15, seed=attempt).sample(xgft)
        if candidate.is_connected and not candidate.is_pristine:
            fabric = candidate
            break
    assert fabric is not None
    cfg = FlitConfig(warmup_cycles=150, measure_cycles=400,
                     drain_cycles=600, seed=11)
    scheme = DegradedScheme(make_scheme(xgft, "umulti"), fabric)
    ref = FlitSimulator(xgft, scheme, cfg, degraded=fabric)
    bat = BatchedFlitSimulator(xgft, scheme, cfg, degraded=fabric)
    workload = UniformRandom(0.4)
    assert_bit_identical(ref.run(workload), bat.run(workload))


@pytest.mark.parametrize("model", ["output-queued", "input-fifo"])
def test_recorder_parity(model):
    """With telemetry on, counters, events and histograms must match
    too (the batched engine flushes intervals per bucket, the reference
    per event — same cycles, same values)."""
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=100, measure_cycles=400,
                     drain_cycles=600, switch_model=model,
                     obs_interval=50, seed=21)
    ref, bat = both(xgft, "random:2", cfg)
    r_ref, r_bat = Recorder(), Recorder()
    a = ref.run(UniformRandom(0.7), recorder=r_ref)
    b = bat.run(UniformRandom(0.7), recorder=r_bat)
    assert_bit_identical(a, b)
    assert r_ref.counters == r_bat.counters
    assert r_ref.events == r_bat.events
    assert ({k: h.to_dict() for k, h in r_ref.hists.items()}
            == {k: h.to_dict() for k, h in r_bat.hists.items()})


def test_workload_family_parity(kernel):
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=100, measure_cycles=400,
                     drain_cycles=600, seed=31)
    for workload in (HotspotWorkload(0.5, (0, 1), hot_fraction=0.2),
                     FixedPermutation(0.5, [(i + 5) % 8 for i in range(8)])):
        ref, bat = both(xgft, "d-mod-k", cfg)
        assert_bit_identical(ref.run(workload), bat.run(workload))


def test_empty_trace_and_tiny_load(kernel):
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=50, measure_cycles=100,
                     drain_cycles=150, seed=1)
    ref, bat = both(xgft, "d-mod-k", cfg)
    assert_bit_identical(ref.run_trace([]), bat.run_trace([]))
    assert_bit_identical(ref.run(UniformRandom(0.0005)),
                         bat.run(UniformRandom(0.0005)))


def test_sixteen_port_smoke(kernel):
    """CI smoke point: a 16-port tree (128 hosts) end to end."""
    xgft = m_port_n_tree(16, 2)
    cfg = FlitConfig(warmup_cycles=100, measure_cycles=400,
                     drain_cycles=500, seed=7)
    ref, bat = both(xgft, "disjoint:4", cfg)
    workload = UniformRandom(0.4)
    a, b = ref.run(workload), bat.run(workload)
    assert_bit_identical(a, b)
    assert a.messages_completed > 0
    assert a.throughput > 0


@pytest.mark.parametrize("load", [0.3, 0.5])
def test_injection_rate_unbiased(kernel, load):
    """Regression for the per-draw truncation bias: with 2-flit
    messages the old ``int(gap) + 1`` per draw injected ~11 % below the
    offered load; the float-accumulated clock stays within ~2 %."""
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=500, measure_cycles=6000,
                     drain_cycles=1000, packet_flits=2,
                     packets_per_message=1, seed=13)
    ref, bat = both(xgft, "d-mod-k", cfg)
    workload = UniformRandom(load)
    a, b = ref.run(workload), bat.run(workload)
    assert_bit_identical(a, b)
    assert abs(a.injected_load - load) / load < 0.05


def test_engine_selector():
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=50, measure_cycles=100, drain_cycles=150)
    scheme = make_scheme(xgft, "d-mod-k")
    assert ENGINES == ("reference", "batched")
    assert flit_engine_class("reference") is FlitSimulator
    assert flit_engine_class("batched") is BatchedFlitSimulator
    sim = make_flit_simulator("batched", xgft, scheme, cfg)
    assert type(sim) is BatchedFlitSimulator
    sim = make_flit_simulator("reference", xgft, scheme, cfg)
    assert type(sim) is FlitSimulator
    with pytest.raises(SimulationError, match="unknown flit engine"):
        flit_engine_class("turbo")
    with pytest.raises(SimulationError, match="turbo"):
        make_flit_simulator("turbo", xgft, scheme, cfg)


def test_dense_horizon_fallback(monkeypatch):
    """Past the calendar-size limit the batched engine must transparently
    fall back to the reference implementation (still exact)."""
    from repro.flit import batched

    monkeypatch.setattr(batched, "_DENSE_HORIZON_LIMIT", 100)
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=100, measure_cycles=300,
                     drain_cycles=400, seed=19)
    ref, bat = both(xgft, "disjoint:2", cfg)
    workload = UniformRandom(0.5)
    assert_bit_identical(ref.run(workload), bat.run(workload))
