"""Edge cases of the engine's small data structures.

``_Fifo`` and ``free_vc`` sit on the hot path of both engines; their
corner behaviour (empty queues, exhausted credit lanes) is what the
stall accounting and the batched engine's specialized kernels rely on.
"""

import pytest

from repro.flit.engine import _Fifo, free_vc


class TestFifo:
    def test_fifo_order(self):
        q = _Fifo()
        for i in range(5):
            q.push(i)
        assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_tracks_head(self):
        q = _Fifo()
        assert len(q) == 0
        q.push("a")
        q.push("b")
        assert len(q) == 2
        q.pop()
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            _Fifo().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            _Fifo().peek()

    def test_pop_past_end_raises(self):
        q = _Fifo()
        q.push(1)
        q.pop()
        with pytest.raises(IndexError):
            q.pop()

    def test_peek_does_not_consume(self):
        q = _Fifo()
        q.push("x")
        assert q.peek() == "x"
        assert q.peek() == "x"
        assert len(q) == 1
        assert q.pop() == "x"

    def test_compaction_preserves_order(self):
        # Push enough and pop past the compaction threshold (head > 64
        # and more than half consumed) so the trim branch runs.
        q = _Fifo()
        for i in range(100):
            q.push(i)
        got = [q.pop() for _ in range(80)]
        assert got == list(range(80))
        assert q.head < 80 and len(q) == 20  # trim branch ran
        q.push(100)
        assert [q.pop() for _ in range(21)] == list(range(80, 101))


class TestFreeVc:
    def test_prefers_lane_zero(self):
        credits = [2, 1]  # channel 0, 2 VCs, both stocked
        assert free_vc(credits, 0, 2) == 0

    def test_falls_through_to_next_lane(self):
        credits = [0, 1]
        assert free_vc(credits, 0, 2) == 1

    def test_all_lanes_exhausted(self):
        assert free_vc([0, 0, 0], 0, 3) == -1

    def test_single_vc(self):
        # 1 VC: the sub-channel index equals the channel index — the
        # identity the batched engine's 1-VC kernel specializes on.
        credits = [0, 3]
        assert free_vc(credits, 0, 1) == -1
        assert free_vc(credits, 1, 1) == 1

    def test_indexes_relative_to_channel_base(self):
        # channel 1 of 2, 2 VCs: lanes live at credits[2:4]
        credits = [0, 0, 0, 5]
        assert free_vc(credits, 1, 2) == 3
        credits[2] = 1
        assert free_vc(credits, 1, 2) == 2
