"""Load sweeps, saturation detection, run merging."""

import math

import pytest

from repro.flit.config import FlitConfig
from repro.flit.stats import FlitRunResult, delay_stats
from repro.flit.sweep import SweepResult, _merge_runs, default_loads, load_sweep
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree


def _mk_run(load, thr, delay, measured=10, completed=10):
    return FlitRunResult(
        offered_load=load, injected_load=load, throughput=thr,
        mean_delay=delay, p95_delay=delay, max_delay=delay,
        messages_measured=measured, messages_completed=completed,
        sim_cycles=1000, events=100,
    )


class TestDefaultLoads:
    def test_spacing(self):
        assert default_loads(0.25) == (0.25, 0.5, 0.75, 1.0)

    def test_max_load(self):
        loads = default_loads(0.2, max_load=0.6)
        assert loads == (0.2, 0.4, 0.6)


class TestSweepResult:
    def test_max_throughput_and_saturation(self):
        runs = (
            _mk_run(0.2, 0.2, 50.0),
            _mk_run(0.4, 0.4, 80.0),
            _mk_run(0.6, 0.45, 400.0),  # saturated: thr < 0.92 * offered
        )
        sweep = SweepResult("x", runs)
        assert sweep.max_throughput == 0.45
        assert sweep.saturation_load() == 0.6
        assert sweep.loads == (0.2, 0.4, 0.6)
        assert sweep.delays == (50.0, 80.0, 400.0)

    def test_never_saturates_returns_last(self):
        sweep = SweepResult("x", (_mk_run(0.2, 0.2, 10.0),))
        assert sweep.saturation_load() == 0.2

    def test_empty(self):
        assert SweepResult("x", ()).max_throughput == 0.0


class TestMergeRuns:
    def test_single_passthrough(self):
        run = _mk_run(0.2, 0.2, 50.0)
        assert _merge_runs([run]) is run

    def test_averages_and_sums(self):
        merged = _merge_runs([_mk_run(0.2, 0.2, 40.0), _mk_run(0.2, 0.3, 60.0)])
        assert merged.throughput == pytest.approx(0.25)
        assert merged.mean_delay == pytest.approx(50.0)
        assert merged.messages_measured == 20

    def test_nan_delays_dropped(self):
        merged = _merge_runs([_mk_run(0.2, 0.2, float("nan")),
                              _mk_run(0.2, 0.2, 60.0)])
        assert merged.mean_delay == pytest.approx(60.0)

    def test_max_delay_ignores_nan_in_any_position(self):
        # Python's max() is order-sensitive around NaN; the merge must
        # not be: a saturated (NaN) repeat never masks a finite maximum.
        nan = float("nan")
        first = _merge_runs([_mk_run(0.2, 0.2, nan), _mk_run(0.2, 0.2, 60.0)])
        last = _merge_runs([_mk_run(0.2, 0.2, 60.0), _mk_run(0.2, 0.2, nan)])
        middle = _merge_runs([_mk_run(0.2, 0.2, 40.0), _mk_run(0.2, 0.2, nan),
                              _mk_run(0.2, 0.2, 60.0)])
        assert first.max_delay == 60.0
        assert last.max_delay == 60.0
        assert middle.max_delay == 60.0

    def test_max_delay_nan_only_when_all_nan(self):
        nan = float("nan")
        merged = _merge_runs([_mk_run(0.2, 0.2, nan), _mk_run(0.2, 0.2, nan)])
        assert math.isnan(merged.max_delay)


class TestLoadSweep:
    def test_small_sweep_monotone_prefix(self):
        """Below saturation, throughput tracks offered load."""
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=200, measure_cycles=1200,
                         drain_cycles=1200)
        sweep = load_sweep(xgft, make_scheme(xgft, "d-mod-k"), cfg,
                           loads=(0.1, 0.3))
        assert sweep.scheme_label == "d-mod-k"
        assert sweep.throughputs[0] == pytest.approx(0.1, rel=0.3)
        assert sweep.throughputs[1] > sweep.throughputs[0]

    def test_repeats_average(self):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(warmup_cycles=100, measure_cycles=600,
                         drain_cycles=600)
        sweep = load_sweep(xgft, make_scheme(xgft, "d-mod-k"), cfg,
                           loads=(0.2,), repeats=2)
        assert sweep.runs[0].messages_measured > 0


class TestDelayStats:
    def test_empty(self):
        mean, p95, mx = delay_stats([])
        assert math.isnan(mean) and math.isnan(p95) and math.isnan(mx)

    def test_values(self):
        mean, p95, mx = delay_stats([10, 20, 30])
        assert mean == 20.0 and mx == 30.0 and 28.0 <= p95 <= 30.0
