"""Test workloads for the flit engine: deterministic injection patterns."""

from __future__ import annotations

import random

from repro.flit.workload import Workload


class OneShot(Workload):
    """Inject exactly one message from ``src`` to ``dst`` at the first
    injection event; all other hosts (and later events) stay silent."""

    name = "one-shot"

    def __init__(self, src: int, dst: int, load: float = 0.9):
        # High nominal load => the first injection event fires within a
        # few cycles; only one message is ever created regardless.
        super().__init__(load)
        self.src = src
        self.dst = dst
        self._fired = False

    def pick_destination(self, src: int, n_procs: int, rng: random.Random) -> int:
        if src == self.src and not self._fired:
            self._fired = True
            return self.dst
        return -1


class FixedMapping(Workload):
    """Every host with an entry in ``mapping`` sends Poisson messages to
    its fixed destination; others stay silent.  Unlike a permutation,
    many senders may share a destination (for contention tests)."""

    name = "fixed-mapping"

    def __init__(self, load: float, mapping: dict[int, int]):
        super().__init__(load)
        self.mapping = dict(mapping)

    def pick_destination(self, src: int, n_procs: int, rng: random.Random) -> int:
        return self.mapping.get(src, -1)
