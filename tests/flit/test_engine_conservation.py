"""Flit engine conservation: nothing lost, nothing invented."""

import pytest

from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree


@pytest.mark.parametrize("switch_model", ["output-queued", "input-fifo"])
@pytest.mark.parametrize("spec", ["d-mod-k", "disjoint:2", "random:4"])
def test_low_load_everything_delivered(switch_model, spec):
    """Below saturation with ample drain time, every measured message
    completes and delivered rate tracks injected rate."""
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=200, measure_cycles=2000, drain_cycles=3000,
                     switch_model=switch_model)
    sim = FlitSimulator(xgft, make_scheme(xgft, spec), cfg)
    res = sim.run(UniformRandom(0.2), seed=1)
    assert res.messages_measured > 0
    assert res.messages_completed == res.messages_measured
    assert res.injected_load == pytest.approx(0.2, rel=0.25)
    # Delivered flits can exceed window-created flits slightly (warmup
    # stragglers deliver inside the window) but must be close.
    assert res.throughput == pytest.approx(res.injected_load, rel=0.15)


def test_overload_reports_incomplete_messages():
    """Far beyond saturation with a short drain, some measured messages
    cannot complete and the result says so instead of hiding it."""
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=200, measure_cycles=2000, drain_cycles=100)
    sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
    res = sim.run(UniformRandom(1.0), seed=0)
    assert res.messages_completed < res.messages_measured
    assert res.completion_ratio < 1.0
    assert res.saturated


def test_throughput_never_exceeds_capacity():
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=200, measure_cycles=1500, drain_cycles=1500)
    sim = FlitSimulator(xgft, make_scheme(xgft, "umulti"), cfg)
    for load in (0.5, 1.0):
        res = sim.run(UniformRandom(load), seed=2)
        assert res.throughput <= 1.0 + 1e-9


def test_tiny_buffer_still_conserves():
    """buffer_packets=1 exercises maximal backpressure; conservation and
    termination must survive."""
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(buffer_packets=1, warmup_cycles=200, measure_cycles=1500,
                     drain_cycles=4000)
    sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:2"), cfg)
    res = sim.run(UniformRandom(0.15), seed=3)
    assert res.messages_completed == res.messages_measured


def test_zero_measured_window_is_safe():
    xgft = m_port_n_tree(4, 2)
    cfg = FlitConfig(warmup_cycles=0, measure_cycles=0, drain_cycles=50)
    sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
    res = sim.run(UniformRandom(0.5), seed=0)
    assert res.messages_measured == 0
    assert res.throughput == 0.0
