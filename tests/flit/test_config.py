"""FlitConfig validation and derived quantities."""

import pytest

from repro.errors import SimulationError
from repro.flit.config import FlitConfig


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("packet_flits", 0),
            ("packets_per_message", 0),
            ("buffer_packets", 0),
            ("wire_delay", -1),
            ("routing_delay", -1),
            ("warmup_cycles", -1),
            ("measure_cycles", -1),
            ("drain_cycles", -1),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(SimulationError):
            FlitConfig(**{field: value})

    def test_rejects_bad_path_selection(self):
        with pytest.raises(SimulationError):
            FlitConfig(path_selection="telepathy")

    def test_rejects_bad_switch_model(self):
        with pytest.raises(SimulationError):
            FlitConfig(switch_model="magic")


class TestDerived:
    def test_message_flits(self):
        cfg = FlitConfig(packet_flits=16, packets_per_message=4)
        assert cfg.message_flits == 64

    def test_windows(self):
        cfg = FlitConfig(warmup_cycles=100, measure_cycles=200, drain_cycles=300)
        assert cfg.end_of_window == 300
        assert cfg.horizon == 600

    def test_scaled_override(self):
        cfg = FlitConfig().scaled(packet_flits=32)
        assert cfg.packet_flits == 32
        with pytest.raises(SimulationError):
            FlitConfig().scaled(packet_flits=0)
