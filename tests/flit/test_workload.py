"""Workload model tests."""

import random

import pytest

from repro.errors import SimulationError
from repro.flit.workload import FixedPermutation, HotspotWorkload, UniformRandom


class TestLoadValidation:
    def test_rejects_out_of_range(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(SimulationError):
                UniformRandom(bad)

    def test_mean_interarrival(self):
        wl = UniformRandom(0.5)
        assert wl.mean_interarrival(64) == 128.0


class TestUniformRandom:
    def test_never_self(self):
        wl = UniformRandom(0.5)
        rng = random.Random(0)
        for _ in range(500):
            assert wl.pick_destination(3, 8, rng) != 3

    def test_covers_all_other_nodes(self):
        wl = UniformRandom(0.5)
        rng = random.Random(1)
        seen = {wl.pick_destination(0, 8, rng) for _ in range(500)}
        assert seen == set(range(1, 8))


class TestFixedPermutation:
    def test_fixed_destination(self):
        wl = FixedPermutation(0.5, [2, 0, 1])
        rng = random.Random(0)
        assert wl.pick_destination(0, 3, rng) == 2

    def test_fixed_point_silent(self):
        wl = FixedPermutation(0.5, [0, 2, 1])
        rng = random.Random(0)
        assert wl.pick_destination(0, 3, rng) == -1

    def test_rejects_non_permutation(self):
        with pytest.raises(SimulationError):
            FixedPermutation(0.5, [0, 0, 1])

    def test_size_mismatch_detected_on_use(self):
        wl = FixedPermutation(0.5, [1, 0])
        with pytest.raises(SimulationError):
            wl.pick_destination(0, 3, random.Random(0))


class TestHotspot:
    def test_hot_bias(self):
        wl = HotspotWorkload(0.5, [0], hot_fraction=0.5)
        rng = random.Random(0)
        picks = [wl.pick_destination(5, 16, rng) for _ in range(2000)]
        share = picks.count(0) / len(picks)
        assert share > 0.4  # ~0.5 hot + background share

    def test_never_self_even_when_hot(self):
        wl = HotspotWorkload(0.5, [3], hot_fraction=1.0)
        rng = random.Random(0)
        for _ in range(200):
            assert wl.pick_destination(3, 8, rng) != 3

    def test_validation(self):
        with pytest.raises(SimulationError):
            HotspotWorkload(0.5, [])
        with pytest.raises(SimulationError):
            HotspotWorkload(0.5, [0], hot_fraction=2.0)
