"""FlitRunResult semantics."""

import pytest

from repro.flit.stats import FlitRunResult


def _result(**overrides):
    base = dict(
        offered_load=0.5, injected_load=0.5, throughput=0.5,
        mean_delay=100.0, p95_delay=150.0, max_delay=200.0,
        messages_measured=100, messages_completed=100,
        sim_cycles=10_000, events=50_000,
    )
    base.update(overrides)
    return FlitRunResult(**base)


class TestSaturation:
    def test_healthy_run_not_saturated(self):
        assert not _result().saturated

    def test_throughput_shortfall_flags(self):
        assert _result(throughput=0.4).saturated

    def test_incomplete_messages_flag(self):
        assert _result(messages_completed=90).saturated

    def test_boundary(self):
        # Exactly 92% delivered of offered: not saturated (>= threshold).
        assert not _result(throughput=0.5 * 0.92).saturated


class TestCompletionRatio:
    def test_ratio(self):
        assert _result(messages_completed=80).completion_ratio == 0.8

    def test_zero_measured_is_one(self):
        r = _result(messages_measured=0, messages_completed=0)
        assert r.completion_ratio == 1.0


class TestSummary:
    def test_contains_key_numbers(self):
        text = _result().summary()
        assert "load=0.50" in text
        assert "thr=0.500" in text
        assert "100/100" in text
