"""Property-based flit-engine tests: invariants under random configs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree

_XGFT = m_port_n_tree(4, 2)
_SIM_CACHE: dict = {}


def _sim(spec: str, cfg: FlitConfig) -> FlitSimulator:
    key = (spec, cfg)
    if key not in _SIM_CACHE:
        _SIM_CACHE[key] = FlitSimulator(_XGFT, make_scheme(_XGFT, spec), cfg)
    return _SIM_CACHE[key]


@settings(max_examples=12, deadline=None)
@given(
    spec=st.sampled_from(["d-mod-k", "disjoint:2", "random:4"]),
    packet_flits=st.sampled_from([4, 8, 16]),
    packets=st.sampled_from([1, 2, 4]),
    buffers=st.sampled_from([1, 2, 4]),
    vcs=st.sampled_from([1, 2]),
    model=st.sampled_from(["input-fifo", "output-queued"]),
    selection=st.sampled_from(["per-packet", "per-message"]),
    seed=st.integers(0, 100),
)
def test_low_load_conservation_universal(spec, packet_flits, packets,
                                         buffers, vcs, model, selection,
                                         seed):
    """At low load with ample drain, every measured message completes,
    whatever the configuration — no packet is ever lost or stuck."""
    cfg = FlitConfig(
        packet_flits=packet_flits, packets_per_message=packets,
        buffer_packets=buffers, virtual_channels=vcs, switch_model=model,
        path_selection=selection, warmup_cycles=100, measure_cycles=800,
        drain_cycles=4000,
    )
    res = _sim(spec, cfg).run(UniformRandom(0.15), seed=seed)
    assert res.messages_completed == res.messages_measured
    assert res.throughput <= 1.0 + 1e-9


@settings(max_examples=8, deadline=None)
@given(
    load=st.sampled_from([0.3, 0.6, 1.0]),
    buffers=st.sampled_from([1, 2]),
    seed=st.integers(0, 20),
)
def test_progress_universal(load, buffers, seed):
    """Even at saturation with minimal buffering, the network makes
    progress (no deadlock: up*/down* routing with credits)."""
    cfg = FlitConfig(buffer_packets=buffers, warmup_cycles=200,
                     measure_cycles=1200, drain_cycles=500,
                     switch_model="input-fifo")
    res = _sim("d-mod-k", cfg).run(UniformRandom(load), seed=seed)
    assert res.throughput > 0.05
