"""Round-robin path selection state and ``from_tables`` validation.

Round-robin rotation is observed from the outside: on a hand-built
channel graph with one short path A = (0,) and one long path B = (1, 2),
each message's delay reveals which path(s) its packets took, so traces
of 1, 2 and 3 well-separated messages pin down the rotation order and
the modular carry of ``rr_state`` across messages.
"""

import pytest

from repro.errors import SimulationError
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.traces import TraceEntry

#: pair key 0 -> 1 on a 2-host graph
PAIR = 0 * 2 + 1

SHORT = (0,)          # path A: one channel
LONG = (1, 2)         # path B: two channels (strictly slower)


def _sim(paths, *, packets_per_message=1, path_selection="round-robin"):
    routes = {PAIR: list(paths), 1 * 2 + 0: [(0,)]}
    cfg = FlitConfig(
        packet_flits=4, packets_per_message=packets_per_message,
        wire_delay=1, routing_delay=1,
        warmup_cycles=0, measure_cycles=10_000, drain_cycles=10_000,
        path_selection=path_selection,
    )
    return FlitSimulator.from_tables(2, 3, routes, cfg)


def _trace(n, gap=500):
    return [TraceEntry(10 + i * gap, 0, 1) for i in range(n)]


def _delay(sim, n_messages):
    result = sim.run_trace(_trace(n_messages))
    assert result.messages_completed == n_messages
    return result


class TestRoundRobinRotation:
    """packets_per_message = 1: message i rides paths[i % len(paths)]."""

    def test_rotates_through_paths_across_messages(self):
        d_short = _delay(_sim([SHORT, LONG]), 1).mean_delay
        d_long = _delay(_sim([LONG, SHORT]), 1).mean_delay
        assert d_long > d_short  # the graph distinguishes the paths

        two = _delay(_sim([SHORT, LONG]), 2)
        assert two.mean_delay == pytest.approx((d_short + d_long) / 2)
        assert two.max_delay == d_long

        three = _delay(_sim([SHORT, LONG]), 3)  # third wraps back to A
        assert three.mean_delay == pytest.approx((2 * d_short + d_long) / 3)

    def test_single_path_degenerates_to_constant(self):
        result = _delay(_sim([SHORT]), 3)
        assert result.max_delay == result.mean_delay


class TestRoundRobinWrap:
    """packets_per_message > len(paths): the packet index wraps within a
    message and the carry ``(base + ppm) % len(paths)`` offsets the next
    message."""

    def test_state_carries_across_messages(self):
        # ppm=3 over 2 paths: message 1 stripes (A,B,A), leaving base=1,
        # so message 2 stripes (B,A,B) — exactly what a fresh simulator
        # with the route order reversed produces for its first message.
        fwd = _delay(_sim([SHORT, LONG], packets_per_message=3), 1).mean_delay
        rev = _delay(_sim([LONG, SHORT], packets_per_message=3), 1).mean_delay
        assert rev > fwd  # (B,A,B) carries more long-path packets

        two = _delay(_sim([SHORT, LONG], packets_per_message=3), 2)
        assert two.mean_delay == pytest.approx((fwd + rev) / 2)
        assert two.max_delay == rev
        # Were rr_state reset per message, both messages would stripe
        # (A,B,A) and the mean would collapse to `fwd`.
        assert two.mean_delay != pytest.approx(fwd)

    def test_full_cycle_realigns(self):
        # ppm=4 over 2 paths: every message stripes (A,B,A,B) and the
        # carry (0+4) % 2 == 0 realigns, so all messages are identical.
        result = _delay(_sim([SHORT, LONG], packets_per_message=4), 3)
        assert result.max_delay == result.mean_delay


class TestPerMessageParityAtK1:
    def test_identical_results_with_single_path_routes(self):
        # With one path per pair both modes pick paths[0] every time;
        # traces remove workload randomness, so the runs must agree bit
        # for bit (per-message's rng.randrange(1) consumes entropy but
        # cannot change anything).
        trace = [TraceEntry(10 + 40 * i, i % 2, (i + 1) % 2)
                 for i in range(12)]
        runs = {
            mode: _sim([SHORT], packets_per_message=2, path_selection=mode)
            .run_trace(trace)
            for mode in ("per-message", "round-robin")
        }
        assert runs["per-message"] == runs["round-robin"]


class TestFromTablesValidation:
    def _cfg(self):
        return FlitConfig(warmup_cycles=0, measure_cycles=100,
                          drain_cycles=100)

    def test_accepts_valid_table(self):
        sim = FlitSimulator.from_tables(2, 3, {PAIR: [SHORT, LONG]},
                                        self._cfg())
        assert sim.run_trace(_trace(1)).messages_completed == 1

    def test_rejects_negative_key(self):
        with pytest.raises(SimulationError, match="pair key -1"):
            FlitSimulator.from_tables(2, 3, {-1: [SHORT]}, self._cfg())

    def test_rejects_key_beyond_pair_space(self):
        with pytest.raises(SimulationError, match=r"pair key 4 outside"):
            FlitSimulator.from_tables(2, 3, {4: [SHORT]}, self._cfg())

    def test_rejects_empty_path_list(self):
        with pytest.raises(SimulationError, match="no paths"):
            FlitSimulator.from_tables(2, 3, {PAIR: []}, self._cfg())

    def test_rejects_channel_out_of_range(self):
        with pytest.raises(SimulationError, match=r"channel 3 outside"):
            FlitSimulator.from_tables(2, 3, {PAIR: [(0, 3)]}, self._cfg())

    def test_rejects_negative_channel(self):
        with pytest.raises(SimulationError, match=r"channel -2 outside"):
            FlitSimulator.from_tables(2, 3, {PAIR: [(-2,)]}, self._cfg())

    def test_rejects_empty_dimensions(self):
        with pytest.raises(SimulationError, match="at least one"):
            FlitSimulator.from_tables(0, 3, {}, self._cfg())
        with pytest.raises(SimulationError, match="at least one"):
            FlitSimulator.from_tables(2, 0, {}, self._cfg())
