"""Virtual-channel support in the flit engine."""

import pytest

from repro.errors import SimulationError
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree

from tests.flit.helpers import OneShot


class TestConfig:
    def test_rejects_zero_vcs(self):
        with pytest.raises(SimulationError):
            FlitConfig(virtual_channels=0)

    def test_default_single_vc(self):
        assert FlitConfig().virtual_channels == 1


@pytest.mark.parametrize("switch_model", ["input-fifo", "output-queued"])
class TestSemantics:
    def test_zero_load_latency_unchanged(self, switch_model):
        """Extra VCs must not change uncontended latency."""
        xgft = m_port_n_tree(4, 2)
        delays = []
        for vcs in (1, 4):
            cfg = FlitConfig(packet_flits=8, packets_per_message=2,
                             virtual_channels=vcs, warmup_cycles=0,
                             measure_cycles=2000, drain_cycles=2000,
                             switch_model=switch_model)
            sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
            delays.append(sim.run(OneShot(0, xgft.n_procs - 1)).mean_delay)
        assert delays[0] == delays[1]

    def test_conservation_with_vcs(self, switch_model):
        xgft = m_port_n_tree(4, 2)
        cfg = FlitConfig(virtual_channels=3, buffer_packets=1,
                         warmup_cycles=200, measure_cycles=1500,
                         drain_cycles=3000, switch_model=switch_model)
        sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:2"), cfg)
        res = sim.run(UniformRandom(0.2), seed=2)
        assert res.messages_completed == res.messages_measured


class TestHoLRelief:
    def test_vcs_raise_input_fifo_throughput(self):
        """More VCs must relieve head-of-line blocking in the
        input-FIFO model (the classic VC result)."""
        xgft = m_port_n_tree(4, 3)
        thr = {}
        for vcs in (1, 4):
            cfg = FlitConfig(switch_model="input-fifo", buffer_packets=2,
                             virtual_channels=vcs, warmup_cycles=400,
                             measure_cycles=2000, drain_cycles=2000)
            sim = FlitSimulator(xgft, make_scheme(xgft, "disjoint:4"), cfg)
            thr[vcs] = max(sim.run(UniformRandom(load), seed=3).throughput
                           for load in (0.6, 0.9))
        assert thr[4] > thr[1] * 1.15
