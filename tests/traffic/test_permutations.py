"""Permutation traffic generators."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic.permutations import (
    derangement,
    permutation_matrix,
    random_permutation,
    sample_permutations,
)


class TestRandomPermutation:
    def test_is_permutation(self):
        perm = random_permutation(100, seed=0)
        assert sorted(perm.tolist()) == list(range(100))

    def test_reproducible(self):
        assert np.array_equal(random_permutation(50, 7), random_permutation(50, 7))

    def test_fixed_points_allowed(self):
        # Over many samples some permutation must contain a fixed point
        # (the paper's "possibly itself").
        rng = np.random.default_rng(0)
        found = any(
            np.any(random_permutation(8, rng) == np.arange(8)) for _ in range(50)
        )
        assert found


class TestDerangement:
    def test_no_fixed_points(self):
        for seed in range(5):
            perm = derangement(20, seed)
            assert not np.any(perm == np.arange(20))

    def test_single_node_impossible(self):
        with pytest.raises(TrafficError):
            derangement(1)


class TestPermutationMatrix:
    def test_unit_traffic_rows(self):
        tm = permutation_matrix(np.array([1, 2, 0]))
        assert tm.is_permutation()
        assert tm.total == 3.0

    def test_custom_amount(self):
        tm = permutation_matrix(np.array([1, 0]), amount=2.0)
        assert tm[0, 1] == 2.0

    def test_rejects_non_permutation(self):
        with pytest.raises(TrafficError):
            permutation_matrix(np.array([0, 0, 1]))


class TestSamplePermutations:
    def test_count_and_independence(self):
        tms = list(sample_permutations(16, 4, seed=3))
        assert len(tms) == 4
        assert all(tm.is_permutation() for tm in tms)
        assert any(tms[0] != tm for tm in tms[1:])
