"""Synthetic traffic pattern tests."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic.synthetic import (
    all_to_all,
    bit_complement,
    bit_reversal,
    hotspot,
    shift_pattern,
    transpose_pattern,
    uniform_expected,
)


class TestAllToAll:
    def test_per_node_egress(self):
        tm = all_to_all(8, total_per_node=2.0)
        assert np.allclose(tm.row_sums(), 2.0)
        assert np.allclose(tm.col_sums(), 2.0)
        assert tm[0, 0] == 0.0

    def test_single_node(self):
        assert all_to_all(1).n_pairs == 0


class TestUniformExpected:
    def test_includes_self(self):
        tm = uniform_expected(4, load=1.0)
        assert tm[0, 0] == 0.25
        assert np.allclose(tm.row_sums(), 1.0)


class TestShift:
    def test_stride(self):
        tm = shift_pattern(8, 3)
        assert tm[0, 3] == 1.0 and tm[6, 1] == 1.0
        assert tm.is_permutation()

    def test_stride_zero_self_traffic(self):
        tm = shift_pattern(4, 0)
        s, d, a = tm.network_pairs()
        assert len(s) == 0


class TestBitPatterns:
    def test_bit_reversal_known_values(self):
        tm = bit_reversal(8)
        assert tm[1, 4] == 1.0  # 001 -> 100
        assert tm[3, 6] == 1.0  # 011 -> 110
        assert tm[7, 7] == 1.0  # palindrome

    def test_bit_reversal_involution(self):
        tm = bit_reversal(16)
        dense = tm.to_dense()
        assert np.array_equal(dense, dense.T)

    def test_bit_complement(self):
        tm = bit_complement(8)
        assert tm[0, 7] == 1.0 and tm[5, 2] == 1.0

    def test_requires_power_of_two(self):
        with pytest.raises(TrafficError):
            bit_reversal(12)
        with pytest.raises(TrafficError):
            bit_complement(6)


class TestTranspose:
    def test_square(self):
        tm = transpose_pattern(16)  # 4x4 grid
        assert tm[1, 4] == 1.0  # (0,1) -> (1,0)
        assert tm[0, 0] == 1.0  # diagonal fixed

    def test_requires_square(self):
        with pytest.raises(TrafficError):
            transpose_pattern(8)


class TestHotspot:
    def test_egress_conserved(self):
        tm = hotspot(8, [0], hot_fraction=0.5, total_per_node=1.0)
        rows = tm.row_sums()
        # Node 0 can't send its hot share to itself, so it emits less.
        assert np.allclose(rows[1:], 1.0)

    def test_hot_node_ingress_dominates(self):
        tm = hotspot(16, [3], hot_fraction=0.5)
        cols = tm.col_sums()
        assert cols[3] > 2 * cols[(3 + 1) % 16]

    def test_validation(self):
        with pytest.raises(TrafficError):
            hotspot(8, [])
        with pytest.raises(TrafficError):
            hotspot(8, [9])
        with pytest.raises(TrafficError):
            hotspot(8, [0], hot_fraction=1.5)
