"""Adversarial permutation tests (the Theorem 2 hotspot as a permutation)."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.flow.simulator import FlowSimulator
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.adversarial import adversarial_permutation, suggest_theorem2_topology
from repro.traffic.permutations import permutation_matrix


class TestConstruction:
    def test_is_permutation(self):
        xgft = suggest_theorem2_topology(2, 4)
        perm = adversarial_permutation(xgft)
        assert sorted(perm.tolist()) == list(range(xgft.n_procs))

    def test_hot_block_targets_multiples(self):
        xgft = suggest_theorem2_topology(2, 4)
        perm = adversarial_permutation(xgft)
        wh = xgft.W(xgft.h)
        block = xgft.M(xgft.h - 1)
        assert np.all(perm[:block] % wh == 0)
        assert np.all(perm[:block] >= block)

    def test_infeasible_raises(self):
        with pytest.raises(TrafficError):
            adversarial_permutation(m_port_n_tree(8, 3))


class TestEffect:
    def test_dmodk_hotspot_materializes(self):
        """d-mod-k's max load on the adversarial permutation reaches the
        subtree size; limited multi-path shrinks it roughly by 1/K."""
        xgft = suggest_theorem2_topology(2, 4)
        tm = permutation_matrix(adversarial_permutation(xgft))
        sim = FlowSimulator(xgft)
        n_src = xgft.M(xgft.h - 1)
        dmodk = sim.evaluate(make_scheme(xgft, "d-mod-k"), tm)
        assert dmodk.max_load >= n_src  # the funnel (filler may add 1)
        dj2 = sim.evaluate(make_scheme(xgft, "disjoint:2"), tm)
        assert dj2.max_load <= dmodk.max_load / 2 + 1
        um = sim.evaluate(make_scheme(xgft, "umulti"), tm)
        assert um.ratio == pytest.approx(1.0)
