"""TrafficMatrix: coalescing, queries, algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrafficError
from repro.traffic.matrix import TrafficMatrix


class TestConstruction:
    def test_coalesces_duplicates(self):
        tm = TrafficMatrix(4, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 3.0])
        assert tm.n_pairs == 2
        assert tm[0, 1] == 3.0
        assert tm[1, 2] == 3.0

    def test_drops_zeros(self):
        tm = TrafficMatrix(4, [0, 1], [1, 2], [0.0, 1.0])
        assert tm.n_pairs == 1
        assert tm[0, 1] == 0.0

    def test_default_amounts(self):
        tm = TrafficMatrix(4, [0, 1], [1, 2])
        assert tm.total == 2.0

    def test_broadcast_scalar_amount(self):
        tm = TrafficMatrix(4, [0, 1], [1, 2], [2.5])
        assert tm[0, 1] == 2.5 and tm[1, 2] == 2.5

    def test_rejects_out_of_range(self):
        with pytest.raises(TrafficError):
            TrafficMatrix(4, [0], [4])
        with pytest.raises(TrafficError):
            TrafficMatrix(4, [-1], [0])

    def test_rejects_negative_amount(self):
        with pytest.raises(TrafficError):
            TrafficMatrix(4, [0], [1], [-1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(TrafficError):
            TrafficMatrix(4, [0, 1], [1], [1.0, 1.0])

    def test_empty(self):
        tm = TrafficMatrix.empty(8)
        assert tm.n_pairs == 0 and tm.total == 0.0


class TestDenseRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.data())
    def test_roundtrip(self, n, data):
        dense = np.array(
            [
                [data.draw(st.sampled_from([0.0, 1.0, 2.5])) for _ in range(n)]
                for _ in range(n)
            ]
        )
        tm = TrafficMatrix.from_dense(dense)
        assert np.allclose(tm.to_dense(), dense)

    def test_from_dense_rejects_non_square(self):
        with pytest.raises(TrafficError):
            TrafficMatrix.from_dense(np.zeros((2, 3)))

    def test_from_pairs(self):
        tm = TrafficMatrix.from_pairs(8, [(0, 1), (2, 3)], amount=2.0)
        assert tm[0, 1] == 2.0 and tm[2, 3] == 2.0


class TestQueries:
    def test_network_pairs_excludes_self(self):
        tm = TrafficMatrix(4, [0, 1, 2], [0, 2, 2], [5.0, 1.0, 1.0])
        s, d, a = tm.network_pairs()
        assert list(zip(s, d)) == [(1, 2)]  # (0,0) and (2,2) are self-pairs
        assert tm.total == 7.0  # self traffic still counted in total

    def test_row_col_sums(self):
        tm = TrafficMatrix(3, [0, 0, 1], [1, 2, 2], [1.0, 2.0, 4.0])
        assert list(tm.row_sums()) == [3.0, 4.0, 0.0]
        assert list(tm.col_sums()) == [0.0, 1.0, 6.0]

    def test_is_permutation(self):
        assert TrafficMatrix(3, [0, 1, 2], [1, 2, 0]).is_permutation()
        assert TrafficMatrix(3, [0, 1, 2], [0, 1, 2]).is_permutation()
        assert not TrafficMatrix(3, [0, 1, 2], [1, 1, 0]).is_permutation()
        assert not TrafficMatrix(3, [0, 1], [1, 0]).is_permutation()
        assert not TrafficMatrix(3, [0, 1, 2], [1, 2, 0], [2, 1, 1]).is_permutation()


class TestAlgebra:
    def test_scaled(self):
        tm = TrafficMatrix(3, [0], [1], [2.0]).scaled(1.5)
        assert tm[0, 1] == 3.0
        with pytest.raises(TrafficError):
            tm.scaled(-1)

    def test_add(self):
        a = TrafficMatrix(3, [0], [1], [1.0])
        b = TrafficMatrix(3, [0, 1], [1, 2], [2.0, 1.0])
        c = a + b
        assert c[0, 1] == 3.0 and c[1, 2] == 1.0

    def test_add_size_mismatch(self):
        with pytest.raises(TrafficError):
            TrafficMatrix.empty(3) + TrafficMatrix.empty(4)

    def test_equality(self):
        a = TrafficMatrix(3, [0, 1], [1, 2], [1.0, 2.0])
        b = TrafficMatrix(3, [1, 0], [2, 1], [2.0, 1.0])  # different order
        assert a == b
        assert a != TrafficMatrix(3, [0], [1], [1.0])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(TrafficMatrix.empty(2))

    def test_immutable_arrays(self):
        tm = TrafficMatrix(3, [0], [1], [1.0])
        with pytest.raises(ValueError):
            tm.amount[0] = 5.0
