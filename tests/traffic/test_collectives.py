"""Collective schedule tests."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.collectives import (
    recursive_doubling,
    schedule_cost,
    shift_all_to_all,
)


class TestShiftAllToAll:
    def test_phase_count_and_coverage(self):
        phases = list(shift_all_to_all(8))
        assert len(phases) == 7
        # Union of all phases = all-to-all: every ordered pair once.
        total = np.zeros((8, 8))
        for tm in phases:
            total += tm.to_dense()
        expected = np.ones((8, 8)) - np.eye(8)
        assert np.array_equal(total, expected)

    def test_each_phase_is_permutation(self):
        for tm in shift_all_to_all(6):
            assert tm.is_permutation()

    def test_rejects_tiny(self):
        with pytest.raises(TrafficError):
            list(shift_all_to_all(1))


class TestRecursiveDoubling:
    def test_phase_count(self):
        assert len(list(recursive_doubling(16))) == 4

    def test_phases_are_pairings(self):
        for tm in recursive_doubling(8):
            dense = tm.to_dense()
            assert np.array_equal(dense, dense.T)  # symmetric exchanges
            assert tm.is_permutation()

    def test_requires_power_of_two(self):
        with pytest.raises(TrafficError):
            list(recursive_doubling(6))


class TestScheduleCost:
    def test_umulti_shift_all_to_all_is_optimal(self):
        """On a full-bisection XGFT, every shift phase has optimal load
        1, so UMULTI's total is exactly N - 1."""
        xgft = m_port_n_tree(8, 2)
        total, worst = schedule_cost(
            xgft, make_scheme(xgft, "umulti"), shift_all_to_all(xgft.n_procs)
        )
        assert total == pytest.approx(xgft.n_procs - 1)
        assert worst == pytest.approx(1.0)

    def test_dmodk_never_better_than_umulti(self):
        xgft = m_port_n_tree(8, 2)
        d_total, d_worst = schedule_cost(
            xgft, make_scheme(xgft, "d-mod-k"), shift_all_to_all(xgft.n_procs)
        )
        assert d_total >= xgft.n_procs - 1
        assert d_worst >= 1.0

    def test_multipath_between(self):
        xgft = m_port_n_tree(8, 2)
        costs = {}
        for spec in ("d-mod-k", "disjoint:2", "umulti"):
            costs[spec], _ = schedule_cost(
                xgft, make_scheme(xgft, spec), shift_all_to_all(xgft.n_procs)
            )
        assert costs["umulti"] <= costs["disjoint:2"] <= costs["d-mod-k"]
