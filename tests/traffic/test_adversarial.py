"""Theorem 2 adversarial construction tests."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.topology.variants import m_port_n_tree
from repro.traffic.adversarial import (
    suggest_theorem2_topology,
    theorem2_bound,
    theorem2_pattern,
)


class TestPatternStructure:
    def test_sources_fill_first_subtree(self):
        xgft = suggest_theorem2_topology(2, 4)
        tm = theorem2_pattern(xgft)
        n_src = xgft.M(xgft.h - 1)
        assert sorted(np.unique(tm.src)) == list(range(n_src))

    def test_destinations_are_multiples_of_prod_w(self):
        xgft = suggest_theorem2_topology(3, 2)
        tm = theorem2_pattern(xgft)
        wh = xgft.W(xgft.h)
        assert np.all(tm.dst % wh == 0)

    def test_destinations_outside_first_subtree_and_distinct(self):
        xgft = suggest_theorem2_topology(2, 4)
        tm = theorem2_pattern(xgft)
        block = xgft.M(xgft.h - 1)
        assert np.all(tm.dst >= block)
        assert len(np.unique(tm.dst)) == len(tm.dst)

    def test_unit_amounts(self):
        tm = theorem2_pattern(suggest_theorem2_topology(2, 3))
        assert np.allclose(tm.amount, 1.0)


class TestFeasibility:
    def test_infeasible_on_narrow_top(self):
        # The paper's 8-port 3-tree cannot host the full construction.
        with pytest.raises(TrafficError):
            theorem2_pattern(m_port_n_tree(8, 3))

    def test_suggested_topologies_feasible(self):
        for h, w in ((2, 2), (2, 4), (3, 2), (3, 3)):
            xgft = suggest_theorem2_topology(h, w)
            tm = theorem2_pattern(xgft)
            assert tm.n_pairs == xgft.M(h - 1)

    def test_suggest_rejects_h1(self):
        with pytest.raises(TrafficError):
            suggest_theorem2_topology(1, 4)


class TestBound:
    def test_bound_equals_prod_w_in_target_regime(self):
        for h, w in ((2, 4), (3, 2)):
            xgft = suggest_theorem2_topology(h, w)
            assert theorem2_bound(xgft) == pytest.approx(w ** (h - 1))
