"""Unit tests for the degraded-fabric mask (cables, switches, liveness)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import DegradedFabric, cable_links, switch_links
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT


class TestCableLinks:
    def test_pairing_mirrors_endpoints(self, tree8x2):
        up0, _ = tree8x2.boundary_link_slices(0)
        up1, _ = tree8x2.boundary_link_slices(1)
        for up in list(range(up0.start, up0.stop))[::5] + \
                list(range(up1.start, up1.stop))[::7]:
            u, d = cable_links(tree8x2, up)
            assert u == up
            uref, dref = tree8x2.link_ref(u), tree8x2.link_ref(d)
            assert dref.kind.value == "down"
            assert dref.src_index == uref.dst_index
            assert dref.dst_index == uref.src_index
            assert dref.src_level == uref.dst_level

    def test_rejects_down_link(self, tree8x2):
        _, down = tree8x2.boundary_link_slices(0)
        with pytest.raises(FaultError, match="down link"):
            cable_links(tree8x2, down.start)


class TestSwitchLinks:
    @pytest.mark.parametrize("level,index", [(1, 0), (1, 5), (2, 3)])
    def test_incident_links_touch_the_switch(self, tree8x3, level, index):
        links = switch_links(tree8x3, level, index)
        expected = 2 * tree8x3.m[level - 1]
        if level < tree8x3.h:
            expected += 2 * tree8x3.w[level]
        assert len(links) == len(set(links)) == expected
        for c in links:
            ref = tree8x3.link_ref(c)
            assert ((ref.src_level, ref.src_index) == (level, index)
                    or (ref.dst_level, ref.dst_index) == (level, index))

    def test_bad_coordinates(self, tree8x2):
        with pytest.raises(FaultError):
            switch_links(tree8x2, 0, 0)
        with pytest.raises(FaultError):
            switch_links(tree8x2, 1, tree8x2.level_size(1))


class TestDegradedFabric:
    def test_pristine(self, tree8x2):
        fabric = DegradedFabric(tree8x2)
        assert fabric.is_pristine
        assert fabric.is_connected
        assert fabric.tag == "pristine"
        assert fabric.alive_fraction == 1.0
        assert fabric.n_failed_links == 0

    def test_cable_kills_both_directions(self, tree8x2):
        up1, _ = tree8x2.boundary_link_slices(1)
        cable = up1.start + 3
        fabric = DegradedFabric(tree8x2, failed_cables=[cable])
        up, down = cable_links(tree8x2, cable)
        assert not fabric.link_ok[up] and not fabric.link_ok[down]
        assert fabric.n_failed_links == 2
        assert fabric.n_failed_cables == 1
        assert fabric.tag == "1c0s"

    def test_switch_kills_all_incident_links(self, tree8x3):
        fabric = DegradedFabric(tree8x3, failed_switches=[(2, 7)])
        dead = switch_links(tree8x3, 2, 7)
        assert not fabric.link_ok[dead].any()
        assert fabric.n_failed_links == len(dead)

    def test_mask_is_readonly(self, tree8x2):
        fabric = DegradedFabric(tree8x2)
        with pytest.raises(ValueError):
            fabric.link_ok[0] = False

    def test_critical_host_cable_disconnects(self, tree8x2):
        # w_1 = 1 in every m-port tree: a host's single uplink is a
        # single point of failure.
        up0, _ = tree8x2.boundary_link_slices(0)
        fabric = DegradedFabric(tree8x2, failed_cables=[up0.start])
        assert not fabric.is_connected

    def test_single_upper_cable_keeps_connectivity(self, tree8x2):
        up1, _ = tree8x2.boundary_link_slices(1)
        fabric = DegradedFabric(tree8x2, failed_cables=[up1.start])
        assert fabric.is_connected

    def test_path_alive_matrix(self, tree8x2):
        up1, _ = tree8x2.boundary_link_slices(1)
        fabric = DegradedFabric(tree8x2, failed_cables=[up1.start])
        n = tree8x2.n_procs
        s = np.array([0]); d = np.array([n - 1])
        x = tree8x2.max_paths
        alive = fabric.path_alive_matrix(
            s, d, np.arange(x, dtype=np.int64)[None, :], tree8x2.h)
        # Exactly one of the pair's paths used the dead cable.
        assert alive.sum() == x - 1

    def test_describe_names_damage(self, tree8x3):
        up1, _ = tree8x3.boundary_link_slices(1)
        fabric = DegradedFabric(tree8x3, failed_cables=[up1.start],
                                failed_switches=[(2, 0)])
        text = fabric.describe()
        assert "dead cable" in text and "dead switch" in text

    def test_connectivity_on_irregular_tree(self, irregular):
        fabric = DegradedFabric(irregular)
        assert fabric.is_connected

    def test_multi_level_xgft_switch_failure(self):
        xgft = XGFT(3, (4, 4, 4), (1, 4, 2))
        fabric = DegradedFabric(xgft, failed_switches=[(3, 0)])
        assert fabric.is_connected  # W(3) = 8 top switches, one lost
        assert fabric.n_failed_switches == 1


class TestFabricMutation:
    """In-place fail/repair events: refcounts, caches, versioning."""

    def test_fail_repair_roundtrip_restores_pristine(self, tree8x2):
        up1, _ = tree8x2.boundary_link_slices(1)
        fabric = DegradedFabric(tree8x2)
        dead = fabric.fail_cable(up1.start)
        assert dead.size == 2 and not fabric.is_pristine
        revived = fabric.repair_cable(up1.start)
        assert sorted(revived) == sorted(dead)
        assert fabric.is_pristine
        assert fabric.link_ok.all()
        assert fabric.failed_cables == ()

    def test_is_connected_cache_invalidated_on_failure(self, tree8x2):
        # Regression: the cached answer must never survive a mutation.
        # Query (caches True) -> fail a critical host uplink -> the next
        # query must be recomputed, not served stale.
        up0, _ = tree8x2.boundary_link_slices(0)
        fabric = DegradedFabric(tree8x2)
        assert fabric.is_connected
        fabric.fail_cable(up0.start)
        assert not fabric.is_connected

    def test_is_connected_cache_invalidated_on_repair(self, tree8x2):
        up0, _ = tree8x2.boundary_link_slices(0)
        fabric = DegradedFabric(tree8x2, failed_cables=[up0.start])
        assert not fabric.is_connected
        fabric.repair_cable(up0.start)
        assert fabric.is_connected

    def test_version_bumps_on_every_event(self, tree8x2):
        up1, _ = tree8x2.boundary_link_slices(1)
        fabric = DegradedFabric(tree8x2)
        v0 = fabric.version
        fabric.fail_cable(up1.start)
        v1 = fabric.version
        fabric.repair_cable(up1.start)
        assert v0 < v1 < fabric.version

    def test_overlapping_switch_and_cable_refcount(self, tree8x3):
        # A link covered by a dead switch AND a dead cable only comes
        # back when its last cause is repaired.
        fabric = DegradedFabric(tree8x3)
        incident = switch_links(tree8x3, 1, 0)
        cable = next(c for c in incident
                     if tree8x3.link_ref(c).kind.value == "up")
        up, down = cable_links(tree8x3, cable)
        fabric.fail_switch(1, 0)
        changed = fabric.fail_cable(cable)
        assert changed.size == 0  # both links already dead via the switch
        fabric.repair_switch(1, 0)
        assert not fabric.link_ok[up] and not fabric.link_ok[down]
        revived = fabric.repair_cable(cable)
        assert sorted(revived) == sorted((up, down))
        assert fabric.is_pristine

    def test_double_fail_and_repair_unfailed_raise(self, tree8x2):
        up1, _ = tree8x2.boundary_link_slices(1)
        fabric = DegradedFabric(tree8x2)
        fabric.fail_cable(up1.start)
        with pytest.raises(FaultError, match="already failed"):
            fabric.fail_cable(up1.start)
        with pytest.raises(FaultError, match="is not failed"):
            fabric.repair_cable(up1.start + 1)
        with pytest.raises(FaultError, match="is not failed"):
            fabric.repair_switch(1, 0)
        fabric.fail_switch(1, 0)
        with pytest.raises(FaultError, match="already failed"):
            fabric.fail_switch(1, 0)

    def test_constructor_equals_event_sequence(self, tree8x3):
        up1, _ = tree8x3.boundary_link_slices(1)
        cables = [up1.start, up1.start + 2]
        at_once = DegradedFabric(tree8x3, failed_cables=cables,
                                 failed_switches=[(2, 1)])
        stepwise = DegradedFabric(tree8x3)
        for c in cables:
            stepwise.fail_cable(c)
        stepwise.fail_switch(2, 1)
        assert np.array_equal(at_once.link_ok, stepwise.link_ok)
        assert at_once.failed_cables == stepwise.failed_cables
        assert at_once.failed_switches == stepwise.failed_switches


def test_m_port_tree_cable_pairing_exhaustive():
    xgft = m_port_n_tree(4, 2)
    for boundary in range(xgft.h):
        up, _ = xgft.boundary_link_slices(boundary)
        for cable in range(up.start, up.stop):
            u, d = cable_links(xgft, cable)
            uref, dref = xgft.link_ref(u), xgft.link_ref(d)
            assert (uref.src_level, uref.src_index) == (dref.dst_level,
                                                        dref.dst_index)
