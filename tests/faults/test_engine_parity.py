"""Engine parity on degraded fabrics.

The compiled evaluator must agree with the reference evaluator to
1e-12 for every scheme family on degraded 2- and 3-level trees, and
parallel adaptive studies must consume identical RNG streams on both
engines — the acceptance bar for trusting fault-sweep numbers from the
fast path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import DegradedScheme, FaultSpec
from repro.flow.engine import BatchFlowEngine
from repro.flow.loads import link_loads
from repro.flow.sampling import PermutationStudy
from repro.routing.compiled import compile_scheme
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.permutations import permutation_matrix

SCHEME_SPECS = ("d-mod-k", "s-mod-k", "shift-1:2", "shift-1:4",
                "disjoint:2", "disjoint:4", "random:2", "umulti")

TOPOLOGIES = [
    pytest.param(m_port_n_tree(8, 2), 0.2, id="8-port-2-tree"),
    pytest.param(m_port_n_tree(4, 3), 0.25, id="4-port-3-tree"),
]


def _connected_fabric(xgft, rate, seed=0):
    for attempt in range(64):
        fabric = FaultSpec(link_rate=rate, seed=seed + attempt).sample(xgft)
        if fabric.is_connected and not fabric.is_pristine:
            return fabric
    raise AssertionError("no connected non-pristine fabric found")


@pytest.mark.parametrize("xgft,rate", TOPOLOGIES)
@pytest.mark.parametrize("spec", SCHEME_SPECS)
def test_reference_and_compiled_loads_agree(xgft, rate, spec):
    fabric = _connected_fabric(xgft, rate)
    scheme = DegradedScheme(make_scheme(xgft, spec), fabric)
    engine = BatchFlowEngine(compile_scheme(xgft, scheme))

    rng = np.random.default_rng(7)
    perms = np.stack([rng.permutation(xgft.n_procs) for _ in range(6)])
    batch = engine.permutation_mloads(perms)
    for i, perm in enumerate(perms):
        tm = permutation_matrix(perm)
        ref = link_loads(xgft, scheme, tm)
        np.testing.assert_allclose(engine.link_loads(tm), ref, atol=1e-12)
        np.testing.assert_allclose(batch[i], ref.max(), atol=1e-12)


@pytest.mark.parametrize("xgft,rate", TOPOLOGIES)
def test_compiled_plan_serves_identical_tables(xgft, rate):
    """Route tables read from the compiled plan equal the scheme's own
    (padding filtered on both paths)."""
    from repro.routing.vectorized import compile_routes

    fabric = _connected_fabric(xgft, rate)
    scheme = DegradedScheme(make_scheme(xgft, "umulti"), fabric)
    plan = compile_scheme(xgft, scheme)
    assert plan.masked
    assert compile_routes(xgft, scheme) == plan.route_table()


@pytest.mark.parametrize("n_jobs", [1, 2])
def test_parallel_study_streams_are_engine_invariant(n_jobs):
    """Both engines draw the identical permutation stream — sample for
    sample — including when each round fans out to pool workers."""
    xgft = m_port_n_tree(8, 2)
    fabric = _connected_fabric(xgft, 0.2)
    scheme = DegradedScheme(make_scheme(xgft, "disjoint:2"), fabric)

    def study(engine):
        return PermutationStudy(
            xgft, initial_samples=16, max_samples=16, rel_precision=0.5,
            seed=99, n_jobs=n_jobs, engine=engine,
        ).run(scheme)

    ref = study("reference")
    fast = study("compiled")
    assert len(ref.samples) == len(fast.samples) == 16
    np.testing.assert_allclose(np.sort(ref.samples), np.sort(fast.samples),
                               atol=1e-12)
    if n_jobs == 1:
        np.testing.assert_allclose(ref.samples, fast.samples, atol=1e-12)


def test_fault_sweep_experiment_engine_parity():
    """The registered experiment produces identical curves per engine
    (the PR's acceptance criterion, shrunk to test size)."""
    from repro.experiments.fault_sweep import run

    kwargs = dict(
        fidelity_name="fast", topology=m_port_n_tree(4, 3),
        rates=(0.0, 0.1), curves=("d-mod-k", "disjoint:2", "umulti"),
        seed=5, fault_seed=1,
    )
    ref = run(engine="reference", **kwargs)
    fast = run(engine="compiled", **kwargs)
    assert ref.points[0].tag == "pristine"
    for p_ref, p_fast in zip(ref.points, fast.points):
        assert p_ref.tag == p_fast.tag
        for curve in kwargs["curves"]:
            assert p_ref.mloads[curve] == pytest.approx(
                p_fast.mloads[curve], abs=1e-12)
