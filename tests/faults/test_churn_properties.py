"""Property-based invariants of churn replay on random shapes/streams.

Random XGFTs, random seeded event streams, random schemes — four
invariant families:

* **inversion**: fail-then-repair of the same element restores the
  pristine selection state exactly (bit-identical arrays);
* **commutativity**: two events touching disjoint link sets produce an
  identical state in either order;
* **determinism**: replaying the same seeded trace twice from scratch
  produces identical stats and identical state;
* **disconnection parity**: an event the incremental scheme rejects with
  :class:`~repro.errors.DisconnectedPairError` is exactly an event the
  from-scratch oracle rejects too, and the rollback leaves the
  incremental state equal to the oracle over the pre-event fault set.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import DisconnectedPairError
from repro.faults import (
    ChurnEvent,
    DegradedFabric,
    DegradedScheme,
    IncrementalDegradedScheme,
)
from repro.faults.degraded import cable_links
from repro.faults.spec import samplable_cables

from strategies import churn_cases, schemes, xgfts

#: per-test example budget; the CI profile in conftest.py may cap lower
EXAMPLES = 25


def _state_snapshot(inc: IncrementalDegradedScheme):
    """Frozen copies of every level's selection tables."""
    return {
        k: (st.idx.copy(), st.weights.copy())
        for k, st in inc._levels.items()
    }


def _assert_state_equal(a, b, context: str):
    assert a.keys() == b.keys()
    for k in a:
        np.testing.assert_array_equal(
            a[k][0], b[k][0], err_msg=f"idx diverged at level {k} {context}")
        np.testing.assert_array_equal(
            a[k][1], b[k][1],
            err_msg=f"weights diverged at level {k} {context}")


@st.composite
def _scheme_with_cable(draw):
    """(scheme, samplable cable) on a churnable random topology."""
    xgft = draw(xgfts(max_procs=48))
    cables = samplable_cables(xgft)
    assume(len(cables))
    cable = int(cables[draw(st.integers(0, len(cables) - 1))])
    return draw(schemes(xgft)), cable


@given(case=_scheme_with_cable())
@settings(max_examples=EXAMPLES)
def test_fail_then_repair_restores_pristine_state(case):
    scheme, cable = case
    inc = IncrementalDegradedScheme(scheme)
    before = _state_snapshot(inc)
    try:
        inc.apply_event(ChurnEvent("fail", "cable", cable))
    except DisconnectedPairError:
        assume(False)  # the drawn cable was jointly critical
    inc.apply_event(ChurnEvent("repair", "cable", cable))
    assert inc.fabric.is_pristine
    _assert_state_equal(before, _state_snapshot(inc),
                        f"after -/+cable:{cable}")


@st.composite
def _scheme_with_disjoint_cables(draw):
    xgft = draw(xgfts(max_procs=48))
    cables = samplable_cables(xgft)
    assume(len(cables) >= 2)
    i = draw(st.integers(0, len(cables) - 1))
    j = draw(st.integers(0, len(cables) - 1))
    assume(i != j)
    return draw(schemes(xgft)), int(cables[i]), int(cables[j])


@given(case=_scheme_with_disjoint_cables())
@settings(max_examples=EXAMPLES)
def test_disjoint_events_commute(case):
    scheme, a, b = case
    # Distinct cables always have disjoint link sets (each cable owns
    # exactly its up/down pair).
    assert not (set(cable_links(scheme.xgft, a))
                & set(cable_links(scheme.xgft, b)))
    first = IncrementalDegradedScheme(scheme)
    second = IncrementalDegradedScheme(scheme)
    try:
        first.apply_event(ChurnEvent("fail", "cable", a))
        first.apply_event(ChurnEvent("fail", "cable", b))
        second.apply_event(ChurnEvent("fail", "cable", b))
        second.apply_event(ChurnEvent("fail", "cable", a))
    except DisconnectedPairError:
        assume(False)  # the pair was jointly critical
    np.testing.assert_array_equal(first.fabric.link_ok,
                                  second.fabric.link_ok)
    _assert_state_equal(_state_snapshot(first), _state_snapshot(second),
                        f"orders (-{a},-{b}) vs (-{b},-{a})")


@given(case=churn_cases(max_events=8, max_procs=48))
@settings(max_examples=EXAMPLES)
def test_seeded_replay_is_deterministic(case):
    xgft, trace, scheme = case
    one = IncrementalDegradedScheme(scheme)
    two = IncrementalDegradedScheme(scheme)
    stats_one = one.replay(trace)
    stats_two = two.replay(trace)
    assert [(s.event, s.links_changed, s.pairs_recomputed)
            for s in stats_one] == \
           [(s.event, s.links_changed, s.pairs_recomputed)
            for s in stats_two]
    np.testing.assert_array_equal(one.fabric.link_ok, two.fabric.link_ok)
    _assert_state_equal(_state_snapshot(one), _state_snapshot(two),
                        f"replaying {trace.describe()} twice")


@st.composite
def _scheme_with_critical_cable(draw):
    """A scheme on a topology whose host uplinks are critical."""
    xgft = draw(xgfts(max_procs=48))
    assume(xgft.w[0] == 1)  # one uplink per host => cutting it strands it
    up0, _ = xgft.boundary_link_slices(0)
    cable = draw(st.integers(up0.start, up0.stop - 1))
    return draw(schemes(xgft)), cable


@given(case=_scheme_with_critical_cable())
@settings(max_examples=EXAMPLES)
def test_disconnection_parity_with_oracle(case):
    scheme, cable = case
    xgft = scheme.xgft
    inc = IncrementalDegradedScheme(scheme)
    before = _state_snapshot(inc)
    with pytest.raises(DisconnectedPairError):
        inc.apply_event(ChurnEvent("fail", "cable", cable))
    # The from-scratch oracle rejects the identical fault set the same
    # way (parity), and the incremental state rolled back cleanly.
    with pytest.raises(DisconnectedPairError):
        oracle = DegradedScheme(
            scheme, DegradedFabric(xgft, failed_cables=[cable]))
        n = xgft.n_procs
        keys = np.arange(n * n, dtype=np.int64)
        s, d = np.divmod(keys, n)
        k_arr = xgft.nca_level(s, d)
        for k in range(1, xgft.h + 1):
            mask = k_arr == k
            if mask.any():
                oracle.path_index_matrix(s[mask], d[mask], k)
    assert inc.fabric.is_pristine
    _assert_state_equal(before, _state_snapshot(inc),
                        f"after rejected -cable:{cable}")
