"""RNG-stream hygiene: named substreams, no global state, interleaving.

All fault sampling flows through :func:`repro.util.rng.substream` named
streams.  These tests pin the three guarantees that buys:

* sampling neither reads nor perturbs module-level ``random`` /
  ``np.random`` state;
* the cable and switch streams are independent (enabling one kind of
  fault never changes the other kind's draw);
* interleaving two simulations reproduces each one's solo results.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.faults import DegradedScheme, FaultSpec
from repro.flow.sampling import PermutationStudy
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.util.rng import SUBSTREAMS, substream


class TestSubstream:
    def test_named_streams_are_distinct(self):
        a = substream(0, "fault-links").integers(0, 2**32, size=8)
        b = substream(0, "fault-switches").integers(0, 2**32, size=8)
        assert not np.array_equal(a, b)

    def test_same_name_same_seed_reproduces(self):
        a = substream(5, "fault-links").integers(0, 2**32, size=8)
        b = substream(5, "fault-links").integers(0, 2**32, size=8)
        np.testing.assert_array_equal(a, b)

    def test_unregistered_name_is_an_error(self):
        with pytest.raises(KeyError, match="unregistered substream"):
            substream(0, "no-such-stream")

    def test_registry_keys_are_unique(self):
        assert len(set(SUBSTREAMS.values())) == len(SUBSTREAMS)


class TestGlobalStateIsolation:
    def test_sampling_ignores_global_seeds(self, tree8x3):
        spec = FaultSpec(link_rate=0.1, switch_rate=0.1, seed=4)
        np.random.seed(0); random.seed(0)
        a = spec.sample(tree8x3)
        np.random.seed(12345); random.seed(999)
        b = spec.sample(tree8x3)
        assert a.failed_cables == b.failed_cables
        assert a.failed_switches == b.failed_switches

    def test_sampling_leaves_global_streams_untouched(self, tree8x3):
        np.random.seed(42); random.seed(42)
        before_np = np.random.random(4)
        before_py = [random.random() for _ in range(4)]
        np.random.seed(42); random.seed(42)
        FaultSpec(link_rate=0.1, seed=4).sample(tree8x3)
        np.testing.assert_array_equal(np.random.random(4), before_np)
        assert [random.random() for _ in range(4)] == before_py


class TestStreamIndependence:
    def test_cable_draw_invariant_to_switch_rate(self, tree8x3):
        only_links = FaultSpec(link_rate=0.1, seed=6).sample(tree8x3)
        both = FaultSpec(link_rate=0.1, switch_rate=0.1, seed=6).sample(tree8x3)
        assert only_links.failed_cables == both.failed_cables

    def test_switch_draw_invariant_to_link_rate(self, tree8x3):
        only_switches = FaultSpec(switch_rate=0.1, seed=6).sample(tree8x3)
        both = FaultSpec(link_rate=0.1, switch_rate=0.1, seed=6).sample(tree8x3)
        assert only_switches.failed_switches == both.failed_switches


class TestInterleaving:
    def test_interleaved_runs_reproduce_solo_results(self):
        """Two simulations advanced in lockstep produce exactly the
        numbers each produces alone — nothing shares hidden RNG state."""
        xgft = m_port_n_tree(8, 2)

        def make(seed, fault_seed, spec):
            fabric = FaultSpec(link_rate=0.1, seed=fault_seed).sample(xgft)
            scheme = DegradedScheme(make_scheme(xgft, spec), fabric)
            study = PermutationStudy(
                xgft, initial_samples=8, max_samples=8, rel_precision=0.5,
                seed=seed, engine="compiled")
            return study, scheme

        # Solo runs.
        study_a, scheme_a = make(1, 10, "disjoint:2")
        solo_a = study_a.run(scheme_a).samples
        study_b, scheme_b = make(2, 20, "shift-1:2")
        solo_b = study_b.run(scheme_b).samples

        # Interleaved: construction and execution alternate.
        study_a, scheme_a = make(1, 10, "disjoint:2")
        study_b, scheme_b = make(2, 20, "shift-1:2")
        inter_b = study_b.run(scheme_b).samples
        inter_a = study_a.run(scheme_a).samples

        np.testing.assert_array_equal(solo_a, inter_a)
        np.testing.assert_array_equal(solo_b, inter_b)

    def test_interleaved_fabric_sampling(self, tree8x3):
        spec_a = FaultSpec(link_rate=0.15, seed=1)
        spec_b = FaultSpec(link_rate=0.15, seed=2)
        solo_a = spec_a.sample(tree8x3).failed_cables
        solo_b = spec_b.sample(tree8x3).failed_cables
        # Reversed order, interleaved with unrelated global-RNG noise.
        np.random.seed(7)
        inter_b = spec_b.sample(tree8x3).failed_cables
        np.random.random(100)
        inter_a = spec_a.sample(tree8x3).failed_cables
        assert (solo_a, solo_b) == (inter_a, inter_b)
