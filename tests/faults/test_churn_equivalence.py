"""The differential-equivalence layer: incremental == from-scratch.

After *every* event of a replayed churn trace, the
:class:`~repro.faults.churn.IncrementalDegradedScheme` must be
bit-identical to a :class:`~repro.faults.scheme.DegradedScheme` built
from scratch over the same cumulative fault set: identical
``path_index_matrix``, identical ``path_weight_matrix`` (including the
weight-0 padding rows), identical per-pair routes, and identical MLOAD
under both flow engines.  The from-scratch wrapper is the oracle — it is
exercised by the whole fault-sweep test surface — so any divergence
localizes the bug to the incremental delta path.

Scheme families x K values x 2- and 3-level topologies are swept
explicitly (not via Hypothesis) so a failure names its configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    ChurnSpec,
    DegradedFabric,
    DegradedScheme,
    IncrementalDegradedScheme,
    generate_trace,
)
from repro.flow.simulator import FlowSimulator
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.permutations import permutation_matrix, random_permutation

#: every registered scheme family, limited heuristics at K in {2, 4}
SCHEME_SPECS = (
    "d-mod-k",
    "s-mod-k",
    "random-single",
    "shift-1:2",
    "shift-1:4",
    "disjoint:2",
    "disjoint:4",
    "random:2",
    "random:4",
    "umulti",
)

TOPOLOGIES = {
    "mport:8x2": m_port_n_tree(8, 2),   # 2-level, 32 hosts
    "mport:4x3": m_port_n_tree(4, 3),   # 3-level, 16 hosts
}


def _oracle(base, fabric_source: DegradedFabric) -> DegradedScheme:
    """A from-scratch wrapper over a *fresh* fabric with the same
    cumulative fault set (never sharing the mutable mask)."""
    fresh = DegradedFabric(
        base.xgft,
        failed_cables=fabric_source.failed_cables,
        failed_switches=fabric_source.failed_switches,
    )
    return DegradedScheme(base, fresh)


def _pairs_by_level(xgft):
    n = xgft.n_procs
    keys = np.arange(n * n, dtype=np.int64)
    s, d = np.divmod(keys, n)
    k_arr = xgft.nca_level(s, d)
    return [(k, s[k_arr == k], d[k_arr == k])
            for k in range(1, xgft.h + 1) if (k_arr == k).any()]


def assert_bit_identical(inc, oracle, groups, context: str):
    for k, s, d in groups:
        np.testing.assert_array_equal(
            inc.path_index_matrix(s, d, k),
            oracle.path_index_matrix(s, d, k),
            err_msg=f"path_index_matrix diverged at level {k} {context}")
        inc_w = inc.path_weight_matrix(s, d, k)
        oracle_w = oracle.path_weight_matrix(s, d, k)
        if oracle_w is None:
            assert inc_w is None, f"weights not None at level {k} {context}"
        else:
            np.testing.assert_array_equal(
                inc_w, oracle_w,
                err_msg=f"path_weight_matrix diverged at level {k} "
                        f"{context}")


@pytest.mark.parametrize("topo_key", sorted(TOPOLOGIES))
@pytest.mark.parametrize("spec", SCHEME_SPECS)
def test_incremental_equals_fresh_recompile_after_every_event(
        topo_key, spec):
    xgft = TOPOLOGIES[topo_key]
    base = make_scheme(xgft, spec)
    groups = _pairs_by_level(xgft)
    trace = generate_trace(
        xgft, ChurnSpec(n_events=10, switch_fraction=0.2, seed=7))
    assert len(trace) > 0
    inc = IncrementalDegradedScheme(base)
    for i, event in enumerate(trace):
        inc.apply_event(event)
        assert_bit_identical(
            inc, _oracle(base, inc.fabric), groups,
            f"after event {i} ({event.label}) on {topo_key}/{spec}")


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_identical_mload_under_both_engines(engine, tree8x2):
    # The engines consume the scheme through path_index/weight_matrix,
    # so equality there implies equal loads — this pins the integration
    # end to end anyway: evaluate real permutations on both wrappers.
    base = make_scheme(tree8x2, "disjoint:2")
    trace = generate_trace(tree8x2, ChurnSpec(n_events=6, seed=3))
    inc = IncrementalDegradedScheme(base)
    sim = FlowSimulator(tree8x2)
    rng = np.random.default_rng(0)
    perms = np.stack([random_permutation(tree8x2.n_procs, rng)
                      for _ in range(4)])
    for event in trace:
        inc.apply_event(event)
        oracle = _oracle(base, inc.fabric)
        if engine == "compiled":
            from repro.flow.engine import BatchFlowEngine
            from repro.routing.compiled import compile_scheme

            got = BatchFlowEngine(
                compile_scheme(tree8x2, inc)).permutation_mloads(perms)
            want = BatchFlowEngine(
                compile_scheme(tree8x2, oracle)).permutation_mloads(perms)
            np.testing.assert_array_equal(got, want)
        else:
            for p in perms:
                tm = permutation_matrix(p)
                assert sim.max_load(inc, tm) == sim.max_load(oracle, tm)


def test_route_sets_match_after_churn(tree8x2):
    base = make_scheme(tree8x2, "shift-1:2")
    trace = generate_trace(tree8x2, ChurnSpec(n_events=8, seed=13))
    inc = IncrementalDegradedScheme(base)
    for event in trace:
        inc.apply_event(event)
    oracle = _oracle(base, inc.fabric)
    n = tree8x2.n_procs
    for s in range(0, n, 3):
        for d in range(0, n, 5):
            got, want = inc.route(s, d), oracle.route(s, d)
            assert got.indices == want.indices
            assert got.fractions == want.fractions


def test_fresh_start_on_damaged_fabric_matches_oracle(tree8x2):
    # Constructing the incremental scheme on an already-damaged fabric
    # (not replaying events into it) must also match the oracle.
    up1, _ = tree8x2.boundary_link_slices(1)
    fabric = DegradedFabric(tree8x2, failed_cables=[up1.start, up1.start + 3])
    base = make_scheme(tree8x2, "disjoint:4")
    inc = IncrementalDegradedScheme(base, fabric)
    assert_bit_identical(inc, _oracle(base, fabric),
                         _pairs_by_level(tree8x2), "on prebuilt fabric")
