"""Unit tests for streaming churn: events, traces, the link->pairs
transpose, and incremental re-routing (including the >=10x acceptance
gate on the 8-port 3-tree)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DisconnectedPairError, FaultError
from repro.faults import (
    ChurnEvent,
    ChurnSpec,
    DegradedFabric,
    IncrementalDegradedScheme,
    generate_trace,
)
from repro.faults.spec import samplable_cables
from repro.obs import Recorder, use_recorder
from repro.routing.compiled import (
    LinkPairIndex,
    candidate_link_index,
    compile_scheme,
)
from repro.routing.factory import make_scheme
from repro.routing.vectorized import path_link_matrix
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT


class TestChurnEvent:
    def test_validation(self):
        with pytest.raises(FaultError, match="action"):
            ChurnEvent("break", "cable", 3)
        with pytest.raises(FaultError, match="kind"):
            ChurnEvent("fail", "router", 3)

    def test_labels(self):
        assert ChurnEvent("fail", "cable", 12).label == "-cable:12"
        assert ChurnEvent("repair", "switch", (2, 3)).label == "+switch:2/3"

    def test_inverse_is_involutive(self):
        event = ChurnEvent("fail", "switch", (1, 4))
        assert event.inverse().action == "repair"
        assert event.inverse().inverse() == event

    def test_apply_dispatches_to_fabric(self, tree8x2):
        up1, _ = tree8x2.boundary_link_slices(1)
        fabric = DegradedFabric(tree8x2)
        dead = ChurnEvent("fail", "cable", up1.start).apply(fabric)
        assert dead.size == 2
        assert fabric.failed_cables == (up1.start,)
        ChurnEvent("repair", "cable", up1.start).apply(fabric)
        assert fabric.is_pristine


class TestChurnSpec:
    def test_validation(self):
        with pytest.raises(FaultError):
            ChurnSpec(n_events=-1)
        with pytest.raises(FaultError):
            ChurnSpec(fail_bias=1.5)
        with pytest.raises(FaultError):
            ChurnSpec(switch_fraction=-0.1)


class TestGenerateTrace:
    def test_deterministic_for_fixed_inputs(self, tree8x3):
        spec = ChurnSpec(n_events=12, seed=42)
        assert generate_trace(tree8x3, spec) == generate_trace(tree8x3, spec)

    def test_different_seeds_differ(self, tree8x3):
        a = generate_trace(tree8x3, ChurnSpec(n_events=12, seed=0))
        b = generate_trace(tree8x3, ChurnSpec(n_events=12, seed=1))
        assert a.events != b.events

    def test_events_are_sequentially_valid_and_connected(self, tree8x3):
        trace = generate_trace(tree8x3, ChurnSpec(n_events=20, seed=3))
        fabric = DegradedFabric(tree8x3)
        for event in trace:  # apply() raises on an invalid event
            event.apply(fabric)
            assert fabric.is_connected

    def test_first_event_is_a_failure(self, tree8x3):
        trace = generate_trace(tree8x3, ChurnSpec(n_events=5, seed=9))
        assert trace.events[0].action == "fail"

    def test_switch_fraction_produces_switch_events(self, tree8x3):
        spec = ChurnSpec(n_events=24, switch_fraction=1.0, seed=0)
        trace = generate_trace(tree8x3, spec)
        assert any(e.kind == "switch" for e in trace)

    def test_unchurnable_topology_raises(self):
        # XGFT(1; 4; 1): every cable is a host's only uplink and the
        # only switch carries all hosts — nothing is samplable.
        with pytest.raises(FaultError, match="no non-critical"):
            generate_trace(XGFT(1, (4,), (1,)), ChurnSpec(n_events=2))

    def test_describe_lists_events(self, tree8x2):
        trace = generate_trace(tree8x2, ChurnSpec(n_events=3, seed=1))
        text = trace.describe()
        for event in trace:
            assert event.label in text


def _brute_force_pairs(xgft, link_ids):
    """All pair keys with a candidate path through any of ``link_ids``."""
    wanted = set(int(l) for l in np.atleast_1d(link_ids))
    out = set()
    n = xgft.n_procs
    for s in range(n):
        for d in range(n):
            k = int(xgft.nca_level(s, d))
            if k == 0:
                continue
            idx = np.arange(xgft.W(k), dtype=np.int64)[None, :]
            links = path_link_matrix(
                xgft, np.array([s]), np.array([d]), idx, k)
            if wanted & set(links.ravel().tolist()):
                out.add(s * n + d)
    return np.array(sorted(out), dtype=np.int64)


class TestCandidateLinkIndex:
    @pytest.mark.parametrize("make", [
        lambda: m_port_n_tree(4, 2),
        lambda: XGFT(2, (3, 2), (1, 2)),
    ])
    def test_matches_brute_force(self, make):
        xgft = make()
        index = candidate_link_index(xgft)
        for link in range(0, xgft.n_links, 7):
            expected = _brute_force_pairs(xgft, [link])
            assert np.array_equal(index.pairs_of(link), expected)

    def test_pairs_unions_and_dedups(self):
        xgft = m_port_n_tree(4, 2)
        index = candidate_link_index(xgft)
        links = [0, 1, xgft.n_links - 1]
        assert np.array_equal(index.pairs(links),
                              _brute_force_pairs(xgft, links))
        assert index.pairs([]).size == 0

    def test_memoized_per_topology(self):
        xgft = m_port_n_tree(4, 2)
        assert candidate_link_index(xgft) is candidate_link_index(
            m_port_n_tree(4, 2))

    def test_index_shape_invariants(self, tree8x2):
        index = candidate_link_index(tree8x2)
        assert isinstance(index, LinkPairIndex)
        assert index.n_links == tree8x2.n_links
        assert index.indptr.shape == (tree8x2.n_links + 1,)
        assert index.indptr[-1] == index.nnz
        # Within each link's slice, pair keys are sorted and unique.
        for link in range(0, tree8x2.n_links, 11):
            pairs = index.pairs_of(link)
            assert np.all(np.diff(pairs) > 0)


class TestCompiledLinkIndex:
    def test_selected_subset_of_candidates(self, tree8x2):
        # The compiled plan's transpose covers *selected* paths only, so
        # each link's pair set is a subset of the candidate index's.
        plan = compile_scheme(tree8x2, make_scheme(tree8x2, "disjoint:2"))
        selected = plan.link_index()
        candidates = candidate_link_index(tree8x2)
        assert selected.n_links == candidates.n_links
        for link in range(0, tree8x2.n_links, 5):
            sel = set(selected.pairs_of(link).tolist())
            cand = set(candidates.pairs_of(link).tolist())
            assert sel <= cand

    def test_umulti_selected_equals_candidates(self, tree8x2):
        # UMULTI uses every candidate path, so the two transposes agree.
        plan = compile_scheme(tree8x2, make_scheme(tree8x2, "umulti"))
        selected = plan.link_index()
        candidates = candidate_link_index(tree8x2)
        for link in range(tree8x2.n_links):
            assert np.array_equal(selected.pairs_of(link),
                                  candidates.pairs_of(link))

    def test_cached_on_plan(self, tree8x2):
        plan = compile_scheme(tree8x2, make_scheme(tree8x2, "d-mod-k"))
        assert plan.link_index() is plan.link_index()


class TestIncrementalDegradedScheme:
    def test_rejects_stacked_and_mismatched(self, tree8x2, tree8x3):
        base = make_scheme(tree8x2, "disjoint:2")
        inc = IncrementalDegradedScheme(base)
        with pytest.raises(FaultError, match="stack"):
            IncrementalDegradedScheme(inc)
        with pytest.raises(FaultError, match="different topologies"):
            IncrementalDegradedScheme(base, DegradedFabric(tree8x3))

    def test_pristine_is_transparent(self, tree8x2):
        base = make_scheme(tree8x2, "disjoint:2")
        inc = IncrementalDegradedScheme(base)
        s = np.arange(tree8x2.n_procs, dtype=np.int64)
        d = (s + tree8x2.n_procs // 2) % tree8x2.n_procs
        k = int(tree8x2.nca_level(int(s[0]), int(d[0])))
        assert np.array_equal(inc.path_index_matrix(s, d, k),
                              base.path_index_matrix(s, d, k))
        assert inc.path_weight_matrix(s, d, k) is None
        assert inc.route(0, 17).num_paths >= 1

    def test_label_tracks_fabric(self, tree8x2):
        inc = IncrementalDegradedScheme(make_scheme(tree8x2, "disjoint:2"))
        assert inc.label.endswith("@pristine")
        up1, _ = tree8x2.boundary_link_slices(1)
        inc.apply_event(ChurnEvent("fail", "cable", up1.start))
        assert inc.label.endswith("@1c0s")

    def test_disconnecting_event_rolls_back(self, tree8x2):
        base = make_scheme(tree8x2, "disjoint:2")
        inc = IncrementalDegradedScheme(base)
        up0, _ = tree8x2.boundary_link_slices(0)
        critical = ChurnEvent("fail", "cable", up0.start)
        with pytest.raises(DisconnectedPairError):
            inc.apply_event(critical)
        # Fabric and state are exactly as before the event.
        assert inc.fabric.is_pristine
        assert inc.fabric.failed_cables == ()
        s = np.arange(tree8x2.n_procs, dtype=np.int64)
        d = (s + 1) % tree8x2.n_procs
        for k in range(1, tree8x2.h + 1):
            mask = tree8x2.nca_level(s, d) == k
            if not mask.any():
                continue
            assert np.array_equal(
                inc.path_index_matrix(s[mask], d[mask], k),
                base.path_index_matrix(s[mask], d[mask], k))

    def test_rollback_after_partial_damage(self, tree8x2):
        # With one upper cable already failed, a critical host uplink
        # must roll back to the 1-cable state, not to pristine.
        inc = IncrementalDegradedScheme(make_scheme(tree8x2, "disjoint:2"))
        up0, _ = tree8x2.boundary_link_slices(0)
        up1, _ = tree8x2.boundary_link_slices(1)
        inc.apply_event(ChurnEvent("fail", "cable", up1.start))
        before = inc.fabric.link_ok.copy()
        with pytest.raises(DisconnectedPairError):
            inc.apply_event(ChurnEvent("fail", "cable", up0.start))
        assert np.array_equal(inc.fabric.link_ok, before)
        assert inc.fabric.failed_cables == (up1.start,)

    def test_replay_returns_per_event_stats(self, tree8x3):
        inc = IncrementalDegradedScheme(make_scheme(tree8x3, "disjoint:4"))
        trace = generate_trace(tree8x3, ChurnSpec(n_events=6, seed=11))
        stats = inc.replay(trace)
        assert len(stats) == len(trace)
        for st, event in zip(stats, trace):
            assert st.event == event
            assert st.links_changed >= 0
            assert 0 <= st.pairs_recomputed <= st.pairs_total
            assert st.seconds >= 0.0

    def test_single_cable_pairs_reduction_is_at_least_10x(self, tree8x3):
        # THE acceptance gate: on the 8-port 3-tree, re-routing after a
        # single cable failure touches >=10x fewer pairs than a full
        # recompile, asserted through the telemetry counter.
        base = make_scheme(tree8x3, "disjoint:4")
        cable = int(samplable_cables(tree8x3)[0])
        rec = Recorder()
        with use_recorder(rec):
            inc = IncrementalDegradedScheme(base)
            stats = inc.apply_event(ChurnEvent("fail", "cable", cable))
        counted = rec.counters["faults.reroute.pairs_recomputed"]
        assert counted == stats.pairs_recomputed
        assert stats.pairs_total >= 10 * counted
        assert stats.pairs_total == inc.n_pairs

    def test_reroute_telemetry(self, tree8x3):
        rec = Recorder()
        trace = generate_trace(tree8x3, ChurnSpec(n_events=4, seed=5))
        with use_recorder(rec):
            inc = IncrementalDegradedScheme(
                make_scheme(tree8x3, "disjoint:4"))
            stats = inc.replay(trace)
        assert rec.counters["faults.reroute.events"] == len(trace)
        assert rec.counters["faults.reroute.links_changed"] == sum(
            st.links_changed for st in stats)
        assert "faults.reroute.apply" in rec.timers
        assert "faults.reroute.pairs_per_event" in rec.hists

    def test_batch_with_wrong_level_raises(self, tree8x2):
        inc = IncrementalDegradedScheme(make_scheme(tree8x2, "disjoint:2"))
        up1, _ = tree8x2.boundary_link_slices(1)
        inc.apply_event(ChurnEvent("fail", "cable", up1.start))
        s, d = np.array([0]), np.array([1])  # NCA level 1 pair
        with pytest.raises(FaultError, match="NCA level"):
            inc.path_index_matrix(s, d, tree8x2.h)
