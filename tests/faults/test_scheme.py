"""Unit tests for DegradedScheme: transparency, renormalization, errors."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import DisconnectedPairError, FaultError
from repro.faults import DegradedFabric, DegradedScheme, FaultSpec
from repro.routing.compiled import compile_scheme
from repro.routing.factory import make_scheme

SCHEME_SPECS = ("d-mod-k", "s-mod-k", "shift-1:2", "disjoint:2",
                "random:2", "umulti")


@pytest.fixture
def fabric(tree8x2):
    fabric = FaultSpec(link_rate=0.15, seed=11).sample(tree8x2)
    assert fabric.is_connected and not fabric.is_pristine
    return fabric


class TestConstruction:
    def test_refuses_stacking(self, tree8x2, fabric):
        ds = DegradedScheme(make_scheme(tree8x2, "d-mod-k"), fabric)
        with pytest.raises(FaultError, match="stack"):
            DegradedScheme(ds, fabric)

    def test_refuses_compiled_plans(self, tree8x2, fabric):
        plan = compile_scheme(tree8x2, make_scheme(tree8x2, "d-mod-k"))
        with pytest.raises(FaultError, match="preference order"):
            DegradedScheme(plan, fabric)

    def test_refuses_topology_mismatch(self, tree8x2, tree8x3):
        with pytest.raises(FaultError, match="different topologies"):
            DegradedScheme(make_scheme(tree8x3, "d-mod-k"),
                           DegradedFabric(tree8x2))

    def test_label_carries_fabric_tag(self, tree8x2, fabric):
        ds = DegradedScheme(make_scheme(tree8x2, "disjoint:2"), fabric)
        assert ds.label.endswith(f"@{fabric.tag}")

    def test_pickles_for_pool_workers(self, tree8x2, fabric):
        ds = DegradedScheme(make_scheme(tree8x2, "shift-1:2"), fabric)
        clone = pickle.loads(pickle.dumps(ds))
        s = np.arange(4); d = s + 8
        k = int(tree8x2.nca_level(0, 8))
        np.testing.assert_array_equal(
            clone.path_index_matrix(s, d, k), ds.path_index_matrix(s, d, k))


class TestPristineTransparency:
    @pytest.mark.parametrize("spec", SCHEME_SPECS)
    def test_identical_routes_on_pristine_fabric(self, tree8x2, spec):
        base = make_scheme(tree8x2, spec)
        ds = DegradedScheme(base, DegradedFabric(tree8x2))
        n = tree8x2.n_procs
        for s in range(0, n, 7):
            for d in range(0, n, 5):
                if s == d:
                    continue
                assert ds.route(s, d) == base.route(s, d)
        keys = np.arange(n * n, dtype=np.int64)
        s_all, d_all = np.divmod(keys, n)
        k_arr = tree8x2.nca_level(s_all, d_all)
        for k in range(1, tree8x2.h + 1):
            mask = k_arr == k
            np.testing.assert_array_equal(
                ds.path_index_matrix(s_all[mask], d_all[mask], k),
                base.path_index_matrix(s_all[mask], d_all[mask], k))
            assert ds.path_weight_matrix(s_all[mask], d_all[mask], k) is None


class TestRenormalization:
    def test_weights_shift_to_survivors(self, tree8x2):
        # Fail one level-1 cable and find a pair that lost a path.
        up1, _ = tree8x2.boundary_link_slices(1)
        fabric = DegradedFabric(tree8x2, failed_cables=[up1.start])
        base = make_scheme(tree8x2, "umulti")
        ds = DegradedScheme(base, fabric)
        n = tree8x2.n_procs
        x = tree8x2.max_paths
        hit = 0
        for s in range(n):
            for d in range(n):
                if s == d or tree8x2.nca_level(s, d) != tree8x2.h:
                    continue
                rs = ds.route(s, d)
                assert abs(sum(rs.fractions) - 1.0) < 1e-12
                if rs.num_paths < x:
                    hit += 1
                    assert rs.num_paths == x - 1
                    assert all(abs(f - 1 / (x - 1)) < 1e-12
                               for f in rs.fractions)
        assert hit > 0

    def test_padding_never_reaches_route_sets(self, tree8x2, fabric):
        ds = DegradedScheme(make_scheme(tree8x2, "umulti"), fabric)
        for (s, d), rs in ds.all_route_sets().items():
            assert len(set(rs.indices)) == rs.num_paths
            for path in rs.paths(tree8x2):
                assert all(fabric.link_ok[c] for c in path.links)


class TestDisconnection:
    def test_typed_error_with_pair(self, tree8x2):
        up0, _ = tree8x2.boundary_link_slices(0)
        fabric = DegradedFabric(tree8x2, failed_cables=[up0.start])
        ds = DegradedScheme(make_scheme(tree8x2, "d-mod-k"), fabric)
        with pytest.raises(DisconnectedPairError) as exc_info:
            ds.route(0, tree8x2.n_procs - 1)
        err = exc_info.value
        assert (err.src, err.dst) == (0, tree8x2.n_procs - 1)

    def test_batch_selection_raises_too(self, tree8x2):
        up0, _ = tree8x2.boundary_link_slices(0)
        fabric = DegradedFabric(tree8x2, failed_cables=[up0.start])
        ds = DegradedScheme(make_scheme(tree8x2, "umulti"), fabric)
        n = tree8x2.n_procs
        s = np.array([0]); d = np.array([n - 1])
        with pytest.raises(DisconnectedPairError):
            ds.path_index_matrix(s, d, int(tree8x2.nca_level(0, n - 1)))


class TestFlitIntegration:
    def test_flit_sim_runs_on_degraded_fabric(self, tree8x2, fabric):
        from repro.flit import FlitConfig, FlitSimulator, UniformRandom

        ds = DegradedScheme(make_scheme(tree8x2, "disjoint:2"), fabric)
        sim = FlitSimulator(tree8x2, ds,
                            FlitConfig(warmup_cycles=100, measure_cycles=300))
        result = sim.run(UniformRandom(0.1), seed=1)
        assert result.throughput > 0

    def test_flit_sim_rejects_stale_route_table(self, tree8x2, fabric):
        from repro.errors import SimulationError
        from repro.flit import FlitConfig, FlitSimulator

        base = make_scheme(tree8x2, "umulti")
        with pytest.raises(SimulationError, match="failed channel"):
            FlitSimulator(tree8x2, base,
                          FlitConfig(warmup_cycles=10, measure_cycles=10),
                          degraded=fabric)


class TestLftIntegration:
    def test_lfts_skip_dead_paths(self, tree8x2, fabric):
        from repro.ib.lft import compile_lfts, trace_route

        ds = DegradedScheme(make_scheme(tree8x2, "umulti"), fabric)
        tables = compile_lfts(tree8x2, ds)
        # Every realized path index routes its pair without looping.
        for dst in range(0, tree8x2.n_procs, 5):
            src = (dst + tree8x2.M(tree8x2.h - 1)) % tree8x2.n_procs
            for offset in range(tables.lids.lids_per_port):
                trace_route(tables, src, dst, offset)
