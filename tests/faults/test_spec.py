"""Unit tests for FaultSpec: validation, determinism, pools, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import FaultSpec, samplable_cables, samplable_switches
from repro.obs import Recorder, use_recorder


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"link_rate": -0.1}, {"link_rate": 1.0},
        {"switch_rate": -0.01}, {"switch_rate": 1.5},
    ])
    def test_bad_rates(self, kwargs):
        with pytest.raises(FaultError, match="must be in"):
            FaultSpec(**kwargs)

    def test_trivial(self):
        assert FaultSpec().is_trivial
        assert not FaultSpec(link_rate=0.1).is_trivial
        assert not FaultSpec(links=(5,)).is_trivial

    def test_trivial_spec_samples_pristine(self, tree8x2):
        assert FaultSpec().sample(tree8x2).is_pristine


class TestPools:
    def test_host_uplinks_excluded_by_default(self, tree8x2):
        pool = samplable_cables(tree8x2)
        up0, _ = tree8x2.boundary_link_slices(0)
        assert not np.isin(np.arange(up0.start, up0.stop), pool).any()
        full = samplable_cables(tree8x2, spare_critical=False)
        assert len(full) > len(pool)

    def test_level1_switches_excluded_when_w1_is_1(self, tree8x3):
        pool = samplable_switches(tree8x3)
        assert all(level > 1 for level, _ in pool)
        full = samplable_switches(tree8x3, spare_critical=False)
        assert any(level == 1 for level, _ in full)

    def test_pool_sizes(self, tree8x3):
        # Boundaries 1 and 2 are eligible: W(2) = 4, W(3) = 16.
        up1, _ = tree8x3.boundary_link_slices(1)
        up2, _ = tree8x3.boundary_link_slices(2)
        want = (up1.stop - up1.start) + (up2.stop - up2.start)
        assert len(samplable_cables(tree8x3)) == want


class TestSampling:
    def test_deterministic(self, tree8x3):
        spec = FaultSpec(link_rate=0.1, switch_rate=0.05, seed=42)
        a, b = spec.sample(tree8x3), spec.sample(tree8x3)
        assert a.failed_cables == b.failed_cables
        assert a.failed_switches == b.failed_switches
        np.testing.assert_array_equal(a.link_ok, b.link_ok)

    def test_seed_changes_the_draw(self, tree8x3):
        a = FaultSpec(link_rate=0.1, seed=0).sample(tree8x3)
        b = FaultSpec(link_rate=0.1, seed=1).sample(tree8x3)
        assert a.failed_cables != b.failed_cables

    def test_count_follows_rate(self, tree8x3):
        pool = samplable_cables(tree8x3)
        fabric = FaultSpec(link_rate=0.25, seed=3).sample(tree8x3)
        assert fabric.n_failed_cables == round(0.25 * len(pool))
        assert all(c in pool for c in fabric.failed_cables)

    def test_explicit_elements_always_included(self, tree8x3):
        up1, _ = tree8x3.boundary_link_slices(1)
        spec = FaultSpec(link_rate=0.05, links=(up1.start,),
                         switches=((2, 1),), seed=9)
        fabric = spec.sample(tree8x3)
        assert up1.start in fabric.failed_cables
        assert (2, 1) in fabric.failed_switches

    def test_explicit_critical_cable_is_not_filtered(self, tree8x2):
        up0, _ = tree8x2.boundary_link_slices(0)
        fabric = FaultSpec(links=(up0.start,)).sample(tree8x2)
        assert not fabric.is_connected


class TestTelemetry:
    def test_sample_emits_counters_and_event(self, tree8x3):
        rec = Recorder()
        with use_recorder(rec):
            FaultSpec(link_rate=0.1, seed=5).sample(tree8x3)
        assert rec.counters["faults.fabrics_sampled"] == 1
        assert rec.counters["faults.cables_failed"] > 0
        events = rec.events_of("faults_injected")
        assert len(events) == 1
        assert events[0]["link_rate"] == 0.1
        assert events[0]["cables"]
        assert 0.0 < events[0]["alive_fraction"] < 1.0

    def test_noop_recorder_costs_nothing(self, tree8x3):
        fabric = FaultSpec(link_rate=0.1, seed=5).sample(tree8x3)
        assert fabric.n_failed_cables > 0
