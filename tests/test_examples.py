"""Smoke tests: the example scripts run and print their key findings.

Each example is executed in-process (importing its ``main``) so failures
surface with real tracebacks; the slow flit/figure-style studies are
covered by the benchmarks instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        del sys.modules[spec.name]
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "XGFT(3; 4,4,8; 1,4,4)" in out
    assert "umulti" in out and "ratio 1.000" in out
    assert "throughput" in out


def test_path_enumeration(capsys):
    out = _run_example("path_enumeration", capsys)
    assert "Path 7" in out
    assert "(7, 1, 3, 5)" in out  # the paper's disjoint set
    assert out.count("Path") >= 8


def test_adversarial_dmodk(capsys):
    out = _run_example("adversarial_dmodk", capsys)
    assert "d-mod-k" in out
    assert "umulti" in out
    # d-mod-k's ratio equals prod(w) = 4 on the suggested topology.
    assert "4.00" in out


def test_infiniband_lid_budget(capsys):
    out = _run_example("infiniband_lid_budget", capsys)
    assert "INFEASIBLE" in out  # unlimited multipath on the 24-port 3-tree
    assert "LID" in out
    assert "4 distinct paths" in out


def test_fault_tolerant_fabric(capsys):
    out = _run_example("fault_tolerant_fabric", capsys)
    assert "unreachable pairs after failure: 0" in out
    assert "re-routed" in out


def test_collective_replay(capsys):
    out = _run_example("collective_replay", capsys)
    assert "992/992" in out  # every message of every phase delivered
    assert "d-mod-k" in out and "disjoint:4" in out
