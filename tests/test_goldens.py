"""Golden-file regression tests: pinned MLOAD / PERF numbers.

For two fixed topologies, a fixed permutation protocol and a fixed fault
set, the average maximum permutation load and oblivious-performance
ratio of every scheme family are pinned in ``tests/goldens/*.json``.
Both engines must reproduce the pinned numbers, so any change to path
enumeration, scheme selection, fault masking or either evaluator that
shifts results is caught immediately.

Legitimate changes (a new scheme default, a fixed enumeration bug)
regenerate the files with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --regen-goldens

then commit the diff *with a justification* — see docs/testing.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.faults import DegradedScheme, FaultSpec
from repro.flow.sampling import PermutationStudy
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT

GOLDEN_FILE = Path(__file__).parent / "goldens" / "fault_mloads.json"

SCHEME_SPECS = ("d-mod-k", "s-mod-k", "shift-1:2", "disjoint:2",
                "random:2", "umulti")

TOPOLOGIES = {
    "xgft:2;4,4;1,4": XGFT(2, (4, 4), (1, 4)),
    "mport:8x3": m_port_n_tree(8, 3),
}

#: fixed protocol: one 16-sample round, seed pinned -> fully deterministic
STUDY_KWARGS = dict(initial_samples=16, max_samples=16, rel_precision=0.5,
                    seed=123)
FAULT_SPEC = FaultSpec(link_rate=0.05, seed=1)


def _fabrics(xgft):
    fabric = FAULT_SPEC.sample(xgft)
    assert fabric.is_connected, "golden fault spec must stay connected"
    return {"pristine": None, fabric.tag: fabric}


def compute_goldens(engine: str) -> dict:
    out: dict = {}
    for topo_key, xgft in TOPOLOGIES.items():
        study = PermutationStudy(xgft, engine=engine, **STUDY_KWARGS)
        out[topo_key] = {}
        for fabric_key, fabric in _fabrics(xgft).items():
            entry = out[topo_key][fabric_key] = {}
            for spec in SCHEME_SPECS:
                scheme = make_scheme(xgft, spec)
                if fabric is not None:
                    scheme = DegradedScheme(scheme, fabric)
                result = study.run(scheme)
                entry[spec] = {
                    "mload": round(result.mean, 12),
                    "ratio": round(result.mean_ratio, 12),
                }
    return out


def test_pinned_mloads_and_ratios(request):
    reference = compute_goldens("reference")
    compiled = compute_goldens("compiled")

    # Engine parity is part of the pin: one golden covers both engines.
    assert reference == compiled

    if request.config.getoption("--regen-goldens"):
        GOLDEN_FILE.parent.mkdir(exist_ok=True)
        GOLDEN_FILE.write_text(
            json.dumps(reference, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_FILE}")

    assert GOLDEN_FILE.exists(), (
        f"{GOLDEN_FILE} missing; run with --regen-goldens to create it"
    )
    expected = json.loads(GOLDEN_FILE.read_text())
    assert reference.keys() == expected.keys()
    for topo_key in expected:
        for fabric_key, schemes in expected[topo_key].items():
            for spec, values in schemes.items():
                got = reference[topo_key][fabric_key][spec]
                for field in ("mload", "ratio"):
                    assert got[field] == pytest.approx(
                        values[field], abs=1e-9), (
                        f"{topo_key}/{fabric_key}/{spec}/{field} drifted: "
                        f"{got[field]} != {values[field]} "
                        f"(--regen-goldens if intentional)"
                    )


def test_golden_file_is_committed_and_well_formed():
    data = json.loads(GOLDEN_FILE.read_text())
    assert set(data) == set(TOPOLOGIES)
    for topo_key, fabrics in data.items():
        assert "pristine" in fabrics
        assert len(fabrics) == 2
        for schemes in fabrics.values():
            assert set(schemes) == set(SCHEME_SPECS)
            for values in schemes.values():
                assert values["mload"] > 0
                assert values["ratio"] >= 1.0 - 1e-9
