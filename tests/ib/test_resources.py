"""Resource accounting tests: the paper's motivation quantified."""

from repro.ib.resources import resource_report
from repro.topology.variants import m_port_n_tree


class TestResourceReport:
    def test_small_fabric_feasible(self):
        r = resource_report(m_port_n_tree(8, 3), 8)
        assert r.feasible
        assert r.lmc == 3
        assert r.total_lids == 1024
        assert 0 < r.lid_space_fraction < 0.05

    def test_ranger_unlimited_infeasible_by_lmc(self):
        # The paper's motivating example: 144 paths on the 24-port 3-tree.
        xgft = m_port_n_tree(24, 3)
        r = resource_report(xgft, xgft.max_paths)
        assert not r.feasible
        assert "LMC" in r.limit_reason

    def test_large_fabric_lid_space_binds_first(self):
        r = resource_report(m_port_n_tree(24, 3), 16)
        assert not r.feasible
        assert "LID space" in r.limit_reason
        assert r.lid_space_fraction > 1.0

    def test_limited_multipath_is_the_fix(self):
        # K = 8 on Ranger-scale fits: exactly the paper's argument for
        # limited multi-path routing.
        r = resource_report(m_port_n_tree(24, 3), 8)
        assert r.feasible

    def test_row_renders(self):
        row = resource_report(m_port_n_tree(8, 3), 4).row()
        assert row[0] == 4
        assert row[-1] == "yes"
