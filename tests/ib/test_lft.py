"""Linear forwarding tables: traces, scheme fidelity, path diversity."""

import numpy as np
import pytest

from repro.errors import ResourceError, RoutingError
from repro.ib.lft import compile_lfts, effective_paths, trace_route
from repro.routing.factory import make_scheme
from repro.routing.path import build_path
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT


@pytest.fixture
def tables8x2(tree8x2):
    return compile_lfts(tree8x2, make_scheme(tree8x2, "disjoint:4"))


class TestTraces:
    def test_all_pairs_all_offsets_reach_destination(self, tree8x2, tables8x2):
        n = tree8x2.n_procs
        for s in range(0, n, 5):
            for d in range(n):
                if s == d:
                    continue
                for off in range(tables8x2.lids.lids_per_port):
                    assert trace_route(tables8x2, s, d, off)[-1] == (0, d)

    def test_trace_length_is_shortest(self, tree8x2, tables8x2):
        # LFT forwarding stops climbing at the NCA: path length 2k.
        for s, d in ((0, 1), (0, 31)):
            k = tree8x2.nca_level(s, d)
            hops = trace_route(tables8x2, s, d, 0)
            assert len(hops) == 2 * k + 1

    def test_top_level_trace_matches_scheme_path(self, tree8x3):
        """For top-level pairs, the LID-realized route must equal the
        scheme's own path for the corresponding path index."""
        scheme = make_scheme(tree8x3, "disjoint:8")
        tables = compile_lfts(tree8x3, scheme)
        d = 127
        for off in range(8):
            t = int(tables.path_index[d, off])
            expected = build_path(tree8x3, 0, d, t)
            traced = trace_route(tables, 0, d, off)
            assert tuple(traced) == expected.nodes

    def test_dmodk_realization_single_path(self, tree8x2):
        tables = compile_lfts(tree8x2, make_scheme(tree8x2, "d-mod-k"))
        assert tables.lids.lids_per_port == 1
        scheme = make_scheme(tree8x2, "d-mod-k")
        for s, d in ((0, 31), (7, 12), (3, 28)):
            t = scheme.route(s, d).indices[0]
            assert tuple(trace_route(tables, s, d, 0)) == \
                build_path(tree8x2, s, d, t).nodes


class TestPortFor:
    def test_down_port_when_destination_below(self, tree8x2, tables8x2):
        lid = tables8x2.lids.lid(0, 0)
        # Leaf switch 0 hosts node 0: must route down on the child port.
        port = tables8x2.port_for(1, 0, lid)
        assert port >= tree8x2.n_up_ports(1)

    def test_top_switch_never_routes_up(self, tree8x2, tables8x2):
        lid = tables8x2.lids.lid(0, 0)
        port = tables8x2.port_for(tree8x2.h, 0, lid)
        assert port < tree8x2.n_ports(tree8x2.h)


class TestEffectivePaths:
    def test_disjoint_keeps_diversity_nearby(self, tree8x3):
        tables = compile_lfts(tree8x3, make_scheme(tree8x3, "disjoint:4"))
        # (0, 5): NCA level 2, 4 possible paths.
        assert effective_paths(tables, 0, 5) == 4

    def test_shift1_collapses_nearby(self, tree8x3):
        tables = compile_lfts(tree8x3, make_scheme(tree8x3, "shift-1:4"))
        # shift-1's 4 consecutive full-height indices share level-2
        # digit prefixes: fewer distinct nearby paths.
        assert effective_paths(tables, 0, 5) < 4

    def test_self_pair(self, tree8x3):
        tables = compile_lfts(tree8x3, make_scheme(tree8x3, "d-mod-k"))
        assert effective_paths(tables, 3, 3) == 1


class TestCompileErrors:
    def test_rejects_degenerate_top(self):
        xgft = XGFT(2, (4, 1), (1, 4))
        with pytest.raises(ResourceError):
            compile_lfts(xgft, make_scheme(xgft, "d-mod-k"))

    def test_rejects_infeasible_k(self):
        xgft = m_port_n_tree(24, 3)
        with pytest.raises(ResourceError):
            compile_lfts(xgft, make_scheme(xgft, "disjoint:144"))

    def test_explicit_k_override(self, tree8x2):
        tables = compile_lfts(tree8x2, make_scheme(tree8x2, "disjoint:4"),
                              k_paths=2)
        assert tables.lids.lids_per_port == 2
