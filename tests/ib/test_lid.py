"""LID assignment and LMC budget tests."""

import pytest

from repro.errors import ResourceError
from repro.ib.lid import (
    BASE_LID,
    MAX_LMC,
    UNICAST_LIDS,
    LidAssignment,
    assign_lids,
    lmc_for_paths,
)
from repro.topology.variants import m_port_n_tree


class TestLmcForPaths:
    @pytest.mark.parametrize(
        "k,lmc", [(1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (128, 7)]
    )
    def test_values(self, k, lmc):
        assert lmc_for_paths(k) == lmc

    def test_over_cap_rejected(self):
        # The paper's Ranger case: 144 paths cannot be realized.
        with pytest.raises(ResourceError):
            lmc_for_paths(129)
        with pytest.raises(ResourceError):
            lmc_for_paths(144)

    def test_rejects_zero(self):
        with pytest.raises(ResourceError):
            lmc_for_paths(0)


class TestLidAssignment:
    def test_consecutive_blocks(self):
        a = LidAssignment(4, lmc=2)
        assert a.lids_per_port == 4
        assert a.base_lid(0) == BASE_LID
        assert a.base_lid(1) == BASE_LID + 4
        assert a.lid(2, 3) == BASE_LID + 11

    def test_decode_inverts(self):
        a = LidAssignment(8, lmc=3)
        for node in range(8):
            for off in range(8):
                assert a.decode(a.lid(node, off)) == (node, off)

    def test_bad_offset(self):
        a = LidAssignment(4, lmc=1)
        with pytest.raises(ResourceError):
            a.lid(0, 2)

    def test_bad_node(self):
        a = LidAssignment(4, lmc=1)
        with pytest.raises(ResourceError):
            a.base_lid(4)

    def test_decode_unassigned(self):
        a = LidAssignment(4, lmc=0)
        with pytest.raises(ResourceError):
            a.decode(0)
        with pytest.raises(ResourceError):
            a.decode(BASE_LID + 4)


class TestAssignLids:
    def test_feasible(self):
        xgft = m_port_n_tree(8, 3)
        a = assign_lids(xgft, 8)
        assert a.lmc == 3
        assert a.total_lids == 128 * 8

    def test_lid_space_exhaustion(self):
        xgft = m_port_n_tree(24, 3)  # 3456 nodes
        with pytest.raises(ResourceError):
            assign_lids(xgft, 16)  # 55296 LIDs > 49151

    def test_lmc_cap(self):
        xgft = m_port_n_tree(24, 3)
        with pytest.raises(ResourceError):
            assign_lids(xgft, xgft.max_paths)  # 144 paths

    def test_constants_sane(self):
        assert MAX_LMC == 7
        assert UNICAST_LIDS == 0xBFFF
