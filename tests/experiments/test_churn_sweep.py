"""Tests for the churn-sweep experiment: shape, caching, golden pins."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import churn_sweep
from repro.obs import Recorder, use_recorder
from repro.runner.cache import ResultCache
from repro.topology.variants import m_port_n_tree

GOLDEN_FILE = Path(__file__).parent.parent / "goldens" / "churn_sweep.json"

SMALL = dict(topology=m_port_n_tree(4, 2), fidelity_name="fast",
             curves=("d-mod-k", "disjoint:2"), n_events=4)


class TestRun:
    def test_shape_and_trajectory(self):
        result = churn_sweep.run(**SMALL)
        assert result.curves == ("d-mod-k", "disjoint:2")
        assert len(result.points) == 5  # pristine baseline + 4 events
        baseline = result.points[0]
        assert baseline.step == 0 and baseline.event == ""
        assert baseline.fabric == "pristine"
        assert baseline.pairs_recomputed == 0
        for i, point in enumerate(result.points[1:], start=1):
            assert point.step == i
            assert point.event.startswith(("-", "+"))
            assert point.links_changed > 0
            assert 0 < point.pairs_recomputed <= result.pairs_total
            for curve in result.curves:
                assert point.mloads[curve] > 0
                assert point.reroute_ms[curve] >= 0.0
        for event in result.points[1:]:
            assert event.event in result.trace

    def test_deterministic(self):
        assert churn_sweep.run(**SMALL).rows() == \
               churn_sweep.run(**SMALL).rows()

    def test_churn_seed_changes_trace(self):
        a = churn_sweep.run(**SMALL, churn_seed=0)
        b = churn_sweep.run(**SMALL, churn_seed=1)
        assert a.trace != b.trace

    def test_n_events_defaults_by_fidelity(self):
        result = churn_sweep.run(
            topology=m_port_n_tree(4, 2), fidelity_name="fast",
            curves=("d-mod-k",))
        assert len(result.points) == \
            churn_sweep.EVENTS_BY_FIDELITY["fast"] + 1

    def test_render_mentions_curves_and_steps(self):
        text = churn_sweep.run(**SMALL).render()
        assert "Churn sweep" in text
        assert "d-mod-k" in text and "disjoint:2" in text
        assert "(pristine)" in text
        assert "event step" in text

    def test_telemetry_events(self):
        rec = Recorder()
        with use_recorder(rec):
            result = churn_sweep.run(**SMALL)
        points = rec.events_of("churn_sweep_point")
        assert len(points) == len(result.points)
        assert points[0]["fabric"] == "pristine"
        assert rec.counters["faults.reroute.events"] == \
            SMALL["n_events"] * len(SMALL["curves"])


class TestCaching:
    def test_warm_replay_is_free_and_identical(self, tmp_path):
        cold = churn_sweep.run(**SMALL, cache=ResultCache(tmp_path))
        assert cold.samples_used > 0
        warm = churn_sweep.run(**SMALL, cache=ResultCache(tmp_path))
        assert warm.samples_used == 0
        assert cold.rows() == warm.rows()

    def test_longer_trace_replays_shared_prefix(self, tmp_path):
        short = dict(SMALL, n_events=2)
        churn_sweep.run(**short, cache=ResultCache(tmp_path))
        rec = Recorder()
        with use_recorder(rec):
            churn_sweep.run(**SMALL, cache=ResultCache(tmp_path))
        # baseline + first 2 events per curve came from the cache
        assert rec.counters["runner.cache_hit"] == \
            3 * len(SMALL["curves"])

    def test_traffic_seed_misses_cache(self, tmp_path):
        churn_sweep.run(**SMALL, cache=ResultCache(tmp_path))
        again = churn_sweep.run(**SMALL, seed=999,
                                cache=ResultCache(tmp_path))
        assert again.samples_used > 0


def _golden_payload():
    result = churn_sweep.run(fidelity_name="fast", churn_seed=0)
    return {
        "topology": result.topology,
        "curves": list(result.curves),
        "trace": result.trace,
        "pairs_total": result.pairs_total,
        "points": [
            {
                "step": p.step,
                "event": p.event,
                "fabric": p.fabric,
                "links_changed": p.links_changed,
                "pairs_recomputed": p.pairs_recomputed,
                "mloads": {k: round(v, 12) for k, v in p.mloads.items()},
            }
            for p in result.points
        ],
    }


def test_golden_trajectory(request):
    """One seeded fast-fidelity trajectory on the 8-port 3-tree, pinned
    field by field (wall-clock latencies excluded — see ChurnPoint)."""
    payload = _golden_payload()
    if request.config.getoption("--regen-goldens"):
        GOLDEN_FILE.parent.mkdir(exist_ok=True)
        GOLDEN_FILE.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_FILE}")
    assert GOLDEN_FILE.exists(), (
        f"{GOLDEN_FILE} missing; run with --regen-goldens to create it"
    )
    expected = json.loads(GOLDEN_FILE.read_text())
    assert payload["topology"] == expected["topology"]
    assert payload["curves"] == expected["curves"]
    assert payload["trace"] == expected["trace"]
    assert payload["pairs_total"] == expected["pairs_total"]
    assert len(payload["points"]) == len(expected["points"])
    for got, want in zip(payload["points"], expected["points"]):
        for field in ("step", "event", "fabric", "links_changed",
                      "pairs_recomputed"):
            assert got[field] == want[field], (
                f"step {want['step']}: {field} drifted "
                f"(--regen-goldens if intentional)")
        for curve, value in want["mloads"].items():
            assert got["mloads"][curve] == pytest.approx(value, abs=1e-9), (
                f"step {want['step']}: {curve} MLOAD drifted: "
                f"{got['mloads'][curve]} != {value} "
                f"(--regen-goldens if intentional)")


def test_golden_file_is_committed_and_well_formed():
    data = json.loads(GOLDEN_FILE.read_text())
    assert data["points"][0]["fabric"] == "pristine"
    assert len(data["points"]) >= 2
    assert data["pairs_total"] > 0
    for point in data["points"]:
        assert set(point["mloads"]) == set(data["curves"])
