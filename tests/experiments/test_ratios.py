"""Oblivious-ratio experiment tests."""

import pytest

from repro.experiments import ratios
from repro.traffic.adversarial import suggest_theorem2_topology


@pytest.fixture(scope="module")
def result():
    return ratios.run(topology=suggest_theorem2_topology(2, 4),
                      ks=(2,), permutation_samples=15, seed=1)


class TestRatios:
    def test_umulti_bound_is_one(self, result):
        by_label = {r[0]: r for r in result.rows}
        assert by_label["umulti"][1] == pytest.approx(1.0)

    def test_dmodk_bound_reaches_prod_w(self, result):
        by_label = {r[0]: r for r in result.rows}
        assert by_label["d-mod-k"][1] >= 4.0

    def test_multipath_shrinks_worst_case(self, result):
        by_label = {r[0]: r for r in result.rows}
        assert by_label["disjoint(2)"][1] < by_label["d-mod-k"][1]

    def test_render(self, result):
        text = result.render()
        assert "PERF lower bound" in text
        assert "witness" in text

    def test_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "ratios" in EXPERIMENTS
