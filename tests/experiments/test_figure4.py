"""Figure 4 experiment: protocol and expected shape at small scale."""

import pytest

from repro.experiments.figure4 import PANELS, Figure4Result, run_panel
from repro.topology.variants import m_port_n_tree


@pytest.fixture(scope="module")
def small_result():
    # Small stand-in with the same structure as panel (b): 3-level tree.
    return run_panel("b", topology=m_port_n_tree(4, 3), fidelity_name="fast",
                     dense_k=True, seed=1)


class TestPanels:
    def test_panel_topologies_match_paper(self):
        assert PANELS["a"][0] == m_port_n_tree(16, 2)
        assert PANELS["b"][0] == m_port_n_tree(16, 3)
        assert PANELS["c"][0] == m_port_n_tree(24, 2)
        assert PANELS["d"][0] == m_port_n_tree(24, 3)

    def test_small_stand_ins_share_structure(self):
        from repro.experiments.figure4 import SMALL_PANELS

        for panel, (small, _) in SMALL_PANELS.items():
            assert small.h == PANELS[panel][0].h


class TestShape(object):
    def test_k_axis_full(self, small_result):
        xgft = m_port_n_tree(4, 3)
        assert small_result.ks == tuple(range(1, xgft.max_paths + 1))

    def test_dmodk_flat_reference(self, small_result):
        assert small_result.dmodk > 1.0

    def test_heuristics_decrease_overall(self, small_result):
        """Average max load at K = max is (weakly) below K = 1 for every
        heuristic, and equals the optimum-achieving UMULTI value."""
        for name, series in small_result.series.items():
            assert series[-1] <= series[0] + 1e-9, name
        finals = {round(s[-1], 6) for s in small_result.series.values()}
        assert len(finals) == 1  # all coincide with UMULTI at K=max

    def test_disjoint_no_worse_than_shift(self, small_result):
        """On 3-level trees the disjoint heuristic dominates shift-1
        (allowing sampling noise at a couple of points)."""
        dj = small_result.series["disjoint"]
        sh = small_result.series["shift-1"]
        worse = sum(1 for a, b in zip(dj, sh) if a > b * 1.05)
        assert worse <= len(dj) // 4

    def test_k1_matches_dmodk_for_based_heuristics(self, small_result):
        assert small_result.series["shift-1"][0] == pytest.approx(
            small_result.dmodk, rel=0.15
        )

    def test_render_contains_table_and_chart(self, small_result):
        text = small_result.render()
        assert "Figure 4(b)" in text
        assert "legend:" in text
        assert "d-mod-k" in text


class TestRows:
    def test_rows_align_with_ks(self, small_result):
        rows = small_result.rows()
        assert len(rows) == len(small_result.ks)
        assert rows[0][0] == 1


class TestEngines:
    def test_compiled_engine_reproduces_reference_panel(self):
        """Both engines draw the same permutation stream, so a whole
        panel agrees to float tolerance."""
        import numpy as np

        xgft = m_port_n_tree(4, 2)
        kwargs = dict(topology=xgft, fidelity_name="fast", dense_k=True,
                      seed=7, random_seeds=(0, 1))
        ref = run_panel("a", **kwargs)
        comp = run_panel("a", engine="compiled", **kwargs)
        assert comp.ks == ref.ks
        assert comp.dmodk == pytest.approx(ref.dmodk, abs=1e-9)
        assert set(comp.series) == set(ref.series)
        for name in ref.series:
            np.testing.assert_allclose(comp.series[name], ref.series[name],
                                       atol=1e-9)
