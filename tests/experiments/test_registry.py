"""Experiment registry and the theorem/resource experiments."""

import pytest

from repro.errors import ReproError
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    run_experiment,
    run_instrumented,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        for name in ("figure4a", "figure4b", "figure4c", "figure4d",
                     "table1", "figure5", "theorems", "resources"):
            assert name in EXPERIMENTS

    def test_get_unknown_raises(self):
        with pytest.raises(ReproError):
            get_experiment("figure9")

    def test_descriptions_nonempty(self):
        for exp in EXPERIMENTS.values():
            assert exp.description


class TestEngineForwarding:
    def test_flow_level_experiments_are_engine_aware(self):
        for name in ("figure4a", "figure4b", "figure4c", "figure4d", "ratios"):
            assert get_experiment(name).engine_aware, name

    def test_flit_experiments_are_engine_aware(self):
        # table1/figure5 accept --engine {reference,batched}
        for name in ("table1", "figure5"):
            assert get_experiment(name).engine_aware, name

    def test_exact_experiments_are_not_engine_aware(self):
        for name in ("theorems", "resources", "exact-ratios"):
            assert not get_experiment(name).engine_aware, name

    def test_unaware_experiment_rejects_compiled_engine(self):
        with pytest.raises(ReproError, match="does not support"):
            run_instrumented("resources", engine="compiled")

    def test_unaware_experiment_accepts_reference_engine(self):
        run = run_instrumented("resources", engine="reference")
        assert run.result is not None


class TestTheoremsExperiment:
    def test_runs_and_holds(self):
        result = run_experiment("theorems", samples=2)
        assert result.all_hold
        assert "ALL HOLD" in result.render()


class TestResourcesExperiment:
    def test_runs_and_reports_infeasibility(self):
        result = run_experiment("resources")
        text = result.render()
        assert "144" in text
        assert "NO" in text  # at least one infeasible row
        assert "distinct paths" in text
