"""Figure 5 experiment at reduced scale."""

import math

import pytest

from repro.experiments import figure5
from repro.flit.config import FlitConfig
from repro.topology.variants import m_port_n_tree


@pytest.fixture(scope="module")
def result():
    cfg = FlitConfig(warmup_cycles=300, measure_cycles=1500, drain_cycles=2000)
    return figure5.run(
        fidelity_name="fast",
        topology=m_port_n_tree(4, 2),
        loads=(0.2, 0.5, 0.8),
        config=cfg,
        curves=("d-mod-k", "disjoint:2", "random:1"),
    )


class TestShape:
    def test_all_curves_present(self, result):
        assert set(result.sweeps) == {"d-mod-k", "disjoint:2", "random:1"}

    def test_delay_increases_with_load(self, result):
        for spec, sweep in result.sweeps.items():
            delays = [d for d in sweep.delays if not math.isnan(d)]
            assert delays[0] < delays[-1], spec

    def test_rows_match_loads(self, result):
        rows = result.rows()
        assert [r[0] for r in rows] == [0.2, 0.5, 0.8]
        assert all(len(r) == 4 for r in rows)

    def test_render(self, result):
        text = result.render()
        assert "Figure 5" in text
        assert "legend:" in text


def test_default_curves_match_paper():
    assert figure5.CURVES == (
        "d-mod-k", "disjoint:2", "disjoint:8", "shift-1:2", "shift-1:8",
        "random:1", "random:2", "random:8",
    )
