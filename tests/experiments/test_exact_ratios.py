"""Exact-ratio experiment wrapper tests."""

import pytest

from repro.experiments import exact_ratios
from repro.topology.xgft import XGFT


@pytest.fixture(scope="module")
def result():
    return exact_ratios.run(topology=XGFT(2, (2, 4), (1, 2)), ks=(2,))


class TestExactRatiosExperiment:
    def test_w2_over_k_law(self, result):
        by = result.by_label()
        assert by["d-mod-k"] == pytest.approx(2.0, abs=1e-6)
        assert by["disjoint(2)"] == pytest.approx(1.0, abs=1e-6)
        assert by["umulti"] == pytest.approx(1.0, abs=1e-6)

    def test_smodk_included(self, result):
        assert "s-mod-k" in result.by_label()

    def test_render(self, result):
        assert "exact PERF" in result.render()

    def test_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "exact-ratios" in EXPERIMENTS
