"""Table 1 experiment at reduced scale: shape checks."""

import pytest

from repro.experiments import table1
from repro.flit.config import FlitConfig
from repro.topology.variants import m_port_n_tree


@pytest.fixture(scope="module")
def result():
    cfg = FlitConfig(warmup_cycles=300, measure_cycles=1200, drain_cycles=1500)
    return table1.run(
        fidelity_name="fast",
        topology=m_port_n_tree(4, 3),
        loads=(0.5, 0.8),
        config=cfg,
        ks=(1, 4),
        random_seeds=(0,),
    )


class TestShape:
    def test_rows_cover_ks(self, result):
        rows = result.rows()
        assert [r[0] for r in rows] == [1, 4]

    def test_throughputs_in_range(self, result):
        for rows in result.cells.values():
            for thr in rows:
                assert 0.0 < thr <= 1.0
        assert 0.0 < result.dmodk <= 1.0

    def test_multipath_k4_not_collapsed(self, result):
        """At K=4 every heuristic should be in the same ballpark as
        d-mod-k (the fine ordering needs full-fidelity runs)."""
        for name in table1.HEURISTICS:
            assert result.cells[name][1] > 0.5 * result.dmodk

    def test_render(self, result):
        text = result.render()
        assert "Num-Path" in text
        assert "disjoint" in text
