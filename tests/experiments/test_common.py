"""Experiment plumbing: fidelity presets, K grids, scheme families."""

import pytest

from repro.experiments.common import (
    FAST,
    FULL,
    NORMAL,
    RANDOM_SEEDS,
    fidelity,
    heuristic_family,
    k_grid,
)
from repro.topology.variants import m_port_n_tree


class TestFidelity:
    def test_presets_by_name(self):
        assert fidelity("fast") is FAST
        assert fidelity("normal") is NORMAL
        assert fidelity("full") is FULL

    def test_passthrough(self):
        assert fidelity(FAST) is FAST

    def test_unknown(self):
        with pytest.raises(ValueError):
            fidelity("ludicrous")

    def test_full_matches_paper_protocol(self):
        assert FULL.rel_precision == 0.01  # 1% of the mean
        assert FULL.initial_samples >= 2


class TestKGrid:
    def test_dense_small(self):
        assert k_grid(4) == (1, 2, 3, 4)

    def test_sparse_large_ends_at_max(self):
        grid = k_grid(144)
        assert grid[0] == 1 and grid[-1] == 144
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_dense_flag(self):
        assert k_grid(20, dense=True) == tuple(range(1, 21))

    def test_64_includes_power_points(self):
        grid = k_grid(64)
        for k in (1, 2, 4, 8, 16, 32, 64):
            assert k in grid


class TestHeuristicFamily:
    def test_random_expands_seeds(self, tree8x2):
        fam = heuristic_family(tree8x2, "random", 2)
        assert len(fam) == len(RANDOM_SEEDS)
        assert {s.seed for s in fam} == set(RANDOM_SEEDS)

    def test_deterministic_single(self, tree8x2):
        fam = heuristic_family(tree8x2, "disjoint", 4)
        assert len(fam) == 1
        assert fam[0].label == "disjoint(4)"
