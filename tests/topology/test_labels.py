"""Node labelling: digit tuples, radices, paper-style rendering."""

import pytest

from repro.errors import TopologyError
from repro.topology.xgft import XGFT

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestRadices:
    def test_figure2_topology_radices(self):
        # Figure 2 labels XGFT(3; 3,2,2; 1,2,3): digit i has radix w_i at
        # or below the node's level, m_i above it.
        x = XGFT(3, (3, 2, 2), (1, 2, 3))
        assert x.node_radices(0) == (3, 2, 2)
        assert x.node_radices(1) == (1, 2, 2)
        assert x.node_radices(2) == (1, 2, 2)
        assert x.node_radices(3) == (1, 2, 3)

    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_radix_capacity_equals_level_size(self, xgft):
        for l in range(xgft.h + 1):
            cap = 1
            for r in xgft.node_radices(l):
                cap *= r
            assert cap == xgft.level_size(l)


class TestDigitCodec:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_roundtrip_every_node(self, xgft):
        for l in range(xgft.h + 1):
            for idx in range(xgft.level_size(l)):
                digits = xgft.node_digits(l, idx)
                assert xgft.node_index(l, digits) == idx

    def test_proc_digits_little_endian_in_m(self):
        x = XGFT(3, (4, 4, 4), (1, 4, 2))
        assert x.node_digits(0, 63) == (3, 3, 3)
        assert x.node_digits(0, 1) == (1, 0, 0)
        assert x.node_digits(0, 4) == (0, 1, 0)

    def test_proc_digit_accessor(self):
        x = XGFT(3, (4, 4, 8), (1, 4, 4))
        assert x.proc_digit(63, 1) == 3
        assert x.proc_digit(63, 2) == 3
        assert x.proc_digit(63, 3) == 3
        assert x.proc_digit(64, 3) == 4
        with pytest.raises(TopologyError):
            x.proc_digit(0, 0)
        with pytest.raises(TopologyError):
            x.proc_digit(0, 4)

    def test_label_rendering_big_endian(self):
        x = XGFT(3, (4, 4, 4), (1, 4, 2))
        # The paper writes (l, a_h, ..., a_1).
        assert x.node_label(0, 63) == "(0, 3, 3, 3)"
        assert x.node_label(0, 1) == "(0, 0, 0, 1)"
