"""Adjacency: parent/child arithmetic vs the label-matching rule."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.xgft import XGFT

from tests.conftest import TOPOLOGY_POOL, pool_ids


def labels_adjacent(xgft, l, lower_digits, upper_digits):
    """Paper's rule: tuples agree at every digit except digit l+1."""
    return all(
        a == b
        for i, (a, b) in enumerate(zip(lower_digits, upper_digits), start=1)
        if i != l + 1
    )


class TestParentChild:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_parent_satisfies_label_rule(self, xgft):
        for l in range(xgft.h):
            for idx in range(xgft.level_size(l)):
                for port in range(xgft.n_up_ports(l)):
                    parent = int(xgft.parent(l, idx, port))
                    assert 0 <= parent < xgft.level_size(l + 1)
                    assert labels_adjacent(
                        xgft, l,
                        xgft.node_digits(l, idx),
                        xgft.node_digits(l + 1, parent),
                    )
                    # The parent's digit l+1 equals the port (left-to-right
                    # port ordering).
                    assert xgft.node_digits(l + 1, parent)[l] == port

    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_child_inverts_parent(self, xgft):
        for l in range(xgft.h):
            for idx in range(xgft.level_size(l)):
                my_digit = xgft.node_digits(l, idx)[l]
                for port in range(xgft.n_up_ports(l)):
                    parent = int(xgft.parent(l, idx, port))
                    assert int(xgft.child(l + 1, parent, my_digit)) == idx

    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_parent_and_child_counts(self, xgft):
        for l in range(xgft.h):
            assert len(xgft.parents(l, 0)) == xgft.w[l]
        for l in range(1, xgft.h + 1):
            assert len(xgft.children(l, 0)) == xgft.m[l - 1]

    def test_vectorized_parent_matches_scalar(self):
        xgft = XGFT(3, (3, 2, 4), (1, 2, 3))
        l = 1
        n = xgft.level_size(l)
        idx = np.arange(n)
        for port in range(xgft.n_up_ports(l)):
            vec = xgft.parent(l, idx, port)
            scalar = [int(xgft.parent(l, i, port)) for i in range(n)]
            assert np.array_equal(vec, scalar)

    def test_errors(self):
        xgft = XGFT(2, (2, 2), (1, 2))
        with pytest.raises(TopologyError):
            xgft.parent(2, 0, 0)  # top level has no parents
        with pytest.raises(TopologyError):
            xgft.child(0, 0, 0)  # processing nodes have no children


class TestAreConnected:
    def test_connected_example(self, fig3_xgft):
        # From the paper: node (1, 0, 0, 0) at level 1 connects to
        # (2, 0, p, 0) for each p.
        x = fig3_xgft
        leaf0 = x.node_index(1, (0, 0, 0))
        for p in range(x.n_up_ports(1)):
            parent = int(x.parent(1, leaf0, p))
            assert x.are_connected(1, leaf0, 2, parent)
            assert x.are_connected(2, parent, 1, leaf0)  # symmetric

    def test_not_connected_same_level(self, fig3_xgft):
        assert not fig3_xgft.are_connected(1, 0, 1, 1)

    def test_not_connected_skip_level(self, fig3_xgft):
        assert not fig3_xgft.are_connected(0, 0, 2, 0)

    def test_not_connected_wrong_subtree(self, fig3_xgft):
        x = fig3_xgft
        # Host 0 connects only to its own leaf switch.
        other_leaf = x.node_index(1, (0, 1, 0))
        assert not x.are_connected(0, 0, 1, other_leaf)


class TestNca:
    def test_nca_levels_follow_id_blocks(self):
        x = XGFT(3, (4, 4, 8), (1, 4, 4))
        assert x.nca_level(0, 0) == 0
        assert x.nca_level(0, 1) == 1    # same leaf (ids 0..3)
        assert x.nca_level(0, 4) == 2    # same level-2 subtree (0..15)
        assert x.nca_level(0, 16) == 3   # different level-2 subtree
        assert x.nca_level(127, 0) == 3

    def test_nca_vectorized(self):
        x = XGFT(3, (4, 4, 8), (1, 4, 4))
        s = np.zeros(4, dtype=np.int64)
        d = np.array([0, 1, 4, 16])
        assert np.array_equal(x.nca_level(s, d), [0, 1, 2, 3])

    def test_num_shortest_paths_property1(self):
        # Property 1: prod_{i<=k} w_i paths for NCA level k.
        x = XGFT(3, (4, 4, 4), (1, 4, 2))
        assert x.num_shortest_paths(0, 0) == 1
        assert x.num_shortest_paths(0, 1) == 1    # k=1, w_1=1
        assert x.num_shortest_paths(0, 4) == 4    # k=2, w_1*w_2=4
        assert x.num_shortest_paths(0, 63) == 8   # k=3: the paper's example

    def test_num_shortest_paths_vectorized(self):
        x = XGFT(3, (4, 4, 4), (1, 4, 2))
        s = np.zeros(3, dtype=np.int64)
        d = np.array([1, 4, 63])
        assert np.array_equal(x.num_shortest_paths(s, d), [1, 4, 8])
