"""Structural validator tests + hypothesis over random XGFT shapes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.validate import validate_topology
from repro.topology.xgft import XGFT

from tests.conftest import TOPOLOGY_POOL, pool_ids


@pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
def test_pool_topologies_validate(xgft):
    validate_topology(xgft, full=True)


@settings(max_examples=30, deadline=None)
@given(
    h=st.integers(1, 3),
    data=st.data(),
)
def test_random_xgfts_validate(h, data):
    m = tuple(data.draw(st.integers(1, 4)) for _ in range(h))
    w = tuple(data.draw(st.integers(1, 3)) for _ in range(h))
    validate_topology(XGFT(h, m, w), full=True)


def test_fast_mode_skips_exhaustive_checks():
    # Should still run the counting checks without error.
    validate_topology(XGFT(3, (4, 4, 8), (1, 4, 4)), full=False)
