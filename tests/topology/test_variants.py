"""Fat-tree variant constructors and their paper equivalences."""

import pytest

from repro.errors import TopologyError
from repro.topology.variants import gft, k_ary_n_tree, m_port_n_tree, slimmed_xgft
from repro.topology.xgft import XGFT


class TestMPortNTree:
    @pytest.mark.parametrize(
        "m,n,expected",
        [
            (8, 2, XGFT(2, (4, 8), (1, 4))),
            (16, 2, XGFT(2, (8, 16), (1, 8))),
            (24, 2, XGFT(2, (12, 24), (1, 12))),
            (8, 3, XGFT(3, (4, 4, 8), (1, 4, 4))),
            (16, 3, XGFT(3, (8, 8, 16), (1, 8, 8))),
            (24, 3, XGFT(3, (12, 12, 24), (1, 12, 12))),
        ],
    )
    def test_paper_section5_equivalences(self, m, n, expected):
        assert m_port_n_tree(m, n) == expected

    @pytest.mark.parametrize("m,n", [(4, 1), (4, 2), (8, 3), (6, 2)])
    def test_node_count_formula(self, m, n):
        # An m-port n-tree has 2 * (m/2)^n processing nodes.
        assert m_port_n_tree(m, n).n_procs == 2 * (m // 2) ** n

    def test_ranger_path_count(self):
        # The paper: the 24-port 3-tree has 144 shortest paths max.
        assert m_port_n_tree(24, 3).max_paths == 144

    def test_rejects_odd_or_small_m(self):
        with pytest.raises(TopologyError):
            m_port_n_tree(7, 2)
        with pytest.raises(TopologyError):
            m_port_n_tree(0, 2)
        with pytest.raises(TopologyError):
            m_port_n_tree(8, 0)


class TestKAryNTree:
    @pytest.mark.parametrize("k,n", [(2, 2), (2, 3), (4, 2), (3, 3)])
    def test_node_count(self, k, n):
        assert k_ary_n_tree(k, n).n_procs == k**n

    def test_structure(self):
        x = k_ary_n_tree(4, 2)
        assert x == XGFT(2, (4, 4), (1, 4))

    def test_rejects_bad_params(self):
        with pytest.raises(TopologyError):
            k_ary_n_tree(0, 2)
        with pytest.raises(TopologyError):
            k_ary_n_tree(2, 0)


class TestGft:
    def test_constant_arities(self):
        x = gft(3, 4, 2)
        assert x == XGFT(3, (4, 4, 4), (2, 2, 2))
        assert x.max_paths == 8

    def test_rejects_bad_h(self):
        with pytest.raises(TopologyError):
            gft(0, 4, 2)


class TestSlimmed:
    def test_top_level_thinner(self):
        full = slimmed_xgft(3, 4, 4, 0)
        slim = slimmed_xgft(3, 4, 4, 2)
        assert full.w[-1] == 4 and slim.w[-1] == 2
        assert slim.max_paths < full.max_paths
        assert slim.n_procs == full.n_procs

    def test_rejects_over_slimming(self):
        with pytest.raises(TopologyError):
            slimmed_xgft(3, 4, 4, 4)
        with pytest.raises(TopologyError):
            slimmed_xgft(0, 4, 4, 0)
