"""XGFT construction, sizes and basic accessors."""

import pytest

from repro.errors import TopologyError
from repro.topology.xgft import XGFT

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestConstruction:
    def test_paper_figure1_instances(self):
        # Figure 1 shows XGFT(1;4;1), XGFT(2;4,2;1,2), XGFT(3;2,2,3;1,2,2).
        a = XGFT(1, (4,), (1,))
        assert a.n_procs == 4 and a.n_switches == 1
        b = XGFT(2, (4, 2), (1, 2))
        assert b.n_procs == 8 and b.level_size(2) == 2
        c = XGFT(3, (2, 2, 3), (1, 2, 2))
        assert c.n_procs == 12 and c.n_top_switches == 4

    def test_degenerate_single_node(self):
        x = XGFT(0, (), ())
        assert x.n_procs == 1
        assert x.n_links == 0
        assert x.max_paths == 1

    def test_rejects_negative_h(self):
        with pytest.raises(TopologyError):
            XGFT(-1, (), ())

    def test_rejects_length_mismatch(self):
        with pytest.raises(TopologyError):
            XGFT(2, (4,), (1, 2))
        with pytest.raises(TopologyError):
            XGFT(2, (4, 2), (1,))

    def test_rejects_nonpositive_arity(self):
        with pytest.raises(TopologyError):
            XGFT(2, (4, 0), (1, 2))
        with pytest.raises(TopologyError):
            XGFT(2, (4, 2), (1, -2))

    def test_equality_and_hash(self):
        a = XGFT(2, (4, 8), (1, 4))
        b = XGFT(2, (4, 8), (1, 4))
        c = XGFT(2, (4, 8), (1, 2))
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a tree"

    def test_repr(self):
        assert repr(XGFT(2, (4, 8), (1, 4))) == "XGFT(2; 4,8; 1,4)"


class TestSizes:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_level_sizes_match_paper_formula(self, xgft):
        # At level l there are (prod_{i>l} m_i) * (prod_{i<=l} w_i) nodes.
        for l in range(xgft.h + 1):
            expected = 1
            for i in range(l):
                expected *= xgft.w[i]
            for i in range(l, xgft.h):
                expected *= xgft.m[i]
            assert xgft.level_size(l) == expected

    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_proc_and_top_counts(self, xgft):
        assert xgft.n_procs == xgft.level_size(0)
        assert xgft.n_top_switches == xgft.level_size(xgft.h)

    def test_port_counts_match_paper(self):
        # p_i = w_{i+1} + m_i for 1 <= i <= h-1; p_0 = w_1; p_h = m_h.
        x = XGFT(3, (3, 2, 4), (1, 2, 3))
        assert x.n_ports(0) == 1
        assert x.n_ports(1) == 2 + 3
        assert x.n_ports(2) == 3 + 2
        assert x.n_ports(3) == 4

    def test_level_out_of_range(self):
        x = XGFT(2, (2, 2), (1, 2))
        with pytest.raises(TopologyError):
            x.level_size(3)
        with pytest.raises(TopologyError):
            x.level_size(-1)


class TestCumulativeProducts:
    def test_M_and_W(self):
        x = XGFT(3, (4, 4, 8), (1, 4, 4))
        assert [x.M(k) for k in range(4)] == [1, 4, 16, 128]
        assert [x.W(k) for k in range(4)] == [1, 1, 4, 16]
        assert x.max_paths == 16


class TestSubtrees:
    def test_subtree_partition(self):
        x = XGFT(3, (4, 4, 8), (1, 4, 4))
        assert x.n_subtrees(1) == 32
        assert x.n_subtrees(2) == 8
        assert x.subtree_index(2, 0) == 0
        assert x.subtree_index(2, 15) == 0
        assert x.subtree_index(2, 16) == 1

    def test_boundary_links_are_TL(self):
        # TL(k) = prod_{i=1..k+1} w_i.
        x = XGFT(3, (4, 4, 8), (1, 4, 4))
        assert x.subtree_boundary_links(0) == 1
        assert x.subtree_boundary_links(1) == 4
        assert x.subtree_boundary_links(2) == 16


class TestDescribe:
    def test_describe_mentions_key_facts(self):
        x = XGFT(2, (4, 8), (1, 4))
        text = x.describe()
        assert "32" in text  # processing nodes
        assert "XGFT(2; 4,8; 1,4)" in text
        assert "max paths" in text
