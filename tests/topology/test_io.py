"""Topology export tests (NetworkX, DOT)."""

import networkx as nx
import pytest

from repro.topology.io import to_dot, to_networkx
from repro.topology.xgft import XGFT


@pytest.fixture
def small() -> XGFT:
    return XGFT(2, (2, 2), (1, 2))


class TestToNetworkx:
    def test_node_and_edge_counts(self, small):
        g = to_networkx(small, directed=True)
        expected_nodes = sum(small.level_size(l) for l in range(small.h + 1))
        assert g.number_of_nodes() == expected_nodes
        assert g.number_of_edges() == small.n_links

    def test_undirected_halves_edges(self, small):
        g = to_networkx(small, directed=False)
        assert g.number_of_edges() == small.n_links // 2

    def test_connected(self, small):
        g = to_networkx(small, directed=False)
        assert nx.is_connected(g)

    def test_diameter_is_2h(self, small):
        # Two processing nodes in different top subtrees are 2h apart.
        g = to_networkx(small, directed=False)
        assert nx.diameter(g) == 2 * small.h

    def test_shortest_path_count_matches_property1(self):
        x = XGFT(2, (2, 4), (1, 2))
        g = to_networkx(x, directed=False)
        s, d = ("proc", 0), ("proc", x.n_procs - 1)
        paths = list(nx.all_shortest_paths(g, s, d))
        assert len(paths) == x.num_shortest_paths(0, x.n_procs - 1)

    def test_edge_attributes(self, small):
        g = to_networkx(small, directed=True)
        for _, _, data in g.edges(data=True):
            assert data["kind"] in ("up", "down")
            assert 0 <= data["link_id"] < small.n_links


class TestToDot:
    def test_dot_contains_all_nodes(self, small):
        text = to_dot(small)
        assert text.startswith("graph xgft {")
        assert text.rstrip().endswith("}")
        for l in range(small.h + 1):
            for i in range(small.level_size(l)):
                assert f"L{l}_{i}" in text

    def test_dot_edge_count(self, small):
        text = to_dot(small)
        assert text.count(" -- ") == small.n_links // 2
