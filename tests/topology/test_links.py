"""Directed-link registry: ids, round-trips, counts, level masks."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.xgft import LinkKind, XGFT

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestLinkCounts:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_total_links(self, xgft):
        expected = 2 * sum(
            xgft.level_size(l) * xgft.n_up_ports(l) for l in range(xgft.h)
        )
        assert xgft.n_links == expected

    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_boundary_counts_consistent(self, xgft):
        for l in range(xgft.h):
            assert (
                xgft.n_boundary_links(l)
                == xgft.level_size(l) * xgft.n_up_ports(l)
                == xgft.level_size(l + 1) * xgft.n_down_ports(l + 1)
            )


class TestLinkRefRoundtrip:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_every_link_roundtrips(self, xgft):
        seen = set()
        for link_id, ref in xgft.iter_links():
            key = (ref.kind, ref.src_level, ref.src_index, ref.dst_level,
                   ref.dst_index)
            assert key not in seen, "duplicate physical link"
            seen.add(key)
            if ref.kind is LinkKind.UP:
                assert ref.src_level == ref.level
                assert ref.dst_level == ref.level + 1
                again = xgft.up_link_id(ref.level, ref.src_index, ref.port)
            else:
                assert ref.src_level == ref.level + 1
                assert ref.dst_level == ref.level
                child_digit = ref.port - xgft.n_up_ports(ref.src_level)
                again = xgft.down_link_id(ref.level, ref.src_index, child_digit)
            assert int(again) == link_id
        assert len(seen) == xgft.n_links

    def test_up_down_are_reverses(self):
        xgft = XGFT(2, (3, 5), (2, 3))
        ups = {}
        downs = {}
        for _, ref in xgft.iter_links():
            ends = (ref.src_level, ref.src_index, ref.dst_level, ref.dst_index)
            if ref.kind is LinkKind.UP:
                ups[ends] = True
            else:
                downs[(ends[2], ends[3], ends[0], ends[1])] = True
        assert ups.keys() == downs.keys()

    def test_out_of_range(self):
        xgft = XGFT(1, (2,), (1,))
        with pytest.raises(TopologyError):
            xgft.link_ref(xgft.n_links)
        with pytest.raises(TopologyError):
            xgft.link_ref(-1)


class TestLevelMasks:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_masks_match_refs(self, xgft):
        levels = xgft.link_levels()
        is_up = xgft.link_is_up()
        assert len(levels) == len(is_up) == xgft.n_links
        for link_id, ref in xgft.iter_links():
            assert levels[link_id] == ref.level
            assert is_up[link_id] == (ref.kind is LinkKind.UP)

    def test_direction_split_even(self):
        xgft = XGFT(3, (4, 4, 8), (1, 4, 4))
        is_up = xgft.link_is_up()
        assert is_up.sum() == xgft.n_links // 2
        assert int(np.sum(~is_up)) == xgft.n_links // 2
