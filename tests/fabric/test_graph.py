"""Fabric graph model tests."""

import pytest

from repro.errors import TopologyError
from repro.fabric.graph import Fabric, fabric_from_xgft
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestFabricConstruction:
    def test_basic(self):
        fab = Fabric(2, 1, [(0, 2), (1, 2)])
        assert fab.n_channels == 4  # two cables, two directions each
        assert fab.is_host(0) and fab.is_switch(2)
        assert fab.switch_of(1) == 2

    def test_rejects_uncabled_host(self):
        with pytest.raises(TopologyError):
            Fabric(2, 1, [(0, 2)])

    def test_rejects_host_to_host(self):
        with pytest.raises(TopologyError):
            Fabric(2, 1, [(0, 1), (0, 2), (1, 2)])

    def test_rejects_self_cable(self):
        with pytest.raises(TopologyError):
            Fabric(1, 1, [(1, 1), (0, 1)])

    def test_rejects_duplicate_cable(self):
        with pytest.raises(TopologyError):
            Fabric(1, 2, [(0, 1), (1, 2), (2, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(TopologyError):
            Fabric(1, 1, [(0, 5)])

    def test_channel_ids_dense_and_invertible(self):
        fab = Fabric(2, 2, [(0, 2), (1, 3), (2, 3)])
        assert sorted(fab.channel_id.values()) == list(range(fab.n_channels))
        for (a, b), cid in fab.channel_id.items():
            ch = fab.channels[cid]
            assert (ch.src, ch.dst) == (a, b)


class TestWithoutCable:
    def test_removes_one_cable(self):
        fab = Fabric(2, 2, [(0, 2), (1, 2), (2, 3)])
        smaller = fab.without_cable(2, 3)
        assert smaller.n_channels == fab.n_channels - 2

    def test_direction_insensitive(self):
        fab = Fabric(2, 2, [(0, 2), (1, 2), (2, 3)])
        assert fab.without_cable(3, 2).n_channels == fab.n_channels - 2

    def test_missing_cable_rejected(self):
        fab = Fabric(2, 1, [(0, 2), (1, 2)])
        with pytest.raises(TopologyError):
            fab.without_cable(0, 1)


class TestFromXgft:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_counts_match(self, xgft):
        if xgft.h < 1:
            return
        fab = fabric_from_xgft(xgft)
        assert fab.n_hosts == xgft.n_procs
        assert fab.n_switches == xgft.n_switches
        assert fab.n_channels == xgft.n_links

    def test_hosts_connect_to_leaf_switches(self):
        xgft = m_port_n_tree(8, 2)
        fab = fabric_from_xgft(xgft)
        # Host i's leaf switch is i // m_1 in level-major order.
        for host in range(xgft.n_procs):
            assert fab.switch_of(host) == xgft.n_procs + host // xgft.m[0]

    def test_rejects_degenerate(self):
        with pytest.raises(TopologyError):
            fabric_from_xgft(XGFT(0, (), ()))
