"""Counter-balanced fabric routing: correctness and balance."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.fabric.evaluate import fabric_link_loads, trace
from repro.fabric.graph import fabric_from_xgft
from repro.fabric.ranking import rank_fabric
from repro.fabric.router import NO_ROUTE, route_fabric
from repro.flow.loads import link_loads
from repro.flow.metrics import optimal_load
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.traffic.synthetic import all_to_all


@pytest.fixture(scope="module")
def fab8x2():
    return fabric_from_xgft(m_port_n_tree(8, 2))


class TestCorrectness:
    @pytest.mark.parametrize("offsets", [1, 2, 4])
    def test_all_pairs_reachable_and_shortest(self, fab8x2, offsets):
        routes = route_fabric(fab8x2, n_offsets=offsets)
        assert routes.unreachable_pairs() == []
        xgft = m_port_n_tree(8, 2)
        for s in range(0, 32, 3):
            for d in range(0, 32, 5):
                if s == d:
                    continue
                for o in range(offsets):
                    nodes = trace(routes, s, d, o)
                    assert nodes is not None and nodes[-1] == d
                    # Shortest on intact fat-trees: 2*nca hops via switches.
                    assert len(nodes) == 2 * xgft.nca_level(s, d) + 1

    def test_offsets_diversify_paths(self, fab8x2):
        routes = route_fabric(fab8x2, n_offsets=4)
        tops = {trace(routes, 0, 31, o)[2] for o in range(4)}
        assert len(tops) == 4  # four distinct spines for a top-level pair

    def test_deterministic(self, fab8x2):
        a = route_fabric(fab8x2, n_offsets=2)
        b = route_fabric(fab8x2, n_offsets=2)
        assert np.array_equal(a.next_hop, b.next_hop)

    def test_rejects_bad_offsets(self, fab8x2):
        with pytest.raises(RoutingError):
            route_fabric(fab8x2, n_offsets=0)


class TestBalance:
    def test_matches_closed_form_on_permutations(self):
        """Counter-balanced graph routing lands in the same balance
        regime as the closed-form disjoint heuristic (both ~optimal on
        a 2-level tree with K = w_2)."""
        xgft = m_port_n_tree(8, 2)
        fab = fabric_from_xgft(xgft)
        routes = route_fabric(fab, n_offsets=4)
        closed = make_scheme(xgft, "disjoint:4")
        worse = 0
        for seed in range(5):
            tm = permutation_matrix(random_permutation(32, seed))
            graph_max = fabric_link_loads(routes, tm).max()
            closed_max = link_loads(xgft, closed, tm).max()
            if graph_max > closed_max + 0.51:
                worse += 1
        assert worse <= 1

    def test_all_to_all_balanced(self):
        xgft = m_port_n_tree(8, 2)
        routes = route_fabric(fabric_from_xgft(xgft), n_offsets=4)
        tm = all_to_all(32)
        loads = fabric_link_loads(routes, tm)
        # Optimal is 1.0 (Theorem 1 regime); counters keep us close.
        assert loads.max() <= 1.3 * optimal_load(xgft, tm)

    def test_single_offset_counts_spread_uplinks(self, fab8x2):
        """With one offset, the leaf's hosts' destinations spread over
        all its up-links (round-robin-ish counters)."""
        routes = route_fabric(fab8x2, n_offsets=1)
        st = routes.structure
        leaf = fab8x2.switch_of(0)
        used = {int(routes.next_hop[leaf, routes.vdest(d)])
                for d in range(4, 32)}
        assert used == set(st.up_neighbors[leaf])


class TestFaultTolerance:
    def test_single_uplink_failure_reroutes(self):
        xgft = m_port_n_tree(8, 2)
        fab = fabric_from_xgft(xgft)
        st = rank_fabric(fab)
        leaf = fab.switch_of(0)
        dead_parent = st.up_neighbors[leaf][0]
        degraded = fab.without_cable(leaf, dead_parent)
        routes = route_fabric(degraded, n_offsets=2)
        assert routes.unreachable_pairs() == []
        for o in range(2):
            nodes = trace(routes, 0, 31, o)
            assert nodes[-1] == 31
            assert dead_parent not in nodes or nodes.index(dead_parent) > 1

    def test_host_isolated_by_cutting_its_only_link(self):
        xgft = m_port_n_tree(8, 2)
        fab = fabric_from_xgft(xgft)
        leaf = fab.switch_of(0)
        # Host 0 has a single cable (w_1 = 1): cutting it disconnects the
        # fabric and ranking must refuse.
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            route_fabric(fab.without_cable(0, leaf))

    def test_spine_failure_loses_capacity_not_connectivity(self):
        xgft = m_port_n_tree(8, 2)
        fab = fabric_from_xgft(xgft)
        st = rank_fabric(fab)
        leaf = fab.switch_of(0)
        degraded = fab
        # Remove two of leaf 0's four up-links.
        for parent in st.up_neighbors[leaf][:2]:
            degraded = degraded.without_cable(leaf, parent)
        routes = route_fabric(degraded, n_offsets=2)
        assert routes.unreachable_pairs() == []


class TestEvaluate:
    def test_trace_self_pair(self, fab8x2):
        routes = route_fabric(fab8x2)
        assert trace(routes, 3, 3) == [3]

    def test_trace_rejects_non_hosts(self, fab8x2):
        routes = route_fabric(fab8x2)
        with pytest.raises(RoutingError):
            trace(routes, 0, 40)

    def test_loads_size_mismatch(self, fab8x2):
        routes = route_fabric(fab8x2)
        with pytest.raises(RoutingError):
            fabric_link_loads(routes, TrafficMatrix.empty(16))

    def test_loads_conservation(self, fab8x2):
        routes = route_fabric(fab8x2, n_offsets=2)
        tm = permutation_matrix(random_permutation(32, 1))
        loads = fabric_link_loads(routes, tm)
        xgft = m_port_n_tree(8, 2)
        s, d, a = tm.network_pairs()
        expected = float(np.sum(a * 2 * xgft.nca_level(s, d)))
        assert loads.sum() == pytest.approx(expected)
