"""Flit-level simulation of discovered (and degraded) fabrics."""

import pytest

from repro.errors import SimulationError
from repro.fabric.evaluate import compile_flit_routes
from repro.fabric.graph import fabric_from_xgft
from repro.fabric.ranking import rank_fabric
from repro.fabric.router import route_fabric
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.workload import UniformRandom
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree


@pytest.fixture(scope="module")
def setup():
    xgft = m_port_n_tree(4, 2)
    fabric = fabric_from_xgft(xgft)
    cfg = FlitConfig(warmup_cycles=300, measure_cycles=2000, drain_cycles=3000)
    return xgft, fabric, cfg


class TestFromTables:
    def test_fabric_sim_conserves(self, setup):
        xgft, fabric, cfg = setup
        routes = route_fabric(fabric, n_offsets=2)
        table = compile_flit_routes(routes)
        sim = FlitSimulator.from_tables(fabric.n_hosts, fabric.n_channels,
                                        table, cfg)
        res = sim.run(UniformRandom(0.3), seed=1)
        assert res.messages_measured > 0
        assert res.messages_completed == res.messages_measured

    def test_matches_xgft_sim_statistically(self, setup):
        """The fabric-compiled single-path tables behave like a
        closed-form single-path scheme at low load (same topology, same
        switching model)."""
        xgft, fabric, cfg = setup
        table = compile_flit_routes(route_fabric(fabric, n_offsets=1))
        fsim = FlitSimulator.from_tables(fabric.n_hosts, fabric.n_channels,
                                         table, cfg)
        xsim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
        fres = fsim.run(UniformRandom(0.2), seed=4)
        xres = xsim.run(UniformRandom(0.2), seed=4)
        assert fres.throughput == pytest.approx(xres.throughput, rel=0.15)

    def test_degraded_fabric_still_simulates(self, setup):
        xgft, fabric, cfg = setup
        st = rank_fabric(fabric)
        leaf = fabric.switch_of(0)
        degraded = fabric.without_cable(leaf, st.up_neighbors[leaf][0])
        table = compile_flit_routes(route_fabric(degraded, n_offsets=2))
        sim = FlitSimulator.from_tables(degraded.n_hosts,
                                        degraded.n_channels, table, cfg)
        res = sim.run(UniformRandom(0.2), seed=2)
        assert res.messages_completed == res.messages_measured

    def test_validation(self, setup):
        _, fabric, cfg = setup
        with pytest.raises(SimulationError):
            FlitSimulator.from_tables(0, 4, {}, cfg)
        with pytest.raises(SimulationError):
            FlitSimulator.from_tables(2, 4, {1: []}, cfg)
