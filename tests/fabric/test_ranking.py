"""Fabric ranking and fat-tree validation."""

import pytest

from repro.errors import TopologyError
from repro.fabric.graph import Fabric, fabric_from_xgft
from repro.fabric.ranking import rank_fabric
from repro.topology.variants import m_port_n_tree

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestRankFabric:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_ranks_recover_xgft_levels(self, xgft):
        if xgft.h < 1:
            return
        fab = fabric_from_xgft(xgft)
        st = rank_fabric(fab)
        assert st.max_rank == xgft.h
        # Hosts rank 0; switch ranks follow the level-major id layout.
        offset = xgft.n_procs
        for level in range(1, xgft.h + 1):
            for i in range(xgft.level_size(level)):
                assert st.rank[offset + i] == level
            offset += xgft.level_size(level)

    def test_up_down_split(self):
        xgft = m_port_n_tree(8, 2)
        st = rank_fabric(fabric_from_xgft(xgft))
        for host in range(xgft.n_procs):
            assert len(st.up_neighbors[host]) == xgft.w[0]
            assert st.down_neighbors[host] == ()
        leaf = xgft.n_procs  # first leaf switch
        assert len(st.up_neighbors[leaf]) == xgft.w[1]
        assert len(st.down_neighbors[leaf]) == xgft.m[0]

    def test_is_up_channel(self):
        fab = Fabric(2, 2, [(0, 2), (1, 2), (2, 3)])
        st = rank_fabric(fab)
        assert st.is_up_channel(0, 2)
        assert not st.is_up_channel(2, 0)
        assert st.is_up_channel(2, 3)

    def test_rejects_disconnected(self):
        # Switch 3 floats free.
        with pytest.raises(TopologyError):
            rank_fabric(Fabric(2, 2, [(0, 2), (1, 2)]))

    def test_rejects_side_links(self):
        # Two leaf switches cabled to each other: same-rank link.
        fab = Fabric(2, 2, [(0, 2), (1, 3), (2, 3)])
        with pytest.raises(TopologyError):
            rank_fabric(fab)

    def test_survives_single_link_removal(self):
        xgft = m_port_n_tree(8, 2)
        fab = fabric_from_xgft(xgft)
        st = rank_fabric(fab)
        leaf = fab.switch_of(0)
        degraded = fab.without_cable(leaf, st.up_neighbors[leaf][0])
        st2 = rank_fabric(degraded)
        assert st2.max_rank == st.max_rank
