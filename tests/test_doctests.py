"""Execute every doctest in the library's docstrings.

The usage examples in module and function docstrings are part of the
public documentation; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":  # executes the CLI on import
            continue
        yield importlib.import_module(info.name)


@pytest.mark.parametrize("module", list(_iter_modules()),
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
