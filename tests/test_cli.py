"""CLI tests via the in-process entry point."""

import pytest

from repro.cli import main, parse_topology
from repro.errors import ReproError
from repro.topology.variants import k_ary_n_tree, m_port_n_tree
from repro.topology.xgft import XGFT


class TestParseTopology:
    def test_mport(self):
        assert parse_topology("mport:8x3") == m_port_n_tree(8, 3)

    def test_kary(self):
        assert parse_topology("kary:4x2") == k_ary_n_tree(4, 2)

    def test_explicit_xgft(self):
        assert parse_topology("xgft:3;4,4,4;1,4,2") == XGFT(3, (4, 4, 4), (1, 4, 2))

    @pytest.mark.parametrize("bad", ["mport:8", "xgft:2;4", "torus:3x3", "mport:axb"])
    def test_bad_specs(self, bad):
        with pytest.raises(ReproError):
            parse_topology(bad)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "mport:8x2"]) == 0
        out = capsys.readouterr().out
        assert "XGFT(2; 4,8; 1,4)" in out
        assert "32" in out

    def test_route_figure3_example(self, capsys):
        assert main(["route", "xgft:3;4,4,4;1,4,2", "disjoint:4", "0", "63"]) == 0
        out = capsys.readouterr().out
        assert "Path 7" in out and "Path 5" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "disjoint" in out

    def test_resources_experiment(self, capsys):
        assert main(["resources"]) == 0
        assert "LID budget" in capsys.readouterr().out

    def test_error_path_returns_2(self, capsys):
        assert main(["info", "bogus:1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_route_error(self, capsys):
        assert main(["route", "mport:8x2", "nosuchscheme", "0", "1"]) == 2
