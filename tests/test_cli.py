"""CLI tests via the in-process entry point."""

import pytest

from repro.cli import main, parse_topology
from repro.errors import ReproError
from repro.topology.variants import k_ary_n_tree, m_port_n_tree
from repro.topology.xgft import XGFT


class TestParseTopology:
    def test_mport(self):
        assert parse_topology("mport:8x3") == m_port_n_tree(8, 3)

    def test_kary(self):
        assert parse_topology("kary:4x2") == k_ary_n_tree(4, 2)

    def test_explicit_xgft(self):
        assert parse_topology("xgft:3;4,4,4;1,4,2") == XGFT(3, (4, 4, 4), (1, 4, 2))

    @pytest.mark.parametrize("bad", ["mport:8", "xgft:2;4", "torus:3x3", "mport:axb"])
    def test_bad_specs(self, bad):
        with pytest.raises(ReproError):
            parse_topology(bad)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "mport:8x2"]) == 0
        out = capsys.readouterr().out
        assert "XGFT(2; 4,8; 1,4)" in out
        assert "32" in out

    def test_route_figure3_example(self, capsys):
        assert main(["route", "xgft:3;4,4,4;1,4,2", "disjoint:4", "0", "63"]) == 0
        out = capsys.readouterr().out
        assert "Path 7" in out and "Path 5" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "disjoint" in out

    def test_resources_experiment(self, capsys):
        assert main(["resources"]) == 0
        assert "LID budget" in capsys.readouterr().out

    def test_error_path_returns_2(self, capsys):
        assert main(["info", "bogus:1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_route_error(self, capsys):
        assert main(["route", "mport:8x2", "nosuchscheme", "0", "1"]) == 2

    def test_engine_flag_on_aware_experiment(self, capsys):
        # ratios is engine-aware: --engine compiled must run end to end.
        assert main(["ratios", "--engine", "compiled", "--quiet"]) == 0

    def test_engine_flag_rejected_for_unaware_experiment(self, capsys):
        # resources has no flow-level permutation loop; a non-reference
        # engine request is an error, not a silent no-op.
        assert main(["resources", "--engine", "compiled"]) == 2
        assert "does not support" in capsys.readouterr().err

    def test_reference_engine_is_always_accepted(self, capsys):
        assert main(["resources", "--engine", "reference", "--quiet"]) == 0

    def test_churn_flags_forwarded_to_aware_experiment(self, capsys):
        # churn-sweep is churn-aware: the flags must reach the runner
        # (2 events -> pristine baseline + 2 trajectory points).
        assert main(["churn-sweep", "--fidelity", "fast",
                     "--churn-events", "2", "--churn-seed", "3",
                     "--quiet"]) == 0

    def test_churn_flags_rejected_for_unaware_experiment(self, capsys):
        assert main(["table1", "--churn-events", "2"]) == 2
        assert "does not support churn" in capsys.readouterr().err
        assert main(["fault-sweep", "--churn-seed", "1"]) == 2
        assert "does not support churn" in capsys.readouterr().err

    def test_batched_engine_accepted_for_flit_experiments(self, capsys):
        assert main(["table1", "--fidelity", "fast",
                     "--engine", "batched", "--quiet"]) == 0

    def test_batched_engine_rejected_for_unaware_experiment(self, capsys):
        assert main(["resources", "--engine", "batched"]) == 2
        assert "does not support" in capsys.readouterr().err


class TestArgumentValidation:
    """Bad numeric flags die at parse time with a typed argparse error
    (exit 2 + a message naming the flag), not deep in a runner."""

    @pytest.mark.parametrize("rate", ["1.5", "-0.1", "0.2,7"])
    def test_fault_rate_outside_unit_interval(self, rate, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fault-sweep", "--fault-rate", rate])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--fault-rate" in err and "0" in err and "1" in err

    def test_fault_rate_non_numeric(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fault-sweep", "--fault-rate", "lots"])
        assert exc.value.code == 2
        assert "--fault-rate" in capsys.readouterr().err

    @pytest.mark.parametrize("links", ["-3", "1,-2"])
    def test_fault_links_negative(self, links, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fault-sweep", "--fault-links", links])
        assert exc.value.code == 2
        assert "--fault-links" in capsys.readouterr().err

    @pytest.mark.parametrize("events", ["-5", "2.5", "many"])
    def test_churn_events_must_be_nonnegative_int(self, events, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["churn-sweep", "--churn-events", events])
        assert exc.value.code == 2
        assert "--churn-events" in capsys.readouterr().err

    @pytest.mark.parametrize("jobs", ["0", "-1", "two"])
    def test_jobs_must_be_positive_int(self, jobs, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--jobs", jobs])
        assert exc.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_unknown_engine_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--engine", "turbo"])
        assert exc.value.code == 2
        assert "--engine" in capsys.readouterr().err

    def test_valid_boundary_values_accepted(self, capsys):
        # 0.0 and 1.0 are inside the closed interval; jobs 1 is the
        # serial path; 0 churn events is the pristine baseline alone.
        assert main(["fault-sweep", "--fidelity", "fast",
                     "--fault-rate", "0.0", "--quiet"]) == 0
        assert main(["churn-sweep", "--fidelity", "fast",
                     "--churn-events", "0", "--quiet"]) == 0


class TestGlobalOptions:
    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_quiet_suppresses_render(self, capsys):
        assert main(["theorems", "--quiet"]) == 0
        assert "ALL HOLD" not in capsys.readouterr().out

    def test_profile_report(self, capsys):
        assert main(["theorems", "--profile", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "run telemetry" in out
        assert "experiment.theorems" in out
        assert "routing.schemes_built" in out

    def test_log_json_run_log(self, tmp_path, capsys):
        """The acceptance path: a manifest line plus per-round
        convergence events that parse as JSON and match the result."""
        import json

        from repro.obs import RunManifest

        path = tmp_path / "run.jsonl"
        assert main(["figure4a", "--fidelity", "fast", "--seed", "3",
                     "--log-json", str(path)]) == 0
        rendered = capsys.readouterr().out
        assert "Figure 4(a)" in rendered

        lines = [json.loads(line) for line in path.read_text().splitlines()]
        manifest = RunManifest.from_dict(lines[0])
        assert lines[0]["type"] == "manifest"
        assert manifest.experiment == "figure4a"
        assert manifest.fidelity == "fast"
        assert manifest.seed == 3
        assert manifest.argv is not None and "--seed" in manifest.argv
        assert manifest.wall_time_s > 0
        assert manifest.samples_used > 0
        assert "d-mod-k" in manifest.schemes

        rounds = [l for l in lines if l["type"] == "convergence_round"]
        assert rounds, "expected per-round convergence events"
        # The d-mod-k study's final running mean is the printed value.
        dmodk_mean = [r["mean"] for r in rounds if r["scheme"] == "d-mod-k"][-1]
        assert f"{dmodk_mean:.3f}" in rendered
        assert lines[-1]["type"] == "metrics"
        assert lines[-1]["counters"]["flow.samples"] == manifest.samples_used

    def test_seed_recorded_and_plumbed(self, tmp_path):
        import json

        def manifest_for(seed):
            path = tmp_path / f"run{seed}.jsonl"
            assert main(["resources", "--seed", str(seed), "--quiet",
                         "--log-json", str(path)]) == 0
            return json.loads(path.read_text().splitlines()[0])

        assert manifest_for(1)["seed"] == 1
        assert manifest_for(2)["seed"] == 2


class TestReportCommand:
    @pytest.fixture()
    def log_dir(self, tmp_path):
        for seed in (1, 2):
            assert main(["resources", "--seed", str(seed), "--quiet",
                         "--log-json",
                         str(tmp_path / f"run{seed}.jsonl")]) == 0
        return tmp_path

    def test_text_report_over_directory(self, log_dir, capsys):
        assert main(["report", str(log_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "resources" in out
        assert "run1.jsonl" in out and "run2.jsonl" in out

    def test_json_format(self, log_dir, capsys):
        import json

        assert main(["report", str(log_dir), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["runs"]) == 2
        assert isinstance(data["merged"], dict)

    def test_prometheus_format(self, log_dir, capsys):
        assert main(["report", str(log_dir), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_" in out

    def test_no_logs_is_an_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 2
        assert "no run logs" in capsys.readouterr().err


class TestBenchCommand:
    def test_quick_obs_bench_writes_and_self_checks(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--only", "obs",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench obs:" in out
        assert (tmp_path / "BENCH_obs.json").exists()

        # re-running against its own snapshot as baseline passes the gate
        assert main(["bench", "--quick", "--only", "obs", "--no-write",
                     "--check", "--baseline-dir", str(tmp_path),
                     "--threshold", "4.0"]) == 0
        assert "threshold +400%" in capsys.readouterr().out

    def test_check_skips_missing_baseline(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--only", "obs", "--no-write",
                     "--check", "--baseline-dir", str(tmp_path)]) == 0
        assert "skipping comparison" in capsys.readouterr().out

    def test_unknown_benchmark_is_an_error(self, capsys):
        assert main(["bench", "--only", "nosuchbench"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
