"""Parallel/cached flit sweeps: bit-parity with serial, cache replay."""

import math

import pytest

from repro.errors import ReproError, RunnerError
from repro.experiments import figure5, table1
from repro.experiments.registry import run_instrumented
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flit.sweep import load_sweep
from repro.obs.recorder import Recorder, use_recorder
from repro.routing.factory import make_scheme
from repro.runner.cache import ResultCache
from repro.runner.pool import PersistentPool
from repro.runner.sweep import point_key, point_seed, run_sweeps
from repro.topology.variants import m_port_n_tree

CFG = FlitConfig(warmup_cycles=100, measure_cycles=500, drain_cycles=500,
                 seed=11)
LOADS = (0.2, 0.6)


@pytest.fixture(scope="module")
def tree():
    return m_port_n_tree(4, 2)


def _runs_equal(a, b):
    """Bit-exact SweepResult comparison that treats NaN == NaN."""
    if a.scheme_label != b.scheme_label or len(a.runs) != len(b.runs):
        return False
    for ra, rb in zip(a.runs, b.runs):
        for field in ra.__dataclass_fields__:
            va, vb = getattr(ra, field), getattr(rb, field)
            if va != vb and not (va != va and vb != vb):
                return False
    return True


class TestParity:
    def test_parallel_bit_identical_to_serial(self, tree):
        scheme = make_scheme(tree, "d-mod-k")
        serial = load_sweep(tree, scheme, CFG, loads=LOADS, repeats=2)
        par = load_sweep(tree, scheme, CFG, loads=LOADS, repeats=2, n_jobs=2)
        assert _runs_equal(serial, par)

    def test_point_seed_matches_serial_formula(self):
        assert point_seed(CFG, 0) == CFG.seed
        assert point_seed(CFG, 3) == CFG.seed + 3000

    def test_multi_scheme_grid_matches_per_scheme_serial(self, tree):
        sims = {spec: FlitSimulator(tree, make_scheme(tree, spec), CFG)
                for spec in ("d-mod-k", "shift-1:2")}
        grid = run_sweeps(sims, loads=LOADS, n_jobs=2)
        for spec, sim in sims.items():
            serial = load_sweep(tree, sim.scheme, CFG, loads=LOADS)
            assert _runs_equal(grid[spec], serial)


class TestCacheReplay:
    def test_warm_cache_runs_zero_simulations(self, tree, tmp_path):
        scheme = make_scheme(tree, "d-mod-k")
        serial = load_sweep(tree, scheme, CFG, loads=LOADS, repeats=2)
        cold_rec = Recorder()
        with use_recorder(cold_rec):
            cold = load_sweep(tree, scheme, CFG, loads=LOADS, repeats=2,
                              cache=ResultCache(tmp_path))
        n_points = len(LOADS) * 2
        assert cold_rec.counters["runner.cache_miss"] == n_points
        assert cold_rec.counters["runner.cache_store"] == n_points
        assert cold_rec.counters["runner.points_computed"] == n_points

        warm_rec = Recorder()
        with use_recorder(warm_rec):
            warm = load_sweep(tree, scheme, CFG, loads=LOADS, repeats=2,
                              cache=ResultCache(tmp_path))
        assert warm_rec.counters["runner.cache_hit"] == n_points
        assert "runner.points_computed" not in warm_rec.counters
        assert "runner.pool_created" not in warm_rec.counters
        assert _runs_equal(warm, serial) and _runs_equal(cold, serial)

    def test_partial_cache_computes_only_missing_points(self, tree, tmp_path):
        scheme = make_scheme(tree, "d-mod-k")
        load_sweep(tree, scheme, CFG, loads=LOADS[:1],
                   cache=ResultCache(tmp_path))
        rec = Recorder()
        with use_recorder(rec):
            resumed = load_sweep(tree, scheme, CFG, loads=LOADS,
                                 cache=ResultCache(tmp_path))
        assert rec.counters["runner.cache_hit"] == 1
        assert rec.counters["runner.points_computed"] == 1
        serial = load_sweep(tree, scheme, CFG, loads=LOADS)
        assert _runs_equal(resumed, serial)

    def test_point_key_distinguishes_inputs(self, tree):
        sim = FlitSimulator(tree, make_scheme(tree, "d-mod-k"), CFG)
        base = point_key("d-mod-k", sim, 0.2, 0)
        assert point_key("d-mod-k", sim, 0.4, 0) != base
        assert point_key("d-mod-k", sim, 0.2, 1) != base
        other = FlitSimulator(tree, make_scheme(tree, "shift-1:2"), CFG)
        assert point_key("shift-1:2", other, 0.2, 0) != base

    def test_point_key_distinguishes_routing_seeds(self, tree):
        a = FlitSimulator(tree, make_scheme(tree, "random:2", seed=0), CFG)
        b = FlitSimulator(tree, make_scheme(tree, "random:2", seed=1), CFG)
        assert point_key("r", a, 0.2, 0) != point_key("r", b, 0.2, 0)


class TestPoolSharing:
    def test_external_pool_spans_schemes_and_survives(self, tree):
        sims = {spec: FlitSimulator(tree, make_scheme(tree, spec), CFG)
                for spec in ("d-mod-k", "shift-1:2")}
        rec = Recorder()
        with use_recorder(rec), PersistentPool(2) as pool:
            run_sweeps(sims, loads=LOADS, n_jobs=2, pool=pool)
            run_sweeps(sims, loads=LOADS[:1], n_jobs=2, pool=pool)
            assert pool.running  # run_sweeps never closes external pools
        assert rec.counters["runner.pool_created"] == 1

    def test_owned_pool_closed_after_call(self, tree):
        sims = {"d-mod-k": FlitSimulator(tree, make_scheme(tree, "d-mod-k"),
                                         CFG)}
        rec = Recorder()
        with use_recorder(rec):
            run_sweeps(sims, loads=LOADS[:1], n_jobs=2)
        assert rec.counters["runner.pool_created"] == 1

    def test_validation(self, tree):
        sims = {"d-mod-k": FlitSimulator(tree, make_scheme(tree, "d-mod-k"),
                                         CFG)}
        with pytest.raises(RunnerError, match="repeats"):
            run_sweeps(sims, repeats=0)
        with pytest.raises(RunnerError, match="n_jobs"):
            run_sweeps(sims, n_jobs=0)


class TestExperiments:
    def test_figure5_parallel_matches_serial(self, tree):
        kwargs = dict(fidelity_name="fast", topology=tree, loads=LOADS,
                      config=CFG, curves=("d-mod-k", "random:1"))
        serial = figure5.run(**kwargs)
        par = figure5.run(n_jobs=2, **kwargs)
        assert set(par.sweeps) == set(serial.sweeps)
        for spec in serial.sweeps:
            assert _runs_equal(par.sweeps[spec], serial.sweeps[spec])

    def test_table1_parallel_and_cached_matches_serial(self, tree, tmp_path):
        kwargs = dict(fidelity_name="fast", topology=tree,
                      loads=(0.5, 0.8), ks=(1, 2), random_seeds=(0, 1))
        serial = table1.run(**kwargs)
        par = table1.run(n_jobs=2, cache=ResultCache(tmp_path), **kwargs)
        assert par.rows() == serial.rows()
        rec = Recorder()
        with use_recorder(rec):
            warm = table1.run(cache=ResultCache(tmp_path), **kwargs)
        assert warm.rows() == serial.rows()
        assert "runner.points_computed" not in rec.counters

    def test_table1_random_seeds_get_distinct_cells(self, tree, tmp_path):
        """random(K)@seed cells must not collapse onto one cache entry."""
        res = table1.run(fidelity_name="fast", topology=tree,
                         loads=(0.6,), ks=(2,), random_seeds=(0, 1),
                         cache=ResultCache(tmp_path))
        # d-mod-k + shift+disjoint + two random seeds = 5 sweeps x 1 point
        assert len(ResultCache(tmp_path)) == 5
        assert not math.isnan(res.cells["random"][0])


class TestRegistryForwarding:
    def test_jobs_rejected_for_non_runner_aware(self):
        with pytest.raises(ReproError, match="--jobs"):
            run_instrumented("theorems", jobs=4)

    def test_cache_rejected_for_non_runner_aware(self, tmp_path):
        with pytest.raises(ReproError, match="--cache"):
            run_instrumented("theorems", cache=True)
        with pytest.raises(ReproError, match="--cache"):
            run_instrumented("theorems", cache_dir=str(tmp_path))

    def test_noop_values_accepted_everywhere(self):
        run = run_instrumented("resources", jobs=1, cache=False)
        assert run.result is not None

    def test_cache_dir_implies_cache(self, tree, tmp_path):
        run = run_instrumented(
            "figure5", fidelity_name="fast", cache_dir=str(tmp_path),
            topology=tree, loads=(0.3,), config=CFG, curves=("d-mod-k",),
        )
        assert len(ResultCache(tmp_path)) == 1
        assert run.result.sweeps["d-mod-k"].runs[0].messages_measured > 0
