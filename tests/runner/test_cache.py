"""ResultCache: round-trip fidelity, invalidation, crash tolerance."""

import math

import pytest

import repro.runner.cache as cache_mod
from repro.errors import RunnerError
from repro.flit.stats import FlitRunResult
from repro.obs.recorder import Recorder, use_recorder
from repro.runner.cache import ResultCache, cache_key


def _mk_result(**overrides):
    base = dict(
        offered_load=0.3, injected_load=0.29, throughput=0.28,
        mean_delay=41.25, p95_delay=60.5, max_delay=97.0,
        messages_measured=120, messages_completed=118,
        sim_cycles=10_000, events=54_321,
    )
    base.update(overrides)
    return FlitRunResult(**base)


class TestCacheKey:
    def test_order_insensitive(self):
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert cache_key({"seed": 0}) != cache_key({"seed": 1})

    def test_non_json_values_hash_via_repr(self):
        key = cache_key({"workload": object})  # a type, not JSON-able
        assert len(key) == 64


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        rec = Recorder()
        with use_recorder(rec):
            cache = ResultCache(tmp_path)
            key = cache_key({"p": 1})
            assert cache.get(key) is None
            cache.put(key, _mk_result())
            assert cache.get(key) == _mk_result()
        assert rec.counters["runner.cache_miss"] == 1
        assert rec.counters["runner.cache_hit"] == 1
        assert rec.counters["runner.cache_store"] == 1

    def test_exact_float_and_nan_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        stored = _mk_result(mean_delay=float("nan"), throughput=0.1 + 0.2)
        cache.put("k", stored)
        loaded = ResultCache(tmp_path).get("k")  # fresh instance: from disk
        assert loaded.throughput == stored.throughput  # bit-exact
        assert math.isnan(loaded.mean_delay)

    def test_put_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", _mk_result())
        cache.put("k", _mk_result(throughput=0.99))  # first write wins
        assert len(ResultCache(tmp_path)) == 1
        assert ResultCache(tmp_path).get("k").throughput == 0.28

    def test_len_and_contains(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0 and "k" not in cache
        cache.put("k", _mk_result())
        assert len(cache) == 1 and "k" in cache


class TestInvalidation:
    def test_version_mismatch_skipped_and_counted(self, tmp_path):
        ResultCache(tmp_path, version="v1").put("k", _mk_result())
        rec = Recorder()
        with use_recorder(rec):
            newer = ResultCache(tmp_path, version="v2")
            assert newer.get("k") is None
        assert newer.stale_entries == 1
        assert rec.counters["runner.cache_invalidated"] == 1
        assert rec.counters["runner.cache_miss"] == 1

    def test_torn_trailing_line_tolerated(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", _mk_result())
        with open(cache.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn", "vers')  # interrupted mid-write
        rec = Recorder()
        with use_recorder(rec):
            reread = ResultCache(tmp_path)
            assert reread.get("k") == _mk_result()
        assert rec.counters["runner.cache_corrupt"] == 1

    def test_record_key_bakes_in_code_version(self, tmp_path):
        # Generic records (put_record callers hash only their own
        # inputs) must still go cold on a library upgrade: the on-disk
        # key itself is derived from the cache's version, so the miss
        # does not depend on the load-time version filter alone.
        old = ResultCache(tmp_path, version="v1")
        old.put_record("step-7", {"mload": 1.5})
        assert old.get_record("step-7") == {"mload": 1.5}
        new = ResultCache(tmp_path, version="v2")
        assert new.get_record("step-7") is None
        assert old.record_key("step-7") != new.record_key("step-7")
        # both versions coexist in the same file without clobbering
        new.put_record("step-7", {"mload": 2.5})
        assert ResultCache(tmp_path, version="v1").get_record(
            "step-7") == {"mload": 1.5}
        assert ResultCache(tmp_path, version="v2").get_record(
            "step-7") == {"mload": 2.5}

    def test_record_key_bakes_in_schema(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path, version="v1")
        cache.put_record("k", {"mload": 1.5})
        key_before = cache.record_key("k")
        monkeypatch.setattr(cache_mod, "RECORD_SCHEMA",
                            cache_mod.RECORD_SCHEMA + 1)
        bumped = ResultCache(tmp_path, version="v1")
        assert bumped.record_key("k") != key_before
        assert bumped.get_record("k") is None

    def test_directory_collision_rejected(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        with pytest.raises(RunnerError, match="not a directory"):
            ResultCache(target)

    def test_missing_directory_is_empty_until_first_put(self, tmp_path):
        cache = ResultCache(tmp_path / "fresh")
        assert cache.get("k") is None  # no directory created by probing
        cache.put("k", _mk_result())
        assert (tmp_path / "fresh").is_dir()
