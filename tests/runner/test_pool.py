"""PersistentPool: lifecycle, context shipping, telemetry."""

import pytest

from repro.errors import RunnerError
from repro.obs.recorder import Recorder, use_recorder
from repro.runner.pool import PersistentPool, load_context


def _ctx_plus(token, x):
    """Module-level so it pickles into pool workers."""
    return load_context(token)["base"] + x


def _token_seen(token):
    """Resolve a context and report the worker saw it."""
    return load_context(token)["base"]


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(RunnerError, match="n_jobs"):
            PersistentPool(0)

    def test_unknown_token(self):
        with pytest.raises(RunnerError, match="unknown pool context"):
            load_context("c999g999")


class TestContexts:
    def test_inline_roundtrip(self):
        with PersistentPool(1) as pool:
            token = pool.put_context({"base": 40})
            assert load_context(token)["base"] == 40

    def test_tokens_unique_across_puts_and_pools(self):
        with PersistentPool(1) as a, PersistentPool(1) as b:
            tokens = {a.put_context(1), a.put_context(2), b.put_context(3)}
            assert len(tokens) == 3

    def test_close_drops_contexts(self):
        pool = PersistentPool(1)
        token = pool.put_context({"base": 1})
        pool.close()
        with pytest.raises(RunnerError):
            load_context(token)


class TestExecution:
    def test_submit_resolves_context_in_worker(self):
        with PersistentPool(2) as pool:
            token = pool.put_context({"base": 40})
            futures = [pool.submit(_ctx_plus, token, x) for x in range(6)]
            assert [f.result() for f in futures] == [40 + x for x in range(6)]

    def test_executor_created_once_across_many_submits(self):
        rec = Recorder()
        with use_recorder(rec), PersistentPool(2) as pool:
            token = pool.put_context({"base": 0})
            for _ in range(3):  # three "rounds" of tasks, one executor
                futures = [pool.submit(_token_seen, token) for _ in range(4)]
                assert all(f.result() == 0 for f in futures)
        assert rec.counters["runner.pool_created"] == 1
        assert rec.counters["runner.pool_tasks"] == 12
        assert rec.counters["runner.context_spilled"] == 1

    def test_reusable_after_close(self):
        rec = Recorder()
        pool = PersistentPool(1)
        with use_recorder(rec):
            t1 = pool.put_context({"base": 1})
            assert pool.submit(_ctx_plus, t1, 0).result() == 1
            pool.close()
            assert not pool.running
            t2 = pool.put_context({"base": 2})
            assert pool.submit(_ctx_plus, t2, 0).result() == 2
            pool.close()
        assert rec.counters["runner.pool_created"] == 2

    def test_context_registered_after_start(self):
        """Late contexts reach already-running workers via the spill file."""
        with PersistentPool(1) as pool:
            early = pool.put_context({"base": 1})
            assert pool.submit(_ctx_plus, early, 0).result() == 1
            late = pool.put_context({"base": 2})
            assert pool.submit(_ctx_plus, late, 0).result() == 2

    def test_running_property(self):
        pool = PersistentPool(1)
        assert not pool.running
        pool.put_context({"base": 0})  # registering alone starts nothing
        assert not pool.running
        pool.submit(_token_seen, pool.put_context({"base": 0}))
        assert pool.running
        pool.close()
        assert not pool.running
