"""Cross-process telemetry: snapshot/merge round-trips and worker
recorder state merging into the parent through the persistent pool."""

import json
import math

import pytest

from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator
from repro.flow.sampling import PermutationStudy
from repro.obs.recorder import Recorder, use_recorder
from repro.obs.trace import span, spans_of
from repro.routing.factory import make_scheme
from repro.runner.pool import PersistentPool
from repro.runner.sweep import run_sweeps
from repro.topology.variants import m_port_n_tree

CFG = FlitConfig(warmup_cycles=100, measure_cycles=500, drain_cycles=500,
                 seed=11)
LOADS = (0.2, 0.6)


@pytest.fixture(scope="module")
def tree():
    return m_port_n_tree(4, 2)


def _nan_eq(a, b):
    """Recursive equality that treats NaN == NaN (JSON round-trips keep
    NaN as a float, and plain == would reject it)."""
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_nan_eq(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _nan_eq(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    return a == b


def _populated_recorder():
    rec = Recorder()
    rec.count("flit.runs", 3)
    rec.count("flow.samples", 64)
    with rec.timer("outer"):
        with rec.timer("inner"):
            pass
    for v in (0.0, 0.5, 1.5, 3.0, 1024.0):  # floor + spread buckets
        rec.observe("flit.message_delay", v)
    rec.event("convergence_round", scheme="d-mod-k", mean=0.5,
              half_width=float("nan"))
    with use_recorder(rec), span("study", scheme="d-mod-k"):
        pass
    return rec


class TestSnapshotRoundTrip:
    def test_merge_of_json_snapshot_is_bit_identical(self):
        """The worker transport: snapshot -> JSON -> merge into a fresh
        recorder must lose nothing — histogram buckets, NaN event
        fields, timer totals, span events."""
        worker = _populated_recorder()
        wire = json.loads(json.dumps(worker.snapshot()))
        parent = Recorder()
        parent.merge(wire)
        assert _nan_eq(parent.snapshot(), worker.snapshot())
        # histogram internals survive exactly, including the floor bucket
        mine = parent.hists["flit.message_delay"]
        theirs = worker.hists["flit.message_delay"]
        assert mine.buckets == theirs.buckets
        assert -1075 in mine.buckets
        assert (mine.count, mine.total, mine.vmin, mine.vmax) == \
            (theirs.count, theirs.total, theirs.vmin, theirs.vmax)

    def test_merging_two_workers_sums_every_dimension(self):
        parent = Recorder()
        parent.merge(_populated_recorder().snapshot())
        parent.merge(_populated_recorder().snapshot())
        assert parent.counters["flit.runs"] == 6
        assert parent.timers["outer"][1] == 2
        assert parent.timers["outer/inner"][1] == 2
        hist = parent.hists["flit.message_delay"]
        assert hist.count == 10
        assert hist.vmin == 0.0 and hist.vmax == 1024.0
        assert all(n == 2 for n in hist.buckets.values())
        assert len(parent.events_of("convergence_round")) == 2
        assert len(spans_of(parent)) == 2

    def test_nan_timer_totals_merge_without_poisoning_calls(self):
        """A NaN total must stay NaN-contained: call counts (ints) keep
        merging exactly even when a wall-clock total is NaN."""
        parent = Recorder()
        parent.merge({"counters": {}, "hists": {}, "events": [],
                      "timers": {"t": {"total_s": float("nan"),
                                       "calls": 3}}})
        parent.merge({"counters": {}, "hists": {}, "events": [],
                      "timers": {"t": {"total_s": 1.5, "calls": 2}}})
        total, calls = parent.timers["t"]
        assert calls == 5
        assert total != total  # NaN, not silently dropped


class TestPoolTaskTelemetry:
    def test_submit_task_ships_worker_snapshot(self):
        rec = Recorder()
        with use_recorder(rec), PersistentPool(1) as pool:
            result, snapshot = pool.submit_task(math.sqrt, 4.0).result()
        assert result == 2.0
        assert snapshot is not None
        [task_span] = spans_of(snapshot)
        assert task_span["name"] == "runner.task"
        assert rec.counters["runner.pool_tasks"] == 1

    def test_submit_task_without_recorder_ships_nothing(self):
        with PersistentPool(1) as pool:
            result, snapshot = pool.submit_task(math.sqrt, 9.0).result()
        assert result == 3.0
        assert snapshot is None

    def test_worker_span_parents_under_submitting_span(self):
        rec = Recorder()
        with use_recorder(rec), PersistentPool(1) as pool:
            with span("parent") as handle:
                _, snapshot = pool.submit_task(math.sqrt, 4.0).result()
            rec.merge(snapshot)
        spans = {s["name"]: s for s in spans_of(rec)}
        assert spans["runner.task"]["trace_id"] == handle.trace_id
        assert spans["runner.task"]["parent_id"] == handle.span_id


class TestParallelSweepTelemetry:
    def _sweep(self, tree, **kwargs):
        sims = {spec: FlitSimulator(tree, make_scheme(tree, spec), CFG)
                for spec in ("d-mod-k", "shift-1:2")}
        rec = Recorder()
        with use_recorder(rec):
            out = run_sweeps(sims, loads=LOADS, **kwargs)
        return out, rec

    def test_parallel_merges_worker_counters_matching_serial(self, tree):
        serial_out, serial_rec = self._sweep(tree)
        par_out, par_rec = self._sweep(tree, n_jobs=4)

        # results bit-identical (NaN-tolerant field compare)
        for key in serial_out:
            for ra, rb in zip(serial_out[key].runs, par_out[key].runs):
                for f in ra.__dataclass_fields__:
                    va, vb = getattr(ra, f), getattr(rb, f)
                    assert va == vb or (va != va and vb != vb)

        # every flit.* counter the simulator recorded serially arrives
        # through the worker snapshots with the same value
        serial_flit = {k: v for k, v in serial_rec.counters.items()
                       if k.startswith("flit.")}
        par_flit = {k: v for k, v in par_rec.counters.items()
                    if k.startswith("flit.")}
        assert serial_flit and serial_flit == par_flit

        # worker-side timers are non-zero and merged into the parent
        total, calls = par_rec.timers["flit.point_eval"]
        assert calls == len(LOADS) * 2 and total > 0

        # histograms merge bucket-exactly (totals are float sums whose
        # association differs, so compare them approximately)
        for name, serial_hist in serial_rec.hists.items():
            par_hist = par_rec.hists[name]
            assert par_hist.buckets == serial_hist.buckets
            assert par_hist.count == serial_hist.count
            assert par_hist.vmin == serial_hist.vmin
            assert par_hist.vmax == serial_hist.vmax
            assert par_hist.total == pytest.approx(serial_hist.total)

    def test_parallel_sweep_spans_form_one_trace(self, tree):
        _, rec = self._sweep(tree, n_jobs=2)
        spans = spans_of(rec)
        names = {s["name"] for s in spans}
        assert {"runner.run_sweeps", "runner.task", "flit.point"} <= names
        assert len({s["trace_id"] for s in spans}) == 1
        sweep_span = next(s for s in spans
                          if s["name"] == "runner.run_sweeps")
        for s in spans:
            if s["name"] == "runner.task":
                assert s["parent_id"] == sweep_span["span_id"]


class TestFlowStudyTelemetry:
    def test_parallel_study_merges_worker_samples_and_timers(self, tree):
        rec = Recorder()
        study = PermutationStudy(tree, initial_samples=8, max_samples=16,
                                 seed=5, n_jobs=2)
        with use_recorder(rec):
            result = study.run(make_scheme(tree, "d-mod-k"))
        assert rec.counters["flow.samples"] == len(result.samples)
        total, calls = rec.timers["flow.sampling.worker"]
        assert calls >= 2 and total > 0
        names = {s["name"] for s in spans_of(rec)}
        assert {"flow.study", "flow.sample_chunk", "runner.task"} <= names
