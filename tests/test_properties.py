"""Property-based invariants of the routing stack, pristine and degraded.

Four families of invariants, each checked on random XGFT shapes drawn by
:mod:`strategies` (and, where it matters, on random connected degraded
fabrics):

* per-pair traffic fractions always sum to 1;
* every selected path is a valid shortest up-down path that avoids
  every failed element;
* shift-1 and disjoint collapse to d-mod-k at ``K = 1``;
* every limited heuristic collapses to UMULTI at ``K >= X``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import DegradedScheme
from repro.routing.factory import make_scheme
from repro.routing.path import build_path, check_path

from strategies import degraded_cases, schemes, xgfts

#: per-test example budget; the CI profile in conftest.py may cap lower
EXAMPLES = 30


def _pairs_by_level(xgft):
    """Yield ``(k, s, d)`` batches of every ordered pair per NCA level."""
    n = xgft.n_procs
    keys = np.arange(n * n, dtype=np.int64)
    s, d = np.divmod(keys, n)
    k_arr = xgft.nca_level(s, d)
    for k in range(1, xgft.h + 1):
        mask = k_arr == k
        if mask.any():
            yield k, s[mask], d[mask]


def _weight_matrix(scheme, s, d, k):
    """Per-pair fraction rows, materialized even for uniform schemes."""
    w = scheme.path_weight_matrix(s, d, k)
    if w is None:
        w = np.broadcast_to(scheme.fractions(k), (len(s), scheme.paths_per_pair(k)))
    return w


@settings(max_examples=EXAMPLES, deadline=None)
@given(degraded_cases())
def test_fractions_sum_to_one(case):
    """Every pair's fractions sum to 1 — pristine and degraded alike."""
    xgft, fabric, base = case
    for scheme in (base, DegradedScheme(base, fabric)):
        for k, s, d in _pairs_by_level(xgft):
            w = _weight_matrix(scheme, s, d, k)
            np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-12)
            assert (w >= 0).all()


@settings(max_examples=EXAMPLES, deadline=None)
@given(degraded_cases(max_procs=48))
def test_selected_paths_are_valid_and_avoid_faults(case):
    """Every positive-weight path is a structurally valid shortest
    up-down path whose links all survive the fault set."""
    xgft, fabric, base = case
    scheme = DegradedScheme(base, fabric)
    for k, s, d in _pairs_by_level(xgft):
        idx = scheme.path_index_matrix(s, d, k)
        w = _weight_matrix(scheme, s, d, k)
        x = xgft.W(k)
        assert ((idx >= 0) & (idx < x)).all()
        # Spot-check a bounded subset of pairs at full structural depth.
        step = max(1, len(s) // 12)
        for row in range(0, len(s), step):
            for t, frac in zip(idx[row], w[row]):
                if frac <= 0.0:
                    continue
                path = build_path(xgft, int(s[row]), int(d[row]), int(t))
                check_path(xgft, path)
                assert all(fabric.link_ok[c] for c in path.links)


@settings(max_examples=EXAMPLES, deadline=None)
@given(degraded_cases())
def test_k1_collapses_to_dmodk(case):
    """At K = 1 shift-1 selects exactly d-mod-k's path, pristine and
    degraded (both re-route along the same +1 shift order); disjoint
    matches on the pristine fabric (its re-route *order* differs)."""
    xgft, fabric, _ = case
    dmodk = make_scheme(xgft, "d-mod-k")
    shift1 = make_scheme(xgft, "shift-1:1")
    disjoint1 = make_scheme(xgft, "disjoint:1")
    for k, s, d in _pairs_by_level(xgft):
        want = dmodk.path_index_matrix(s, d, k)
        np.testing.assert_array_equal(shift1.path_index_matrix(s, d, k), want)
        np.testing.assert_array_equal(disjoint1.path_index_matrix(s, d, k), want)
        got = DegradedScheme(shift1, fabric).path_index_matrix(s, d, k)
        want_deg = DegradedScheme(dmodk, fabric).path_index_matrix(s, d, k)
        np.testing.assert_array_equal(got, want_deg)


@settings(max_examples=EXAMPLES, deadline=None)
@given(degraded_cases())
def test_full_k_collapses_to_umulti(case):
    """At K >= X every heuristic selects the whole (surviving) path set
    with uniform fractions — i.e. is UMULTI on that fabric."""
    xgft, fabric, _ = case
    x = xgft.max_paths
    umulti = DegradedScheme(make_scheme(xgft, "umulti"), fabric)
    for family in ("shift-1", "disjoint", "random"):
        scheme = DegradedScheme(make_scheme(xgft, f"{family}:{x}"), fabric)
        for k, s, d in _pairs_by_level(xgft):
            idx = scheme.path_index_matrix(s, d, k)
            w = _weight_matrix(scheme, s, d, k)
            ref_idx = umulti.path_index_matrix(s, d, k)
            ref_w = _weight_matrix(umulti, s, d, k)
            for row in range(len(s)):
                live = {(int(t), round(float(f), 12))
                        for t, f in zip(idx[row], w[row]) if f > 0}
                ref = {(int(t), round(float(f), 12))
                       for t, f in zip(ref_idx[row], ref_w[row]) if f > 0}
                assert live == ref


@settings(max_examples=EXAMPLES, deadline=None)
@given(st.data())
def test_order_matrix_is_permutation_extending_selection(data):
    """``path_order_matrix`` is a permutation of all X paths whose first
    P entries are exactly the scheme's selected set — the contract the
    degraded wrapper's re-routing relies on."""
    xgft = data.draw(xgfts())
    scheme = data.draw(schemes(xgft))
    for k, s, d in _pairs_by_level(xgft):
        order = scheme.path_order_matrix(s, d, k)
        x = xgft.W(k)
        assert order.shape == (len(s), x)
        np.testing.assert_array_equal(np.sort(order, axis=1),
                                      np.broadcast_to(np.arange(x), order.shape))
        p = scheme.paths_per_pair(k)
        idx = scheme.path_index_matrix(s, d, k)
        np.testing.assert_array_equal(np.sort(order[:, :p], axis=1),
                                      np.sort(idx, axis=1))
