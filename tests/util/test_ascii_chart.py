"""ASCII chart rendering tests."""

import pytest

from repro.util.ascii_chart import AsciiChart


class TestAsciiChart:
    def test_empty(self):
        assert AsciiChart().render() == "(empty chart)"

    def test_single_series_renders_markers(self):
        chart = AsciiChart(width=20, height=8)
        chart.add_series("s", [0, 1, 2], [0.0, 1.0, 2.0])
        text = chart.render(title="t", xlabel="x", ylabel="y")
        assert "t" in text
        assert "o" in text  # first marker
        assert "legend: o=s" in text

    def test_multiple_series_distinct_markers(self):
        chart = AsciiChart()
        chart.add_series("a", [0, 1], [0, 1])
        chart.add_series("b", [0, 1], [1, 0])
        text = chart.render()
        assert "o=a" in text and "x=b" in text

    def test_nan_points_dropped(self):
        chart = AsciiChart()
        chart.add_series("a", [0, 1, 2], [0.0, float("nan"), 2.0])
        xs, ys = chart.series["a"]
        assert xs == [0.0, 2.0]
        assert ys == [0.0, 2.0]

    def test_constant_series(self):
        chart = AsciiChart()
        chart.add_series("flat", [0, 1, 2], [5.0, 5.0, 5.0])
        assert "flat" in chart.render()

    def test_length_mismatch(self):
        chart = AsciiChart()
        with pytest.raises(ValueError):
            chart.add_series("a", [0, 1], [0])

    def test_too_small(self):
        with pytest.raises(ValueError):
            AsciiChart(width=2, height=2)

    def test_axis_labels_present(self):
        chart = AsciiChart(width=30, height=6)
        chart.add_series("a", [1, 10], [2.0, 20.0])
        text = chart.render(xlabel="load", ylabel="ms")
        assert "load" in text
        assert "ms" in text
        assert "20" in text  # y max label
