"""Mixed-radix codec tests (scalar, vectorized, property-based)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.radix import MixedRadix, digits_of, from_digits, prefix_products


class TestPrefixProducts:
    def test_basic(self):
        assert prefix_products((4, 4, 8)) == (1, 4, 16, 128)

    def test_empty(self):
        assert prefix_products(()) == (1,)

    def test_radix_one(self):
        assert prefix_products((1, 4, 2)) == (1, 1, 4, 8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prefix_products((4, 0, 2))
        with pytest.raises(ValueError):
            prefix_products((-1,))


class TestDigits:
    def test_known_values(self):
        assert digits_of(63, (4, 4, 4)) == (3, 3, 3)
        assert digits_of(0, (4, 4, 4)) == (0, 0, 0)
        assert digits_of(7, (1, 4, 2)) == (0, 3, 1)

    def test_roundtrip_explicit(self):
        radices = (3, 5, 2)
        for v in range(3 * 5 * 2):
            assert from_digits(digits_of(v, radices), radices) == v

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            digits_of(8, (2, 2, 2))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            digits_of(-1, (2, 2))

    def test_bad_digit_rejected(self):
        with pytest.raises(ValueError):
            from_digits((2, 0), (2, 2))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            from_digits((0, 0), (2, 2, 2))


radices_strategy = st.lists(st.integers(1, 6), min_size=1, max_size=5).map(tuple)


class TestMixedRadixProperties:
    @given(radices_strategy, st.data())
    def test_roundtrip(self, radices, data):
        mr = MixedRadix(radices)
        value = data.draw(st.integers(0, mr.capacity - 1))
        assert mr.encode(mr.decode(value)) == value

    @given(radices_strategy)
    def test_vectorized_matches_scalar(self, radices):
        mr = MixedRadix(radices)
        values = np.arange(mr.capacity)
        decoded = mr.decode_array(values)
        for v in range(mr.capacity):
            assert tuple(decoded[v]) == mr.decode(v)
        assert np.array_equal(mr.encode_array(decoded), values)

    @given(radices_strategy, st.integers(0, 4))
    def test_digit_extraction(self, radices, i):
        mr = MixedRadix(radices)
        if i >= len(radices):
            return
        values = np.arange(mr.capacity)
        expected = np.array([mr.decode(v)[i] for v in range(mr.capacity)])
        assert np.array_equal(mr.digit(values, i), expected)

    def test_encode_array_shape_check(self):
        mr = MixedRadix((2, 3))
        with pytest.raises(ValueError):
            mr.encode_array(np.zeros((4, 3), dtype=np.int64))
