"""ASCII table rendering tests."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["K", "load"], [[1, 4.0], [12, 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("K")
        assert "4.000" in text and "2.500" in text
        # All rows align to the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header may be shorter after rstrip

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_custom_float_format(self):
        text = format_table(["x"], [[0.123456]], floatfmt=".1f")
        assert "0.1" in text and "0.12" not in text

    def test_mixed_types(self):
        text = format_table(["name", "n"], [["foo", 3], ["barbaz", 12]])
        assert "foo" in text and "barbaz" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
