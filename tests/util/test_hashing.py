"""Deterministic hashing tests: stability, range, rough uniformity."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import hash_combine, hash_mod, hash_uniform, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        x = np.arange(100)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_distinct_inputs_distinct_outputs(self):
        out = splitmix64(np.arange(10_000))
        assert len(np.unique(out)) == 10_000

    def test_scalar_and_array_agree(self):
        arr = splitmix64(np.array([42]))
        assert splitmix64(42) == arr[0]


class TestHashCombine:
    def test_broadcasting(self):
        rows = np.arange(5)[:, None]
        cols = np.arange(7)[None, :]
        out = hash_combine(rows, cols)
        assert out.shape == (5, 7)
        # Every cell distinct for this small grid.
        assert len(np.unique(out)) == 35

    def test_order_sensitivity(self):
        assert hash_combine(1, 2) != hash_combine(2, 1)

    @given(st.integers(0, 2**32), st.integers(0, 2**32))
    def test_deterministic(self, a, b):
        assert hash_combine(a, b) == hash_combine(a, b)


class TestHashUniform:
    def test_range(self):
        u = hash_uniform(np.arange(100_000))
        assert u.min() >= 0.0
        assert u.max() < 1.0

    def test_rough_uniformity(self):
        u = hash_uniform(np.arange(100_000))
        # Mean of U(0,1) is 0.5 with sd ~ 0.0009 for n=1e5.
        assert abs(u.mean() - 0.5) < 0.01
        hist, _ = np.histogram(u, bins=10, range=(0, 1))
        assert hist.min() > 9_000  # each decile within ~10% of expectation


class TestHashMod:
    @given(st.integers(1, 1000))
    def test_range(self, n):
        out = hash_mod(n, np.arange(500))
        assert out.min() >= 0
        assert out.max() < n

    def test_covers_all_residues(self):
        out = hash_mod(8, np.arange(10_000))
        assert set(np.unique(out)) == set(range(8))
