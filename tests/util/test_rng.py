"""RNG plumbing tests."""

import numpy as np

from repro.util.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(123).integers(0, 1000, 10)
        b = as_generator(123).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(5)
        assert as_generator(rng) is rng


class TestSpawnGenerators:
    def test_children_independent_and_reproducible(self):
        kids_a = spawn_generators(42, 3)
        kids_b = spawn_generators(42, 3)
        for a, b in zip(kids_a, kids_b):
            assert np.array_equal(a.integers(0, 100, 5), b.integers(0, 100, 5))

    def test_children_differ_from_each_other(self):
        kids = spawn_generators(42, 2)
        assert not np.array_equal(
            kids[0].integers(0, 2**31, 8), kids[1].integers(0, 2**31, 8)
        )

    def test_generator_seed_accepted(self):
        kids = spawn_generators(np.random.default_rng(1), 2)
        assert len(kids) == 2
