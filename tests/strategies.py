"""Shared Hypothesis strategies: random XGFT shapes, fault specs, schemes.

Kept out of ``conftest.py`` so property tests import exactly what they
use; everything here returns plain repro objects, no fixtures.  Shapes
are bounded (``n_procs``, ``max_paths``) so a property example costs
milliseconds, and degraded cases are conditioned on connectivity — the
same rule the fault sweep applies (disconnection has its own tests).
"""

from __future__ import annotations

from hypothesis import assume
from hypothesis import strategies as st

from repro.faults import ChurnSpec, ChurnTrace, DegradedFabric, FaultSpec
from repro.faults.churn import generate_trace
from repro.faults.spec import samplable_cables, samplable_switches
from repro.routing.factory import make_scheme
from repro.topology.xgft import XGFT


@st.composite
def xgfts(draw, max_height: int = 3, max_procs: int = 80,
          max_paths: int = 16, min_procs: int = 4) -> XGFT:
    """A random small XGFT(h; m; w) with bounded size and path count."""
    h = draw(st.integers(min_value=1, max_value=max_height))
    m = tuple(draw(st.integers(min_value=2, max_value=4)) for _ in range(h))
    w = (draw(st.integers(min_value=1, max_value=2)),) + tuple(
        draw(st.integers(min_value=1, max_value=3)) for _ in range(h - 1)
    )
    xgft = XGFT(h, m, w)
    assume(min_procs <= xgft.n_procs <= max_procs)
    assume(xgft.max_paths <= max_paths)
    return xgft


#: scheme-spec families; K is appended for the limited heuristics
SCHEME_FAMILIES = ("d-mod-k", "s-mod-k", "umulti", "shift-1", "disjoint",
                   "random")


@st.composite
def scheme_specs(draw, xgft: XGFT) -> str:
    """A scheme spec string valid on ``xgft`` (e.g. ``"disjoint:2"``)."""
    family = draw(st.sampled_from(SCHEME_FAMILIES))
    if family in ("d-mod-k", "s-mod-k", "umulti"):
        return family
    k = draw(st.integers(min_value=1, max_value=xgft.max_paths))
    return f"{family}:{k}"


@st.composite
def schemes(draw, xgft: XGFT):
    """A constructed scheme on ``xgft``."""
    return make_scheme(xgft, draw(scheme_specs(xgft)))


@st.composite
def fault_specs(draw, xgft: XGFT) -> FaultSpec:
    """A fault spec whose random sampling is non-critical on ``xgft``."""
    link_rate = 0.0
    switch_rate = 0.0
    if len(samplable_cables(xgft)):
        link_rate = draw(st.floats(min_value=0.0, max_value=0.3))
    if len(samplable_switches(xgft)):
        switch_rate = draw(st.floats(min_value=0.0, max_value=0.2))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return FaultSpec(link_rate=link_rate, switch_rate=switch_rate, seed=seed)


@st.composite
def degraded_fabrics(draw, xgft: XGFT) -> DegradedFabric:
    """A *connected* degraded fabric over ``xgft``."""
    fabric = draw(fault_specs(xgft)).sample(xgft)
    assume(fabric.is_connected)
    return fabric


@st.composite
def degraded_cases(draw, **shape_kwargs):
    """(xgft, fabric, scheme) triple: the full property-test input."""
    xgft = draw(xgfts(**shape_kwargs))
    fabric = draw(degraded_fabrics(xgft))
    scheme = draw(schemes(xgft))
    return xgft, fabric, scheme


@st.composite
def churn_specs(draw, max_events: int = 12) -> ChurnSpec:
    """A bounded churn-stream description (seeded, connected-only)."""
    return ChurnSpec(
        n_events=draw(st.integers(min_value=0, max_value=max_events)),
        fail_bias=draw(st.floats(min_value=0.1, max_value=0.9)),
        switch_fraction=draw(st.sampled_from((0.0, 0.25))),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


@st.composite
def churn_traces(draw, xgft: XGFT, max_events: int = 12) -> ChurnTrace:
    """A concrete generated trace on ``xgft`` (assumes churnable)."""
    assume(len(samplable_cables(xgft)) or len(samplable_switches(xgft)))
    return generate_trace(xgft, draw(churn_specs(max_events=max_events)))


@st.composite
def churn_cases(draw, max_events: int = 12, **shape_kwargs):
    """(xgft, trace, scheme) triple: the churn property-test input."""
    xgft = draw(xgfts(**shape_kwargs))
    trace = draw(churn_traces(xgft, max_events=max_events))
    scheme = draw(schemes(xgft))
    return xgft, trace, scheme
