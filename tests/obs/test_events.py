"""JSONL sink: round trips, numpy coercion, the standard run log."""

import json

import numpy as np
import pytest

from repro.obs import JsonlSink, Recorder, RunManifest, read_jsonl, write_run


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        objs = [{"type": "a", "x": 1}, {"type": "b", "nested": {"y": [1, 2]}}]
        with JsonlSink(path) as sink:
            for obj in objs:
                sink.write(obj)
        assert read_jsonl(path) == objs

    def test_one_object_per_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"a": 1})
            sink.write({"b": 2})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_numpy_scalars_coerced(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"f": np.float64(1.5), "i": np.int64(7)})
        [obj] = read_jsonl(path)
        assert obj == {"f": 1.5, "i": 7}
        assert isinstance(obj["i"], int)

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write({"a": 1})


class TestWriteRun:
    def test_standard_log_shape(self, tmp_path):
        rec = Recorder()
        rec.count("n", 3)
        rec.event("convergence_round", scheme="d-mod-k", n_samples=8,
                  mean=2.5)
        with rec.timer("t"):
            pass
        manifest = RunManifest.create("figure4a", fidelity="fast", seed=1)
        manifest.wall_time_s = 0.5
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            write_run(sink, manifest, rec)

        lines = read_jsonl(path)
        assert lines[0]["type"] == "manifest"
        assert lines[0]["experiment"] == "figure4a"
        assert lines[0]["seed"] == 1
        assert lines[1] == {"type": "convergence_round", "scheme": "d-mod-k",
                            "n_samples": 8, "mean": 2.5}
        assert lines[-1]["type"] == "metrics"
        assert lines[-1]["counters"] == {"n": 3}
        assert lines[-1]["timers"]["t"]["calls"] == 1

    def test_manifest_round_trips_through_log(self, tmp_path):
        manifest = RunManifest.create(
            "table1", fidelity="normal", seed=9,
            argv=("table1", "--seed", "9"))
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            write_run(sink, manifest, Recorder())
        back = RunManifest.from_dict(read_jsonl(path)[0])
        assert back == manifest
