"""Recorder semantics: counters, timer nesting, histograms, merging,
and on/off parity with the null recorder."""

import numpy as np
import pytest

from repro.flow.sampling import PermutationStudy
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.obs.recorder import _Hist
from repro.routing.factory import make_scheme


class TestCounters:
    def test_accumulate(self):
        rec = Recorder()
        rec.count("a")
        rec.count("a", 2)
        rec.count("b", 0.5)
        assert rec.counters == {"a": 3.0, "b": 0.5}

    def test_reading_is_a_copy(self):
        rec = Recorder()
        rec.count("a")
        rec.counters["a"] = 99
        assert rec.counters["a"] == 1.0


class TestTimers:
    def test_records_total_and_calls(self):
        rec = Recorder()
        for _ in range(3):
            with rec.timer("t"):
                pass
        total, calls = rec.timers["t"]
        assert calls == 3
        assert total >= 0.0

    def test_nesting_qualifies_names(self):
        rec = Recorder()
        with rec.timer("outer"):
            with rec.timer("inner"):
                pass
            with rec.timer("inner"):
                pass
        with rec.timer("inner"):
            pass
        assert set(rec.timers) == {"outer", "outer/inner", "inner"}
        assert rec.timers["outer/inner"][1] == 2
        assert rec.timers["inner"][1] == 1

    def test_nesting_unwinds_on_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.timer("outer"):
                raise RuntimeError("boom")
        with rec.timer("after"):
            pass
        assert "after" in rec.timers  # not "outer/after"
        assert rec.timers["outer"][1] == 1  # span still recorded


class TestHistograms:
    def test_stats(self):
        rec = Recorder()
        for v in (1.0, 2.0, 4.0, 8.0):
            rec.observe("h", v)
        h = rec.hists["h"]
        assert h.count == 4
        assert h.vmin == 1.0 and h.vmax == 8.0
        assert h.mean == pytest.approx(3.75)
        assert h.quantile(0.0) >= 1.0
        assert h.quantile(1.0) == 8.0

    def test_quantiles_monotone(self):
        rng = np.random.default_rng(0)
        rec = Recorder()
        for v in rng.exponential(10.0, size=500):
            rec.observe("h", v)
        h = rec.hists["h"]
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)
        assert h.vmin <= qs[0] and qs[-1] <= h.vmax

    def test_zero_and_negative_values(self):
        h = _Hist()
        h.add(0.0)
        h.add(0.0)
        assert h.count == 2
        assert h.quantile(0.5) == 0.0


class TestEvents:
    def test_ordered_stream(self):
        rec = Recorder()
        rec.event("a", x=1)
        rec.event("b", x=2)
        rec.event("a", x=3)
        assert [e["x"] for e in rec.events] == [1, 2, 3]
        assert [e["x"] for e in rec.events_of("a")] == [1, 3]


class TestMerge:
    def test_merge_snapshot(self):
        a, b = Recorder(), Recorder()
        a.count("n", 1)
        b.count("n", 2)
        b.count("only_b")
        with a.timer("t"):
            pass
        with b.timer("t"):
            pass
        a.observe("h", 1.0)
        b.observe("h", 3.0)
        b.event("ev", x=1)
        a.merge(b.snapshot())
        assert a.counters["n"] == 3.0
        assert a.counters["only_b"] == 1.0
        assert a.timers["t"][1] == 2
        assert a.hists["h"].count == 2
        assert a.hists["h"].vmax == 3.0
        assert a.events_of("ev") == [{"type": "ev", "x": 1}]

    def test_merge_is_json_transportable(self):
        import json

        rec = Recorder()
        rec.count("n", 2)
        with rec.timer("t"):
            pass
        rec.observe("h", 5.0)
        wire = json.loads(json.dumps(rec.snapshot()))
        other = Recorder()
        other.merge(wire)
        assert other.counters == rec.counters
        assert other.hists["h"].count == 1


class TestActiveRecorder:
    def test_default_is_null(self):
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_restores(self):
        rec = Recorder()
        with use_recorder(rec):
            assert get_recorder() is rec
            with use_recorder(None):
                assert get_recorder() is NULL_RECORDER
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder(self):
        rec = Recorder()
        set_recorder(rec)
        try:
            assert get_recorder() is rec
        finally:
            set_recorder(None)
        assert get_recorder() is NULL_RECORDER


class TestNullRecorder:
    def test_api_is_inert(self):
        null = NullRecorder()
        null.count("a")
        with null.timer("t"):
            null.observe("h", 1.0)
        null.event("e", x=1)
        null.merge({"counters": {"a": 5}})
        assert null.counters == {}
        assert null.timers == {}
        assert null.hists == {}
        assert null.events == []
        assert not null.enabled

    def test_on_off_parity(self, tree8x2):
        """The same study yields identical samples with and without a
        recorder — instrumentation never touches the RNG stream."""
        def go(recorder):
            study = PermutationStudy(
                tree8x2, initial_samples=8, max_samples=16,
                rel_precision=0.5, seed=42, recorder=recorder)
            return study.run(make_scheme(tree8x2, "d-mod-k"))

        off = go(None)
        rec = Recorder()
        on = go(rec)
        assert np.array_equal(off.samples, on.samples)
        assert rec.counters["flow.samples"] == len(on.samples)
        assert rec.events_of("convergence_round")
