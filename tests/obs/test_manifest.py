"""Run manifests: environment stamping and JSON round trips."""

import json

import repro
from repro.obs import RunManifest


class TestCreate:
    def test_stamps_environment(self):
        m = RunManifest.create("figure4a")
        assert m.version == repro.__version__
        assert m.python.count(".") == 2
        assert m.started_at is not None
        assert m.wall_time_s is None

    def test_fields_pass_through(self):
        m = RunManifest.create("figure5", fidelity="full", seed=3,
                               argv=("figure5", "--fidelity", "full"))
        assert m.fidelity == "full"
        assert m.seed == 3
        assert m.argv == ("figure5", "--fidelity", "full")


class TestRoundTrip:
    def test_dict_round_trip(self):
        m = RunManifest.create("table1", seed=2, argv=("table1",),
                               schemes=("d-mod-k", "disjoint(4)"))
        m.wall_time_s = 1.25
        m.samples_used = 512
        assert RunManifest.from_dict(m.to_dict()) == m

    def test_json_round_trip_drops_nothing(self):
        m = RunManifest.create("figure4b", fidelity="fast", seed=7)
        m.extra["note"] = "demo"
        wire = json.loads(json.dumps(m.to_dict()))
        assert RunManifest.from_dict(wire) == m

    def test_from_dict_ignores_type_tag(self):
        m = RunManifest.create("theorems")
        data = {"type": "manifest", **m.to_dict()}
        assert RunManifest.from_dict(data) == m


class TestReplayCommand:
    def test_includes_fidelity_and_seed(self):
        m = RunManifest("figure4a", fidelity="fast", seed=3)
        assert m.replay_command() == \
            "xgft-repro figure4a --fidelity fast --seed 3"

    def test_omits_unknowns(self):
        assert RunManifest("theorems").replay_command() == \
            "xgft-repro theorems"
