"""Perf snapshots (`repro bench`) and the regression gate."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.bench import (
    BenchSnapshot,
    DEFAULT_THRESHOLD,
    MIN_COMPARABLE_WALL_S,
    OBS_OVERHEAD_BUDGET,
    SCHEMA_VERSION,
    SNAPSHOT_FILES,
    compare_snapshots,
    host_fingerprint,
    measure_obs_overhead,
    run_benchmarks,
    write_snapshots,
)


def _snapshot(benchmark="flow", walls=None, checks=None):
    walls = walls if walls is not None else {"eval": 1.0}
    return BenchSnapshot(
        benchmark=benchmark,
        metrics={k: {"wall_s": w, "cpu_s": w} for k, w in walls.items()},
        checks=dict(checks or {}),
    )


class TestBenchSnapshot:
    def test_round_trips_through_dict(self):
        snap = _snapshot(checks={"parity_ok": True})
        back = BenchSnapshot.from_dict(snap.to_dict())
        assert back.to_dict() == snap.to_dict()
        assert back.schema == SCHEMA_VERSION

    def test_write_read_file(self, tmp_path):
        path = tmp_path / "BENCH_flow.json"
        _snapshot(checks={"parity_ok": True}).write(path)
        back = BenchSnapshot.read(path)
        assert back.benchmark == "flow"
        assert back.metrics["eval"]["wall_s"] == 1.0
        assert back.checks == {"parity_ok": True}
        # the on-disk form is stable, sorted, newline-terminated JSON
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == SCHEMA_VERSION

    def test_create_stamps_environment(self):
        snap = BenchSnapshot.create("obs", {"m": {"wall_s": 1, "cpu_s": 1}})
        assert snap.schema == SCHEMA_VERSION
        assert snap.host == host_fingerprint()
        assert snap.version is not None
        assert snap.created_at is not None

    def test_read_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ReproError):
            BenchSnapshot.read(bad)
        with pytest.raises(ReproError):
            BenchSnapshot.from_dict({"schema": 1})  # missing required keys
        with pytest.raises(ReproError):
            BenchSnapshot.read(tmp_path / "missing.json")


class TestCompareSnapshots:
    def test_synthetic_2x_slowdown_trips_the_gate(self):
        base = _snapshot(walls={"eval": 1.0, "compile": 0.5})
        cur = _snapshot(walls={"eval": 2.0, "compile": 0.5})
        cmp = compare_snapshots(base, cur)
        assert not cmp.ok
        assert [d.name for d in cmp.regressions] == ["eval"]
        assert cmp.regressions[0].ratio == 2.0

    def test_baseline_noise_passes(self):
        # 5-10 % jitter must never fail the default (+50 %) gate.
        base = _snapshot(walls={"eval": 1.0, "compile": 0.5})
        cur = _snapshot(walls={"eval": 1.08, "compile": 0.53})
        cmp = compare_snapshots(base, cur)
        assert cmp.ok and not cmp.regressions

    def test_threshold_is_configurable(self):
        base = _snapshot(walls={"eval": 1.0})
        cur = _snapshot(walls={"eval": 1.2})
        assert compare_snapshots(base, cur, threshold=0.5).ok
        assert not compare_snapshots(base, cur, threshold=0.1).ok

    def test_newly_failed_check_fails_the_gate(self):
        base = _snapshot(checks={"parity_ok": True})
        cur = _snapshot(checks={"parity_ok": False})
        cmp = compare_snapshots(base, cur)
        assert not cmp.ok
        assert cmp.failed_checks == ["parity_ok"]

    def test_check_already_false_in_baseline_does_not_fail(self):
        base = _snapshot(checks={"flaky": False})
        cur = _snapshot(checks={"flaky": False})
        assert compare_snapshots(base, cur).ok

    def test_missing_metrics_reported_but_never_fail(self):
        base = _snapshot(walls={"eval": 1.0, "old_metric": 1.0})
        cur = _snapshot(walls={"eval": 1.0, "new_metric": 1.0})
        cmp = compare_snapshots(base, cur)
        assert cmp.ok
        assert cmp.missing_metrics == ["new_metric", "old_metric"]

    def test_accepts_dicts_and_paths(self, tmp_path):
        base = _snapshot(walls={"eval": 1.0})
        path = tmp_path / "cur.json"
        _snapshot(walls={"eval": 3.0}).write(path)
        cmp = compare_snapshots(base.to_dict(), path)
        assert not cmp.ok

    def test_benchmark_mismatch_raises(self):
        with pytest.raises(ReproError):
            compare_snapshots(_snapshot("flow"), _snapshot("flit"))

    def test_zero_baseline_is_not_a_regression(self):
        # A 0-second baseline cannot express a growth ratio; the delta
        # is reported as not comparable instead of an inf regression.
        base = _snapshot(walls={"eval": 0.0})
        cur = _snapshot(walls={"eval": 0.1})
        cmp = compare_snapshots(base, cur)
        assert cmp.ok and not cmp.regressions
        [delta] = cmp.not_comparable
        assert delta.name == "eval" and not delta.comparable
        assert delta.ratio == float("inf")  # still finite-guarded

    def test_sub_resolution_baseline_is_not_a_regression(self):
        # 0.4 ms -> 5 ms is timer noise on a warm-cache phase, not a
        # 12x slowdown; the gate must not trip.
        base = _snapshot(walls={"eval": MIN_COMPARABLE_WALL_S / 2,
                                "other": 1.0})
        cur = _snapshot(walls={"eval": 0.005, "other": 1.0})
        cmp = compare_snapshots(base, cur)
        assert cmp.ok and not cmp.regressions
        assert [d.name for d in cmp.not_comparable] == ["eval"]

    def test_baseline_at_resolution_floor_still_gates(self):
        base = _snapshot(walls={"eval": MIN_COMPARABLE_WALL_S})
        cur = _snapshot(walls={"eval": MIN_COMPARABLE_WALL_S * 10})
        cmp = compare_snapshots(base, cur)
        assert not cmp.ok and [d.name for d in cmp.regressions] == ["eval"]

    def test_render_names_the_verdict(self):
        cmp = compare_snapshots(_snapshot(walls={"eval": 1.0}),
                                _snapshot(walls={"eval": 2.5}))
        out = cmp.render()
        assert "REGRESSED" in out and "eval" in out
        assert f"+{DEFAULT_THRESHOLD:.0%}" in out

    def test_render_marks_sub_resolution_phases(self):
        cmp = compare_snapshots(_snapshot(walls={"eval": 0.0}),
                                _snapshot(walls={"eval": 0.1}))
        out = cmp.render()
        assert "not comparable" in out and "REGRESSED" not in out


class TestRunBenchmarks:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ReproError, match="unknown benchmark"):
            run_benchmarks(["nope"])

    def test_quick_obs_bench_end_to_end(self, tmp_path):
        snaps = run_benchmarks(["obs"], quick=True)
        snap = snaps["obs"]
        assert snap.benchmark == "obs" and snap.quick
        assert set(snap.metrics) == {
            "flow_hot_path_raw",
            "flow_hot_path_disabled_recorder",
            "flow_hot_path_enabled_recorder",
        }
        disabled = snap.metrics["flow_hot_path_disabled_recorder"]
        assert disabled["budget_fraction"] == OBS_OVERHEAD_BUDGET
        assert "overhead_fraction" in disabled
        assert "disabled_overhead_within_budget" in snap.checks

        [path] = write_snapshots(snaps, tmp_path)
        assert path.name == SNAPSHOT_FILES["obs"]
        # a fresh run of the same benchmark must pass its own gate
        rerun = run_benchmarks(["obs"], quick=True)["obs"]
        assert compare_snapshots(path, rerun, threshold=4.0).failed_checks \
            == []

    def test_measure_obs_overhead_fields(self):
        m = measure_obs_overhead(quick=True, rounds=2, reps=2)
        assert set(m) == {"raw_s", "disabled_s", "enabled_s",
                          "disabled_overhead", "enabled_overhead",
                          "budget", "within_budget"}
        assert m["budget"] == OBS_OVERHEAD_BUDGET
        assert m["raw_s"] > 0 and m["disabled_s"] > 0 and m["enabled_s"] > 0
