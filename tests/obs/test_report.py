"""Profile-report rendering: sparklines and section assembly."""

from repro.obs import Recorder, render_report, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_and_nan(self):
        assert sparkline([]) == ""
        assert sparkline([float("nan")]) == ""
        assert len(sparkline([1.0, float("nan"), 2.0])) == 2


class TestRenderReport:
    def test_empty_recorder(self):
        assert "(recorder is empty)" in render_report(Recorder())

    def test_sections_present(self):
        rec = Recorder()
        rec.count("flow.samples", 128)
        with rec.timer("experiment.figure4a"):
            pass
        rec.observe("flit.message_delay", 120.0)
        out = render_report(rec, title="my run")
        assert "my run" in out
        assert "timers" in out and "experiment.figure4a" in out
        assert "counters" in out and "flow.samples" in out
        assert "histograms" in out and "flit.message_delay" in out

    def test_convergence_section(self):
        rec = Recorder()
        for i, (n, mean, rel) in enumerate(
            [(8, 3.9, 0.2), (16, 3.8, 0.08), (32, 3.75, 0.009)]
        ):
            rec.event("convergence_round", scheme="d-mod-k", round=i,
                      n_samples=n, mean=mean, half_width=rel * mean,
                      rel_half_width=rel)
        out = render_report(rec)
        assert "convergence" in out
        assert "d-mod-k" in out
        assert "samples=32" in out
        assert "mean=3.7500" in out

    def test_flit_section(self):
        rec = Recorder()
        for t, (inj, dlv, stalls, occ) in enumerate(
            [(100, 90, 0, 5), (110, 100, 3, 9), (95, 105, 1, 4)]
        ):
            rec.event("flit_interval", t=(t + 1) * 50, injected=inj,
                      delivered=dlv, credit_stalls=stalls, occupancy=occ)
        out = render_report(rec)
        assert "flit engine (3 interval(s))" in out
        assert "credit stalls" in out and "total=4" in out
        assert "buffer occupancy" in out and "max=9" in out
