"""Metrics export: Prometheus text format, wide rows, cross-run reports."""

import math

import pytest

from repro.obs import Recorder, use_recorder
from repro.obs.events import JsonlSink, write_run
from repro.obs.export import (
    aggregate_runs,
    discover_run_logs,
    load_run,
    merged_recorder,
    quantile,
    render_cross_run_report,
    to_prometheus,
    to_wide_row,
)
from repro.obs.manifest import RunManifest
from repro.obs.trace import span


class TestPrometheus:
    def test_counter(self):
        rec = Recorder()
        rec.count("runner.cache_hit", 3)
        out = to_prometheus(rec)
        assert "# TYPE repro_runner_cache_hit counter\n" in out
        assert "repro_runner_cache_hit 3\n" in out

    def test_name_sanitization(self):
        rec = Recorder()
        rec.count("flow.samples-odd name", 1)
        out = to_prometheus(rec)
        assert "repro_flow_samples_odd_name 1" in out

    def test_timer_becomes_seconds_and_calls_pair(self):
        rec = Recorder()
        with rec.timer("flow.study"):
            pass
        out = to_prometheus(rec)
        assert "# TYPE repro_flow_study_seconds_total counter" in out
        assert "repro_flow_study_calls_total 1" in out

    def test_labels_attach_to_every_sample(self):
        rec = Recorder()
        rec.count("a", 1)
        with rec.timer("t"):
            pass
        out = to_prometheus(rec, labels={"host": "ci", "run": "7"})
        for line in out.splitlines():
            if line.startswith("#"):
                continue
            assert 'host="ci"' in line and 'run="7"' in line

    def test_custom_prefix(self):
        rec = Recorder()
        rec.count("x", 1)
        assert "xgft_x 1" in to_prometheus(rec, prefix="xgft_")

    def test_label_values_escape_quotes_backslashes_newlines(self):
        # Prometheus exposition format: \ -> \\, " -> \", newline -> \n
        # inside label values; a raw quote would truncate the value and
        # break the scrape parser.
        rec = Recorder()
        rec.count("x", 1)
        out = to_prometheus(rec, labels={
            "scheme": 'disjoint "wide"',
            "path": "C:\\tables",
            "note": "a\nb",
        })
        assert 'scheme="disjoint \\"wide\\""' in out
        assert 'path="C:\\\\tables"' in out
        assert 'note="a\\nb"' in out
        # no label value leaks an unescaped quote or literal newline
        for line in out.splitlines():
            if not line.startswith("#") and "x{" in line:
                assert line.count('"') % 2 == 0

    def test_histogram_buckets_are_cumulative(self):
        rec = Recorder()
        for v in (0.5, 1.5, 3.0, 3.5):
            rec.observe("lat", v)
        out = to_prometheus(rec)
        assert "# TYPE repro_lat histogram" in out
        bucket_counts = []
        for line in out.splitlines():
            if line.startswith("repro_lat_bucket"):
                bucket_counts.append(int(line.rsplit(" ", 1)[1]))
        # cumulative and ending at the total count via +Inf
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 4
        assert 'le="+Inf"' in out
        assert "repro_lat_sum 8.5" in out
        assert "repro_lat_count 4" in out

    def test_histogram_le_bounds_are_powers_of_two(self):
        rec = Recorder()
        rec.observe("lat", 3.0)  # bucket covers (2, 4]
        out = to_prometheus(rec)
        assert 'le="4.0"' in out

    def test_zero_value_lands_in_floor_bucket(self):
        rec = Recorder()
        rec.observe("lat", 0.0)
        out = to_prometheus(rec)
        assert 'le="0"' in out

    def test_empty_recorder_renders_empty(self):
        assert to_prometheus(Recorder()) == ""


class TestWideRow:
    def test_all_dimensions_flatten(self):
        rec = Recorder()
        rec.count("flit.runs", 2)
        with rec.timer("eval"):
            pass
        for v in (1.0, 2.0, 4.0):
            rec.observe("lat", v)
        row = to_wide_row(rec)
        assert row["flit.runs"] == 2
        assert row["eval.calls"] == 1 and row["eval.total_s"] >= 0
        assert row["lat.count"] == 3
        assert row["lat.mean"] == pytest.approx(7.0 / 3.0)
        assert row["lat.min"] == 1.0 and row["lat.max"] == 4.0
        assert "lat.p50" in row and "lat.p95" in row and "lat.p99" in row

    def test_prefix_and_scalar_values(self):
        rec = Recorder()
        rec.count("x", 1)
        row = to_wide_row(rec, prefix="run0.")
        assert set(row) == {"run0.x"}
        assert all(isinstance(v, (int, float)) for v in row.values())


class TestQuantile:
    def test_exact_interpolation(self):
        assert quantile([1, 2, 3, 4], 0.5) == 2.5
        assert quantile([1, 2, 3, 4], 0.0) == 1.0
        assert quantile([1, 2, 3, 4], 1.0) == 4.0

    def test_degenerate_inputs(self):
        assert quantile([7.0], 0.95) == 7.0
        assert math.isnan(quantile([], 0.5))
        assert quantile([1.0, float("nan"), 3.0], 1.0) == 3.0


def _write_log(path, experiment, *, seed=1, wall=2.0, with_span=False):
    rec = Recorder()
    rec.count("flow.samples", 64)
    with rec.timer("flow.sampling"):
        pass
    if with_span:
        with use_recorder(rec), span("study", scheme="d-mod-k"):
            pass
    manifest = RunManifest(experiment, fidelity="fast", seed=seed,
                           wall_time_s=wall)
    with JsonlSink(path) as sink:
        write_run(sink, manifest, rec)


class TestCrossRunReport:
    def test_load_run_partitions_lines(self, tmp_path):
        log = tmp_path / "a.jsonl"
        _write_log(log, "figure4a", with_span=True)
        run = load_run(log)
        assert run.experiment == "figure4a"
        assert run.metrics["counters"]["flow.samples"] == 64
        assert any(e.get("type") == "span" for e in run.events)

    def test_discover_expands_directories(self, tmp_path):
        _write_log(tmp_path / "b.jsonl", "x")
        _write_log(tmp_path / "a.jsonl", "y")
        found = discover_run_logs([tmp_path])
        assert [p.name for p in found] == ["a.jsonl", "b.jsonl"]

    def test_merged_recorder_sums_counters(self, tmp_path):
        _write_log(tmp_path / "a.jsonl", "x")
        _write_log(tmp_path / "b.jsonl", "x")
        merged = merged_recorder(aggregate_runs([tmp_path]))
        assert merged.counters["flow.samples"] == 128
        assert merged.timers["flow.sampling"][1] == 2

    def test_report_includes_runs_phases_counters_and_waterfall(
            self, tmp_path):
        _write_log(tmp_path / "a.jsonl", "figure4a", seed=1)
        _write_log(tmp_path / "b.jsonl", "figure4a", seed=2, with_span=True)
        out = render_cross_run_report(aggregate_runs([tmp_path]))
        assert "2 run(s)" in out
        assert "a.jsonl" in out and "b.jsonl" in out
        assert "flow.sampling" in out  # phase table
        assert "p95 s" in out
        assert "flow.samples" in out  # counter totals
        assert "span waterfall (b.jsonl)" in out
        assert "study" in out

    def test_report_with_no_runs(self):
        assert "(no run logs found)" in render_cross_run_report([])
