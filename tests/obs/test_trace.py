"""Span tracing: ids, parent links, context propagation, waterfalls."""

import json

from repro.obs import Recorder, use_recorder
from repro.obs.trace import (
    current_trace_context,
    render_waterfall,
    span,
    spans_of,
    trace_context,
)


class TestSpanBasics:
    def test_nested_spans_share_trace_and_link_parents(self):
        rec = Recorder()
        with use_recorder(rec):
            with span("outer"):
                with span("inner"):
                    pass
        inner, outer = rec.events_of("span")  # inner exits (records) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_siblings_get_distinct_span_ids(self):
        rec = Recorder()
        with use_recorder(rec):
            with span("root"):
                with span("a"):
                    pass
                with span("b"):
                    pass
        ids = {e["span_id"] for e in rec.events_of("span")}
        assert len(ids) == 3

    def test_separate_roots_get_separate_traces(self):
        rec = Recorder()
        with use_recorder(rec):
            with span("first"):
                pass
            with span("second"):
                pass
        first, second = rec.events_of("span")
        assert first["trace_id"] != second["trace_id"]

    def test_wall_clock_and_duration_consistent(self):
        rec = Recorder()
        with use_recorder(rec):
            with span("work"):
                sum(range(1000))
        [ev] = rec.events_of("span")
        assert ev["end"] >= ev["start"]
        # end is start + duration at epoch-float resolution (~1e-7 s)
        assert abs((ev["end"] - ev["start"]) - ev["duration_s"]) < 1e-5
        assert ev["duration_s"] >= 0

    def test_attrs_and_handle_set(self):
        rec = Recorder()
        with use_recorder(rec):
            with span("task", scheme="d-mod-k") as handle:
                handle.set(samples=64)
        [ev] = rec.events_of("span")
        assert ev["scheme"] == "d-mod-k" and ev["samples"] == 64

    def test_disabled_recorder_records_nothing_and_yields_none(self):
        rec = Recorder()
        with span("invisible") as handle:  # ambient recorder is the no-op
            assert handle is None
        assert rec.events == []
        assert current_trace_context() is None

    def test_explicit_recorder_wins_over_ambient(self):
        mine = Recorder()
        with span("direct", recorder=mine):
            pass
        assert [e["name"] for e in mine.events_of("span")] == ["direct"]


class TestContextPropagation:
    def test_current_context_inside_span(self):
        rec = Recorder()
        with use_recorder(rec):
            with span("outer"):
                ctx = current_trace_context()
        [ev] = rec.events_of("span")
        assert ctx == {"trace_id": ev["trace_id"], "span_id": ev["span_id"]}

    def test_context_is_json_safe(self):
        rec = Recorder()
        with use_recorder(rec), span("s"):
            ctx = current_trace_context()
        assert json.loads(json.dumps(ctx)) == ctx

    def test_adopted_context_parents_remote_spans(self):
        """The worker-side pattern: adopt the shipped context, then
        record spans that parent under the submitting span."""
        parent_rec = Recorder()
        with use_recorder(parent_rec), span("submit"):
            ctx = current_trace_context()
        worker_rec = Recorder()
        with use_recorder(worker_rec), trace_context(ctx):
            with span("task"):
                pass
        [submit] = parent_rec.events_of("span")
        [task] = worker_rec.events_of("span")
        assert task["trace_id"] == submit["trace_id"]
        assert task["parent_id"] == submit["span_id"]

    def test_none_context_is_accepted(self):
        rec = Recorder()
        with trace_context(None), use_recorder(rec), span("root"):
            pass
        assert rec.events_of("span")[0]["parent_id"] is None

    def test_merged_worker_spans_keep_links(self):
        parent = Recorder()
        with use_recorder(parent), span("sweep"):
            ctx = current_trace_context()
        worker = Recorder()
        with use_recorder(worker), trace_context(ctx), span("point"):
            pass
        parent.merge(worker.snapshot())
        spans = spans_of(parent)
        assert {s["name"] for s in spans} == {"sweep", "point"}
        assert len({s["trace_id"] for s in spans}) == 1


class TestSpansOf:
    def test_accepts_recorder_snapshot_and_event_list(self):
        rec = Recorder()
        with use_recorder(rec), span("s"):
            rec.event("other", x=1)
        assert len(spans_of(rec)) == 1
        assert len(spans_of(rec.snapshot())) == 1
        assert len(spans_of(rec.events)) == 1
        assert spans_of([]) == []


class TestWaterfall:
    def _recorder_with_tree(self):
        rec = Recorder()
        with use_recorder(rec):
            with span("root"):
                with span("child-a"):
                    pass
                with span("child-b"):
                    pass
        return rec

    def test_waterfall_lists_every_span(self):
        out = render_waterfall(self._recorder_with_tree())
        for name in ("root", "child-a", "child-b"):
            assert name in out
        assert "trace " in out and "ms" in out

    def test_waterfall_indents_children(self):
        out = render_waterfall(self._recorder_with_tree())
        root_line = next(l for l in out.splitlines() if "root" in l)
        child_line = next(l for l in out.splitlines() if "child-a" in l)
        assert (len(child_line) - len(child_line.lstrip())
                > len(root_line) - len(root_line.lstrip()))

    def test_waterfall_elides_beyond_max_spans(self):
        rec = Recorder()
        with use_recorder(rec), span("root"):
            for i in range(5):
                with span(f"task-{i}"):
                    pass
        out = render_waterfall(rec, max_spans=3)
        assert "more span(s)" in out

    def test_empty_waterfall(self):
        assert "no spans" in render_waterfall(Recorder())
