"""Empirical oblivious-ratio search tests."""

import pytest

from repro.analysis.ratio import empirical_oblivious_ratio, worst_case_permutation
from repro.routing.factory import make_scheme
from repro.routing.heuristics import UMulti
from repro.topology.variants import m_port_n_tree
from repro.traffic.adversarial import suggest_theorem2_topology


class TestWorstCasePermutation:
    def test_finds_bad_permutation_for_dmodk(self, tree8x2):
        ratio, perm = worst_case_permutation(
            tree8x2, make_scheme(tree8x2, "d-mod-k"), samples=50, seed=0
        )
        assert ratio > 1.5  # d-mod-k is far from optimal on permutations
        assert sorted(perm.tolist()) == list(range(32))

    def test_umulti_always_one(self, tree8x2):
        ratio, _ = worst_case_permutation(
            tree8x2, UMulti(tree8x2), samples=20, seed=0
        )
        assert ratio == pytest.approx(1.0)


class TestEmpiricalObliviousRatio:
    def test_theorem2_witness_found(self):
        xgft = suggest_theorem2_topology(2, 4)
        est = empirical_oblivious_ratio(
            xgft, make_scheme(xgft, "d-mod-k"), permutation_samples=10, seed=1
        )
        assert est.ratio >= 4.0
        assert est.witness == "theorem2"

    def test_umulti_estimate_is_one(self, tree8x2):
        est = empirical_oblivious_ratio(
            tree8x2, UMulti(tree8x2), permutation_samples=10, seed=1
        )
        assert est.ratio == pytest.approx(1.0)

    def test_multipath_tightens_estimate(self, tree8x2):
        dmodk = empirical_oblivious_ratio(
            tree8x2, make_scheme(tree8x2, "d-mod-k"),
            permutation_samples=30, seed=2,
        )
        dj = empirical_oblivious_ratio(
            tree8x2, make_scheme(tree8x2, "disjoint:2"),
            permutation_samples=30, seed=2,
        )
        assert dj.ratio <= dmodk.ratio
