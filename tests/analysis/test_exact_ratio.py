"""Exact oblivious ratios (LP): Theorem 1 as an equality over all TMs."""

import pytest

from repro.analysis.exact_ratio import exact_oblivious_ratio
from repro.errors import ReproError
from repro.flow.metrics import optimal_load, performance_ratio
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT


@pytest.fixture(scope="module")
def tiny():
    return XGFT(2, (2, 4), (1, 2))  # 8 nodes, 56 pairs


class TestExactRatio:
    def test_umulti_exactly_one(self, tiny):
        """Theorem 1, exactly: no traffic matrix at all makes UMULTI
        exceed the optimum."""
        res = exact_oblivious_ratio(tiny, make_scheme(tiny, "umulti"))
        assert res.ratio == pytest.approx(1.0, abs=1e-7)

    def test_dmodk_ratio_is_w2(self, tiny):
        """On this 2-level tree d-mod-k's exact oblivious ratio equals
        w_2 = 2: the funnel is the worst case, and nothing is worse."""
        res = exact_oblivious_ratio(tiny, make_scheme(tiny, "d-mod-k"))
        assert res.ratio == pytest.approx(2.0, abs=1e-7)

    def test_full_k_heuristics_optimal(self, tiny):
        for spec in ("shift-1:2", "disjoint:2", "random:2"):
            res = exact_oblivious_ratio(tiny, make_scheme(tiny, spec))
            assert res.ratio == pytest.approx(1.0, abs=1e-6), spec

    def test_witness_achieves_ratio(self, tiny):
        scheme = make_scheme(tiny, "d-mod-k")
        res = exact_oblivious_ratio(tiny, scheme)
        assert optimal_load(tiny, res.witness) == pytest.approx(1.0, abs=1e-7)
        assert performance_ratio(tiny, scheme, res.witness) == pytest.approx(
            res.ratio, abs=1e-6
        )

    def test_exact_dominates_empirical(self, tiny):
        """The LP ratio upper-bounds any empirical witness."""
        from repro.analysis.ratio import empirical_oblivious_ratio

        scheme = make_scheme(tiny, "d-mod-k")
        exact = exact_oblivious_ratio(tiny, scheme).ratio
        emp = empirical_oblivious_ratio(tiny, scheme,
                                        permutation_samples=20, seed=0).ratio
        assert exact >= emp - 1e-9

    def test_monotone_in_k(self):
        """More paths never increase the exact worst case."""
        xgft = m_port_n_tree(4, 2)
        ratios = [
            exact_oblivious_ratio(xgft, make_scheme(xgft, f"disjoint:{k}")).ratio
            for k in (1, 2)
        ]
        assert ratios[1] <= ratios[0] + 1e-9

    def test_size_guard(self):
        big = m_port_n_tree(8, 3)
        with pytest.raises(ReproError):
            exact_oblivious_ratio(big, make_scheme(big, "d-mod-k"))
