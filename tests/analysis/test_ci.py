"""Confidence-interval machinery tests."""

import math

import numpy as np
import pytest

from repro.analysis.ci import ConfidenceInterval, confidence_interval, z_value


class TestZValue:
    def test_tabulated_levels(self):
        assert z_value(0.99) == pytest.approx(2.5758293, abs=1e-6)
        assert z_value(0.95) == pytest.approx(1.9599640, abs=1e-6)

    def test_scipy_fallback(self):
        # 0.98 is not tabulated; must agree with the normal quantile.
        assert z_value(0.98) == pytest.approx(2.3263479, abs=1e-6)

    def test_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                z_value(bad)


class TestConfidenceInterval:
    def test_known_case(self):
        samples = [10.0, 12.0, 8.0, 10.0]
        ci = confidence_interval(samples, 0.99)
        assert ci.mean == pytest.approx(10.0)
        expected_half = 2.5758293 * np.std(samples, ddof=1) / 2.0
        assert ci.half_width == pytest.approx(expected_half)
        assert ci.n_samples == 4

    def test_empty_and_single(self):
        assert math.isinf(confidence_interval([]).half_width)
        one = confidence_interval([5.0])
        assert one.mean == 5.0 and math.isinf(one.half_width)

    def test_meets_paper_rule(self):
        # Identical samples: zero width meets any positive precision.
        ci = confidence_interval([3.0] * 10)
        assert ci.meets(0.01)
        assert not confidence_interval([1.0, 100.0]).meets(0.01)

    def test_relative_half_width_zero_mean(self):
        ci = ConfidenceInterval(0.0, 0.0, 0.99, 5)
        assert ci.relative_half_width == 0.0
        ci2 = ConfidenceInterval(0.0, 1.0, 0.99, 5)
        assert math.isinf(ci2.relative_half_width)

    def test_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = confidence_interval(rng.normal(10, 1, 20))
        large = confidence_interval(rng.normal(10, 1, 2000))
        assert large.half_width < small.half_width
