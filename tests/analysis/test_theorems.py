"""Theorem validators: the paper's analytical claims, executed."""

import pytest

from repro.analysis.theorems import check_lemma1, check_theorem1, check_theorem2
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.adversarial import suggest_theorem2_topology
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.traffic.synthetic import all_to_all, bit_complement


class TestLemma1:
    @pytest.mark.parametrize("spec", ["d-mod-k", "s-mod-k", "shift-1:2",
                                      "disjoint:3", "random:2", "umulti"])
    def test_no_scheme_beats_the_bound(self, tree8x2, spec):
        scheme = make_scheme(tree8x2, spec)
        for seed in range(3):
            tm = permutation_matrix(random_permutation(32, seed))
            report = check_lemma1(tree8x2, scheme, tm)
            assert report.holds, str(report)


class TestTheorem1:
    @pytest.mark.parametrize("make_tm", [
        lambda n: all_to_all(n),
        lambda n: bit_complement(n),
        lambda n: permutation_matrix(random_permutation(n, 9)),
    ])
    def test_umulti_exactly_optimal(self, tree8x2, make_tm):
        report = check_theorem1(tree8x2, make_tm(tree8x2.n_procs))
        assert report.holds, str(report)

    def test_holds_on_3level(self, tree8x3):
        tm = permutation_matrix(random_permutation(128, 3))
        assert check_theorem1(tree8x3, tm).holds


class TestTheorem2:
    @pytest.mark.parametrize("h,w", [(2, 2), (2, 4), (3, 2), (3, 3)])
    def test_ratio_reaches_prod_w(self, h, w):
        report = check_theorem2(suggest_theorem2_topology(h, w))
        assert report.holds, str(report)
        assert report.measured == pytest.approx(w ** (h - 1))

    def test_report_rendering(self):
        report = check_theorem2(suggest_theorem2_topology(2, 4))
        text = str(report)
        assert "OK" in text and "Theorem 2" in text


class TestReportFormat:
    def test_failure_renders_fail(self, tree8x2):
        from repro.analysis.theorems import TheoremReport

        r = TheoremReport("x", False, 1.0, 2.0, "d")
        assert "FAIL" in str(r)
