"""Engine parity: the compiled evaluator must match the reference.

The acceptance bar for the compiled path is numerical agreement with the
closed-form reference evaluator to 1e-9 on identical traffic matrices,
across every scheme family and on both 2- and 3-level topologies
(including an irregular one with w_1 > 1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow.engine import BatchFlowEngine
from repro.flow.loads import link_loads
from repro.flow.metrics import max_link_load, permutation_optimal_load
from repro.flow.sampling import PermutationStudy
from repro.flow.simulator import FlowSimulator
from repro.routing.compiled import compile_scheme
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.traffic.synthetic import all_to_all, shift_pattern

SCHEME_SPECS = ("d-mod-k", "s-mod-k", "shift-1:3", "disjoint:3", "random:3",
                "umulti")

TOPOLOGIES = [
    m_port_n_tree(8, 2),          # 2-level, 32 nodes
    m_port_n_tree(4, 3),          # 3-level, 32 nodes
    XGFT(3, (3, 2, 4), (1, 2, 3)),  # irregular radices
    XGFT(2, (3, 5), (2, 3)),      # w_1 > 1: multiple host uplinks
]


def _random_tm(xgft, seed=0):
    rng = np.random.default_rng(seed)
    n = xgft.n_procs
    k = min(4 * n, n * (n - 1))
    keys = rng.choice(n * n, size=k, replace=False)
    s, d = keys // n, keys % n
    keep = s != d
    return TrafficMatrix(n, s[keep], d[keep],
                         rng.uniform(0.1, 2.0, int(keep.sum())))


@pytest.mark.parametrize("xgft", TOPOLOGIES, ids=repr)
@pytest.mark.parametrize("spec", SCHEME_SPECS)
class TestLinkLoadParity:
    def test_permutation_traffic(self, xgft, spec):
        scheme = make_scheme(xgft, spec, seed=5)
        engine = BatchFlowEngine(compile_scheme(xgft, scheme))
        rng = np.random.default_rng(42)
        for _ in range(3):
            tm = permutation_matrix(random_permutation(xgft.n_procs, rng))
            ref = link_loads(xgft, scheme, tm)
            np.testing.assert_allclose(engine.link_loads(tm), ref, atol=1e-9)

    def test_weighted_sparse_traffic(self, xgft, spec):
        scheme = make_scheme(xgft, spec, seed=5)
        engine = BatchFlowEngine(compile_scheme(xgft, scheme))
        tm = _random_tm(xgft, seed=7)
        ref = link_loads(xgft, scheme, tm)
        np.testing.assert_allclose(engine.link_loads(tm), ref, atol=1e-9)

    def test_all_to_all(self, xgft, spec):
        scheme = make_scheme(xgft, spec, seed=5)
        engine = BatchFlowEngine(compile_scheme(xgft, scheme))
        tm = all_to_all(xgft.n_procs)
        ref = link_loads(xgft, scheme, tm)
        np.testing.assert_allclose(engine.link_loads(tm), ref, atol=1e-9)


class TestBatchPermutations:
    def test_batch_matches_scalar_loop(self, tree8x3):
        scheme = make_scheme(tree8x3, "disjoint:3")
        engine = BatchFlowEngine(compile_scheme(tree8x3, scheme))
        rng = np.random.default_rng(3)
        perms = np.stack([random_permutation(tree8x3.n_procs, rng)
                          for _ in range(17)])
        batch = engine.permutation_mloads(perms)
        scalar = [max_link_load(link_loads(tree8x3, scheme,
                                           permutation_matrix(p)))
                  for p in perms]
        np.testing.assert_allclose(batch, scalar, atol=1e-9)

    def test_chunking_is_invisible(self, tree8x2, monkeypatch):
        import repro.flow.engine as eng_mod

        scheme = make_scheme(tree8x2, "shift-1:2")
        engine = BatchFlowEngine(compile_scheme(tree8x2, scheme))
        rng = np.random.default_rng(9)
        perms = np.stack([random_permutation(tree8x2.n_procs, rng)
                          for _ in range(8)])
        whole = engine.permutation_mloads(perms)
        # Force a scratch budget so small that every chunk is one perm.
        monkeypatch.setattr(eng_mod, "_BATCH_BUDGET", 1)
        np.testing.assert_allclose(engine.permutation_mloads(perms), whole)

    def test_single_permutation_1d(self, tree8x2):
        scheme = make_scheme(tree8x2, "d-mod-k")
        engine = BatchFlowEngine(compile_scheme(tree8x2, scheme))
        perm = np.roll(np.arange(tree8x2.n_procs), 1)
        out = engine.permutation_mloads(perm)
        assert out.shape == (1,)
        ref = max_link_load(link_loads(tree8x2, scheme,
                                       permutation_matrix(perm)))
        assert abs(out[0] - ref) < 1e-9

    def test_rejects_bad_width(self, tree8x2):
        scheme = make_scheme(tree8x2, "d-mod-k")
        engine = BatchFlowEngine(compile_scheme(tree8x2, scheme))
        with pytest.raises(ValueError):
            engine.permutation_mloads(np.zeros((2, 5), dtype=np.int64))


class TestFlowSimulatorEngines:
    @pytest.mark.parametrize("spec", ["d-mod-k", "disjoint:2", "umulti"])
    def test_evaluate_agrees(self, tree8x2, spec):
        scheme = make_scheme(tree8x2, spec)
        tm = shift_pattern(tree8x2.n_procs, 3)
        ref = FlowSimulator(tree8x2).evaluate(scheme, tm)
        comp = FlowSimulator(tree8x2, engine="compiled").evaluate(scheme, tm)
        np.testing.assert_allclose(comp.loads, ref.loads, atol=1e-9)
        assert abs(comp.max_load - ref.max_load) < 1e-9
        assert comp.optimal == ref.optimal
        np.testing.assert_allclose(comp.per_level_max, ref.per_level_max,
                                   atol=1e-9)

    def test_rejects_unknown_engine(self, tree8x2):
        with pytest.raises(ValueError):
            FlowSimulator(tree8x2, engine="magic")

    def test_evaluate_accepts_precomputed_optimal(self, tree8x2):
        scheme = make_scheme(tree8x2, "umulti")
        tm = shift_pattern(tree8x2.n_procs, 5)
        sim = FlowSimulator(tree8x2)
        res = sim.evaluate(scheme, tm, optimal=2.0)
        assert res.optimal == 2.0
        assert res.ratio == pytest.approx(res.max_load / 2.0)

    def test_batch_engine_cached_per_scheme(self, tree8x2):
        sim = FlowSimulator(tree8x2, engine="compiled")
        scheme = make_scheme(tree8x2, "disjoint:2")
        assert sim.batch_engine(scheme) is sim.batch_engine(scheme)

    def test_accepts_precompiled_plan(self, tree8x2):
        scheme = make_scheme(tree8x2, "d-mod-k")
        plan = compile_scheme(tree8x2, scheme)
        sim = FlowSimulator(tree8x2, engine="compiled")
        tm = shift_pattern(tree8x2.n_procs, 1)
        np.testing.assert_allclose(
            sim.evaluate(plan, tm).loads,
            link_loads(tree8x2, scheme, tm), atol=1e-9)

    def test_permutation_mloads_both_engines(self, tree8x2):
        scheme = make_scheme(tree8x2, "random:2", seed=1)
        rng = np.random.default_rng(0)
        perms = np.stack([random_permutation(tree8x2.n_procs, rng)
                          for _ in range(5)])
        ref = FlowSimulator(tree8x2).permutation_mloads(scheme, perms)
        comp = FlowSimulator(tree8x2, engine="compiled") \
            .permutation_mloads(scheme, perms)
        np.testing.assert_allclose(comp, ref, atol=1e-9)


class TestStudyCrossEngine:
    def test_same_seed_same_samples(self, tree8x2):
        """Property-style: both engines consume the identical permutation
        stream, so a fixed-seed study yields the same sample sequence."""
        scheme = make_scheme(tree8x2, "disjoint:2")
        kwargs = dict(initial_samples=16, max_samples=32, seed=99)
        ref = PermutationStudy(tree8x2, **kwargs).run(scheme)
        comp = PermutationStudy(tree8x2, engine="compiled", **kwargs) \
            .run(scheme)
        np.testing.assert_allclose(comp.samples, ref.samples, atol=1e-9)
        assert comp.converged == ref.converged

    def test_result_carries_optimal(self, tree8x2):
        scheme = make_scheme(tree8x2, "umulti")
        res = PermutationStudy(tree8x2, initial_samples=8, max_samples=8,
                               seed=1).run(scheme)
        assert res.optimal == permutation_optimal_load(tree8x2)
        assert res.mean_ratio == pytest.approx(res.mean / res.optimal)

    def test_umulti_mean_ratio_is_one(self, tree8x2):
        # UMULTI achieves OLOAD on every matrix (Theorem 1), so each
        # sample equals the hoisted optimal.
        res = PermutationStudy(tree8x2, initial_samples=8, max_samples=8,
                               seed=2, engine="compiled") \
            .run(make_scheme(tree8x2, "umulti"))
        assert res.mean_ratio == pytest.approx(1.0)
