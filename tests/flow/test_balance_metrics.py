"""Load-balance metrics (imbalance, Gini) tests."""

import numpy as np
import pytest

from repro.flow.loads import link_loads
from repro.flow.metrics import gini_coefficient, load_imbalance
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.permutations import permutation_matrix, random_permutation


class TestLoadImbalance:
    def test_uniform_loads_zero(self):
        assert load_imbalance(np.full(10, 3.0)) == 0.0

    def test_empty_and_unused(self):
        assert load_imbalance(np.array([])) == 0.0
        assert load_imbalance(np.zeros(5)) == 0.0

    def test_skew_increases(self):
        even = load_imbalance(np.array([1.0, 1.0, 1.0, 1.0]))
        skewed = load_imbalance(np.array([4.0, 0.1, 0.1, 0.1]))
        assert skewed > even

    def test_zeros_excluded(self):
        # Unused links don't count against balance.
        assert load_imbalance(np.array([2.0, 2.0, 0.0, 0.0])) == 0.0


class TestGini:
    def test_equal_is_zero(self):
        assert gini_coefficient(np.full(8, 2.0)) == pytest.approx(0.0)

    def test_concentrated_near_one(self):
        loads = np.zeros(100)
        loads[0] = 50.0
        assert gini_coefficient(loads) > 0.95

    def test_empty_or_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(4)) == 0.0

    def test_scale_invariant(self):
        loads = np.array([1.0, 2.0, 3.0, 4.0])
        assert gini_coefficient(loads) == pytest.approx(
            gini_coefficient(loads * 7.5)
        )

    def test_known_value(self):
        # Two links, one carries everything: G = 1/2 for n = 2.
        assert gini_coefficient(np.array([1.0, 0.0])) == pytest.approx(0.5)


class TestSchemeBalance:
    def test_umulti_most_balanced(self):
        """On a random permutation, UMULTI spreads load at least as
        evenly as d-mod-k by both measures."""
        xgft = m_port_n_tree(8, 2)
        tm = permutation_matrix(random_permutation(32, 4))
        dmodk = link_loads(xgft, make_scheme(xgft, "d-mod-k"), tm)
        umulti = link_loads(xgft, make_scheme(xgft, "umulti"), tm)
        assert gini_coefficient(umulti) <= gini_coefficient(dmodk) + 1e-9
        assert load_imbalance(umulti) <= load_imbalance(dmodk) + 1e-9
