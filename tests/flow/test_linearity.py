"""Algebraic properties of the flow-level evaluator.

Link loads are linear in the traffic matrix for a fixed routing; these
hypothesis tests pin that down (scaling, additivity) — useful both as a
correctness oracle and as documentation of the model.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.loads import link_loads
from repro.flow.metrics import ml_lower_bound
from repro.routing.factory import make_scheme
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix

XGFT_SMALL = XGFT(2, (3, 4), (1, 3))


def random_tm(data, n):
    flows = data.draw(st.integers(1, 15))
    src = [data.draw(st.integers(0, n - 1)) for _ in range(flows)]
    dst = [data.draw(st.integers(0, n - 1)) for _ in range(flows)]
    amt = [data.draw(st.sampled_from([0.25, 1.0, 3.0])) for _ in range(flows)]
    return TrafficMatrix(n, src, dst, amt)


@settings(max_examples=25, deadline=None)
@given(st.data(), st.sampled_from(["d-mod-k", "disjoint:2", "umulti"]))
def test_scaling_linearity(data, spec):
    scheme = make_scheme(XGFT_SMALL, spec)
    tm = random_tm(data, XGFT_SMALL.n_procs)
    factor = data.draw(st.sampled_from([0.5, 2.0, 10.0]))
    assert np.allclose(
        link_loads(XGFT_SMALL, scheme, tm.scaled(factor)),
        factor * link_loads(XGFT_SMALL, scheme, tm),
    )


@settings(max_examples=25, deadline=None)
@given(st.data(), st.sampled_from(["d-mod-k", "shift-1:3", "random:2"]))
def test_additivity(data, spec):
    scheme = make_scheme(XGFT_SMALL, spec, seed=3)
    a = random_tm(data, XGFT_SMALL.n_procs)
    b = random_tm(data, XGFT_SMALL.n_procs)
    assert np.allclose(
        link_loads(XGFT_SMALL, scheme, a + b),
        link_loads(XGFT_SMALL, scheme, a) + link_loads(XGFT_SMALL, scheme, b),
    )


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_ml_bound_scales(data):
    tm = random_tm(data, XGFT_SMALL.n_procs)
    factor = data.draw(st.sampled_from([0.5, 4.0]))
    assert ml_lower_bound(XGFT_SMALL, tm.scaled(factor)) == (
        factor * ml_lower_bound(XGFT_SMALL, tm)
    )


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_mlload_dominates_bound_for_every_scheme(data):
    """Lemma 1 as a universal property over random sparse traffic."""
    tm = random_tm(data, XGFT_SMALL.n_procs)
    bound = ml_lower_bound(XGFT_SMALL, tm)
    for spec in ("d-mod-k", "s-mod-k", "shift-1:2", "disjoint:2", "umulti"):
        loads = link_loads(XGFT_SMALL, make_scheme(XGFT_SMALL, spec), tm)
        assert loads.max() >= bound - 1e-9 if len(loads) else bound == 0
