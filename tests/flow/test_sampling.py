"""Adaptive permutation study: stopping rule, reproducibility, pooling."""

import numpy as np
import pytest

from repro.flow.sampling import PermutationStudy
from repro.routing.factory import make_scheme
from repro.routing.heuristics import RandomMultipath, UMulti
from repro.topology.variants import m_port_n_tree


@pytest.fixture
def study(tree8x2):
    return PermutationStudy(tree8x2, initial_samples=8, max_samples=64,
                            rel_precision=0.05, seed=123)


class TestRun:
    def test_umulti_converges_instantly(self, tree8x2, study):
        # UMULTI's max load is optimal; still a random variable, but with
        # small spread -> convergence within the cap on this small tree.
        res = study.run(UMulti(tree8x2))
        assert res.interval.n_samples <= 64
        assert res.mean >= 1.0

    def test_sample_doubling_respects_cap(self, tree8x2):
        # A negative precision target can never be met, forcing the cap.
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=10,
                                 rel_precision=-1.0, seed=0)
        res = study.run(make_scheme(tree8x2, "d-mod-k"))
        assert not res.converged
        assert res.interval.n_samples == 10

    def test_reproducible_with_seed(self, tree8x2):
        def go():
            return PermutationStudy(tree8x2, initial_samples=8, max_samples=16,
                                    rel_precision=0.5, seed=9).run(
                make_scheme(tree8x2, "d-mod-k"))

        a, b = go(), go()
        assert np.array_equal(a.samples, b.samples)

    def test_scheme_ordering_dmodk_worst(self, tree8x2):
        """On permutations, avg max load: d-mod-k >= disjoint(2) >= umulti."""
        study = PermutationStudy(tree8x2, initial_samples=32, max_samples=32,
                                 rel_precision=1.0, seed=3)
        dmodk = study.run(make_scheme(tree8x2, "d-mod-k")).mean
        dj2 = study.run(make_scheme(tree8x2, "disjoint:2")).mean
        um = study.run(make_scheme(tree8x2, "umulti")).mean
        assert dmodk > dj2 > um
        assert um == pytest.approx(np.mean(study.run(UMulti(tree8x2)).samples))

    def test_result_label(self, tree8x2, study):
        assert study.run(make_scheme(tree8x2, "disjoint:2")).scheme_label == \
            "disjoint(2)"


class TestSeedFamily:
    def test_pools_all_seeds(self, tree8x2):
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=4,
                                 rel_precision=1.0, seed=1)
        res = study.run_seed_family(
            lambda seed: RandomMultipath(tree8x2, 2, seed=seed), seeds=(0, 1, 2)
        )
        assert res.interval.n_samples == 12  # 3 seeds x 4 samples
        assert res.scheme_label == "random(2)"


class TestParallel:
    def test_parallel_matches_statistics(self, tree8x2):
        """Parallel sampling draws from the same distribution (means
        agree within the CI) and is reproducible per (seed, n_jobs)."""
        kwargs = dict(initial_samples=24, max_samples=24, rel_precision=1.0,
                      seed=7)
        serial = PermutationStudy(tree8x2, **kwargs).run(
            make_scheme(tree8x2, "d-mod-k"))
        par_a = PermutationStudy(tree8x2, n_jobs=2, **kwargs).run(
            make_scheme(tree8x2, "d-mod-k"))
        par_b = PermutationStudy(tree8x2, n_jobs=2, **kwargs).run(
            make_scheme(tree8x2, "d-mod-k"))
        assert np.array_equal(par_a.samples, par_b.samples)
        assert abs(par_a.mean - serial.mean) < 3 * serial.interval.half_width \
            or abs(par_a.mean - serial.mean) < 0.5

    def test_more_jobs_than_samples(self, tree8x2):
        study = PermutationStudy(tree8x2, initial_samples=2, max_samples=2,
                                 rel_precision=1.0, seed=1, n_jobs=8)
        assert study.run(make_scheme(tree8x2, "d-mod-k")).interval.n_samples == 2


class TestValidation:
    def test_bad_parameters(self, tree8x2):
        with pytest.raises(ValueError):
            PermutationStudy(tree8x2, initial_samples=1)
        with pytest.raises(ValueError):
            PermutationStudy(tree8x2, initial_samples=8, max_samples=4)
        with pytest.raises(ValueError):
            PermutationStudy(tree8x2, n_jobs=0)
