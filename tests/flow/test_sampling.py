"""Adaptive permutation study: stopping rule, reproducibility, pooling."""

import numpy as np
import pytest

from repro.flow.sampling import PermutationStudy
from repro.routing.factory import make_scheme
from repro.routing.heuristics import RandomMultipath, UMulti
from repro.topology.variants import m_port_n_tree


@pytest.fixture
def study(tree8x2):
    return PermutationStudy(tree8x2, initial_samples=8, max_samples=64,
                            rel_precision=0.05, seed=123)


class TestRun:
    def test_umulti_converges_instantly(self, tree8x2, study):
        # UMULTI's max load is optimal; still a random variable, but with
        # small spread -> convergence within the cap on this small tree.
        res = study.run(UMulti(tree8x2))
        assert res.interval.n_samples <= 64
        assert res.mean >= 1.0

    def test_sample_doubling_respects_cap(self, tree8x2):
        # A negative precision target can never be met, forcing the cap.
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=10,
                                 rel_precision=-1.0, seed=0)
        res = study.run(make_scheme(tree8x2, "d-mod-k"))
        assert not res.converged
        assert res.interval.n_samples == 10

    def test_reproducible_with_seed(self, tree8x2):
        def go():
            return PermutationStudy(tree8x2, initial_samples=8, max_samples=16,
                                    rel_precision=0.5, seed=9).run(
                make_scheme(tree8x2, "d-mod-k"))

        a, b = go(), go()
        assert np.array_equal(a.samples, b.samples)

    def test_scheme_ordering_dmodk_worst(self, tree8x2):
        """On permutations, avg max load: d-mod-k >= disjoint(2) >= umulti."""
        study = PermutationStudy(tree8x2, initial_samples=32, max_samples=32,
                                 rel_precision=1.0, seed=3)
        dmodk = study.run(make_scheme(tree8x2, "d-mod-k")).mean
        dj2 = study.run(make_scheme(tree8x2, "disjoint:2")).mean
        um = study.run(make_scheme(tree8x2, "umulti")).mean
        assert dmodk > dj2 > um
        assert um == pytest.approx(np.mean(study.run(UMulti(tree8x2)).samples))

    def test_result_label(self, tree8x2, study):
        assert study.run(make_scheme(tree8x2, "disjoint:2")).scheme_label == \
            "disjoint(2)"


class TestSeedFamily:
    def test_pools_all_seeds(self, tree8x2):
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=4,
                                 rel_precision=1.0, seed=1)
        res = study.run_seed_family(
            lambda seed: RandomMultipath(tree8x2, 2, seed=seed), seeds=(0, 1, 2)
        )
        assert res.interval.n_samples == 12  # 3 seeds x 4 samples
        assert res.scheme_label == "random(2)"


class TestParallel:
    def test_parallel_matches_statistics(self, tree8x2):
        """Parallel sampling draws from the same distribution (means
        agree within the CI) and is reproducible per (seed, n_jobs)."""
        kwargs = dict(initial_samples=24, max_samples=24, rel_precision=1.0,
                      seed=7)
        serial = PermutationStudy(tree8x2, **kwargs).run(
            make_scheme(tree8x2, "d-mod-k"))
        par_a = PermutationStudy(tree8x2, n_jobs=2, **kwargs).run(
            make_scheme(tree8x2, "d-mod-k"))
        par_b = PermutationStudy(tree8x2, n_jobs=2, **kwargs).run(
            make_scheme(tree8x2, "d-mod-k"))
        assert np.array_equal(par_a.samples, par_b.samples)
        assert abs(par_a.mean - serial.mean) < 3 * serial.interval.half_width \
            or abs(par_a.mean - serial.mean) < 0.5

    def test_more_jobs_than_samples(self, tree8x2):
        study = PermutationStudy(tree8x2, initial_samples=2, max_samples=2,
                                 rel_precision=1.0, seed=1, n_jobs=8)
        assert study.run(make_scheme(tree8x2, "d-mod-k")).interval.n_samples == 2

    def test_parallel_reproducible_per_seed_and_jobs(self, tree8x2):
        """A fixed (seed, n_jobs) pair reproduces exactly — both engines."""
        for engine in ("reference", "compiled"):
            kwargs = dict(initial_samples=12, max_samples=12,
                          rel_precision=1.0, seed=21, n_jobs=3, engine=engine)
            a = PermutationStudy(tree8x2, **kwargs).run(
                make_scheme(tree8x2, "disjoint:2"))
            b = PermutationStudy(tree8x2, **kwargs).run(
                make_scheme(tree8x2, "disjoint:2"))
            assert np.array_equal(a.samples, b.samples), engine

    def test_parallel_shape_matches_serial(self, tree8x2):
        """n_jobs=2 returns the same number of samples as n_jobs=1 and the
        same per-worker streams across engines (same child seeds)."""
        kwargs = dict(initial_samples=10, max_samples=10, rel_precision=1.0,
                      seed=13)
        serial = PermutationStudy(tree8x2, **kwargs).run(
            make_scheme(tree8x2, "d-mod-k"))
        for engine in ("reference", "compiled"):
            par = PermutationStudy(tree8x2, n_jobs=2, engine=engine,
                                   **kwargs).run(
                make_scheme(tree8x2, "d-mod-k"))
            assert par.samples.shape == serial.samples.shape

    def test_parallel_cross_engine_samples_agree(self, tree8x2):
        """Reference and compiled pool workers draw identical permutation
        streams, so parallel samples agree to float tolerance."""
        kwargs = dict(initial_samples=12, max_samples=12, rel_precision=1.0,
                      seed=17, n_jobs=3)
        ref = PermutationStudy(tree8x2, engine="reference", **kwargs).run(
            make_scheme(tree8x2, "disjoint:2"))
        comp = PermutationStudy(tree8x2, engine="compiled", **kwargs).run(
            make_scheme(tree8x2, "disjoint:2"))
        np.testing.assert_allclose(comp.samples, ref.samples, atol=1e-9)


class TestPoolLifecycle:
    """The pool-churn fix: one pool per run (or per scoped run group),
    not one per adaptive round."""

    def test_one_pool_across_adaptive_rounds(self, tree8x2):
        from repro.obs import Recorder

        rec = Recorder()
        # rel_precision=-1 forces the full doubling ladder: 4 -> 8 -> 16
        # samples = 3 rounds, which used to mean 3 executors.
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=16,
                                 rel_precision=-1.0, seed=5, n_jobs=2,
                                 recorder=rec)
        study.run(make_scheme(tree8x2, "d-mod-k"))
        assert rec.timers["flow.sampling.round"][1] == 3
        assert rec.counters["runner.pool_created"] == 1
        assert rec.counters["runner.context_spilled"] == 1

    def test_one_pool_across_seed_family(self, tree8x2):
        from repro.obs import Recorder

        rec = Recorder()
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=4,
                                 rel_precision=1.0, seed=1, n_jobs=2,
                                 recorder=rec)
        study.run_seed_family(
            lambda seed: RandomMultipath(tree8x2, 2, seed=seed),
            seeds=(0, 1, 2))
        assert rec.counters["runner.pool_created"] == 1
        # ...but each seed's scheme ships as its own context.
        assert rec.counters["runner.context_spilled"] == 3
        assert study._owned_pool is None  # released with the family

    def test_owned_pool_released_after_run(self, tree8x2):
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=4,
                                 rel_precision=1.0, seed=1, n_jobs=2)
        study.run(make_scheme(tree8x2, "d-mod-k"))
        assert study._owned_pool is None

    def test_context_manager_keeps_pool_warm_across_runs(self, tree8x2):
        from repro.obs import Recorder

        rec = Recorder()
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=4,
                                 rel_precision=1.0, seed=1, n_jobs=2,
                                 recorder=rec)
        with study:
            study.run(make_scheme(tree8x2, "d-mod-k"))
            pool = study._owned_pool
            assert pool is not None and pool.running
            study.run(make_scheme(tree8x2, "disjoint:2"))
            assert study._owned_pool is pool
        assert study._owned_pool is None
        assert rec.counters["runner.pool_created"] == 1

    def test_external_pool_shared_and_never_closed(self, tree8x2):
        from repro.obs import Recorder
        from repro.runner.pool import PersistentPool

        rec = Recorder()
        with PersistentPool(2) as pool:
            for seed in (1, 2):
                study = PermutationStudy(
                    tree8x2, initial_samples=4, max_samples=4,
                    rel_precision=1.0, seed=seed, n_jobs=2, recorder=rec,
                    pool=pool)
                study.run(make_scheme(tree8x2, "d-mod-k"))
                assert study._owned_pool is None
            assert pool.running  # studies never close an external pool
        assert rec.counters["runner.pool_created"] == 1

    def test_persistent_pool_preserves_sample_stream(self, tree8x2):
        """The pool-churn fix must not change the drawn samples: a scoped
        multi-round run reproduces an unscoped one exactly."""
        kwargs = dict(initial_samples=4, max_samples=16, rel_precision=-1.0,
                      seed=5, n_jobs=2)
        plain = PermutationStudy(tree8x2, **kwargs).run(
            make_scheme(tree8x2, "d-mod-k"))
        scoped_study = PermutationStudy(tree8x2, **kwargs)
        with scoped_study:
            scoped = scoped_study.run(make_scheme(tree8x2, "d-mod-k"))
        assert np.array_equal(plain.samples, scoped.samples)


class TestValidation:
    def test_bad_parameters(self, tree8x2):
        with pytest.raises(ValueError):
            PermutationStudy(tree8x2, initial_samples=1)
        with pytest.raises(ValueError):
            PermutationStudy(tree8x2, initial_samples=8, max_samples=4)
        with pytest.raises(ValueError):
            PermutationStudy(tree8x2, n_jobs=0)


class TestTelemetry:
    def test_convergence_trace(self, tree8x2):
        from repro.obs import Recorder

        rec = Recorder()
        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=16,
                                 rel_precision=-1.0, seed=5, recorder=rec)
        res = study.run(make_scheme(tree8x2, "d-mod-k"))
        rounds = rec.events_of("convergence_round")
        # 4 -> 8 -> 16 samples: one event per adaptive round.
        assert [e["n_samples"] for e in rounds] == [4, 8, 16]
        assert [e["round"] for e in rounds] == [0, 1, 2]
        assert rounds[-1]["mean"] == pytest.approx(res.mean)
        assert rounds[-1]["half_width"] == pytest.approx(
            res.interval.half_width)
        assert all(e["scheme"] == "d-mod-k" for e in rounds)
        assert rec.counters["flow.samples"] == 16
        assert "flow.sampling.round" in rec.timers
        assert rec.timers["flow.sampling.round"][1] == 3

    def test_cross_process_merge(self, tree8x2):
        """Pool workers run under their own recorder; the parent merges
        their counters/timers back, so totals match the serial path."""
        from repro.obs import Recorder

        rec = Recorder()
        study = PermutationStudy(tree8x2, initial_samples=12, max_samples=12,
                                 rel_precision=1.0, seed=7, n_jobs=3,
                                 recorder=rec)
        res = study.run(make_scheme(tree8x2, "d-mod-k"))
        assert res.interval.n_samples == 12
        assert rec.counters["flow.samples"] == 12
        # Worker-side spans arrive via snapshot merge.
        assert rec.timers["flow.sampling.worker"][1] == 3
        per_sample = [name for name in rec.timers if "flow.max_load" in name]
        assert sum(rec.timers[n][1] for n in per_sample) == 12

    def test_compiled_parallel_merges_snapshots(self, tree8x2):
        """Compiled-engine pool workers merge recorder snapshots exactly
        like the reference ones (same span name, same sample counter)."""
        from repro.obs import Recorder

        rec = Recorder()
        study = PermutationStudy(tree8x2, initial_samples=12, max_samples=12,
                                 rel_precision=1.0, seed=7, n_jobs=3,
                                 engine="compiled", recorder=rec)
        res = study.run(make_scheme(tree8x2, "d-mod-k"))
        assert res.interval.n_samples == 12
        assert rec.counters["flow.samples"] == 12
        assert rec.timers["flow.sampling.worker"][1] == 3
        # Compile happened once, in the parent, before the fan-out.
        assert rec.counters["routing.schemes_compiled"] == 1

    def test_compiled_serial_batch_telemetry(self, tree8x2):
        from repro.obs import Recorder

        rec = Recorder()
        study = PermutationStudy(tree8x2, initial_samples=8, max_samples=8,
                                 rel_precision=1.0, seed=7, engine="compiled",
                                 recorder=rec)
        study.run(make_scheme(tree8x2, "disjoint:2"))
        assert rec.counters["flow.batch_permutations"] == 8
        assert rec.counters["flow.batch_eval_calls"] >= 1
        # Nested under the sampling-round span.
        assert any("flow.batch_eval" in name for name in rec.timers)
        assert rec.events_of("compile_stats")

    def test_parallel_disabled_recorder_ships_no_snapshots(self, tree8x2):
        from repro.obs import NULL_RECORDER

        study = PermutationStudy(tree8x2, initial_samples=4, max_samples=4,
                                 rel_precision=1.0, seed=7, n_jobs=2,
                                 recorder=NULL_RECORDER)
        res = study.run(make_scheme(tree8x2, "d-mod-k"))
        assert res.interval.n_samples == 4
        assert NULL_RECORDER.counters == {}
