"""Cross-check: vectorized flow loads vs a naive per-path reference.

The reference routes every pair by materializing :class:`Path` objects
and accumulating loads link by link in pure Python — slow but obviously
correct.  The vectorized evaluator must agree exactly.
"""

import numpy as np
import pytest

from repro.flow.loads import link_loads
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.traffic.synthetic import all_to_all, shift_pattern


def reference_loads(xgft, scheme, tm):
    loads = np.zeros(xgft.n_links)
    s_arr, d_arr, amounts = tm.network_pairs()
    for s, d, amount in zip(s_arr, d_arr, amounts):
        rs = scheme.route(int(s), int(d))
        for path, frac in zip(rs.paths(xgft), rs.fractions):
            for link in path.links:
                loads[link] += amount * frac
    return loads


TOPOLOGIES = [
    XGFT(2, (2, 2), (1, 2)),
    XGFT(3, (2, 2, 2), (1, 2, 2)),
    XGFT(2, (3, 5), (2, 3)),   # w_1 > 1
    XGFT(3, (3, 2, 4), (1, 2, 3)),
    m_port_n_tree(4, 2),
]
SCHEMES = ["d-mod-k", "s-mod-k", "shift-1:2", "disjoint:3", "random:2", "umulti"]


@pytest.mark.parametrize("xgft", TOPOLOGIES, ids=[repr(x) for x in TOPOLOGIES])
@pytest.mark.parametrize("spec", SCHEMES)
def test_vectorized_equals_reference_permutation(xgft, spec):
    scheme = make_scheme(xgft, spec, seed=5)
    tm = permutation_matrix(random_permutation(xgft.n_procs, 42))
    assert np.allclose(
        link_loads(xgft, scheme, tm), reference_loads(xgft, scheme, tm)
    )


@pytest.mark.parametrize("spec", ["d-mod-k", "disjoint:2", "umulti"])
def test_vectorized_equals_reference_all_to_all(spec):
    xgft = XGFT(3, (2, 2, 2), (1, 2, 2))
    scheme = make_scheme(xgft, spec)
    tm = all_to_all(xgft.n_procs)
    assert np.allclose(
        link_loads(xgft, scheme, tm), reference_loads(xgft, scheme, tm)
    )


def test_vectorized_equals_reference_weighted():
    xgft = XGFT(2, (3, 5), (2, 3))
    scheme = make_scheme(xgft, "disjoint:4")
    rng = np.random.default_rng(0)
    n = xgft.n_procs
    tm = TrafficMatrix(n, rng.integers(n, size=40), rng.integers(n, size=40),
                       rng.random(40))
    assert np.allclose(
        link_loads(xgft, scheme, tm), reference_loads(xgft, scheme, tm)
    )


def test_shift_traffic_loads_one_level():
    """Intra-leaf shift traffic only touches level-0/1 links."""
    xgft = m_port_n_tree(4, 2)  # leaves of 2 hosts
    tm = shift_pattern(xgft.n_procs, 1)
    loads = link_loads(xgft, make_scheme(xgft, "d-mod-k"), tm)
    levels = xgft.link_levels()
    assert loads[levels == 0].sum() > 0
    # stride-1 shift crosses leaf boundaries too, so level 1 is also used;
    # check conservation instead: total load = sum over pairs of path length.
    ref = reference_loads(xgft, make_scheme(xgft, "d-mod-k"), tm)
    assert np.allclose(loads, ref)
