"""Vectorized link-load evaluation: conservation and hand-built cases."""

import numpy as np
import pytest

from repro.flow.loads import link_loads
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.permutations import permutation_matrix, random_permutation


class TestSingleFlow:
    def test_one_flow_loads_exactly_its_path(self):
        xgft = m_port_n_tree(8, 2)
        scheme = make_scheme(xgft, "d-mod-k")
        tm = TrafficMatrix(32, [0], [31], [2.0])
        loads = link_loads(xgft, scheme, tm)
        path = scheme.route(0, 31).paths(xgft)[0]
        expected = np.zeros(xgft.n_links)
        expected[list(path.links)] = 2.0
        assert np.array_equal(loads, expected)

    def test_two_path_split(self):
        # With w_1 = 1 both paths share the terminal links (load 1.0) and
        # split over distinct middle links (load 0.5 each): 2 shared + 4
        # distinct links in total on a 2-level tree.
        xgft = m_port_n_tree(8, 2)
        scheme = make_scheme(xgft, "disjoint:2")
        tm = TrafficMatrix(32, [0], [31], [1.0])
        loads = link_loads(xgft, scheme, tm)
        assert loads.max() == pytest.approx(1.0)
        assert np.count_nonzero(loads) == 6
        assert np.count_nonzero(loads == 0.5) == 4
        assert np.count_nonzero(loads == 1.0) == 2


class TestConservation:
    @pytest.mark.parametrize("spec", ["d-mod-k", "shift-1:3", "disjoint:3",
                                      "random:3", "umulti"])
    def test_total_load_equals_traffic_times_hops(self, spec):
        """Sum of link loads == sum over pairs of amount * path length
        (2 * nca_level), independent of how traffic is split."""
        xgft = XGFT(3, (3, 2, 4), (1, 2, 3))
        scheme = make_scheme(xgft, spec, seed=2)
        tm = permutation_matrix(random_permutation(xgft.n_procs, 3))
        loads = link_loads(xgft, scheme, tm)
        s, d, a = tm.network_pairs()
        expected = float(np.sum(a * 2 * xgft.nca_level(s, d)))
        assert loads.sum() == pytest.approx(expected)

    def test_up_down_symmetric_total(self):
        xgft = m_port_n_tree(8, 2)
        scheme = make_scheme(xgft, "d-mod-k")
        tm = permutation_matrix(random_permutation(32, 0))
        loads = link_loads(xgft, scheme, tm)
        is_up = xgft.link_is_up()
        assert loads[is_up].sum() == pytest.approx(loads[~is_up].sum())


class TestValidation:
    def test_size_mismatch_rejected(self):
        xgft = m_port_n_tree(8, 2)
        with pytest.raises(ValueError):
            link_loads(xgft, make_scheme(xgft, "d-mod-k"), TrafficMatrix.empty(16))

    def test_empty_traffic_zero_loads(self):
        xgft = m_port_n_tree(8, 2)
        loads = link_loads(xgft, make_scheme(xgft, "d-mod-k"),
                           TrafficMatrix.empty(32))
        assert loads.shape == (xgft.n_links,)
        assert not loads.any()

    def test_self_traffic_ignored(self):
        xgft = m_port_n_tree(8, 2)
        tm = TrafficMatrix(32, [3], [3], [9.0])
        assert not link_loads(xgft, make_scheme(xgft, "d-mod-k"), tm).any()


class TestUmultiUniformity:
    def test_umulti_spreads_boundary_traffic_evenly(self):
        """The Theorem 1 mechanism: for a single cross-tree flow, UMULTI
        puts exactly amount/W(l+1) on each boundary link level it uses."""
        xgft = XGFT(2, (2, 4), (1, 2))
        tm = TrafficMatrix(8, [0], [7], [1.0])
        loads = link_loads(xgft, make_scheme(xgft, "umulti"), tm)
        levels = xgft.link_levels()
        top = loads[(levels == 1) & (loads > 0)]
        assert np.allclose(top, 0.5)  # two paths, each half
