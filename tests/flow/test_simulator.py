"""FlowSimulator facade and FlowResult diagnostics."""

import pytest

from repro.flow.simulator import FlowSimulator
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.adversarial import suggest_theorem2_topology, theorem2_pattern
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.permutations import permutation_matrix, random_permutation


class TestEvaluate:
    def test_fields_consistent(self, tree8x2):
        sim = FlowSimulator(tree8x2)
        tm = permutation_matrix(random_permutation(32, 0))
        res = sim.evaluate(make_scheme(tree8x2, "d-mod-k"), tm)
        assert res.loads.shape == (tree8x2.n_links,)
        assert res.max_load == pytest.approx(res.loads.max())
        assert res.ratio == pytest.approx(res.max_load / res.optimal)
        assert len(res.per_level_max) == tree8x2.h

    def test_per_level_max_covers_global_max(self, tree8x3):
        sim = FlowSimulator(tree8x3)
        tm = permutation_matrix(random_permutation(128, 1))
        res = sim.evaluate(make_scheme(tree8x3, "shift-1:2"), tm)
        flat_max = max(max(pair) for pair in res.per_level_max)
        assert flat_max == pytest.approx(res.max_load)

    def test_bottleneck_level_adversarial(self):
        # Theorem 2's hotspot is the leaf's up-link (boundary level 1 on
        # a 2-level tree).
        xgft = suggest_theorem2_topology(2, 4)
        sim = FlowSimulator(xgft)
        res = sim.evaluate(make_scheme(xgft, "d-mod-k"), theorem2_pattern(xgft))
        assert res.bottleneck_level() == 1

    def test_max_load_shortcut_matches(self, tree8x2):
        sim = FlowSimulator(tree8x2)
        tm = permutation_matrix(random_permutation(32, 2))
        scheme = make_scheme(tree8x2, "disjoint:2")
        assert sim.max_load(scheme, tm) == pytest.approx(
            sim.evaluate(scheme, tm).max_load
        )

    def test_empty_traffic(self, tree8x2):
        sim = FlowSimulator(tree8x2)
        res = sim.evaluate(make_scheme(tree8x2, "d-mod-k"),
                           TrafficMatrix.empty(32))
        assert res.max_load == 0.0
        assert res.ratio == 1.0


class TestDocExample:
    def test_module_doctest_example(self):
        from repro.traffic.synthetic import shift_pattern

        xgft = m_port_n_tree(8, 2)
        sim = FlowSimulator(xgft)
        res = sim.evaluate(make_scheme(xgft, "umulti"),
                           shift_pattern(xgft.n_procs, 16))
        assert res.ratio == pytest.approx(1.0)
