"""Flow metrics: hand-computed ML bounds, OLOAD, performance ratios."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.loads import link_loads
from repro.flow.metrics import (
    max_link_load,
    ml_lower_bound,
    optimal_load,
    performance_ratio,
)
from repro.routing.factory import make_scheme
from repro.routing.heuristics import UMulti
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.traffic.synthetic import all_to_all


class TestMlLowerBound:
    def test_single_flow(self):
        # One unit from node 0 to node 1 (same leaf on the 8-port 2-tree):
        # the binding constraint is the terminal link (height-0 subtree,
        # TL(0) = w_1 = 1).
        xgft = m_port_n_tree(8, 2)
        tm = TrafficMatrix(32, [0], [1], [1.0])
        assert ml_lower_bound(xgft, tm) == pytest.approx(1.0)

    def test_leaf_egress_bound(self):
        # All 4 hosts of leaf 0 send 1 unit out of the leaf: the leaf's
        # TL(1) = w_1*w_2 = 4 links must carry 4 units -> bound 1.0.
        xgft = m_port_n_tree(8, 2)
        tm = TrafficMatrix(32, [0, 1, 2, 3], [4, 5, 6, 7], [1.0] * 4)
        assert ml_lower_bound(xgft, tm) == pytest.approx(1.0)

    def test_ingress_can_bind(self):
        # 8 units converging on one destination: terminal link bound 8.
        xgft = m_port_n_tree(8, 2)
        src = list(range(8, 16))
        tm = TrafficMatrix(32, src, [0] * 8, [1.0] * 8)
        assert ml_lower_bound(xgft, tm) == pytest.approx(8.0)

    def test_empty_matrix(self):
        xgft = m_port_n_tree(8, 2)
        assert ml_lower_bound(xgft, TrafficMatrix.empty(32)) == 0.0

    def test_self_traffic_ignored(self):
        xgft = m_port_n_tree(8, 2)
        tm = TrafficMatrix(32, [5], [5], [100.0])
        assert ml_lower_bound(xgft, tm) == 0.0


class TestOptimalLoad:
    @pytest.mark.parametrize("seed", range(5))
    def test_umulti_achieves_oload_theorem1(self, seed):
        """Theorem 1: MLOAD(UMULTI, TM) == OLOAD(TM) for any TM."""
        xgft = XGFT(3, (3, 2, 4), (1, 2, 3))
        tm = permutation_matrix(random_permutation(xgft.n_procs, seed))
        mload = max_link_load(link_loads(xgft, UMulti(xgft), tm))
        assert mload == pytest.approx(optimal_load(xgft, tm))

    def test_umulti_optimal_all_to_all(self):
        xgft = m_port_n_tree(8, 2)
        tm = all_to_all(xgft.n_procs)
        mload = max_link_load(link_loads(xgft, UMulti(xgft), tm))
        assert mload == pytest.approx(optimal_load(xgft, tm))

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_umulti_optimal_random_sparse(self, data):
        """Property form of Theorem 1 over random sparse matrices."""
        xgft = XGFT(2, (3, 4), (1, 3))
        n = xgft.n_procs
        n_flows = data.draw(st.integers(1, 20))
        src = [data.draw(st.integers(0, n - 1)) for _ in range(n_flows)]
        dst = [data.draw(st.integers(0, n - 1)) for _ in range(n_flows)]
        amt = [data.draw(st.sampled_from([0.5, 1.0, 2.0])) for _ in range(n_flows)]
        tm = TrafficMatrix(n, src, dst, amt)
        mload = max_link_load(link_loads(xgft, UMulti(xgft), tm))
        assert mload == pytest.approx(optimal_load(xgft, tm))


class TestPerformanceRatio:
    def test_umulti_ratio_one(self):
        xgft = m_port_n_tree(8, 2)
        tm = permutation_matrix(random_permutation(32, 1))
        assert performance_ratio(xgft, UMulti(xgft), tm) == pytest.approx(1.0)

    def test_ratio_at_least_one(self):
        xgft = m_port_n_tree(8, 2)
        for spec in ("d-mod-k", "shift-1:2", "random:3"):
            scheme = make_scheme(xgft, spec)
            for seed in range(3):
                tm = permutation_matrix(random_permutation(32, seed))
                assert performance_ratio(xgft, scheme, tm) >= 1.0 - 1e-12

    def test_empty_traffic_ratio_one(self):
        xgft = m_port_n_tree(8, 2)
        assert performance_ratio(
            xgft, make_scheme(xgft, "d-mod-k"), TrafficMatrix.empty(32)
        ) == 1.0

    def test_precomputed_loads_shortcut(self):
        xgft = m_port_n_tree(8, 2)
        scheme = make_scheme(xgft, "d-mod-k")
        tm = permutation_matrix(random_permutation(32, 2))
        loads = link_loads(xgft, scheme, tm)
        assert performance_ratio(xgft, scheme, tm, loads=loads) == pytest.approx(
            performance_ratio(xgft, scheme, tm)
        )


def test_max_link_load_empty_vector():
    assert max_link_load(np.array([])) == 0.0
