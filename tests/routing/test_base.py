"""RouteSet validation and the RoutingScheme scalar/batch contract."""

import pytest

from repro.errors import RoutingError
from repro.routing.base import RouteSet
from repro.routing.heuristics import Disjoint
from repro.routing.modk import DModK


class TestRouteSet:
    def test_valid(self):
        rs = RouteSet(0, 9, 2, (1, 3), (0.5, 0.5))
        assert rs.num_paths == 2

    def test_rejects_length_mismatch(self):
        with pytest.raises(RoutingError):
            RouteSet(0, 9, 2, (1, 3), (1.0,))

    def test_rejects_bad_fraction_sum(self):
        with pytest.raises(RoutingError):
            RouteSet(0, 9, 2, (1, 3), (0.5, 0.6))

    def test_rejects_duplicate_indices(self):
        with pytest.raises(RoutingError):
            RouteSet(0, 9, 2, (1, 1), (0.5, 0.5))

    def test_paths_materialization(self, fig3_xgft):
        rs = Disjoint(fig3_xgft, 2).route(0, 63)
        paths = rs.paths(fig3_xgft)
        assert len(paths) == 2
        assert [p.index for p in paths] == list(rs.indices)


class TestRoutingSchemeContract:
    def test_route_rejects_out_of_range(self, tree8x2):
        scheme = DModK(tree8x2)
        with pytest.raises(RoutingError):
            scheme.route(0, 32)
        with pytest.raises(RoutingError):
            scheme.route(-1, 0)

    def test_self_route_is_empty(self, tree8x2):
        # Regression: s == d traffic never enters the network, so the
        # route set must be empty — a phantom path index 0 used to leak
        # into route tables and fraction accounting.
        rs = DModK(tree8x2).route(7, 7)
        assert rs.nca_level == 0
        assert rs.indices == ()
        assert rs.fractions == ()
        assert rs.num_paths == 0

    def test_self_route_empty_for_multipath(self, tree8x2):
        rs = Disjoint(tree8x2, 3).route(4, 4)
        assert rs.num_paths == 0
        assert rs.paths(tree8x2) == []

    def test_all_route_sets_cover_all_pairs(self, kary2x2):
        table = DModK(kary2x2).all_route_sets()
        n = kary2x2.n_procs
        assert len(table) == n * (n - 1)
        for (s, d), rs in table.items():
            assert rs.src == s and rs.dst == d

    def test_repr(self, tree8x2):
        assert "DModK" in repr(DModK(tree8x2))
        assert "K=3" in repr(Disjoint(tree8x2, 3))

    def test_fractions_uniform(self, tree8x2):
        f = Disjoint(tree8x2, 4).fractions(2)
        assert len(f) == 4
        assert all(abs(x - 0.25) < 1e-12 for x in f)
