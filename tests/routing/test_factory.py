"""Scheme factory tests."""

import pytest

from repro.errors import RoutingError
from repro.routing.factory import available_schemes, make_scheme
from repro.routing.heuristics import (
    Disjoint,
    RandomMultipath,
    RandomSingle,
    Shift1,
    UMulti,
)
from repro.routing.modk import DModK, SModK


class TestMakeScheme:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("d-mod-k", DModK),
            ("dmodk", DModK),
            ("s-mod-k", SModK),
            ("random-single", RandomSingle),
            ("shift-1:4", Shift1),
            ("shift1:4", Shift1),
            ("disjoint:2", Disjoint),
            ("random:8", RandomMultipath),
            ("umulti", UMulti),
        ],
    )
    def test_spec_dispatch(self, tree8x2, spec, cls):
        assert isinstance(make_scheme(tree8x2, spec), cls)

    def test_explicit_k_overrides_suffix(self, tree8x2):
        scheme = make_scheme(tree8x2, "disjoint:8", k_paths=2)
        assert scheme.k_paths == 2

    def test_case_insensitive(self, tree8x2):
        assert isinstance(make_scheme(tree8x2, "Disjoint:2"), Disjoint)

    def test_seed_forwarded(self, tree8x2):
        a = make_scheme(tree8x2, "random:4", seed=1)
        b = make_scheme(tree8x2, "random:4", seed=2)
        assert a.seed == 1 and b.seed == 2

    def test_unknown_scheme(self, tree8x2):
        with pytest.raises(RoutingError):
            make_scheme(tree8x2, "bogus")

    def test_missing_k(self, tree8x2):
        with pytest.raises(RoutingError):
            make_scheme(tree8x2, "disjoint")

    def test_unexpected_k(self, tree8x2):
        with pytest.raises(RoutingError):
            make_scheme(tree8x2, "d-mod-k:4")

    def test_malformed_k(self, tree8x2):
        with pytest.raises(RoutingError):
            make_scheme(tree8x2, "disjoint:x")

    def test_available_schemes_all_constructible(self, tree8x2):
        for name in available_schemes():
            spec = f"{name}:2" if name in ("shift-1", "disjoint", "random") else name
            scheme = make_scheme(tree8x2, spec)
            assert scheme.route(0, 31).num_paths >= 1
