"""Vectorized path->link computation vs the scalar reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.heuristics import Disjoint, UMulti
from repro.routing.modk import DModK
from repro.routing.path import build_path
from repro.routing.vectorized import compile_routes, path_link_matrix

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestPathLinkMatrix:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_matches_build_path(self, xgft):
        rng = np.random.default_rng(0)
        n = xgft.n_procs
        for _ in range(10):
            s = int(rng.integers(n))
            d = int(rng.integers(n))
            k = int(xgft.nca_level(s, d))
            if k == 0:
                continue
            x = xgft.W(k)
            idx = np.arange(x)[None, :].repeat(1, axis=0)
            links = path_link_matrix(xgft, np.array([s]), np.array([d]), idx, k)
            for t in range(x):
                assert tuple(links[0, t]) == build_path(xgft, s, d, t).links

    def test_shape(self, tree8x3):
        s = np.array([0, 1])
        d = np.array([127, 126])
        idx = np.zeros((2, 3), dtype=np.int64)
        links = path_link_matrix(tree8x3, s, d, idx, 3)
        assert links.shape == (2, 3, 6)


class TestCompileRoutes:
    def test_all_pairs_present(self, kary2x2):
        table = compile_routes(kary2x2, DModK(kary2x2))
        n = kary2x2.n_procs
        assert len(table) == n * (n - 1)

    def test_paths_match_scheme(self, tree8x2):
        scheme = Disjoint(tree8x2, 3)
        table = compile_routes(tree8x2, scheme)
        n = tree8x2.n_procs
        rng = np.random.default_rng(1)
        for _ in range(20):
            s, d = rng.integers(n, size=2)
            if s == d:
                continue
            expected = [p.links for p in scheme.route(int(s), int(d)).paths(tree8x2)]
            assert table[int(s) * n + int(d)] == expected

    def test_subset_of_pairs(self, tree8x2):
        pairs = np.array([[0, 5], [3, 20]])
        table = compile_routes(tree8x2, DModK(tree8x2), pairs)
        assert set(table) == {0 * 32 + 5, 3 * 32 + 20}

    def test_rejects_self_pairs(self, tree8x2):
        with pytest.raises(ValueError):
            compile_routes(tree8x2, DModK(tree8x2), np.array([[1, 1]]))

    def test_umulti_full_fanout(self, tree8x2):
        table = compile_routes(tree8x2, UMulti(tree8x2))
        key = 0 * 32 + 31  # top-level pair
        assert len(table[key]) == tree8x2.max_paths


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_vectorized_agrees_with_scalar_random(data):
    xgft = data.draw(st.sampled_from(TOPOLOGY_POOL))
    s = data.draw(st.integers(0, xgft.n_procs - 1))
    d = data.draw(st.integers(0, xgft.n_procs - 1))
    k = int(xgft.nca_level(s, d))
    if k == 0:
        return
    t = data.draw(st.integers(0, xgft.W(k) - 1))
    links = path_link_matrix(
        xgft, np.array([s]), np.array([d]), np.array([[t]]), k
    )
    assert tuple(links[0, 0]) == build_path(xgft, s, d, t).links
