"""d-mod-k / s-mod-k tests: paper values, digit formula, pathologies."""

import numpy as np
import pytest

from repro.routing.modk import DModK, SModK, modk_path_index
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT


class TestDModKIndex:
    def test_paper_example_path7(self, fig3_xgft):
        # Section 4.2: d-mod-k for SD pair (0, 63) is Path 7.
        t = modk_path_index(fig3_xgft, np.array([63]), 3)
        assert t[0] == 7

    def test_digit_formula(self):
        # p_j = (d // W(j)) mod w_{j+1}; check a value where the naive
        # "d mod w" reading would differ.
        x = XGFT(3, (4, 4, 8), (1, 4, 4))  # W = (1, 1, 4)
        d = 7  # p_1 = 7 mod 4 = 3; p_2 = (7 // 4) mod 4 = 1
        t = int(modk_path_index(x, np.array([d]), 3)[0])
        # strides: R_0 = 16, R_1 = 4, R_2 = 1
        assert t == 3 * 4 + 1 * 1

    def test_multiples_of_prod_w_map_to_path0(self):
        # The Theorem 2 mechanism: destinations that are multiples of
        # prod(w) always use Path 0 (port 0 at every level).
        x = m_port_n_tree(8, 3)
        wh = x.max_paths
        d = np.arange(0, x.n_procs, wh)
        assert np.all(modk_path_index(x, d, 3) == 0)

    def test_destination_determines_index(self):
        x = m_port_n_tree(8, 3)
        scheme = DModK(x)
        # Same destination from any source (same NCA level) -> same path.
        s = np.array([16, 32, 48])
        d = np.array([0, 0, 0])
        idx = scheme.path_index_matrix(s, d, 3)
        assert np.all(idx == idx[0, 0])

    def test_down_paths_private_on_mport_trees(self):
        """Digit d-mod-k assigns distinct top-level switches to the
        destinations of one leaf switch — each destination owns its down
        path (the structural fact behind the flit-model calibration in
        DESIGN.md)."""
        x = m_port_n_tree(8, 3)
        for leaf in range(0, x.n_procs, x.m[0]):
            dests = np.arange(leaf, leaf + x.m[0])
            idx = modk_path_index(x, dests, 3)
            assert len(np.unique(idx)) == len(dests)


class TestSchemes:
    def test_single_path(self, tree8x3):
        for scheme in (DModK(tree8x3), SModK(tree8x3)):
            assert scheme.paths_per_pair(2) == 1
            rs = scheme.route(0, 127)
            assert rs.num_paths == 1
            assert rs.fractions == (1.0,)

    def test_smodk_uses_source(self, tree8x3):
        scheme = SModK(tree8x3)
        s = np.array([1, 2, 3])
        d = np.array([127, 127, 127])
        idx = scheme.path_index_matrix(s, d, 3)
        assert len(np.unique(idx)) > 1  # different sources, different paths

    def test_smodk_dmodk_symmetry(self, tree8x3):
        # s-mod-k's path for (s, d) equals d-mod-k's path for (d, s).
        dmodk, smodk = DModK(tree8x3), SModK(tree8x3)
        for s, d in ((0, 127), (3, 88), (17, 64)):
            assert smodk.route(s, d).indices == dmodk.route(d, s).indices

    def test_labels(self, tree8x3):
        assert DModK(tree8x3).label == "d-mod-k"
        assert SModK(tree8x3).label == "s-mod-k"
