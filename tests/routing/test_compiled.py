"""CompiledScheme: table lookups, derived tables, telemetry, pickling."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.ib.lft import compile_lfts
from repro.obs import Recorder, use_recorder
from repro.routing.compiled import CompiledScheme, compile_scheme
from repro.routing.factory import make_scheme
from repro.routing.vectorized import compile_routes
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT


@pytest.fixture
def plan(tree8x2):
    return compile_scheme(tree8x2, make_scheme(tree8x2, "disjoint:2"))


class TestQuerySurface:
    @pytest.mark.parametrize("spec", ["d-mod-k", "shift-1:3", "random:2",
                                      "umulti"])
    def test_path_index_matrix_matches_scheme(self, tree8x3, spec):
        scheme = make_scheme(tree8x3, spec, seed=4)
        plan = compile_scheme(tree8x3, scheme)
        rng = np.random.default_rng(0)
        for k in range(1, tree8x3.h + 1):
            # Sample pairs with NCA level exactly k.
            n = tree8x3.n_procs
            s = rng.integers(0, n, size=200)
            d = rng.integers(0, n, size=200)
            mask = tree8x3.nca_level(s, d) == k
            s, d = s[mask], d[mask]
            if not len(s):
                continue
            np.testing.assert_array_equal(
                plan.path_index_matrix(s, d, k),
                scheme.path_index_matrix(s, d, k))
            assert plan.paths_per_pair(k) == scheme.paths_per_pair(k)
            np.testing.assert_allclose(plan.fractions(k), scheme.fractions(k))

    def test_label_and_name_preserved(self, tree8x2):
        scheme = make_scheme(tree8x2, "disjoint:2")
        plan = compile_scheme(tree8x2, scheme)
        assert plan.label == scheme.label
        assert plan.scheme_name == scheme.name

    def test_wrong_level_pair_raises(self, plan, tree8x2):
        # Nodes 0 and 1 share the level-1 switch, so they are not a
        # level-h pair.
        with pytest.raises(RoutingError):
            plan.path_index_matrix(np.array([0]), np.array([1]), tree8x2.h)

    def test_compile_is_idempotent(self, plan, tree8x2):
        assert compile_scheme(tree8x2, plan) is plan

    def test_topology_mismatch_raises(self, plan):
        other = m_port_n_tree(4, 2)
        with pytest.raises(RoutingError):
            compile_scheme(other, plan)
        with pytest.raises(RoutingError):
            compile_scheme(other, make_scheme(m_port_n_tree(8, 2), "d-mod-k"))


class TestDerivedTables:
    @pytest.mark.parametrize("spec", ["d-mod-k", "disjoint:2", "umulti"])
    def test_route_table_matches_compile_routes(self, tree8x2, spec):
        scheme = make_scheme(tree8x2, spec)
        plan = compile_scheme(tree8x2, scheme)
        assert plan.route_table() == compile_routes(tree8x2, scheme)

    def test_compile_routes_delegates_to_plan(self, tree8x2, plan):
        # Passing the compiled plan to compile_routes serves the table
        # from the stored incidence.
        scheme = make_scheme(tree8x2, "disjoint:2")
        assert compile_routes(tree8x2, plan) == compile_routes(tree8x2, scheme)

    def test_route_table_subset_pairs(self, tree8x2, plan):
        pairs = np.array([[0, 31], [5, 9], [30, 2]])
        table = plan.route_table(pairs)
        full = plan.route_table()
        assert set(table) == {s * tree8x2.n_procs + d for s, d in pairs}
        for key, paths in table.items():
            assert full[key] == paths

    def test_route_table_rejects_self_pairs(self, plan):
        with pytest.raises(ValueError):
            plan.route_table(np.array([[3, 3]]))

    def test_lfts_from_plan_match_scheme(self, tree8x2):
        scheme = make_scheme(tree8x2, "disjoint:2")
        plan = compile_scheme(tree8x2, scheme)
        from_plan = compile_lfts(tree8x2, plan)
        from_scheme = compile_lfts(tree8x2, scheme)
        assert from_plan.scheme_label == from_scheme.scheme_label
        np.testing.assert_array_equal(from_plan.up_port, from_scheme.up_port)
        np.testing.assert_array_equal(from_plan.path_index,
                                      from_scheme.path_index)


class TestCsrLayout:
    def test_self_pairs_are_empty_rows(self, plan, tree8x2):
        n = tree8x2.n_procs
        counts = np.diff(plan.indptr)
        self_keys = np.arange(n) * n + np.arange(n)
        assert (counts[self_keys] == 0).all()
        # Every cross pair has P * 2k entries for its NCA level.
        assert plan.n_pairs == n * (n - 1)
        assert plan.nnz == counts.sum()

    def test_weights_sum_to_path_length(self, plan, tree8x2):
        # Per pair, the link weights sum to (fractions · 1) * 2k = 2k.
        n = tree8x2.n_procs
        for s, d in [(0, n - 1), (0, 1)]:
            key = s * n + d
            lo, hi = plan.indptr[key], plan.indptr[key + 1]
            k = int(tree8x2.nca_level(s, d))
            assert plan.link_weights[lo:hi].sum() == pytest.approx(2 * k)

    def test_nbytes_positive(self, plan):
        assert plan.nbytes > 0
        assert "CompiledScheme" in repr(plan)


class TestTelemetry:
    def test_compile_stats_event_and_timer(self, tree8x2):
        rec = Recorder()
        with use_recorder(rec):
            compile_scheme(tree8x2, make_scheme(tree8x2, "disjoint:2"))
        assert rec.counters["routing.schemes_compiled"] == 1
        assert "routing.compile" in rec.timers
        events = [e for e in rec.events if e.get("event") == "compile_stats"
                  or e.get("name") == "compile_stats"
                  or "nnz" in e]
        assert events, f"no compile_stats event in {rec.events}"
        stats = events[0]
        assert stats["n_pairs"] == tree8x2.n_procs * (tree8x2.n_procs - 1)
        assert stats["nnz"] > 0
        assert stats["seconds"] >= 0


class TestPickling:
    def test_round_trip(self, tree8x2):
        scheme = make_scheme(tree8x2, "random:2", seed=3)
        plan = compile_scheme(tree8x2, scheme)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.xgft == plan.xgft
        assert clone.label == plan.label
        np.testing.assert_array_equal(clone.link_ids, plan.link_ids)
        np.testing.assert_array_equal(clone.indptr, plan.indptr)
        np.testing.assert_allclose(clone.link_weights, plan.link_weights)
        assert clone.route_table() == plan.route_table()


@pytest.mark.parametrize("xgft", [
    m_port_n_tree(4, 2),
    m_port_n_tree(4, 3),
    XGFT(3, (3, 2, 4), (1, 2, 3)),
    XGFT(2, (3, 5), (2, 3)),
], ids=repr)
def test_compile_covers_every_cross_pair(xgft):
    plan = compile_scheme(xgft, make_scheme(xgft, "d-mod-k"))
    counts = np.diff(plan.indptr)
    n = xgft.n_procs
    s, d = np.divmod(np.arange(n * n), n)
    assert ((counts > 0) == (s != d)).all()
