"""Path enumeration codec and the disjoint ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing.enumeration import PathCodec, disjoint_order
from repro.topology.xgft import XGFT

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestPathCodec:
    def test_figure3_strides(self, fig3_xgft):
        codec = PathCodec(fig3_xgft, 3)
        assert codec.num_paths == 8
        # R_j = W(k)/W(j+1): lowest-level choice is most significant.
        assert codec.strides == (8, 2, 1)

    def test_figure3_dmodk_ports_encode_to_7(self, fig3_xgft):
        codec = PathCodec(fig3_xgft, 3)
        assert codec.ports_to_index((0, 3, 1)) == 7
        assert codec.index_to_ports(7) == (0, 3, 1)

    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_roundtrip_all_levels(self, xgft):
        for k in range(xgft.h + 1):
            codec = PathCodec(xgft, k)
            for t in range(codec.num_paths):
                ports = codec.index_to_ports(t)
                assert len(ports) == k
                assert all(0 <= p < xgft.w[j] for j, p in enumerate(ports))
                assert codec.ports_to_index(ports) == t

    def test_port_array_matches_scalar(self, fig3_xgft):
        codec = PathCodec(fig3_xgft, 3)
        ts = np.arange(codec.num_paths)
        for j in range(3):
            expected = [codec.index_to_ports(t)[j] for t in ts]
            assert np.array_equal(codec.port_array(ts, j), expected)

    def test_errors(self, fig3_xgft):
        codec = PathCodec(fig3_xgft, 3)
        with pytest.raises(RoutingError):
            codec.index_to_ports(8)
        with pytest.raises(RoutingError):
            codec.index_to_ports(-1)
        with pytest.raises(RoutingError):
            codec.ports_to_index((0, 0))  # wrong length
        with pytest.raises(RoutingError):
            codec.ports_to_index((0, 4, 0))  # port out of radix
        with pytest.raises(RoutingError):
            PathCodec(fig3_xgft, 4)
        with pytest.raises(RoutingError):
            codec.port_array(np.arange(2), 3)


class TestDisjointOrder:
    def test_paper_example(self, fig3_xgft):
        # Section 4.2.3: level-2 disjoint paths from 7 are 7,1,3,5 —
        # i.e. the base order starts 0,2,4,6.
        order = disjoint_order(fig3_xgft, 3)
        assert order == (0, 2, 4, 6, 1, 3, 5, 7)
        shifted = tuple((7 + o) % 8 for o in order[:4])
        assert shifted == (7, 1, 3, 5)

    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_is_permutation(self, xgft):
        for k in range(1, xgft.h + 1):
            order = disjoint_order(xgft, k)
            assert sorted(order) == list(range(xgft.W(k)))

    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_prefix_fork_property(self, xgft):
        """The first W(j) entries fork below level j: within the prefix,
        all level-<j digit combinations are distinct."""
        for k in range(1, xgft.h + 1):
            codec = PathCodec(xgft, k)
            order = disjoint_order(xgft, k)
            for j in range(1, k + 1):
                prefix = order[: xgft.W(j)]
                # Digits p_0..p_{j-1} (the fork-determining low levels).
                keys = {codec.index_to_ports(t)[:j] for t in prefix}
                assert len(keys) == len(prefix), (
                    f"prefix W({j})={xgft.W(j)} of disjoint order on {xgft} "
                    f"repeats a level-{j} fork"
                )

    def test_two_level_equals_shift(self):
        """On 2-level trees with w_1 = 1 the paper notes shift-1 and
        disjoint coincide: the base order is 0,1,2,..."""
        for m, w in ((4, 4), (8, 8), (12, 12)):
            x = XGFT(2, (m, 2 * m), (1, w))
            assert disjoint_order(x, 2) == tuple(range(w))

    def test_cache_returns_same_object(self, fig3_xgft):
        assert disjoint_order(fig3_xgft, 3) is disjoint_order(fig3_xgft, 3)

    def test_bad_level(self, fig3_xgft):
        with pytest.raises(RoutingError):
            disjoint_order(fig3_xgft, 4)


@settings(max_examples=25, deadline=None)
@given(h=st.integers(1, 3), data=st.data())
def test_disjoint_order_random_topologies(h, data):
    m = tuple(data.draw(st.integers(1, 3)) for _ in range(h))
    w = tuple(data.draw(st.integers(1, 4)) for _ in range(h))
    xgft = XGFT(h, m, w)
    for k in range(1, h + 1):
        order = disjoint_order(xgft, k)
        assert sorted(order) == list(range(xgft.W(k)))
