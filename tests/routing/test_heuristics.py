"""shift-1 / disjoint / random / UMULTI selection tests."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.routing.heuristics import (
    Disjoint,
    RandomMultipath,
    RandomSingle,
    Shift1,
    UMulti,
)
from repro.routing.modk import DModK
from repro.topology.variants import m_port_n_tree

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestShift1:
    def test_paper_example_k3(self, fig3_xgft):
        # Section 4.2.2: for (0, 63) with K=3: Paths 7, 0, 1.
        assert Shift1(fig3_xgft, 3).route(0, 63).indices == (7, 0, 1)

    def test_contains_dmodk_path_first(self, fig3_xgft):
        dmodk = DModK(fig3_xgft)
        shift = Shift1(fig3_xgft, 4)
        for s, d in ((0, 63), (5, 40), (12, 33)):
            assert shift.route(s, d).indices[0] == dmodk.route(s, d).indices[0]

    def test_consecutive_mod_x(self, fig3_xgft):
        rs = Shift1(fig3_xgft, 5).route(0, 63)
        x = 8
        for a, b in zip(rs.indices, rs.indices[1:]):
            assert b == (a + 1) % x

    def test_k_clamped_to_x(self, fig3_xgft):
        rs = Shift1(fig3_xgft, 100).route(0, 63)
        assert sorted(rs.indices) == list(range(8))

    def test_equals_umulti_at_max(self, tree8x2):
        shift = Shift1(tree8x2, tree8x2.max_paths)
        um = UMulti(tree8x2)
        for s, d in ((0, 31), (1, 17)):
            assert sorted(shift.route(s, d).indices) == sorted(um.route(s, d).indices)


class TestDisjoint:
    def test_paper_example_k4(self, fig3_xgft):
        # Section 4.2.3: level-2 disjoint paths from Path 7: 7, 1, 3, 5.
        assert Disjoint(fig3_xgft, 4).route(0, 63).indices == (7, 1, 3, 5)

    def test_prefixes_nest(self, fig3_xgft):
        # disjoint(K) is a prefix of disjoint(K') for K < K'.
        small = Disjoint(fig3_xgft, 2).route(0, 63).indices
        large = Disjoint(fig3_xgft, 6).route(0, 63).indices
        assert large[: len(small)] == small

    def test_paths_fork_at_lowest_level(self, fig3_xgft):
        """The first w_1*w_2 disjoint paths traverse distinct level-1
        switches on the destination side wherever possible — the defining
        property vs shift-1."""
        rs = Disjoint(fig3_xgft, 4).route(0, 63)
        level2_switches = set()
        for path in rs.paths(fig3_xgft):
            level2_switches.add(path.nodes[2])  # up-side level-2 switch
        assert len(level2_switches) == 4

    def test_shift1_shares_lower_links(self, fig3_xgft):
        """Contrast: shift-1's first K paths differ only near the top
        (the paper's motivating weakness)."""
        rs = Shift1(fig3_xgft, 2).route(0, 63)
        paths = rs.paths(fig3_xgft)
        # Paths 7 and 0 share no... they differ only at the top switch:
        shared = set(paths[0].links) & set(paths[1].links)
        assert len(shared) >= 2  # bottom up-link and bottom down-link shared

    def test_two_level_equals_shift1(self, tree8x2):
        shift = Shift1(tree8x2, 3)
        disjoint = Disjoint(tree8x2, 3)
        for s in range(0, 32, 7):
            for d in range(0, 32, 5):
                if s != d:
                    assert shift.route(s, d).indices == disjoint.route(s, d).indices


class TestRandom:
    def test_deterministic_per_pair(self, tree8x3):
        scheme = RandomMultipath(tree8x3, 4, seed=9)
        assert scheme.route(0, 127).indices == scheme.route(0, 127).indices

    def test_seed_changes_selection(self, tree8x3):
        a = RandomMultipath(tree8x3, 4, seed=0)
        b = RandomMultipath(tree8x3, 4, seed=1)
        diffs = sum(
            a.route(s, d).indices != b.route(s, d).indices
            for s, d in ((0, 127), (1, 100), (2, 90), (3, 80))
        )
        assert diffs > 0

    def test_distinct_indices(self, tree8x3):
        scheme = RandomMultipath(tree8x3, 8, seed=3)
        for d in (127, 64, 90):
            idx = scheme.route(0, d).indices
            assert len(set(idx)) == len(idx)

    def test_k_clamp(self, tree8x3):
        scheme = RandomMultipath(tree8x3, 1000, seed=0)
        rs = scheme.route(0, 127)
        assert sorted(rs.indices) == list(range(tree8x3.max_paths))

    def test_uniformity_over_pairs(self, tree8x3):
        """K=1 random selections cover path indices roughly uniformly."""
        scheme = RandomMultipath(tree8x3, 1, seed=5)
        s = np.zeros(2000, dtype=np.int64)
        d = np.arange(16, 2016) % tree8x3.n_procs
        keep = tree8x3.nca_level(s, d) == 3
        idx = scheme.path_index_matrix(s[keep], d[keep], 3).ravel()
        counts = np.bincount(idx, minlength=16)
        assert counts.min() > 0.4 * counts.mean()

    def test_random_single_is_k1(self, tree8x3):
        scheme = RandomSingle(tree8x3, seed=2)
        assert scheme.label == "random-single"
        assert scheme.route(0, 127).num_paths == 1

    def test_batch_matches_scalar(self, tree8x3):
        scheme = RandomMultipath(tree8x3, 4, seed=11)
        s = np.array([0, 1, 2])
        d = np.array([127, 126, 125])
        batch = scheme.path_index_matrix(s, d, 3)
        for i in range(3):
            assert tuple(batch[i]) == scheme.route(int(s[i]), int(d[i])).indices


class TestUMulti:
    def test_uses_all_paths(self, fig3_xgft):
        um = UMulti(fig3_xgft)
        rs = um.route(0, 63)
        assert sorted(rs.indices) == list(range(8))
        assert np.allclose(rs.fractions, 1 / 8)

    def test_respects_nca_level(self, fig3_xgft):
        assert UMulti(fig3_xgft).route(0, 1).num_paths == 1
        assert UMulti(fig3_xgft).route(0, 4).num_paths == 4


class TestCommonInvariants:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    @pytest.mark.parametrize("k_paths", [1, 2, 3, 7])
    def test_route_sets_valid(self, xgft, k_paths):
        schemes = [
            Shift1(xgft, k_paths),
            Disjoint(xgft, k_paths),
            RandomMultipath(xgft, k_paths, seed=1),
        ]
        n = min(xgft.n_procs, 6)
        for scheme in schemes:
            for s in range(n):
                d = xgft.n_procs - 1 - s
                if s == d:
                    continue
                rs = scheme.route(s, d)
                x = int(xgft.num_shortest_paths(s, d))
                assert rs.num_paths == min(k_paths, x)
                assert all(0 <= t < x for t in rs.indices)
                assert len(set(rs.indices)) == rs.num_paths
                assert abs(sum(rs.fractions) - 1.0) < 1e-9

    def test_rejects_k_zero(self, tree8x2):
        with pytest.raises(RoutingError):
            Shift1(tree8x2, 0)

    def test_labels(self, tree8x2):
        assert Shift1(tree8x2, 4).label == "shift-1(4)"
        assert Disjoint(tree8x2, 2).label == "disjoint(2)"
        assert RandomMultipath(tree8x2, 8).label == "random(8)"
        assert UMulti(tree8x2).label == "umulti"


def test_graceful_improvement_with_k():
    """Sanity for the Figure 4 mechanism: on a fixed permutation the
    worst heuristic load never increases as K grows (statistically it
    decreases; here we assert the endpoint optimality)."""
    from repro.flow.loads import link_loads
    from repro.flow.metrics import max_link_load, optimal_load
    from repro.traffic.permutations import permutation_matrix, random_permutation

    xgft = m_port_n_tree(8, 2)
    tm = permutation_matrix(random_permutation(xgft.n_procs, 0))
    opt = optimal_load(xgft, tm)
    loads_at_max = max_link_load(link_loads(xgft, Disjoint(xgft, xgft.max_paths), tm))
    assert loads_at_max == pytest.approx(opt)
