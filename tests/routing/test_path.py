"""Concrete path construction: Figure 3 exactness + structural checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing.path import build_path, check_path
from repro.topology.xgft import XGFT

from tests.conftest import TOPOLOGY_POOL, pool_ids


class TestFigure3Paths:
    """The paper lists all 8 paths between nodes 0 and 63 of
    XGFT(3; 4,4,4; 1,4,2).  The top-level switch of Path i must be the
    i-th leftmost; every path climbs through (1,0,0,0) and descends
    through (1,3,3,0)."""

    def test_endpoints_and_lengths(self, fig3_xgft):
        for t in range(8):
            p = build_path(fig3_xgft, 0, 63, t)
            assert p.nodes[0] == (0, 0)
            assert p.nodes[-1] == (0, 63)
            assert len(p.nodes) == 7  # 2k+1 hops for k=3
            assert len(p.links) == 6
            check_path(fig3_xgft, p)

    def test_top_switch_is_path_index(self, fig3_xgft):
        for t in range(8):
            p = build_path(fig3_xgft, 0, 63, t)
            level, idx = p.top_switch
            assert level == 3
            # Top-switch label digits within the NCA subtree are the port
            # choices; for the full tree the low digits identify it.
            ports = p.up_ports
            digits = fig3_xgft.node_digits(3, idx)
            assert digits[0] == ports[0]
            assert digits[1] == ports[1]
            assert digits[2] == ports[2]

    def test_all_paths_distinct(self, fig3_xgft):
        tops = {build_path(fig3_xgft, 0, 63, t).top_switch for t in range(8)}
        assert len(tops) == 8

    def test_describe_format(self, fig3_xgft):
        text = build_path(fig3_xgft, 0, 63, 7).describe(fig3_xgft)
        assert text.startswith("0 -> (1, 0, 0, 0)")
        assert text.endswith("-> 63")


class TestSelfPath:
    def test_self_pair_is_empty_path(self, tree8x2):
        p = build_path(tree8x2, 5, 5, 0)
        assert p.nodes == ((0, 5),)
        assert p.links == ()
        assert len(p) == 0
        check_path(tree8x2, p)

    def test_self_pair_rejects_nonzero_index(self, tree8x2):
        with pytest.raises(RoutingError):
            build_path(tree8x2, 5, 5, 1)


class TestValidation:
    @pytest.mark.parametrize("xgft", TOPOLOGY_POOL, ids=pool_ids())
    def test_exhaustive_small_pairs(self, xgft):
        """Every path of every pair on small trees passes hop-by-hop
        verification (caps work on the bigger pool entries)."""
        n = min(xgft.n_procs, 8)
        for s in range(n):
            for d in range(n):
                x = xgft.num_shortest_paths(s, d)
                for t in range(x):
                    check_path(xgft, build_path(xgft, s, d, t))

    def test_out_of_range_nodes(self, tree8x2):
        with pytest.raises(RoutingError):
            build_path(tree8x2, 0, tree8x2.n_procs, 0)
        with pytest.raises(RoutingError):
            build_path(tree8x2, -1, 0, 0)

    def test_path_index_out_of_range(self, tree8x2):
        with pytest.raises(RoutingError):
            build_path(tree8x2, 0, 31, tree8x2.max_paths)

    def test_check_path_catches_corruption(self, tree8x2):
        from dataclasses import replace

        p = build_path(tree8x2, 0, 31, 0)
        bad_nodes = (p.nodes[0], p.nodes[2], *p.nodes[2:])
        with pytest.raises(RoutingError):
            check_path(tree8x2, replace(p, nodes=bad_nodes))
        with pytest.raises(RoutingError):
            check_path(tree8x2, replace(p, links=p.links[:-1]))
        wrong_first_link = (p.links[1],) + p.links[1:]
        with pytest.raises(RoutingError):
            check_path(tree8x2, replace(p, links=wrong_first_link))


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_random_paths_are_valid(data):
    xgft = data.draw(st.sampled_from(TOPOLOGY_POOL))
    s = data.draw(st.integers(0, xgft.n_procs - 1))
    d = data.draw(st.integers(0, xgft.n_procs - 1))
    x = int(xgft.num_shortest_paths(s, d))
    t = data.draw(st.integers(0, x - 1))
    path = build_path(xgft, s, d, t)
    check_path(xgft, path)
    # Symmetric climb/descend: node levels form 0..k..0.
    levels = [l for l, _ in path.nodes]
    k = path.nca_level
    assert levels == list(range(k + 1)) + list(range(k - 1, -1, -1))
