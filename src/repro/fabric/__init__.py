"""Graph-based fabric routing (an OpenSM-style subnet manager).

The closed-form schemes in :mod:`repro.routing` exploit XGFT structure
analytically.  Real InfiniBand fabrics are *discovered* as port-level
graphs and routed by the subnet manager's fat-tree algorithm with no
closed form — which also lets them tolerate miscabling and failed
links.  This package provides that substrate:

* :mod:`repro.fabric.graph` — the discovered-fabric model (switches,
  hosts, cables) and a builder from any :class:`repro.topology.XGFT`;
* :mod:`repro.fabric.ranking` — BFS rank assignment and fat-tree
  structure validation (which links point up);
* :mod:`repro.fabric.router` — counter-balanced destination-based
  routing (the OpenSM ftree idea) with multi-LID support, producing
  per-switch forwarding tables;
* :mod:`repro.fabric.evaluate` — trace packets through the tables and
  compute flow-level link loads, so graph-routed fabrics plug into the
  same metrics as the closed-form schemes.

On intact XGFTs the graph router matches the closed-form d-mod-k family
in balance (tested); on degraded fabrics (failed links) it keeps every
pair connected — the paper's heuristics inherit fault tolerance when
deployed through a subnet manager.
"""

from repro.fabric.graph import Fabric, fabric_from_xgft
from repro.fabric.ranking import FatTreeStructure, rank_fabric
from repro.fabric.router import FabricRoutes, route_fabric
from repro.fabric.evaluate import compile_flit_routes, fabric_link_loads, trace

__all__ = [
    "compile_flit_routes",
    "Fabric",
    "fabric_from_xgft",
    "FatTreeStructure",
    "rank_fabric",
    "FabricRoutes",
    "route_fabric",
    "fabric_link_loads",
    "trace",
]
