"""Counter-balanced destination routing on discovered fabrics.

The OpenSM ftree idea, distilled: route one *virtual destination* (a
host + LID offset) at a time.  Every switch that can descend to the
destination gets a down-entry; every other switch routes up through the
parent with the smallest use counter, preferring parents that are
already ancestors of the destination (which keeps paths shortest on
intact fat-trees).  The counters persist across destinations and
offsets, so consecutive offsets of the same host spread over different
up-links — multi-LID routing with disjoint-ish diversity, computed with
no topology closed form.

Degraded fabrics are handled by restricting up choices to parents from
which the destination is still reachable; pairs that become physically
unreachable get ``NO_ROUTE`` entries instead of silent misroutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.fabric.graph import Fabric
from repro.fabric.ranking import FatTreeStructure, rank_fabric
from repro.obs.recorder import get_recorder

#: forwarding-table value for "destination unreachable from here"
NO_ROUTE = -1


@dataclass(frozen=True)
class FabricRoutes:
    """Compiled forwarding state for a fabric.

    ``next_hop[node, v]`` is the node to forward to for virtual
    destination ``v = host * n_offsets + offset`` (``NO_ROUTE`` if
    unreachable).  Host rows hold the host's first hop (its leaf
    switch choice).
    """

    fabric: Fabric
    structure: FatTreeStructure
    n_offsets: int
    next_hop: np.ndarray

    def vdest(self, host: int, offset: int = 0) -> int:
        if not 0 <= offset < self.n_offsets:
            raise RoutingError(
                f"offset {offset} out of range [0, {self.n_offsets})"
            )
        if not 0 <= host < self.fabric.n_hosts:
            raise RoutingError(f"host {host} out of range")
        return host * self.n_offsets + offset

    def unreachable_pairs(self) -> list[tuple[int, int]]:
        """Ordered (src, dst) host pairs with no route (any offset
        missing counts — offsets should be interchangeable)."""
        bad = []
        for s in range(self.fabric.n_hosts):
            first_hop = self.next_hop[s]
            for d in range(self.fabric.n_hosts):
                if s == d:
                    continue
                if any(first_hop[self.vdest(d, o)] == NO_ROUTE
                       for o in range(self.n_offsets)):
                    bad.append((s, d))
        return bad


def route_fabric(
    fabric: Fabric,
    *,
    n_offsets: int = 1,
    structure: FatTreeStructure | None = None,
) -> FabricRoutes:
    """Compute counter-balanced forwarding tables for ``fabric``.

    ``n_offsets`` is the number of LIDs (paths) per destination host.
    """
    if n_offsets < 1:
        raise RoutingError(f"n_offsets must be >= 1, got {n_offsets}")
    rec = get_recorder()
    with rec.timer("fabric.route_fabric"):
        routes = _route_fabric(fabric, n_offsets, structure)
    if rec.enabled:
        rec.count("fabric.tables_built")
        rec.count("fabric.vdests_routed",
                  fabric.n_hosts * n_offsets)
    return routes


def _route_fabric(
    fabric: Fabric,
    n_offsets: int,
    structure: FatTreeStructure | None,
) -> FabricRoutes:
    st = structure if structure is not None else rank_fabric(fabric)
    n_nodes = fabric.n_nodes
    n_vdest = fabric.n_hosts * n_offsets
    next_hop = np.full((n_nodes, n_vdest), NO_ROUTE, dtype=np.int32)
    up_counter: dict[tuple[int, int], int] = {}

    for dest in range(fabric.n_hosts):
        # Ancestor sets: switches that can reach `dest` purely downward,
        # with the down neighbor to use (unique on trees; tie-broken by
        # id otherwise).
        down_via: dict[int, int] = {}
        frontier = [dest]
        seen = {dest}
        while frontier:
            nxt = []
            for node in frontier:
                for parent in st.up_neighbors[node]:
                    if parent not in down_via:
                        down_via[parent] = node
                        nxt.append(parent)
                        seen.add(parent)
            frontier = nxt
        ancestors = set(down_via)

        # Reachability of `dest` (up*/down*) per node, top rank downward.
        reachable = set(ancestors)
        reachable.add(dest)
        for rank in range(st.max_rank - 1, -1, -1):
            for node in range(n_nodes):
                if st.rank[node] != rank or node in reachable:
                    continue
                if any(p in reachable for p in st.up_neighbors[node]):
                    reachable.add(node)

        for offset in range(n_offsets):
            v = dest * n_offsets + offset
            for node, child in down_via.items():
                next_hop[node, v] = child
            # Everyone else climbs via the least-used feasible parent.
            for node in range(n_nodes):
                if node in ancestors or node == dest:
                    continue
                parents = st.up_neighbors[node]
                in_a = [p for p in parents if p in ancestors]
                pool = in_a if in_a else [p for p in parents if p in reachable]
                if not pool:
                    continue  # stays NO_ROUTE
                choice = min(
                    pool, key=lambda p: (up_counter.get((node, p), 0), p)
                )
                up_counter[(node, choice)] = up_counter.get((node, choice), 0) + 1
                next_hop[node, v] = choice

    next_hop.setflags(write=False)
    return FabricRoutes(fabric, st, n_offsets, next_hop)
