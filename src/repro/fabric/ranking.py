"""Rank assignment: rediscovering the tree structure of a fabric.

A subnet manager's fat-tree routing first ranks every switch by its BFS
distance from the hosts (leaf switches rank 1, their parents rank 2,
...).  A channel then points *up* if it goes from a lower rank to a
higher one.  Fat-tree routing requires every cable to cross exactly one
rank boundary (no same-rank side links); :func:`rank_fabric` validates
this and reports the structure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.fabric.graph import Fabric


@dataclass(frozen=True)
class FatTreeStructure:
    """Ranks and link orientation of a validated fat-tree fabric.

    Attributes
    ----------
    rank:
        Per-node rank: hosts 0, leaf switches 1, upward from there.
    max_rank:
        The root rank (tree height in switch levels).
    up_neighbors / down_neighbors:
        Per-node neighbor lists split by direction, each sorted by
        node id (a deterministic left-to-right port order).
    """

    rank: tuple[int, ...]
    max_rank: int
    up_neighbors: tuple[tuple[int, ...], ...]
    down_neighbors: tuple[tuple[int, ...], ...]

    def is_up_channel(self, src: int, dst: int) -> bool:
        return self.rank[dst] == self.rank[src] + 1


def rank_fabric(fabric: Fabric) -> FatTreeStructure:
    """BFS-rank a fabric from its hosts and validate fat-tree structure.

    Raises :class:`TopologyError` when the graph is disconnected or has
    a cable that does not cross exactly one rank boundary (side links /
    skip links), i.e. is not a multi-stage fat tree.
    """
    rank = [-1] * fabric.n_nodes
    queue: deque[int] = deque()
    for host in range(fabric.n_hosts):
        rank[host] = 0
        queue.append(host)
    while queue:
        node = queue.popleft()
        for nb in fabric.neighbors[node]:
            if rank[nb] < 0:
                rank[nb] = rank[node] + 1
                queue.append(nb)

    unreachable = [n for n in range(fabric.n_nodes) if rank[n] < 0]
    if unreachable:
        raise TopologyError(f"fabric is disconnected: nodes {unreachable[:5]}...")

    up_nb: list[list[int]] = [[] for _ in range(fabric.n_nodes)]
    down_nb: list[list[int]] = [[] for _ in range(fabric.n_nodes)]
    for ch in fabric.channels:
        dr = rank[ch.dst] - rank[ch.src]
        if dr == 1:
            up_nb[ch.src].append(ch.dst)
        elif dr == -1:
            down_nb[ch.src].append(ch.dst)
        else:
            raise TopologyError(
                f"cable {ch.src} <-> {ch.dst} crosses {abs(dr)} rank "
                f"boundaries; not a multi-stage fat tree"
            )

    return FatTreeStructure(
        rank=tuple(rank),
        max_rank=max(rank),
        up_neighbors=tuple(tuple(sorted(x)) for x in up_nb),
        down_neighbors=tuple(tuple(sorted(x)) for x in down_nb),
    )
