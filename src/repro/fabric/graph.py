"""The discovered-fabric model.

A fabric is what a subnet manager sees after sweeping the network: a set
of switches, a set of host (CA) ports, and cables between them — no
levels, labels or closed forms.  Nodes are opaque integer ids; hosts are
``0 .. n_hosts-1`` and switches are negative-free ids starting at
``n_hosts``.

Directed *channels* (one per cable direction) get dense ids so the
flow-level evaluator can accumulate loads in arrays, mirroring
:class:`repro.topology.XGFT`'s link registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.topology.xgft import XGFT


@dataclass(frozen=True)
class Channel:
    """One directed link of the fabric."""

    src: int
    dst: int


class Fabric:
    """A port-level network graph of hosts and switches.

    Parameters
    ----------
    n_hosts:
        Number of host (processing-node) ports; ids ``0..n_hosts-1``.
    n_switches:
        Number of switches; ids ``n_hosts..n_hosts+n_switches-1``.
    cables:
        Iterable of undirected node-id pairs.  Hosts must connect only
        to switches.
    """

    def __init__(self, n_hosts: int, n_switches: int, cables) -> None:
        if n_hosts < 1 or n_switches < 1:
            raise TopologyError("a fabric needs at least one host and one switch")
        self.n_hosts = n_hosts
        self.n_switches = n_switches
        self.n_nodes = n_hosts + n_switches
        self.channels: list[Channel] = []
        self.channel_id: dict[tuple[int, int], int] = {}
        self.neighbors: list[list[int]] = [[] for _ in range(self.n_nodes)]
        seen: set[frozenset] = set()
        for a, b in cables:
            self._add_cable(int(a), int(b), seen)
        for host in range(n_hosts):
            if not self.neighbors[host]:
                raise TopologyError(f"host {host} is not cabled to any switch")

    def _add_cable(self, a: int, b: int, seen: set) -> None:
        for x in (a, b):
            if not 0 <= x < self.n_nodes:
                raise TopologyError(f"node id {x} out of range")
        if a == b:
            raise TopologyError(f"self-cable at node {a}")
        if self.is_host(a) and self.is_host(b):
            raise TopologyError(f"hosts {a} and {b} cabled directly")
        key = frozenset((a, b))
        if key in seen:
            raise TopologyError(f"duplicate cable {a} <-> {b}")
        seen.add(key)
        for src, dst in ((a, b), (b, a)):
            self.channel_id[(src, dst)] = len(self.channels)
            self.channels.append(Channel(src, dst))
            self.neighbors[src].append(dst)

    # ------------------------------------------------------------------
    def is_host(self, node: int) -> bool:
        return node < self.n_hosts

    def is_switch(self, node: int) -> bool:
        return node >= self.n_hosts

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def switch_of(self, host: int) -> int:
        """The (first) switch a host is cabled to."""
        if not self.is_host(host):
            raise TopologyError(f"{host} is not a host")
        return self.neighbors[host][0]

    def without_cable(self, a: int, b: int) -> "Fabric":
        """A copy of the fabric with one cable removed (fault injection).

        Raises :class:`TopologyError` if the cable does not exist.
        """
        if (a, b) not in self.channel_id:
            raise TopologyError(f"no cable {a} <-> {b}")
        cables = []
        dropped = frozenset((a, b))
        emitted = set()
        for ch in self.channels:
            key = frozenset((ch.src, ch.dst))
            if key != dropped and key not in emitted:
                emitted.add(key)
                cables.append((ch.src, ch.dst))
        return Fabric(self.n_hosts, self.n_switches, cables)

    def __repr__(self) -> str:
        return (f"Fabric(hosts={self.n_hosts}, switches={self.n_switches}, "
                f"cables={self.n_channels // 2})")


def fabric_from_xgft(xgft: XGFT) -> Fabric:
    """Flatten an XGFT into a discovered fabric.

    Node ids: hosts keep their processing-node ids; switches are
    enumerated level-major (level 1 first) after the hosts.  The result
    intentionally forgets all XGFT structure — ranking must rediscover
    it.
    """
    if xgft.h < 1:
        raise TopologyError("need at least one switch level")
    offsets = {}
    base = xgft.n_procs
    for level in range(1, xgft.h + 1):
        offsets[level] = base
        base += xgft.level_size(level)
    offsets[0] = 0

    cables = []
    for _, ref in xgft.iter_links():
        if ref.kind.value != "up":
            continue  # one cable per physical link
        cables.append(
            (offsets[ref.src_level] + ref.src_index,
             offsets[ref.dst_level] + ref.dst_index)
        )
    return Fabric(xgft.n_procs, xgft.n_switches, cables)
