"""Tracing and flow-level evaluation of fabric routes.

Packets are walked hop by hop through the compiled forwarding tables
(exactly what the switches would do), so these results reflect the
deployed tables rather than any closed form.  Loads use the fabric's
dense channel ids and plug into the same max-load/balance metrics as
the XGFT evaluator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.fabric.router import NO_ROUTE, FabricRoutes
from repro.traffic.matrix import TrafficMatrix


def trace(
    routes: FabricRoutes, src: int, dst: int, offset: int = 0
) -> list[int] | None:
    """Node sequence from ``src`` to ``dst`` for one LID offset.

    Returns ``None`` when the pair is unreachable (a ``NO_ROUTE`` entry
    is hit); raises :class:`RoutingError` on a forwarding loop, which
    would indicate a router bug.
    """
    fabric = routes.fabric
    if not 0 <= src < fabric.n_hosts or not 0 <= dst < fabric.n_hosts:
        raise RoutingError("src and dst must be host ids")
    v = routes.vdest(dst, offset)
    node = src
    visited = [src]
    limit = 2 * routes.structure.max_rank + 2
    for _ in range(limit):
        if node == dst:
            return visited
        nxt = int(routes.next_hop[node, v])
        if nxt == NO_ROUTE:
            return None
        node = nxt
        visited.append(node)
    if node == dst:
        return visited
    raise RoutingError(
        f"forwarding loop for {src} -> {dst} (offset {offset}): {visited}"
    )


def compile_flit_routes(routes: FabricRoutes) -> dict[int, list[tuple[int, ...]]]:
    """Compile fabric routes into the flit engine's route-table format.

    Returns the mapping ``src * n_hosts + dst -> [channel-id paths]``
    (one per LID offset, deduplicated) consumed by
    :meth:`repro.flit.FlitSimulator.from_tables` — enabling flit-level
    simulation of discovered (and degraded) fabrics.

    Raises :class:`RoutingError` when any host pair is unreachable; a
    flit study on a partitioned network would silently starve.
    """
    fabric = routes.fabric
    n = fabric.n_hosts
    table: dict[int, list[tuple[int, ...]]] = {}
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            paths = []
            for offset in range(routes.n_offsets):
                nodes = trace(routes, s, d, offset)
                if nodes is None:
                    raise RoutingError(f"pair {s} -> {d} is unreachable")
                path = tuple(fabric.channel_id[(a, b)]
                             for a, b in zip(nodes, nodes[1:]))
                if path not in paths:
                    paths.append(path)
            table[s * n + d] = paths
    return table


def fabric_link_loads(routes: FabricRoutes, tm: TrafficMatrix) -> np.ndarray:
    """Per-channel load vector for a traffic matrix.

    Each pair's traffic is split evenly over the ``n_offsets`` LID
    routes (the limited multi-path model).  Unreachable pairs raise —
    loads on a silently lossy network would be meaningless.
    """
    fabric = routes.fabric
    if tm.n_procs != fabric.n_hosts:
        raise RoutingError(
            f"traffic matrix over {tm.n_procs} hosts but fabric has "
            f"{fabric.n_hosts}"
        )
    loads = np.zeros(fabric.n_channels)
    src_arr, dst_arr, amounts = tm.network_pairs()
    share = 1.0 / routes.n_offsets
    for s, d, amount in zip(src_arr, dst_arr, amounts):
        for offset in range(routes.n_offsets):
            nodes = trace(routes, int(s), int(d), offset)
            if nodes is None:
                raise RoutingError(f"pair {s} -> {d} is unreachable")
            for a, b in zip(nodes, nodes[1:]):
                loads[fabric.channel_id[(a, b)]] += amount * share
    return loads
