"""Limited multi-path routing on extended generalized fat-trees.

A from-scratch reproduction of Mahapatra, Yuan & Nienaber, "Limited
Multi-path Routing on Extended Generalized Fat-trees" (IPDPS Workshops
2012): the XGFT topology family, single-path baselines (d-mod-k, s-mod-k,
random), the paper's limited multi-path heuristics (shift-1, disjoint,
random-K), unlimited multi-path routing, a vectorized flow-level
evaluator, an event-driven flit-level virtual cut-through simulator, and
the full experiment harness for the paper's figures and tables.

Quickstart
----------
>>> import repro
>>> xgft = repro.m_port_n_tree(8, 2)
>>> scheme = repro.make_scheme(xgft, "disjoint:2")
>>> scheme.route(0, 17).indices
(1, 2)
"""

from repro.errors import (
    ReproError,
    ResourceError,
    RoutingError,
    SimulationError,
    TopologyError,
    TrafficError,
)
from repro.topology import XGFT, gft, k_ary_n_tree, m_port_n_tree, slimmed_xgft
from repro.routing import (
    Disjoint,
    DModK,
    Path,
    RandomMultipath,
    RandomSingle,
    RouteSet,
    RoutingScheme,
    Shift1,
    SModK,
    UMulti,
    available_schemes,
    build_path,
    make_scheme,
)
from repro.traffic import (
    TrafficMatrix,
    all_to_all,
    bit_complement,
    bit_reversal,
    hotspot,
    permutation_matrix,
    random_permutation,
    shift_pattern,
    theorem2_pattern,
    transpose_pattern,
    uniform_expected,
)
from repro.flow import (
    FlowResult,
    FlowSimulator,
    PermutationStudy,
    link_loads,
    max_link_load,
    optimal_load,
    performance_ratio,
)

# Subpackages intentionally not flattened into the top level (import
# them directly): repro.flit (the VCT engine), repro.ib (LID/LFT
# realization), repro.fabric (graph-based subnet-manager routing),
# repro.analysis (theorem validators, exact LP ratios),
# repro.experiments (the paper's tables and figures),
# repro.obs (run telemetry: recorder, JSONL logs, manifests),
# repro.runner (persistent pools, on-disk result cache, parallel sweeps).

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "TopologyError",
    "RoutingError",
    "TrafficError",
    "SimulationError",
    "ResourceError",
    # topology
    "XGFT",
    "m_port_n_tree",
    "k_ary_n_tree",
    "gft",
    "slimmed_xgft",
    # routing
    "RoutingScheme",
    "RouteSet",
    "Path",
    "build_path",
    "make_scheme",
    "available_schemes",
    "DModK",
    "SModK",
    "RandomSingle",
    "Shift1",
    "Disjoint",
    "RandomMultipath",
    "UMulti",
    # traffic
    "TrafficMatrix",
    "random_permutation",
    "permutation_matrix",
    "all_to_all",
    "uniform_expected",
    "shift_pattern",
    "transpose_pattern",
    "bit_reversal",
    "bit_complement",
    "hotspot",
    "theorem2_pattern",
    # flow
    "FlowSimulator",
    "FlowResult",
    "PermutationStudy",
    "link_loads",
    "max_link_load",
    "optimal_load",
    "performance_ratio",
]
