"""Routing on extended generalized fat-trees.

Single-path baselines (d-mod-k, s-mod-k, random), the paper's limited
multi-path heuristics (shift-1, disjoint, random-K) and unlimited
multi-path routing (UMULTI), plus the path enumeration machinery they all
share.
"""

from repro.routing.base import LimitedMultipathScheme, RouteSet, RoutingScheme
from repro.routing.compiled import CompiledScheme, compile_scheme
from repro.routing.enumeration import PathCodec, disjoint_order, path_codec
from repro.routing.factory import available_schemes, make_scheme
from repro.routing.heuristics import (
    Disjoint,
    RandomMultipath,
    RandomSingle,
    Shift1,
    UMulti,
)
from repro.routing.modk import DModK, SModK, modk_path_index
from repro.routing.path import Path, build_path, check_path

__all__ = [
    "RoutingScheme",
    "LimitedMultipathScheme",
    "RouteSet",
    "CompiledScheme",
    "compile_scheme",
    "PathCodec",
    "path_codec",
    "disjoint_order",
    "available_schemes",
    "make_scheme",
    "DModK",
    "SModK",
    "modk_path_index",
    "Shift1",
    "Disjoint",
    "RandomMultipath",
    "RandomSingle",
    "UMulti",
    "Path",
    "build_path",
    "check_path",
]
