"""The paper's limited multi-path heuristics: shift-1, disjoint, random.

All three accept a per-pair path limit ``K``, use ``min(K, X)`` paths with
uniform fractions, and coincide with UMULTI once ``K >= X = W(k)``.
shift-1 and disjoint are built on the d-mod-k path (Section 4.2); random
uses pure randomization and serves as the benchmark heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import LimitedMultipathScheme
from repro.routing.enumeration import disjoint_order
from repro.routing.modk import modk_path_index, shifted_order
from repro.util.hashing import hash_combine, hash_mod, hash_uniform


class Shift1(LimitedMultipathScheme):
    """Shift-1 heuristic (Section 4.2.2).

    Uses the ``K`` consecutive ALLPATHS entries starting at the d-mod-k
    path: indices ``(t0 + j) mod X`` for ``j < min(K, X)`` — logically
    ``K`` shifted copies of d-mod-k, each carrying ``1/K`` of the
    traffic.  Spreads load at the top level only: consecutive indices
    differ in the lowest-stride digits, so the chosen paths share their
    lower-level links.
    """

    name = "shift-1"

    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        x = self.xgft.W(k)
        t0 = modk_path_index(self.xgft, np.asarray(d), k)
        offsets = np.arange(self.paths_per_pair(k), dtype=np.int64)
        return (t0[:, None] + offsets[None, :]) % x

    def path_order_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        return shifted_order(self.xgft,
                             modk_path_index(self.xgft, np.asarray(d), k), k)


class Disjoint(LimitedMultipathScheme):
    """Disjoint heuristic (Section 4.2.3).

    Takes the first ``min(K, X)`` entries of the disjoint ordering
    ``D_k(t0)`` (see :func:`repro.routing.enumeration.disjoint_order`),
    which forks paths at the lowest levels first — making the chosen
    paths maximally link-disjoint while every one of them keeps the
    d-mod-k structure.  The paper's best heuristic.
    """

    name = "disjoint"

    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        x = self.xgft.W(k)
        t0 = modk_path_index(self.xgft, np.asarray(d), k)
        base = np.asarray(disjoint_order(self.xgft, k)[: self.paths_per_pair(k)],
                          dtype=np.int64)
        return (t0[:, None] + base[None, :]) % x

    def path_order_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        x = self.xgft.W(k)
        t0 = modk_path_index(self.xgft, np.asarray(d), k)
        base = np.asarray(disjoint_order(self.xgft, k), dtype=np.int64)
        return (t0[:, None] + base[None, :]) % x


class RandomMultipath(LimitedMultipathScheme):
    """Random heuristic (Section 4.2.1).

    Selects ``min(K, X)`` *distinct* paths uniformly at random per SD
    pair.  The selection is a pure function of ``(seed, s, d)`` via
    counter-based hashing, so routes are stable across queries — the
    paper's "average of five random seeds" is realized by constructing
    five instances with different seeds.

    Implementation: each pair scores all ``X`` path indices with a hash
    and keeps the ``P`` smallest scores, i.e. a Fisher-Yates-equivalent
    uniform sample without replacement.
    """

    name = "random"

    def __init__(self, xgft, k_paths: int, seed: int = 0):
        super().__init__(xgft, k_paths)
        self.seed = int(seed)

    def __repr__(self) -> str:
        return f"RandomMultipath({self.xgft!r}, K={self.k_paths}, seed={self.seed})"

    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        s = np.asarray(s, dtype=np.int64)
        d = np.asarray(d, dtype=np.int64)
        x = self.xgft.W(k)
        p = self.paths_per_pair(k)
        pair_key = hash_combine(np.uint64(self.seed), s * np.int64(self.xgft.n_procs) + d)
        if p == 1:
            return hash_mod(x, pair_key)[:, None]
        scores = hash_uniform(pair_key[:, None], np.arange(x, dtype=np.int64)[None, :])
        if p == x:
            order = np.argsort(scores, axis=1)  # full permutation, order irrelevant
            return order.astype(np.int64)
        part = np.argpartition(scores, p, axis=1)[:, :p]
        return np.sort(part, axis=1).astype(np.int64)

    def path_order_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        """All path indices ordered by hash score, except that the
        selected prefix (which for ``P == 1`` is the ``hash_mod`` pick,
        not the score minimum) always comes first: the length-``P``
        prefix is the same *set* :meth:`path_index_matrix` keeps, and
        under faults the next-best scores step in."""
        s = np.asarray(s, dtype=np.int64)
        d = np.asarray(d, dtype=np.int64)
        x = self.xgft.W(k)
        pair_key = hash_combine(np.uint64(self.seed), s * np.int64(self.xgft.n_procs) + d)
        scores = hash_uniform(pair_key[:, None], np.arange(x, dtype=np.int64)[None, :])
        if self.paths_per_pair(k) == 1 and x > 1:
            # Selection uses hash_mod for P == 1; pin that pick to the
            # front by giving it a score below every hash_uniform value.
            first = hash_mod(x, pair_key)
            scores = scores.copy()
            scores[np.arange(len(s)), first] = -1.0
        return np.argsort(scores, axis=1).astype(np.int64)


class RandomSingle(RandomMultipath):
    """Random single-path routing [Greenberg & Leiserson]: one uniformly
    random shortest path per SD pair (= random heuristic with K=1)."""

    name = "random-single"

    def __init__(self, xgft, seed: int = 0):
        super().__init__(xgft, 1, seed=seed)

    @property
    def label(self) -> str:
        return self.name


class UMulti(LimitedMultipathScheme):
    """Unlimited multi-path routing (UMULTI, Section 4.1).

    Spreads each pair's traffic uniformly over *all* ``X = W(k)``
    shortest paths.  Theorem 1: its oblivious performance ratio is 1 —
    optimal for every traffic matrix.
    """

    name = "umulti"

    def __init__(self, xgft):
        super().__init__(xgft, xgft.max_paths)

    def __repr__(self) -> str:
        return f"UMulti({self.xgft!r})"

    @property
    def label(self) -> str:
        return self.name

    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        x = self.xgft.W(k)
        n = len(np.asarray(s))
        return np.broadcast_to(np.arange(x, dtype=np.int64), (n, x)).copy()

    def path_order_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        return self.path_index_matrix(s, d, k)
