"""Destination-mod-k and source-mod-k single-path routing.

d-mod-k (Section 3.3): climbing from level ``j`` toward the NCA, take up
port ``p_j = (d // W(j)) mod w_{j+1}``.  s-mod-k uses the source id
instead.  Both are universal single-path schemes on XGFTs and d-mod-k is
the base of the paper's shift-1 and disjoint heuristics.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import RoutingScheme
from repro.routing.enumeration import path_codec
from repro.topology.xgft import XGFT


def modk_path_index(xgft: XGFT, key, k: int):
    """ALLPATHS index of the mod-k path for pairs with NCA level ``k``.

    ``key`` is the destination id for d-mod-k or the source id for
    s-mod-k; vectorized over arrays.  The port at level ``j`` is
    ``(key // W(j)) mod w_{j+1}`` and the path index weights it by the
    stride ``R_j = W(k)/W(j+1)``.
    """
    codec = path_codec(xgft, k)
    key = np.asarray(key)
    t = np.zeros(key.shape, dtype=np.int64)
    for j in range(k):
        port = (key // xgft.W(j)) % xgft.w[j]
        t += port * codec.strides[j]
    return t


def shifted_order(xgft: XGFT, t0: np.ndarray, k: int) -> np.ndarray:
    """Full path order ``(t0 + j) mod X`` for ``j = 0..X-1`` — the shift
    sequence starting at each pair's base path.  Shared by the mod-k
    schemes and shift-1, whose fault fallback walks to the next shifted
    copy of the base path."""
    x = xgft.W(k)
    offsets = np.arange(x, dtype=np.int64)
    return (np.asarray(t0, dtype=np.int64)[:, None] + offsets[None, :]) % x


class DModK(RoutingScheme):
    """Destination-mod-k single-path routing [5, 10, 15 in the paper]."""

    name = "d-mod-k"

    def paths_per_pair(self, k: int) -> int:
        return 1

    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        return modk_path_index(self.xgft, np.asarray(d), k)[:, None]

    def path_order_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        return shifted_order(self.xgft,
                             modk_path_index(self.xgft, np.asarray(d), k), k)


class SModK(RoutingScheme):
    """Source-mod-k single-path routing (performance is known to be
    nearly identical to d-mod-k; provided as a baseline)."""

    name = "s-mod-k"

    def paths_per_pair(self, k: int) -> int:
        return 1

    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        return modk_path_index(self.xgft, np.asarray(s), k)[:, None]

    def path_order_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        return shifted_order(self.xgft,
                             modk_path_index(self.xgft, np.asarray(s), k), k)
