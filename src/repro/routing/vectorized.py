"""Batch path-to-link computation.

Converts matrices of path indices into matrices of directed link ids in a
few NumPy expressions per tree level, mirroring the closed forms used by
:func:`repro.routing.path.build_path` (which remains the readable scalar
reference; tests assert both agree).  Used by the flit simulator's route
table compiler and by the InfiniBand table builder.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import RoutingScheme
from repro.routing.enumeration import path_codec
from repro.topology.xgft import XGFT


def path_link_matrix(
    xgft: XGFT, s: np.ndarray, d: np.ndarray, idx: np.ndarray, k: int
) -> np.ndarray:
    """Link ids of every path in ``idx``.

    Parameters
    ----------
    s, d:
        1-D arrays (length n) of processing-node ids with NCA level ``k``.
    idx:
        ``(n, P)`` path-index matrix.

    Returns
    -------
    ``(n, P, 2k)`` int64 array: for each pair and path, the ``k`` up-link
    ids followed by the ``k`` down-link ids, in traversal order.
    """
    s = np.asarray(s, dtype=np.int64)
    d = np.asarray(d, dtype=np.int64)
    idx = np.asarray(idx, dtype=np.int64)
    n, p = idx.shape
    codec = path_codec(xgft, k)
    out = np.empty((n, p, 2 * k), dtype=np.int64)
    low = np.zeros_like(idx)
    for l in range(k):
        port = (idx // codec.strides[l]) % xgft.w[l]
        up_node = low + xgft.W(l) * (s // xgft.M(l))[:, None]
        out[:, :, l] = xgft.up_link_id(l, up_node, port)
        low = low + port * xgft.W(l)
        down_parent = low + xgft.W(l + 1) * (d // xgft.M(l + 1))[:, None]
        child_digit = ((d // xgft.M(l)) % xgft.m[l])[:, None]
        # Down-links are traversed top-down: level l is position 2k-1-l.
        out[:, :, 2 * k - 1 - l] = xgft.down_link_id(
            l, down_parent, np.broadcast_to(child_digit, down_parent.shape)
        )
    return out


def compile_routes(
    xgft: XGFT, scheme: RoutingScheme, pairs: np.ndarray | None = None
) -> dict[int, list[tuple[int, ...]]]:
    """Materialize path link sequences for SD pairs.

    Parameters
    ----------
    pairs:
        Optional ``(n, 2)`` array of (src, dst) pairs; defaults to every
        ordered pair with ``src != dst``.

    Returns
    -------
    Mapping from pair key ``src * n_procs + dst`` to the list of the
    pair's path link-id tuples (in the scheme's path order; fractions are
    ``scheme.fractions(k)``).
    """
    if hasattr(scheme, "route_table"):
        # Compiled plans already hold the per-pair link incidence —
        # serve the table straight from it (duck-typed to avoid an
        # import cycle with repro.routing.compiled).
        return scheme.route_table(pairs)
    n = xgft.n_procs
    if pairs is None:
        grid_s, grid_d = np.divmod(np.arange(n * n, dtype=np.int64), n)
        keep = grid_s != grid_d
        s_all, d_all = grid_s[keep], grid_d[keep]
    else:
        pairs = np.asarray(pairs, dtype=np.int64)
        s_all, d_all = pairs[:, 0], pairs[:, 1]
        if np.any(s_all == d_all):
            raise ValueError("self-pairs have no network route")

    table: dict[int, list[tuple[int, ...]]] = {}
    k_arr = xgft.nca_level(s_all, d_all)
    for k in range(1, xgft.h + 1):
        mask = k_arr == k
        if not mask.any():
            continue
        s, d = s_all[mask], d_all[mask]
        idx = scheme.path_index_matrix(s, d, k)
        links = path_link_matrix(xgft, s, d, idx, k)
        keys = s * n + d
        pair_w = scheme.path_weight_matrix(s, d, k)
        if pair_w is None:
            for row, key in enumerate(keys):
                table[int(key)] = [tuple(map(int, path)) for path in links[row]]
        else:
            # Fault-aware schemes pad short rows with weight-0 duplicates;
            # concrete path lists must not contain them.
            for row, key in enumerate(keys):
                table[int(key)] = [
                    tuple(map(int, path))
                    for path, w in zip(links[row], pair_w[row])
                    if w > 0.0
                ]
    return table
