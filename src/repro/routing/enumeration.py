"""Shortest-path enumeration on XGFTs (the paper's ALLPATHS ordering).

Between two processing nodes whose nearest common ancestors (NCA) sit at
level ``k`` there are ``X = W(k)`` shortest paths (Property 1), one per
top-level switch of the NCA subtree.  The paper numbers them leftmost to
rightmost: *Path i* climbs to the ``i``-th leftmost top-level switch of
the subtree and descends.

A path is therefore identified by a single integer index ``t`` in
``[0, X)``.  The up-port choices ``p_0, ..., p_{k-1}`` (``p_j`` is the up
port taken when leaving level ``j``) map to ``t`` by::

    t = sum_j p_j * R_j,    R_j = W(k) / W(j+1)

i.e. the *lowest-level* choice ``p_0`` is the most significant digit.
This matches the paper's Figure 3 worked example: in
``XGFT(3; 4,4,4; 1,4,2)`` the d-mod-k path for SD pair (0, 63) has port
choices ``(0, 3, 1)`` and index ``0*8 + 3*2 + 1 = 7`` — "Path 7".

:class:`PathCodec` encapsulates the codec for a fixed NCA level plus the
paper's *disjoint ordering* of path indices (Section 4.2.3), which is the
basis of the disjoint heuristic.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import RoutingError
from repro.topology.xgft import XGFT


class PathCodec:
    """Codec between path indices and up-port digit vectors for SD pairs
    whose NCA sits at level ``k`` of ``xgft``.

    Attributes
    ----------
    num_paths:
        ``X = W(k)``, the number of shortest paths.
    strides:
        ``R_j = W(k) // W(j+1)`` for ``j = 0..k-1`` — place value of the
        level-``j`` port choice in the path index.
    """

    def __init__(self, xgft: XGFT, k: int):
        if not 0 <= k <= xgft.h:
            raise RoutingError(f"NCA level {k} out of range [0, {xgft.h}]")
        self.xgft = xgft
        self.k = k
        self.num_paths = xgft.W(k)
        self.strides = tuple(xgft.W(k) // xgft.W(j + 1) for j in range(k))

    def ports_to_index(self, ports) -> int:
        """Path index of the up-port choice vector ``(p_0..p_{k-1})``."""
        ports = tuple(int(p) for p in ports)
        if len(ports) != self.k:
            raise RoutingError(f"expected {self.k} port choices, got {len(ports)}")
        t = 0
        for j, p in enumerate(ports):
            if not 0 <= p < self.xgft.w[j]:
                raise RoutingError(f"port {p} out of range for level {j}")
            t += p * self.strides[j]
        return t

    def index_to_ports(self, t: int) -> tuple[int, ...]:
        """Up-port choices of path index ``t`` (inverse of
        :meth:`ports_to_index`)."""
        t = int(t)
        if not 0 <= t < self.num_paths:
            raise RoutingError(f"path index {t} out of range [0, {self.num_paths})")
        ports = []
        for j in range(self.k - 1, -1, -1):  # least significant digit first
            radix = self.xgft.w[j]
            ports.append(t % radix)
            t //= radix
        return tuple(reversed(ports))

    def port_array(self, t: np.ndarray, j: int) -> np.ndarray:
        """Vectorized level-``j`` up-port digit of path indices ``t``."""
        if not 0 <= j < self.k:
            raise RoutingError(f"level {j} out of range [0, {self.k})")
        return (t // self.strides[j]) % self.xgft.w[j]

    def top_switch_digits(self, t: int) -> tuple[int, ...]:
        """Little-endian label digits (within the NCA subtree) of the
        top-level switch that path ``t`` traverses: digit ``i`` (0-based)
        is the port chosen at level ``i``."""
        return self.index_to_ports(t)


@lru_cache(maxsize=512)
def path_codec(xgft: XGFT, k: int) -> PathCodec:
    """Shared :class:`PathCodec` for ``(xgft, k)``.

    The codec is immutable and cheap, but the flow evaluator and the
    table compilers used to rebuild one per call on their hot paths;
    ``XGFT`` hashes by ``(h, m, w)``, so equal topologies share cached
    codecs even across separately constructed instances.
    """
    return PathCodec(xgft, k)


@lru_cache(maxsize=None)
def _disjoint_order_cached(h: int, m: tuple, w: tuple, k: int) -> tuple[int, ...]:
    xgft = XGFT(h, m, w)
    X = xgft.W(k)

    def level_sequence(j: int) -> list[int]:
        if j == 0:
            return [0]
        stride = X // xgft.W(j)  # S_j = prod_{i=j+1..k} w_i
        prev = level_sequence(j - 1)
        out: list[int] = []
        for t in range(xgft.w[j - 1]):  # w_j choices at level j
            shift = (t * stride) % X
            out.extend((p + shift) % X for p in prev)
        return out

    return tuple(level_sequence(k))


def disjoint_order(xgft: XGFT, k: int) -> tuple[int, ...]:
    """The paper's disjoint path ordering ``D_k(0)`` for NCA level ``k``.

    ``D_1(i)`` lists the ``w_1`` paths forking at the processing node
    (stride ``S_1 = X / w_1``); ``D_j(i)`` concatenates ``D_{j-1}`` blocks
    shifted by multiples of ``S_j = X / W(j)``.  Because the shifts are
    additive, ``D_k(i) = (i + D_k(0)) mod X`` — so only the base order is
    materialized (and cached per ``(topology, k)``).

    The result is a permutation of ``[0, X)`` whose length-``W(j)``
    prefixes are the paper's level-``j`` disjoint sets.

    >>> from repro.topology import XGFT
    >>> disjoint_order(XGFT(3, (4, 4, 4), (1, 4, 2)), 3)
    (0, 2, 4, 6, 1, 3, 5, 7)
    """
    if not 0 <= k <= xgft.h:
        raise RoutingError(f"NCA level {k} out of range [0, {xgft.h}]")
    return _disjoint_order_cached(xgft.h, xgft.m, xgft.w, k)
