"""Compiled routing plans: route construction split from traffic evaluation.

A :class:`~repro.routing.base.RoutingScheme` is, by contract, a pure
function of the SD pair — yet the flow evaluator used to re-run
``path_index_matrix`` and the closed-form link-id arithmetic for every
traffic matrix.  :func:`compile_scheme` performs that work exactly once,
materializing per NCA level

* the dense ``(n_pairs, P)`` path-index matrix for every ordered pair at
  that level, and
* the per-pair link incidence: the ``(n_pairs, P, 2k)`` directed-link-id
  tensor plus the per-entry traffic weights ``f_p`` (the path fractions,
  each repeated over its ``2k`` links),

and flattens the lot into one CSR-style incidence over pair keys
``s * n_procs + d``: ``indptr`` (length ``n_procs**2 + 1``), ``link_ids``
and ``link_weights``.  Self-pairs are empty rows, so evaluators need no
fixed-point masking.  Evaluating a traffic matrix is then a single
gather + ``np.bincount`` (see :class:`repro.flow.engine.BatchFlowEngine`),
and the same incidence backs the flit route tables
(:meth:`CompiledScheme.route_table`) and the InfiniBand LFT compiler
(which only needs :meth:`CompiledScheme.path_index_matrix`).

A compiled plan carries only NumPy arrays and the topology's ``(h, m, w)``
tuples, so it pickles cheaply and ships to pool workers as-is.

Memory scales as ``O(n_procs**2 * K * h)`` — fine for the benchmark and
test topologies (hundreds of nodes) and for the paper's 512-node panels;
on the 3456-node panels with large ``K`` prefer the reference engine or
budget a few GB.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import RoutingError
from repro.obs.recorder import get_recorder
from repro.routing.base import RoutingScheme
from repro.routing.vectorized import path_link_matrix
from repro.topology.xgft import XGFT


@dataclass(frozen=True)
class LinkPairIndex:
    """Transposed incidence: directed link id -> ordered-pair keys.

    The inverse of the pair->link CSR a compiled plan stores: for every
    directed link, the sorted unique keys ``s * n_procs + d`` of the
    pairs whose indexed paths traverse it.  This is the delta structure
    incremental re-routing reads — when a link flips dead/alive, only
    the pairs in its row can change their selection
    (:mod:`repro.faults.churn`).
    """

    n_links: int
    indptr: np.ndarray     # (n_links + 1,) int64
    pair_keys: np.ndarray  # (nnz,) int64, sorted within each link's slice

    @property
    def nnz(self) -> int:
        return int(self.pair_keys.size)

    def pairs_of(self, link_id: int) -> np.ndarray:
        """Pair keys incident on one directed link (sorted)."""
        return self.pair_keys[self.indptr[link_id]:self.indptr[link_id + 1]]

    def pairs(self, link_ids) -> np.ndarray:
        """Sorted unique pair keys incident on *any* of ``link_ids``."""
        link_ids = np.atleast_1d(np.asarray(link_ids, dtype=np.int64))
        if link_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        chunks = [self.pairs_of(int(l)) for l in link_ids]
        return np.unique(np.concatenate(chunks))


def _transpose_incidence(
    n_links: int, n_procs: int, entry_links: np.ndarray,
    entry_keys: np.ndarray,
) -> LinkPairIndex:
    """Build a :class:`LinkPairIndex` from flat (link, pair-key) entries.

    Duplicate (link, pair) incidences — several paths of one pair
    sharing a link — collapse to a single entry.
    """
    span = n_procs * n_procs
    combo = np.unique(entry_links.astype(np.int64) * span
                      + entry_keys.astype(np.int64))
    links, keys = np.divmod(combo, span)
    indptr = np.zeros(n_links + 1, dtype=np.int64)
    np.cumsum(np.bincount(links, minlength=n_links), out=indptr[1:])
    return LinkPairIndex(n_links, indptr, keys)


#: per-topology memo for :func:`candidate_link_index` (a handful of
#: topologies per process; the index itself is O(total candidate links))
_CANDIDATE_INDEX_CACHE: dict[XGFT, LinkPairIndex] = {}


def candidate_link_index(xgft: XGFT) -> LinkPairIndex:
    """Link -> pairs over every *candidate* path of every pair.

    Scheme-independent: a pair with NCA level ``k`` has ``W(k)``
    candidate shortest paths (ALLPATHS), and any scheme's
    ``path_order_matrix`` is a permutation of them — so this index is a
    sound over-approximation of "pairs whose selection can change when
    this link flips", for both failures (a selected path dies) and
    repairs (a preferred path resurrects).  Memoized per topology.
    """
    cached = _CANDIDATE_INDEX_CACHE.get(xgft)
    if cached is not None:
        return cached
    n = xgft.n_procs
    keys_all = np.arange(n * n, dtype=np.int64)
    s_all, d_all = np.divmod(keys_all, n)
    k_arr = xgft.nca_level(s_all, d_all)
    entry_links: list[np.ndarray] = []
    entry_keys: list[np.ndarray] = []
    for k in range(1, xgft.h + 1):
        mask = k_arr == k
        if not mask.any():
            continue
        s, d, keys = s_all[mask], d_all[mask], keys_all[mask]
        x = xgft.W(k)
        idx = np.broadcast_to(np.arange(x, dtype=np.int64), (len(s), x))
        links = path_link_matrix(xgft, s, d, idx, k)
        entry_links.append(links.reshape(-1))
        entry_keys.append(np.repeat(keys, x * 2 * k))
    if entry_links:
        index = _transpose_incidence(
            xgft.n_links, n, np.concatenate(entry_links),
            np.concatenate(entry_keys))
    else:
        index = LinkPairIndex(xgft.n_links,
                              np.zeros(xgft.n_links + 1, dtype=np.int64),
                              np.empty(0, dtype=np.int64))
    _CANDIDATE_INDEX_CACHE[xgft] = index
    return index


@dataclass(frozen=True)
class CompiledLevel:
    """All ordered SD pairs whose NCA sits at one level, fully routed.

    Rows are sorted by pair key ``s * n_procs + d``; every row has the
    same width (``P`` paths of ``2k`` links each), so lookups are a
    ``searchsorted`` and gathers are plain fancy indexing.
    """

    k: int
    src: np.ndarray          # (n_pairs,) int64
    dst: np.ndarray          # (n_pairs,) int64
    keys: np.ndarray         # (n_pairs,) int64, sorted: src * n_procs + dst
    path_index: np.ndarray   # (n_pairs, P) int64
    links: np.ndarray        # (n_pairs, P, 2k) int64 directed link ids
    fractions: np.ndarray    # (P,) float64, sums to 1 (nominal when masked)
    link_weights: np.ndarray  # (P * 2k,) float64: fractions repeated per link
    #: per-pair fractions (n_pairs, P) for masked (fault-aware) plans —
    #: rows sum to 1 with zeros on dead-path padding; None when the
    #: shared ``fractions`` vector applies to every pair.
    pair_weights: np.ndarray | None = None

    @property
    def n_pairs(self) -> int:
        return len(self.keys)

    @property
    def width(self) -> int:
        """Incidence entries per pair (``P * 2k``)."""
        return self.link_weights.size

    @property
    def masked(self) -> bool:
        """True when the plan carries per-pair (degraded) weights."""
        return self.pair_weights is not None

    def pair_link_weights(self) -> np.ndarray:
        """``(n_pairs, P * 2k)`` per-entry weights (materialized view)."""
        if self.pair_weights is None:
            return np.broadcast_to(self.link_weights, (self.n_pairs, self.width))
        return np.repeat(self.pair_weights, 2 * self.k, axis=1)


class CompiledScheme:
    """A routing scheme materialized against its topology.

    Duck-types the read-only :class:`~repro.routing.base.RoutingScheme`
    query surface (``path_index_matrix`` / ``fractions`` /
    ``paths_per_pair`` / ``label`` / ``xgft``), serving every query from
    the precomputed tables — so it can stand in for the scheme anywhere
    routes are *read* (the reference evaluator, the LFT compiler) while
    the batch engine consumes the CSR incidence directly.
    """

    def __init__(
        self,
        xgft: XGFT,
        label: str,
        scheme_name: str,
        levels: dict[int, CompiledLevel],
        indptr: np.ndarray,
        link_ids: np.ndarray,
        link_weights: np.ndarray,
    ):
        self.xgft = xgft
        self.label = label
        self.scheme_name = scheme_name
        self.levels = levels
        self.indptr = indptr
        self.link_ids = link_ids
        self.link_weights = link_weights
        self._link_index: LinkPairIndex | None = None

    def __repr__(self) -> str:
        return (f"CompiledScheme({self.label!r}, {self.xgft!r}, "
                f"pairs={self.n_pairs}, nnz={self.nnz})")

    # -- size accounting ----------------------------------------------
    @property
    def n_pairs(self) -> int:
        """Ordered SD pairs with a route (``n_procs * (n_procs - 1)``)."""
        return sum(lv.n_pairs for lv in self.levels.values())

    @property
    def nnz(self) -> int:
        """Total (pair, link) incidence entries."""
        return int(self.link_ids.size)

    @property
    def nbytes(self) -> int:
        total = self.indptr.nbytes + self.link_ids.nbytes + self.link_weights.nbytes
        for lv in self.levels.values():
            total += lv.path_index.nbytes + lv.links.nbytes + lv.keys.nbytes
            total += lv.src.nbytes + lv.dst.nbytes
            if lv.pair_weights is not None:
                total += lv.pair_weights.nbytes
        return total

    @property
    def masked(self) -> bool:
        """True when any level carries per-pair (degraded) weights."""
        return any(lv.masked for lv in self.levels.values())

    # -- RoutingScheme query surface ----------------------------------
    def paths_per_pair(self, k: int) -> int:
        return self._level(k).path_index.shape[1]

    def fractions(self, k: int) -> np.ndarray:
        return self._level(k).fractions.copy()

    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        """Dense path indices for a batch of level-``k`` pairs, served by
        table lookup (no scheme recomputation)."""
        return self._level(k).path_index[self._rows(k, s, d)]

    def path_weight_matrix(self, s: np.ndarray, d: np.ndarray, k: int):
        """Per-pair fractions for masked (degraded) plans; ``None`` for
        pristine plans, matching the scheme contract."""
        lv = self._level(k)
        if lv.pair_weights is None:
            return None
        return lv.pair_weights[self._rows(k, s, d)]

    def link_index(self) -> LinkPairIndex:
        """The plan's pair->link CSR transposed into link -> pair keys.

        Covers the *selected* paths only (what the plan actually
        routes); for the full candidate set a re-router needs under
        repairs, see :func:`candidate_link_index`.  Built lazily once
        and memoized on the plan.
        """
        if self._link_index is None:
            positions = np.arange(self.nnz, dtype=np.int64)
            entry_keys = np.searchsorted(self.indptr, positions,
                                         side="right") - 1
            self._link_index = _transpose_incidence(
                self.xgft.n_links, self.xgft.n_procs, self.link_ids,
                entry_keys)
        return self._link_index

    # -- lookups -------------------------------------------------------
    def _level(self, k: int) -> CompiledLevel:
        try:
            return self.levels[k]
        except KeyError:
            raise RoutingError(
                f"no pairs with NCA level {k} in compiled plan for {self.xgft!r}"
            ) from None

    def _rows(self, k: int, s, d) -> np.ndarray:
        lv = self._level(k)
        keys = (np.asarray(s, dtype=np.int64) * self.xgft.n_procs
                + np.asarray(d, dtype=np.int64))
        rows = np.searchsorted(lv.keys, keys)
        ok = (rows < lv.n_pairs) & (lv.keys[np.minimum(rows, lv.n_pairs - 1)] == keys)
        if not np.all(ok):
            bad = keys[~np.asarray(ok).reshape(-1)][:1]
            n = self.xgft.n_procs
            raise RoutingError(
                f"pair ({int(bad[0]) // n}, {int(bad[0]) % n}) does not have "
                f"NCA level {k}"
            )
        return rows

    # -- derived tables ------------------------------------------------
    def route_table(self, pairs: np.ndarray | None = None) -> dict[int, list[tuple[int, ...]]]:
        """The flit simulator's route table, read off the stored
        incidence (same contract as
        :func:`repro.routing.vectorized.compile_routes`)."""
        n = self.xgft.n_procs

        def row_paths(lv: CompiledLevel, row: int) -> list[tuple[int, ...]]:
            # Masked plans pad short rows with weight-0 duplicates; the
            # flit simulator picks uniformly from the list, so padding
            # must not reach it.
            if lv.pair_weights is None:
                return [tuple(map(int, path)) for path in lv.links[row]]
            return [tuple(map(int, path))
                    for path, w in zip(lv.links[row], lv.pair_weights[row])
                    if w > 0.0]

        table: dict[int, list[tuple[int, ...]]] = {}
        if pairs is None:
            for lv in self.levels.values():
                for row in range(lv.n_pairs):
                    table[int(lv.keys[row])] = row_paths(lv, row)
            return table
        pairs = np.asarray(pairs, dtype=np.int64)
        s_all, d_all = pairs[:, 0], pairs[:, 1]
        if np.any(s_all == d_all):
            raise ValueError("self-pairs have no network route")
        k_arr = self.xgft.nca_level(s_all, d_all)
        for k in np.unique(k_arr):
            mask = k_arr == k
            lv = self._level(int(k))
            rows = self._rows(int(k), s_all[mask], d_all[mask])
            for key, row in zip(s_all[mask] * n + d_all[mask], rows):
                table[int(key)] = row_paths(lv, int(row))
        return table


def compile_scheme(xgft: XGFT, scheme: RoutingScheme) -> CompiledScheme:
    """Compile ``scheme`` against ``xgft`` into a :class:`CompiledScheme`.

    Runs the scheme's vectorized path selection and the closed-form
    link-id arithmetic once for every ordered pair, grouped by NCA level.
    Under an enabled recorder the compile is timed (``routing.compile``)
    and summarized in a ``compile_stats`` event.
    """
    if isinstance(scheme, CompiledScheme):
        if scheme.xgft != xgft:
            raise RoutingError("compiled plan was built for a different topology")
        return scheme
    if scheme.xgft != xgft:
        raise RoutingError("scheme was built for a different topology")
    rec = get_recorder()
    t0 = perf_counter()
    with rec.timer("routing.compile"):
        n = xgft.n_procs
        keys_all = np.arange(n * n, dtype=np.int64)
        s_all = keys_all // n
        d_all = keys_all % n
        k_arr = xgft.nca_level(s_all, d_all)
        counts = np.zeros(n * n, dtype=np.int64)
        levels: dict[int, CompiledLevel] = {}
        for k in range(1, xgft.h + 1):
            mask = k_arr == k
            if not mask.any():
                continue
            s, d, keys = s_all[mask], d_all[mask], keys_all[mask]
            idx = np.asarray(scheme.path_index_matrix(s, d, k), dtype=np.int64)
            links = path_link_matrix(xgft, s, d, idx, k)
            frac = np.asarray(scheme.fractions(k), dtype=np.float64)
            link_w = np.repeat(frac, 2 * k)
            pair_w = scheme.path_weight_matrix(s, d, k)
            if pair_w is not None:
                pair_w = np.ascontiguousarray(pair_w, dtype=np.float64)
            levels[k] = CompiledLevel(k, s, d, keys, idx, links, frac, link_w,
                                      pair_w)
            counts[keys] = link_w.size
        indptr = np.zeros(n * n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        link_ids = np.empty(nnz, dtype=np.int64)
        link_weights = np.empty(nnz, dtype=np.float64)
        for lv in levels.values():
            width = lv.width
            target = indptr[lv.keys][:, None] + np.arange(width, dtype=np.int64)
            link_ids[target] = lv.links.reshape(lv.n_pairs, width)
            link_weights[target] = lv.pair_link_weights()
        plan = CompiledScheme(
            xgft, scheme.label, scheme.name, levels, indptr, link_ids, link_weights
        )
    if rec.enabled:
        rec.count("routing.schemes_compiled")
        rec.event(
            "compile_stats",
            scheme=scheme.label,
            topology=repr(xgft),
            n_pairs=plan.n_pairs,
            nnz=plan.nnz,
            levels=sorted(levels),
            nbytes=plan.nbytes,
            masked=plan.masked,
            seconds=perf_counter() - t0,
        )
    return plan
