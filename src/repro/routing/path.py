"""Concrete shortest paths: node and link sequences.

Given a source ``s``, destination ``d`` and path index ``t`` (see
:mod:`repro.routing.enumeration`), the full path is determined in closed
form.  Climbing from level ``l`` to ``l+1`` replaces label digit ``l+1``
with the chosen up port; descending replaces it with the destination's
digit.  The level-``l`` node on the way up is therefore::

    n_l = sum_{j<l} p_j * W(j)  +  W(l) * (s // M(l))

and on the way down the same expression with ``d`` in place of ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RoutingError
from repro.routing.enumeration import path_codec
from repro.topology.xgft import XGFT


@dataclass(frozen=True)
class Path:
    """One shortest path between two processing nodes.

    Attributes
    ----------
    src, dst:
        Processing-node ids.
    nca_level:
        Level ``k`` of the pair's nearest common ancestors.
    index:
        The path's index ``t`` in the paper's ALLPATHS enumeration.
    up_ports:
        The up-port choices ``(p_0, ..., p_{k-1})``.
    nodes:
        ``(level, within-level index)`` of every node visited, source
        first (length ``2k + 1``; just the node itself when src == dst).
    links:
        Dense directed link ids traversed (length ``2k``).
    """

    src: int
    dst: int
    nca_level: int
    index: int
    up_ports: tuple[int, ...]
    nodes: tuple[tuple[int, int], ...]
    links: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.links)

    @property
    def top_switch(self) -> tuple[int, int]:
        """``(level, index)`` of the highest switch on the path."""
        return self.nodes[self.nca_level]

    def describe(self, xgft: XGFT) -> str:
        """Paper-style arrow rendering, e.g. ``0 -> (1, 0, 0) -> ... -> 63``."""
        parts = []
        for level, idx in self.nodes:
            parts.append(str(idx) if level == 0 else xgft.node_label(level, idx))
        return " -> ".join(parts)


def build_path(xgft: XGFT, s: int, d: int, t: int) -> Path:
    """Materialize path ``t`` between processing nodes ``s`` and ``d``.

    Raises :class:`RoutingError` when ``t`` is outside ``[0, X)`` for the
    pair's shortest-path count ``X``.
    """
    if not 0 <= s < xgft.n_procs or not 0 <= d < xgft.n_procs:
        raise RoutingError(
            f"processing nodes must be in [0, {xgft.n_procs}), got {s}, {d}"
        )
    k = xgft.nca_level(s, d)
    codec = path_codec(xgft, k)
    ports = codec.index_to_ports(t)  # validates t

    if k == 0:
        return Path(s, d, 0, 0, (), ((0, s),), ())

    # Accumulated low digits: sum_{j<l} p_j * W(j).
    low = [0] * (k + 1)
    for j in range(k):
        low[j + 1] = low[j] + ports[j] * xgft.W(j)

    up_nodes = [(l, low[l] + xgft.W(l) * (s // xgft.M(l))) for l in range(k + 1)]
    down_nodes = [(l, low[l] + xgft.W(l) * (d // xgft.M(l))) for l in range(k - 1, -1, -1)]
    nodes = tuple(up_nodes + down_nodes)

    links = []
    for l in range(k):
        links.append(int(xgft.up_link_id(l, up_nodes[l][1], ports[l])))
    for l in range(k - 1, -1, -1):
        parent_index = low[l + 1] + xgft.W(l + 1) * (d // xgft.M(l + 1))
        child_digit = xgft.proc_digit(d, l + 1)
        links.append(int(xgft.down_link_id(l, parent_index, child_digit)))

    return Path(s, d, k, int(t), ports, nodes, tuple(links))


def check_path(xgft: XGFT, path: Path) -> None:
    """Verify a path hop-by-hop against the topology's adjacency rule.

    Used by tests to cross-check the closed-form construction in
    :func:`build_path`.  Raises :class:`RoutingError` on any violation.
    """
    if path.nodes[0] != (0, path.src) or path.nodes[-1] != (0, path.dst):
        raise RoutingError("path endpoints do not match src/dst")
    for (la, ia), (lb, ib) in zip(path.nodes, path.nodes[1:]):
        if abs(la - lb) != 1:
            raise RoutingError(f"non-adjacent levels {la} -> {lb}")
        if not xgft.are_connected(la, ia, lb, ib):
            raise RoutingError(f"hop ({la},{ia}) -> ({lb},{ib}) is not a link")
    if len(path.links) != len(path.nodes) - 1:
        raise RoutingError("link count does not match hop count")
    for link_id, (src, dst) in zip(path.links, zip(path.nodes, path.nodes[1:])):
        ref = xgft.link_ref(link_id)
        if (ref.src_level, ref.src_index) != src or (ref.dst_level, ref.dst_index) != dst:
            raise RoutingError(f"link id {link_id} does not connect {src} -> {dst}")
