"""Routing abstractions.

A *routing scheme* assigns every source-destination (SD) pair a set of
shortest paths ``MP_{s,d}`` and traffic fractions ``f_{s,d}`` summing to 1
(Section 3.2 of the paper).  Single-path routing is the special case
``|MP| = 1``; unlimited multi-path (UMULTI) uses all ``X`` paths.

Two query granularities are supported:

* :meth:`RoutingScheme.route` — one SD pair, returns a :class:`RouteSet`;
* :meth:`RoutingScheme.path_index_matrix` — a *batch* of pairs sharing a
  common NCA level ``k``, returns a dense ``(n_pairs, P)`` matrix of path
  indices plus fractions.  The flow-level simulator groups pairs by NCA
  level and uses this vectorized form exclusively.

Both must agree; the scalar form is implemented on top of the batch form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.routing.path import Path, build_path
from repro.topology.xgft import XGFT


@dataclass(frozen=True)
class RouteSet:
    """The paths assigned to one SD pair and their traffic fractions.

    ``indices`` are ALLPATHS path indices (see
    :mod:`repro.routing.enumeration`); ``fractions`` are the fraction of
    the pair's traffic each path carries (sums to 1).
    """

    src: int
    dst: int
    nca_level: int
    indices: tuple[int, ...]
    fractions: tuple[float, ...]

    def __post_init__(self):
        if len(self.indices) != len(self.fractions):
            raise RoutingError("indices and fractions must have equal length")
        if self.indices and abs(sum(self.fractions) - 1.0) > 1e-9:
            raise RoutingError(f"fractions sum to {sum(self.fractions)}, expected 1")
        if len(set(self.indices)) != len(self.indices):
            raise RoutingError(f"duplicate path indices in route set: {self.indices}")

    @property
    def num_paths(self) -> int:
        return len(self.indices)

    def paths(self, xgft: XGFT) -> list[Path]:
        """Materialize the concrete :class:`Path` objects."""
        return [build_path(xgft, self.src, self.dst, t) for t in self.indices]


class RoutingScheme(ABC):
    """Base class for traffic-oblivious routing schemes on an XGFT.

    Subclasses must be *pure functions* of the SD pair (and the
    construction-time seed, for randomized schemes): repeated queries for
    the same pair return the same routes.
    """

    #: short identifier used by the factory and in reports
    name: str = "abstract"

    def __init__(self, xgft: XGFT):
        self.xgft = xgft

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.xgft!r})"

    @property
    def label(self) -> str:
        """Display label, e.g. ``disjoint(4)`` — overridden by K-limited
        schemes to include the path limit."""
        return self.name

    @abstractmethod
    def paths_per_pair(self, k: int) -> int:
        """Number of paths this scheme assigns to a pair with NCA level
        ``k`` (``k >= 1``)."""

    @abstractmethod
    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        """Path indices for a batch of SD pairs, all with NCA level ``k``.

        Parameters
        ----------
        s, d:
            1-D arrays of processing-node ids; every pair must satisfy
            ``nca_level(s_i, d_i) == k`` and ``k >= 1`` (callers filter
            out self-pairs, which carry no network traffic).

        Returns
        -------
        An ``(len(s), paths_per_pair(k))`` int64 array of distinct path
        indices per row, each in ``[0, W(k))``.
        """

    def fractions(self, k: int) -> np.ndarray:
        """Traffic fractions per path for NCA level ``k`` (uniform by
        default, matching the paper's heuristics)."""
        p = self.paths_per_pair(k)
        return np.full(p, 1.0 / p)

    def path_weight_matrix(self, s: np.ndarray, d: np.ndarray, k: int):
        """Per-*pair* traffic fractions aligned with
        :meth:`path_index_matrix`, or ``None`` when the per-level
        :meth:`fractions` apply to every pair (the default).

        Fault-aware schemes return an ``(len(s), P)`` float64 matrix
        whose rows sum to 1; entries may be 0 (the matching path-index
        entry is dead-weight padding and carries no traffic).
        Evaluators must consult this before :meth:`fractions`.
        """
        return None

    def path_order_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        """Full preference order over *all* ``X = W(k)`` path indices for
        a batch of level-``k`` pairs — each row a permutation of
        ``[0, X)`` whose length-``P`` prefix is :meth:`path_index_matrix`.

        This is the scheme's re-route policy: when faults kill some of a
        pair's preferred paths, the degraded wrapper walks this order and
        takes the first surviving ones.  The default extends the selected
        prefix with the remaining indices in ascending ALLPATHS order;
        subclasses with a natural total order (shift sequences, disjoint
        orderings, hash scores) override it.
        """
        s = np.asarray(s, dtype=np.int64)
        d = np.asarray(d, dtype=np.int64)
        x = self.xgft.W(k)
        idx = np.asarray(self.path_index_matrix(s, d, k), dtype=np.int64)
        n, p = idx.shape
        if p == x:
            return idx
        out = np.empty((n, x), dtype=np.int64)
        out[:, :p] = idx
        remaining = np.ones((n, x), dtype=bool)
        remaining[np.arange(n)[:, None], idx] = False
        out[:, p:] = np.nonzero(remaining)[1].reshape(n, x - p)
        return out

    def route(self, s: int, d: int) -> RouteSet:
        """Route one SD pair.  ``s == d`` yields the empty route set."""
        n = self.xgft.n_procs
        if not 0 <= s < n or not 0 <= d < n:
            raise RoutingError(f"processing nodes must be in [0, {n}), got {s}, {d}")
        k = self.xgft.nca_level(s, d)
        if k == 0:
            return RouteSet(s, d, 0, (), ())
        idx = self.path_index_matrix(np.array([s]), np.array([d]), k)[0]
        frac = self.fractions(k)
        return RouteSet(s, d, int(k), tuple(int(t) for t in idx), tuple(float(f) for f in frac))

    def all_route_sets(self) -> dict[tuple[int, int], RouteSet]:
        """Route every ordered SD pair (s != d).  Intended for the flit
        simulator and InfiniBand table compilation on small topologies."""
        out = {}
        for s in range(self.xgft.n_procs):
            for d in range(self.xgft.n_procs):
                if s != d:
                    out[(s, d)] = self.route(s, d)
        return out


class LimitedMultipathScheme(RoutingScheme):
    """Base for schemes with a per-pair path limit ``K`` (the paper's
    *limited multi-path routing*).  ``K`` may exceed a pair's path count
    ``X``, in which case all ``X`` paths are used."""

    def __init__(self, xgft: XGFT, k_paths: int):
        super().__init__(xgft)
        if k_paths < 1:
            raise RoutingError(f"path limit K must be >= 1, got {k_paths}")
        self.k_paths = int(k_paths)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.xgft!r}, K={self.k_paths})"

    @property
    def label(self) -> str:
        return f"{self.name}({self.k_paths})"

    def paths_per_pair(self, k: int) -> int:
        return min(self.k_paths, self.xgft.W(k))
