"""Routing-scheme factory: build schemes from string specs.

Experiments, the CLI and benchmarks refer to schemes by name, optionally
with a path limit, e.g. ``"d-mod-k"``, ``"disjoint:4"``, ``"random:8"``.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.obs.recorder import get_recorder
from repro.routing.base import RoutingScheme
from repro.routing.heuristics import (
    Disjoint,
    RandomMultipath,
    RandomSingle,
    Shift1,
    UMulti,
)
from repro.routing.modk import DModK, SModK
from repro.topology.xgft import XGFT

#: scheme name -> (class, takes_k, takes_seed)
_REGISTRY = {
    "d-mod-k": (DModK, False, False),
    "dmodk": (DModK, False, False),
    "s-mod-k": (SModK, False, False),
    "smodk": (SModK, False, False),
    "random-single": (RandomSingle, False, True),
    "shift-1": (Shift1, True, False),
    "shift1": (Shift1, True, False),
    "disjoint": (Disjoint, True, False),
    "random": (RandomMultipath, True, True),
    "umulti": (UMulti, False, False),
}


def available_schemes() -> tuple[str, ...]:
    """Canonical scheme names accepted by :func:`make_scheme`."""
    return ("d-mod-k", "s-mod-k", "random-single", "shift-1", "disjoint",
            "random", "umulti")


def make_scheme(
    xgft: XGFT,
    spec: str,
    *,
    k_paths: int | None = None,
    seed: int = 0,
) -> RoutingScheme:
    """Build a routing scheme from ``spec``.

    ``spec`` is ``"name"`` or ``"name:K"``; an explicit ``k_paths``
    argument overrides the suffix.  ``seed`` only affects randomized
    schemes.

    >>> from repro.topology import m_port_n_tree
    >>> make_scheme(m_port_n_tree(8, 2), "disjoint:4").label
    'disjoint(4)'
    """
    name, _, suffix = spec.partition(":")
    name = name.strip().lower()
    if name not in _REGISTRY:
        raise RoutingError(
            f"unknown routing scheme {name!r}; available: {available_schemes()}"
        )
    cls, takes_k, takes_seed = _REGISTRY[name]
    if suffix:
        try:
            suffix_k = int(suffix)
        except ValueError:
            raise RoutingError(f"bad path limit in spec {spec!r}") from None
        if k_paths is None:
            k_paths = suffix_k
    if takes_k and k_paths is None:
        raise RoutingError(f"scheme {name!r} needs a path limit, e.g. '{name}:4'")
    if not takes_k and k_paths is not None:
        raise RoutingError(f"scheme {name!r} does not take a path limit")

    rec = get_recorder()
    with rec.timer("routing.make_scheme"):
        if takes_k:
            scheme = cls(xgft, k_paths, seed=seed) if takes_seed \
                else cls(xgft, k_paths)
        else:
            scheme = cls(xgft, seed=seed) if takes_seed else cls(xgft)
    if rec.enabled:
        rec.count("routing.schemes_built")
    return scheme
