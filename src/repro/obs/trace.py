"""Span-based tracing layered on the :class:`~repro.obs.Recorder`.

A *span* is one named unit of work with a wall-clock start/end, a unique
span id, and a link to its parent span; spans sharing a *trace id* form
one tree (typically: one CLI invocation or one ``run_sweeps`` call).
Unlike timers — which aggregate (total seconds, calls) per qualified
name — every span is recorded individually, as a ``"span"`` event on the
recorder, so the run log can be replayed as a waterfall and a slow
outlier task is visible instead of averaged away.

Because spans are plain recorder events they inherit the recorder's
transport for free: a pool worker's spans travel inside
:meth:`Recorder.snapshot` and land in the parent via
:meth:`Recorder.merge`.  What does *not* travel automatically is the
parent link — the worker process has no idea which span submitted its
task.  :func:`current_trace_context` captures the ambient ``(trace_id,
span_id)`` as a small JSON-safe dict; ship it with the task (the
persistent pool's :meth:`~repro.runner.pool.PersistentPool.submit_task`
does this) and re-enter it worker-side with :func:`trace_context` so
worker spans parent correctly across the process boundary::

    # parent                                   # worker
    with span("sweep"):                        with trace_context(ctx):
        ctx = current_trace_context()              with span("task"):
        pool.submit_task(fn, ...)                      ...

With the no-op recorder active, :func:`span` yields ``None`` and records
nothing — the disabled cost is one ``enabled`` check, same as every
other recording site.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from time import perf_counter, time

from repro.obs.recorder import get_recorder

#: event type under which spans are recorded
SPAN_EVENT = "span"

_STATE = threading.local()


def _stack() -> list:
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = _STATE.stack = []
    return stack


def new_span_id() -> str:
    """A fresh 64-bit hex span id."""
    return os.urandom(8).hex()


def new_trace_id() -> str:
    """A fresh 128-bit hex trace id."""
    return os.urandom(16).hex()


def current_trace_context() -> dict | None:
    """The ambient trace context, or ``None`` outside any span.

    The returned ``{"trace_id": ..., "span_id": ...}`` dict is small and
    JSON/pickle-safe: ship it across a process boundary and re-enter it
    with :func:`trace_context` so remote spans join this trace.
    """
    stack = _stack()
    if not stack:
        return None
    trace_id, span_id = stack[-1]
    return {"trace_id": trace_id, "span_id": span_id}


@contextmanager
def trace_context(ctx: dict | None):
    """Adopt ``ctx`` (a :func:`current_trace_context` dict) as the
    ambient parent, e.g. on the worker side of a pool task.  ``None``
    is accepted and does nothing, so callers can pass a context through
    unconditionally."""
    if ctx is None:
        yield
        return
    stack = _stack()
    stack.append((ctx["trace_id"], ctx["span_id"]))
    try:
        yield
    finally:
        stack.pop()


class SpanHandle:
    """The live span yielded by :func:`span`; ``set`` attaches
    attributes that land on the recorded event."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs")

    def __init__(self, name, trace_id, span_id, parent_id, attrs):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)


@contextmanager
def span(name: str, *, recorder=None, **attrs):
    """Record one span named ``name`` around the ``with`` body.

    Nested spans link to the innermost open span (local or adopted via
    :func:`trace_context`); a root span starts a fresh trace.  ``attrs``
    become event fields.  Yields a :class:`SpanHandle` (or ``None`` when
    the recorder is disabled).

    >>> from repro.obs import Recorder, use_recorder
    >>> rec = Recorder()
    >>> with use_recorder(rec):
    ...     with span("outer"):
    ...         with span("inner"):
    ...             pass
    >>> outer, inner = rec.events_of("span")[1], rec.events_of("span")[0]
    >>> inner["parent_id"] == outer["span_id"]
    True
    >>> inner["trace_id"] == outer["trace_id"]
    True
    """
    rec = recorder if recorder is not None else get_recorder()
    if not rec.enabled:
        yield None
        return
    stack = _stack()
    parent = stack[-1] if stack else None
    trace_id = parent[0] if parent is not None else new_trace_id()
    handle = SpanHandle(name, trace_id, new_span_id(),
                        parent[1] if parent is not None else None,
                        dict(attrs))
    stack.append((trace_id, handle.span_id))
    wall0 = time()
    t0 = perf_counter()
    try:
        yield handle
    finally:
        elapsed = perf_counter() - t0
        stack.pop()
        rec.event(
            SPAN_EVENT,
            name=name,
            trace_id=trace_id,
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            start=wall0,
            end=wall0 + elapsed,
            duration_s=elapsed,
            **handle.attrs,
        )


def spans_of(source) -> list[dict]:
    """Span events from a recorder, a snapshot dict, or an event list."""
    if hasattr(source, "events_of"):
        return source.events_of(SPAN_EVENT)
    if isinstance(source, dict):
        source = source.get("events", [])
    return [e for e in source if e.get("type") == SPAN_EVENT]


def _depths(spans: list[dict]) -> dict[str, int]:
    """Nesting depth per span id (parents absent from the set = root)."""
    by_id = {s["span_id"]: s for s in spans}
    depths: dict[str, int] = {}

    def depth(sid: str) -> int:
        if sid in depths:
            return depths[sid]
        parent = by_id[sid].get("parent_id")
        d = 0 if parent not in by_id else depth(parent) + 1
        depths[sid] = d
        return d

    for s in spans:
        depth(s["span_id"])
    return depths


def render_waterfall(source, *, width: int = 48,
                     max_spans: int = 40) -> str:
    """ASCII waterfall of recorded spans, one trace per block.

    Each line is one span: indented by nesting depth, with a bar
    positioned on the trace's wall-clock extent.  Traces are rendered
    in first-span order; spans beyond ``max_spans`` per trace are
    elided (the count is noted) so a 10k-task sweep stays readable.
    """
    spans = spans_of(source)
    if not spans:
        return "(no spans recorded)"
    traces: dict[str, list[dict]] = {}
    for s in spans:
        traces.setdefault(s["trace_id"], []).append(s)
    blocks = []
    for trace_id, members in traces.items():
        members = sorted(members, key=lambda s: (s["start"], -s["end"]))
        t0 = min(s["start"] for s in members)
        t1 = max(s["end"] for s in members)
        extent = max(t1 - t0, 1e-9)
        depths = _depths(members)
        lines = [f"trace {trace_id[:12]}  ({extent:.4f}s, "
                 f"{len(members)} span(s))"]
        shown = members[:max_spans]
        label_w = max(len("  " * depths[s["span_id"]] + s["name"])
                      for s in shown)
        for s in shown:
            lo = round((s["start"] - t0) / extent * (width - 1))
            hi = round((s["end"] - t0) / extent * (width - 1))
            bar = (" " * lo + "#" * max(1, hi - lo + 1)).ljust(width)[:width]
            label = ("  " * depths[s["span_id"]] + s["name"]).ljust(label_w)
            lines.append(f"  {label} |{bar}| {s['duration_s']*1e3:9.3f}ms")
        if len(members) > max_spans:
            lines.append(f"  ... {len(members) - max_spans} more span(s)")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
