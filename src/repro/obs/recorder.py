"""Run-telemetry recorder: counters, timers, histograms, events.

Every hot subsystem accepts (or looks up) a recorder and reports what it
did: how many permutation samples a study drew, where the flit engine
spent its cycles, how long a routing-table compile took.  The default
recorder is a shared no-op (:data:`NULL_RECORDER`), so uninstrumented
runs pay one attribute check per recording site — nothing is allocated,
formatted or stored until a caller opts in.

Timers nest: entering ``rec.timer("a")`` and then ``rec.timer("b")``
records the inner span under the qualified name ``"a/b"``, so the
profile report reads as a call tree.

Recorder state is plain data (dicts of floats) and therefore
*mergeable*: a ``ProcessPoolExecutor`` worker builds its own recorder,
ships :meth:`Recorder.snapshot` back as the function result, and the
parent folds it in with :meth:`Recorder.merge`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from time import perf_counter


class _Hist:
    """Mergeable histogram: exact count/sum/min/max plus power-of-two
    buckets for cheap quantile estimates (values must be >= 0)."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: dict[int, int] = {}

    @staticmethod
    def bucket_of(value: float) -> int:
        """Bucket index b covers values in (2**(b-1), 2**b]; 0 and below
        land in a dedicated floor bucket."""
        if value <= 0.0:
            return -1075  # below the smallest positive float exponent
        return math.frexp(value)[1]

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        b = self.bucket_of(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (each bucket is
        represented by its upper bound; exact for min/max ends)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * (self.count - 1)
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen > rank:
                if b == -1075:
                    return max(0.0, self.vmin)
                return min(self.vmax, max(self.vmin, math.ldexp(1.0, b)))
        return self.vmax

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": {str(b): n for b, n in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_Hist":
        h = cls()
        h.count = int(data["count"])
        h.total = float(data["total"])
        h.vmin = float(data["min"]) if data.get("min") is not None else math.inf
        h.vmax = float(data["max"]) if data.get("max") is not None else -math.inf
        h.buckets = {int(b): int(n) for b, n in data.get("buckets", {}).items()}
        return h

    def merge(self, other: "_Hist") -> None:
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        for b, n in other.buckets.items():
            self.buckets[b] = self.buckets.get(b, 0) + n


class _Timer:
    """Context manager recording one span into its recorder."""

    __slots__ = ("_rec", "_name", "_qualified", "_t0")

    def __init__(self, rec: "Recorder", name: str):
        self._rec = rec
        self._name = name

    def __enter__(self) -> "_Timer":
        stack = self._rec._stack
        stack.append(self._name)
        self._qualified = "/".join(stack)
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = perf_counter() - self._t0
        rec = self._rec
        rec._stack.pop()
        slot = rec._timers.get(self._qualified)
        if slot is None:
            rec._timers[self._qualified] = [elapsed, 1]
        else:
            slot[0] += elapsed
            slot[1] += 1
        return None


class _NullTimer:
    """Shared no-op context manager for the null recorder."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_TIMER = _NullTimer()


class Recorder:
    """Collects counters, nested timers, histograms and typed events.

    >>> rec = Recorder()
    >>> rec.count("widgets", 3)
    >>> with rec.timer("outer"):
    ...     with rec.timer("inner"):
    ...         pass
    >>> rec.counters["widgets"]
    3.0
    >>> sorted(rec.timers)
    ['outer', 'outer/inner']
    """

    enabled = True

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._timers: dict[str, list] = {}  # name -> [total_s, calls]
        self._hists: dict[str, _Hist] = {}
        self._events: list[dict] = []
        self._stack: list[str] = []

    # -- recording -----------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + n

    def timer(self, name: str) -> _Timer:
        return _Timer(self, name)

    def observe(self, name: str, value: float) -> None:
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = _Hist()
        hist.add(value)

    def event(self, type: str, **fields) -> None:
        self._events.append({"type": type, **fields})

    # -- reading -------------------------------------------------------
    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    @property
    def timers(self) -> dict[str, tuple[float, int]]:
        """name -> (total seconds, call count)."""
        return {k: (v[0], v[1]) for k, v in self._timers.items()}

    @property
    def hists(self) -> dict[str, _Hist]:
        return dict(self._hists)

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    def events_of(self, type: str) -> list[dict]:
        return [e for e in self._events if e.get("type") == type]

    # -- transport -----------------------------------------------------
    def metrics(self) -> dict:
        """JSON-safe summary of counters/timers/histograms (no events)."""
        return {
            "counters": dict(self._counters),
            "timers": {k: {"total_s": v[0], "calls": v[1]}
                       for k, v in self._timers.items()},
            "hists": {k: h.to_dict() for k, h in self._hists.items()},
        }

    def snapshot(self) -> dict:
        """Full JSON-safe state, suitable for cross-process transport."""
        return {**self.metrics(), "events": list(self._events)}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in."""
        for name, n in snapshot.get("counters", {}).items():
            self.count(name, n)
        for name, t in snapshot.get("timers", {}).items():
            slot = self._timers.get(name)
            if slot is None:
                self._timers[name] = [float(t["total_s"]), int(t["calls"])]
            else:
                slot[0] += float(t["total_s"])
                slot[1] += int(t["calls"])
        for name, h in snapshot.get("hists", {}).items():
            incoming = _Hist.from_dict(h)
            mine = self._hists.get(name)
            if mine is None:
                self._hists[name] = incoming
            else:
                mine.merge(incoming)
        self._events.extend(snapshot.get("events", []))


class NullRecorder:
    """API-compatible recorder that records nothing (the default)."""

    enabled = False

    def count(self, name: str, n: float = 1) -> None:
        pass

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, type: str, **fields) -> None:
        pass

    @property
    def counters(self) -> dict:
        return {}

    @property
    def timers(self) -> dict:
        return {}

    @property
    def hists(self) -> dict:
        return {}

    @property
    def events(self) -> list:
        return []

    def events_of(self, type: str) -> list:
        return []

    def metrics(self) -> dict:
        return {"counters": {}, "timers": {}, "hists": {}}

    def snapshot(self) -> dict:
        return {**self.metrics(), "events": []}

    def merge(self, snapshot: dict) -> None:
        pass


#: the process-wide default recorder (a shared no-op)
NULL_RECORDER = NullRecorder()

_ACTIVE = NULL_RECORDER


def get_recorder():
    """The currently active recorder (instrumented code calls this)."""
    return _ACTIVE


def set_recorder(rec) -> None:
    """Install ``rec`` as the active recorder (``None`` restores the
    no-op default)."""
    global _ACTIVE
    _ACTIVE = NULL_RECORDER if rec is None else rec


@contextmanager
def use_recorder(rec):
    """Temporarily install ``rec`` as the active recorder.

    >>> rec = Recorder()
    >>> with use_recorder(rec):
    ...     get_recorder() is rec
    True
    >>> get_recorder() is NULL_RECORDER
    True
    """
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = NULL_RECORDER if rec is None else rec
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = prev
