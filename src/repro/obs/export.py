"""Metrics export: Prometheus text, flat wide rows, cross-run reports.

Three renderings of recorder state, each aimed at a different consumer:

* :func:`to_prometheus` — the Prometheus text exposition format, for
  scraping a long-lived process (the ROADMAP's plan server) or pushing
  a batch run's final state through a gateway.  Counters map to
  ``counter`` metrics, timers to ``_seconds_total`` / ``_calls_total``
  pairs, histograms to native Prometheus histograms (the power-of-two
  buckets become cumulative ``le`` buckets).
* :func:`to_wide_row` — one flat ``{column: scalar}`` dict per run,
  the shape the result cache and any columnar store wants; nested
  structure is flattened into dotted column names.
* :func:`aggregate_runs` / :func:`render_cross_run_report` — the
  ``repro report`` view: fold a directory of ``--log-json`` JSONL run
  logs into counter totals, per-phase wall-time distributions
  (p50/p95/p99 across runs) and the latest run's span waterfall.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.events import read_jsonl
from repro.obs.recorder import Recorder
from repro.obs.trace import render_waterfall, spans_of
from repro.util.tables import format_table

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(prefix: str, name: str) -> str:
    return prefix + _PROM_NAME.sub("_", name)


def _prom_value(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_value(value) -> str:
    # Prometheus exposition escapes inside label values: backslash
    # first (so the other escapes aren't doubled), then quote and
    # newline.  A scheme label like 'disjoint "wide"' must not produce
    # an unparseable metric line.
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_str(labels: dict | None, extra: dict | None = None) -> str:
    merged = {**(labels or {}), **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_label_value(v)}"' for k, v in merged.items())
    return "{" + inner + "}"


def to_prometheus(recorder, *, prefix: str = "repro_",
                  labels: dict | None = None) -> str:
    """Render a recorder in the Prometheus text exposition format.

    >>> rec = Recorder()
    >>> rec.count("runner.cache_hit", 3)
    >>> print(to_prometheus(rec), end="")
    # TYPE repro_runner_cache_hit counter
    repro_runner_cache_hit 3
    """
    lines: list[str] = []
    base_labels = _label_str(labels)
    for name, value in sorted(recorder.counters.items()):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{base_labels} {_prom_value(value)}")
    for name, (total, calls) in sorted(recorder.timers.items()):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric}_seconds_total counter")
        lines.append(f"{metric}_seconds_total{base_labels} {repr(total)}")
        lines.append(f"# TYPE {metric}_calls_total counter")
        lines.append(f"{metric}_calls_total{base_labels} {_prom_value(calls)}")
    for name, hist in sorted(recorder.hists.items()):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        seen = 0
        for b in sorted(hist.buckets):
            seen += hist.buckets[b]
            le = "0" if b <= -1075 else repr(math.ldexp(1.0, b))
            lines.append(
                f"{metric}_bucket"
                f"{_label_str(labels, {'le': le})} {seen}")
        lines.append(
            f"{metric}_bucket{_label_str(labels, {'le': '+Inf'})} "
            f"{hist.count}")
        lines.append(f"{metric}_sum{base_labels} {repr(hist.total)}")
        lines.append(f"{metric}_count{base_labels} {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def to_wide_row(recorder, *, prefix: str = "") -> dict:
    """Flatten a recorder into one ``{column: scalar}`` row.

    Counters keep their names; timers contribute ``<name>.total_s`` and
    ``<name>.calls``; histograms contribute count/mean/min/max and
    bucket-estimated p50/p95/p99.  Every value is a plain int/float, so
    the row drops straight into a JSONL result cache or a columnar
    store.
    """
    row: dict[str, float] = {}
    for name, value in recorder.counters.items():
        row[f"{prefix}{name}"] = value
    for name, (total, calls) in recorder.timers.items():
        row[f"{prefix}{name}.total_s"] = total
        row[f"{prefix}{name}.calls"] = calls
    for name, hist in recorder.hists.items():
        row[f"{prefix}{name}.count"] = hist.count
        row[f"{prefix}{name}.mean"] = hist.mean
        row[f"{prefix}{name}.min"] = hist.vmin if hist.count else float("nan")
        row[f"{prefix}{name}.max"] = hist.vmax if hist.count else float("nan")
        for q in (0.5, 0.95, 0.99):
            row[f"{prefix}{name}.p{int(q * 100)}"] = hist.quantile(q)
    return row


# -- cross-run aggregation (`repro report`) ----------------------------

def quantile(values, q: float) -> float:
    """Exact linear-interpolation quantile of a small value list."""
    vals = sorted(float(v) for v in values if v == v)
    if not vals:
        return float("nan")
    if len(vals) == 1:
        return vals[0]
    rank = q * (len(vals) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(vals) - 1)
    return vals[lo] + (vals[hi] - vals[lo]) * (rank - lo)


@dataclass
class RunRecord:
    """One parsed ``--log-json`` run log."""

    path: str
    manifest: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    events: list = field(default_factory=list)

    @property
    def experiment(self) -> str:
        return str(self.manifest.get("experiment", "?"))


def load_run(path) -> RunRecord:
    """Parse one JSONL run log (manifest line, events, metrics line)."""
    run = RunRecord(path=str(path))
    for obj in read_jsonl(path):
        kind = obj.get("type")
        if kind == "manifest":
            run.manifest = obj
        elif kind == "metrics":
            run.metrics = obj
        else:
            run.events.append(obj)
    return run


def discover_run_logs(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.jsonl`` logs."""
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(p.glob("*.jsonl")))
        else:
            out.append(p)
    return out


def aggregate_runs(paths) -> list[RunRecord]:
    """Load every run log under ``paths`` (files or directories)."""
    return [load_run(p) for p in discover_run_logs(paths)]


def merged_recorder(runs: list[RunRecord]) -> Recorder:
    """One recorder holding the merged metrics + events of all runs."""
    rec = Recorder()
    for run in runs:
        rec.merge({**run.metrics, "events": run.events})
    return rec


def _phase_rows(runs: list[RunRecord]) -> list[list]:
    """Per-timer wall-time distribution across runs (p50/p95/p99 of the
    per-run totals, plus total seconds and calls)."""
    per_phase: dict[str, list[float]] = {}
    totals: dict[str, list[float]] = {}
    calls: dict[str, int] = {}
    for run in runs:
        for name, t in run.metrics.get("timers", {}).items():
            per_phase.setdefault(name, []).append(float(t["total_s"]))
            totals.setdefault(name, []).append(float(t["total_s"]))
            calls[name] = calls.get(name, 0) + int(t["calls"])
    rows = []
    for name in sorted(per_phase, key=lambda n: -sum(per_phase[n])):
        samples = per_phase[name]
        rows.append([
            name, len(samples), calls[name], f"{sum(samples):.4f}",
            f"{quantile(samples, 0.5):.4f}",
            f"{quantile(samples, 0.95):.4f}",
            f"{quantile(samples, 0.99):.4f}",
        ])
    return rows


def render_cross_run_report(runs: list[RunRecord], *,
                            title: str = "cross-run report") -> str:
    """The ``repro report`` text view over a set of run logs."""
    if not runs:
        return f"{title}\n\n(no run logs found)"
    sections = [f"{title}  ({len(runs)} run(s))"]

    run_rows = []
    for run in runs:
        m = run.manifest
        wall = m.get("wall_time_s")
        run_rows.append([
            Path(run.path).name, run.experiment,
            str(m.get("fidelity", "-")),
            "-" if m.get("seed") is None else str(m.get("seed")),
            "-" if wall is None else f"{float(wall):.2f}",
            len(run.events),
        ])
    sections.append(format_table(
        ["log", "experiment", "fidelity", "seed", "wall s", "events"],
        run_rows, title="runs"))

    phase_rows = _phase_rows(runs)
    if phase_rows:
        sections.append(format_table(
            ["phase", "runs", "calls", "total s", "p50 s", "p95 s", "p99 s"],
            phase_rows, title="per-phase wall time across runs"))

    merged = merged_recorder(runs)
    if merged.counters:
        rows = [[k, f"{v:g}"] for k, v in sorted(merged.counters.items())]
        sections.append(format_table(["counter", "total"], rows,
                                     title="counter totals"))

    latest_with_spans = next(
        (run for run in reversed(runs) if spans_of(run.events)), None)
    if latest_with_spans is not None:
        sections.append(
            f"span waterfall ({Path(latest_with_spans.path).name}):\n"
            + render_waterfall(latest_with_spans.events))
    return "\n\n".join(sections)
