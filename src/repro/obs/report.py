"""Human-readable rendering of recorder state (the ``--profile`` view).

Counters and timers become tables (:mod:`repro.util.tables`), the
flow-level convergence trace becomes an :class:`~repro.util.ascii_chart.
AsciiChart` of running mean vs samples, and per-interval flit series and
CI half-widths become compact unicode sparklines.
"""

from __future__ import annotations

from repro.util.ascii_chart import AsciiChart
from repro.util.tables import format_table

_SPARK_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    """One-line bar chart of a numeric sequence.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    >>> sparkline([])
    ''
    """
    vals = [float(v) for v in values if v == v]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span == 0.0:
        return _SPARK_BARS[0] * len(vals)
    top = len(_SPARK_BARS) - 1
    return "".join(
        _SPARK_BARS[round((v - lo) / span * top)] for v in vals
    )


def _timer_rows(recorder) -> list[list]:
    rows = []
    for name, (total, calls) in sorted(
        recorder.timers.items(), key=lambda kv: -kv[1][0]
    ):
        rows.append([name, calls, f"{total:.4f}", f"{total / calls * 1e3:.3f}"])
    return rows


def _hist_rows(recorder) -> list[list]:
    rows = []
    for name, hist in sorted(recorder.hists.items()):
        rows.append([
            name, hist.count, f"{hist.mean:.3f}", f"{hist.vmin:.3f}",
            f"{hist.quantile(0.5):.3f}", f"{hist.quantile(0.95):.3f}",
            f"{hist.vmax:.3f}",
        ])
    return rows


def _runner_section(recorder) -> str:
    """Derived view of the ``runner.*`` counters: cache effectiveness
    and pool utilization, instead of raw numbers scattered through the
    counter table."""
    c = recorder.counters
    if not any(k.startswith("runner.") for k in c):
        return ""
    lines = ["runner (pool + cache):"]
    probes = c.get("runner.cache_hit", 0) + c.get("runner.cache_miss", 0)
    if probes:
        hit = c.get("runner.cache_hit", 0)
        lines.append(
            f"  cache probes={probes:g} hits={hit:g} "
            f"misses={c.get('runner.cache_miss', 0):g} "
            f"stores={c.get('runner.cache_store', 0):g} "
            f"(hit rate {hit / probes:.1%})")
    dropped = (c.get("runner.cache_invalidated", 0)
               + c.get("runner.cache_corrupt", 0))
    if dropped:
        lines.append(
            f"  cache entries dropped at load: "
            f"{c.get('runner.cache_invalidated', 0):g} stale, "
            f"{c.get('runner.cache_corrupt', 0):g} corrupt")
    total = c.get("runner.points_total", 0)
    if total:
        computed = c.get("runner.points_computed", 0)
        lines.append(
            f"  grid points total={total:g} computed={computed:g} "
            f"replayed={total - computed:g}")
    if "runner.pool_tasks" in c or "runner.pool_created" in c:
        lines.append(
            f"  pools created={c.get('runner.pool_created', 0):g} "
            f"tasks={c.get('runner.pool_tasks', 0):g} "
            f"contexts spilled={c.get('runner.context_spilled', 0):g} "
            f"worker loads={c.get('runner.context_loads', 0):g}")
    return "\n".join(lines) if len(lines) > 1 else ""


def _faults_section(recorder) -> str:
    """Summary of the ``faults.*`` counters (fault-injection volume)."""
    c = recorder.counters
    fabrics = c.get("faults.fabrics_sampled", 0)
    if not fabrics:
        return ""
    return (
        f"faults: {fabrics:g} degraded fabric(s) sampled "
        f"({c.get('faults.cables_failed', 0):g} cable(s), "
        f"{c.get('faults.switches_failed', 0):g} switch(es) failed)"
    )


def _convergence_section(recorder) -> str:
    rounds = recorder.events_of("convergence_round")
    if not rounds:
        return ""
    by_scheme: dict[str, list[dict]] = {}
    for ev in rounds:
        by_scheme.setdefault(str(ev.get("scheme", "?")), []).append(ev)

    lines = ["convergence (CI half-width per round, first -> last):"]
    chart = AsciiChart(width=56, height=10)
    chartable = 0
    for scheme, evs in by_scheme.items():
        widths = [e.get("rel_half_width", float("nan")) for e in evs]
        final = evs[-1]
        lines.append(
            f"  {scheme:<16s} {sparkline(widths):<10s} "
            f"rounds={len(evs)} samples={final.get('n_samples')} "
            f"mean={final.get('mean'):.4f}"
        )
        xs = [e.get("n_samples") for e in evs]
        ys = [e.get("mean") for e in evs]
        if len(xs) >= 2:
            chart.add_series(scheme, xs, ys)
            chartable += 1
    out = "\n".join(lines)
    if chartable:
        out += "\n" + chart.render(xlabel="samples", ylabel="mean")
    return out


def _flit_section(recorder) -> str:
    intervals = recorder.events_of("flit_interval")
    if not intervals:
        return ""
    delivered = [e.get("delivered", 0) for e in intervals]
    injected = [e.get("injected", 0) for e in intervals]
    stalls = [e.get("credit_stalls", 0) for e in intervals]
    occupancy = [e.get("occupancy", 0) for e in intervals]
    return "\n".join([
        f"flit engine ({len(intervals)} interval(s)):",
        f"  injected/interval  {sparkline(injected)}  max={max(injected)}",
        f"  delivered/interval {sparkline(delivered)}  max={max(delivered)}",
        f"  credit stalls      {sparkline(stalls)}  total={sum(stalls)}",
        f"  buffer occupancy   {sparkline(occupancy)}  max={max(occupancy)}",
    ])


def _span_section(recorder) -> str:
    """Waterfall of recorded spans (local + merged worker spans)."""
    from repro.obs.trace import render_waterfall, spans_of

    if not spans_of(recorder):
        return ""
    return "spans:\n" + render_waterfall(recorder)


def render_report(recorder, *, title: str = "run telemetry") -> str:
    """Render every populated recorder dimension as one text report."""
    sections = [title]
    if recorder.timers:
        sections.append(format_table(
            ["timer", "calls", "total s", "mean ms"], _timer_rows(recorder),
            title="timers",
        ))
    if recorder.counters:
        rows = [[k, f"{v:g}"] for k, v in sorted(recorder.counters.items())]
        sections.append(format_table(["counter", "value"], rows,
                                     title="counters"))
    if recorder.hists:
        sections.append(format_table(
            ["histogram", "n", "mean", "min", "p50~", "p95~", "max"],
            _hist_rows(recorder), title="histograms (~ = bucket estimate)",
        ))
    for section in (_runner_section(recorder), _faults_section(recorder),
                    _convergence_section(recorder), _flit_section(recorder),
                    _span_section(recorder)):
        if section:
            sections.append(section)
    if len(sections) == 1:
        sections.append("(recorder is empty)")
    return "\n\n".join(sections)
