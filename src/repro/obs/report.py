"""Human-readable rendering of recorder state (the ``--profile`` view).

Counters and timers become tables (:mod:`repro.util.tables`), the
flow-level convergence trace becomes an :class:`~repro.util.ascii_chart.
AsciiChart` of running mean vs samples, and per-interval flit series and
CI half-widths become compact unicode sparklines.
"""

from __future__ import annotations

from repro.util.ascii_chart import AsciiChart
from repro.util.tables import format_table

_SPARK_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    """One-line bar chart of a numeric sequence.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    >>> sparkline([])
    ''
    """
    vals = [float(v) for v in values if v == v]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span == 0.0:
        return _SPARK_BARS[0] * len(vals)
    top = len(_SPARK_BARS) - 1
    return "".join(
        _SPARK_BARS[round((v - lo) / span * top)] for v in vals
    )


def _timer_rows(recorder) -> list[list]:
    rows = []
    for name, (total, calls) in sorted(
        recorder.timers.items(), key=lambda kv: -kv[1][0]
    ):
        rows.append([name, calls, f"{total:.4f}", f"{total / calls * 1e3:.3f}"])
    return rows


def _hist_rows(recorder) -> list[list]:
    rows = []
    for name, hist in sorted(recorder.hists.items()):
        rows.append([
            name, hist.count, f"{hist.mean:.3f}", f"{hist.vmin:.3f}",
            f"{hist.quantile(0.5):.3f}", f"{hist.quantile(0.95):.3f}",
            f"{hist.vmax:.3f}",
        ])
    return rows


def _convergence_section(recorder) -> str:
    rounds = recorder.events_of("convergence_round")
    if not rounds:
        return ""
    by_scheme: dict[str, list[dict]] = {}
    for ev in rounds:
        by_scheme.setdefault(str(ev.get("scheme", "?")), []).append(ev)

    lines = ["convergence (CI half-width per round, first -> last):"]
    chart = AsciiChart(width=56, height=10)
    chartable = 0
    for scheme, evs in by_scheme.items():
        widths = [e.get("rel_half_width", float("nan")) for e in evs]
        final = evs[-1]
        lines.append(
            f"  {scheme:<16s} {sparkline(widths):<10s} "
            f"rounds={len(evs)} samples={final.get('n_samples')} "
            f"mean={final.get('mean'):.4f}"
        )
        xs = [e.get("n_samples") for e in evs]
        ys = [e.get("mean") for e in evs]
        if len(xs) >= 2:
            chart.add_series(scheme, xs, ys)
            chartable += 1
    out = "\n".join(lines)
    if chartable:
        out += "\n" + chart.render(xlabel="samples", ylabel="mean")
    return out


def _flit_section(recorder) -> str:
    intervals = recorder.events_of("flit_interval")
    if not intervals:
        return ""
    delivered = [e.get("delivered", 0) for e in intervals]
    injected = [e.get("injected", 0) for e in intervals]
    stalls = [e.get("credit_stalls", 0) for e in intervals]
    occupancy = [e.get("occupancy", 0) for e in intervals]
    return "\n".join([
        f"flit engine ({len(intervals)} interval(s)):",
        f"  injected/interval  {sparkline(injected)}  max={max(injected)}",
        f"  delivered/interval {sparkline(delivered)}  max={max(delivered)}",
        f"  credit stalls      {sparkline(stalls)}  total={sum(stalls)}",
        f"  buffer occupancy   {sparkline(occupancy)}  max={max(occupancy)}",
    ])


def render_report(recorder, *, title: str = "run telemetry") -> str:
    """Render every populated recorder dimension as one text report."""
    sections = [title]
    if recorder.timers:
        sections.append(format_table(
            ["timer", "calls", "total s", "mean ms"], _timer_rows(recorder),
            title="timers",
        ))
    if recorder.counters:
        rows = [[k, f"{v:g}"] for k, v in sorted(recorder.counters.items())]
        sections.append(format_table(["counter", "value"], rows,
                                     title="counters"))
    if recorder.hists:
        sections.append(format_table(
            ["histogram", "n", "mean", "min", "p50~", "p95~", "max"],
            _hist_rows(recorder), title="histograms (~ = bucket estimate)",
        ))
    for section in (_convergence_section(recorder), _flit_section(recorder)):
        if section:
            sections.append(section)
    if len(sections) == 1:
        sections.append("(recorder is empty)")
    return "\n\n".join(sections)
