"""Observability: run telemetry for every simulator layer.

``repro.obs`` provides the measurement substrate the experiments and the
CLI report through:

* :class:`Recorder` / :class:`NullRecorder` — counters, nesting
  context-manager timers, mergeable histograms and a typed event stream,
  with a shared no-op default so uninstrumented runs stay fast;
* :class:`JsonlSink` / :func:`read_jsonl` / :func:`write_run` — the
  JSON Lines run-log format (manifest line, event stream, metrics line);
* :class:`RunManifest` — reproducibility provenance attached to every
  experiment run;
* :func:`render_report` / :func:`sparkline` — the human-readable
  ``--profile`` view.

Attach a recorder either explicitly (``PermutationStudy(...,
recorder=rec)``) or ambiently::

    from repro.obs import Recorder, use_recorder, render_report

    rec = Recorder()
    with use_recorder(rec):
        study.run(scheme)          # records rounds, samples, timings
    print(render_report(rec))
"""

from repro.obs.events import JsonlSink, read_jsonl, write_run
from repro.obs.manifest import RunManifest
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.obs.report import render_report, sparkline

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "JsonlSink",
    "read_jsonl",
    "write_run",
    "RunManifest",
    "render_report",
    "sparkline",
]
