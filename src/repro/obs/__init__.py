"""Observability: run telemetry for every simulator layer.

``repro.obs`` provides the measurement substrate the experiments and the
CLI report through:

* :class:`Recorder` / :class:`NullRecorder` — counters, nesting
  context-manager timers, mergeable histograms and a typed event stream,
  with a shared no-op default so uninstrumented runs stay fast;
* :func:`span` / :func:`trace_context` / :func:`render_waterfall` —
  span-based tracing with trace/span ids and parent links that survive
  process boundaries (:mod:`repro.obs.trace`);
* :class:`JsonlSink` / :func:`read_jsonl` / :func:`write_run` — the
  JSON Lines run-log format (manifest line, event stream, metrics line);
* :class:`RunManifest` — reproducibility provenance attached to every
  experiment run;
* :func:`render_report` / :func:`sparkline` — the human-readable
  ``--profile`` view;
* :func:`to_prometheus` / :func:`to_wide_row` — metrics export
  (:mod:`repro.obs.export`), plus the cross-run aggregation behind the
  ``repro report`` CLI;
* :class:`BenchSnapshot` / :func:`compare_snapshots` — the
  ``BENCH_*.json`` perf-snapshot schema and regression gate behind
  ``repro bench`` (:mod:`repro.obs.bench`).

Attach a recorder either explicitly (``PermutationStudy(...,
recorder=rec)``) or ambiently::

    from repro.obs import Recorder, use_recorder, render_report

    rec = Recorder()
    with use_recorder(rec):
        study.run(scheme)          # records rounds, samples, timings
    print(render_report(rec))
"""

from repro.obs.bench import BenchSnapshot, compare_snapshots
from repro.obs.events import JsonlSink, read_jsonl, write_run
from repro.obs.export import to_prometheus, to_wide_row
from repro.obs.manifest import RunManifest
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.obs.report import render_report, sparkline
from repro.obs.trace import (
    current_trace_context,
    render_waterfall,
    span,
    spans_of,
    trace_context,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "span",
    "spans_of",
    "trace_context",
    "current_trace_context",
    "render_waterfall",
    "JsonlSink",
    "read_jsonl",
    "write_run",
    "RunManifest",
    "render_report",
    "sparkline",
    "to_prometheus",
    "to_wide_row",
    "BenchSnapshot",
    "compare_snapshots",
]
