"""Run manifests: enough recorded context to reproduce an experiment.

A :class:`RunManifest` names what ran (experiment, topology, schemes),
how (fidelity, seed, full argv), with what (package/python versions)
and what it cost (wall time, sample counts).  It is the first line of
every ``--log-json`` run log and round-trips through JSON, so a recorded
artifact is a reproducible invocation: replay with
``xgft-repro <experiment> --fidelity <fidelity> --seed <seed>``.
"""

from __future__ import annotations

import platform as _platform
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone


@dataclass
class RunManifest:
    """Provenance record for one experiment run.

    Fields default to ``None`` when unknown; ``finish()`` stamps the
    wall time once the run completes.
    """

    experiment: str
    fidelity: str | None = None
    seed: int | None = None
    argv: tuple[str, ...] | None = None
    topology: str | None = None
    schemes: tuple[str, ...] | None = None
    samples_used: int | None = None
    wall_time_s: float | None = None
    version: str | None = None
    python: str | None = None
    platform: str | None = None
    started_at: str | None = None
    extra: dict = field(default_factory=dict)

    @classmethod
    def create(cls, experiment: str, **fields) -> "RunManifest":
        """Build a manifest stamped with the current environment."""
        from repro import __version__  # local: repro.__init__ is heavy

        return cls(
            experiment=experiment,
            version=__version__,
            python=_platform.python_version(),
            platform=sys.platform,
            started_at=datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            **fields,
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        if self.argv is not None:
            data["argv"] = list(self.argv)
        if self.schemes is not None:
            data["schemes"] = list(self.schemes)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        data = {k: v for k, v in data.items() if k != "type"}
        for key in ("argv", "schemes"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])
        return cls(**data)

    def replay_command(self) -> str:
        """The CLI invocation that reproduces this run.

        >>> RunManifest("figure4a", fidelity="fast", seed=3).replay_command()
        'xgft-repro figure4a --fidelity fast --seed 3'
        """
        parts = ["xgft-repro", self.experiment]
        if self.fidelity is not None:
            parts += ["--fidelity", self.fidelity]
        if self.seed is not None:
            parts += ["--seed", str(self.seed)]
        return " ".join(parts)
