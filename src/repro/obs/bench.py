"""Perf snapshots and the regression gate behind ``repro bench``.

The ROADMAP asks for ``BENCH_*.json`` perf snapshots committed to the
repo "so the trajectory is visible to future re-anchors".  This module
is that subsystem:

* :class:`BenchSnapshot` — a schema-versioned JSON record of one
  benchmark run: what code (git rev, ``repro.__version__``), on what
  host (python/platform/cpu fingerprint), and per-metric wall/CPU
  seconds plus derived throughputs;
* four self-contained benchmark bodies — ``flow`` (reference vs
  compiled permutation evaluation), ``flit`` (serial vs parallel vs
  warm-cache sweep grid), ``obs`` (recorder overhead on the flow hot
  path) and ``churn`` (incremental re-routing vs from-scratch recompile
  under a fail/repair event stream) — mirroring the tier-listed scripts
  in ``benchmarks/`` but runnable from the installed package
  (``repro bench``);
* :func:`compare_snapshots` — the regression gate: flags any metric
  whose wall time grew beyond ``threshold`` relative to a committed
  baseline, while ignoring host/noise-level jitter.

Wall-clock comparisons across different machines are inherently noisy;
the default threshold (:data:`DEFAULT_THRESHOLD`, +50 %) is chosen so a
genuine 2x slowdown always trips it while scheduler-level jitter does
not.  Refresh the committed baselines with ``repro bench --quick``
whenever the reference hardware changes.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter, process_time

from repro.errors import ReproError
from repro.util.tables import format_table

#: bump when the snapshot layout changes incompatibly
SCHEMA_VERSION = 1

#: relative wall-time growth that counts as a regression (+50 %)
DEFAULT_THRESHOLD = 0.5

#: baseline wall times below this are timer noise, not measurements
#: (a fast machine on a --quick baseline can land a whole phase under a
#: millisecond); such phases are reported as "not comparable" instead of
#: producing an infinite or wildly amplified regression ratio
MIN_COMPARABLE_WALL_S = 1e-3

#: minimum batched-over-reference flit-engine speedup on the 8-port
#: 3-tree (the batched-engine acceptance gate)
FLIT_ENGINE_SPEEDUP = 5.0

#: disabled-recorder overhead budget on the flow hot path (<5 %)
OBS_OVERHEAD_BUDGET = 0.05

#: snapshot file per benchmark, written at the repo root
SNAPSHOT_FILES = {
    "flow": "BENCH_flow.json",
    "flit": "BENCH_flit.json",
    "obs": "BENCH_obs.json",
    "churn": "BENCH_churn.json",
}

#: minimum full-recompile/incremental pairs ratio for one cable failure
#: on the 8-port 3-tree (the churn acceptance gate)
CHURN_PAIRS_REDUCTION = 10.0


def git_rev() -> str | None:
    """Short git revision of the working tree, or ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def host_fingerprint() -> dict:
    """Enough host identity to judge whether two snapshots are
    comparable at all (same interpreter? same machine class?)."""
    return {
        "python": _platform.python_version(),
        "platform": sys.platform,
        "machine": _platform.machine(),
        "cpu_count": os.cpu_count(),
    }


@dataclass
class BenchSnapshot:
    """One benchmark's perf record (the ``BENCH_*.json`` payload).

    ``metrics`` maps a metric name to a dict that always carries
    ``wall_s`` and ``cpu_s`` and may add derived fields (throughputs,
    speedups, overhead fractions); ``checks`` holds named booleans
    (parity, budget compliance) that must never be ``False``.
    """

    benchmark: str
    metrics: dict[str, dict]
    checks: dict[str, bool] = field(default_factory=dict)
    quick: bool = False
    schema: int = SCHEMA_VERSION
    version: str | None = None
    git_rev: str | None = None
    host: dict = field(default_factory=dict)
    created_at: str | None = None

    @classmethod
    def create(cls, benchmark: str, metrics: dict, *,
               checks: dict | None = None, quick: bool = False
               ) -> "BenchSnapshot":
        from repro import __version__

        return cls(
            benchmark=benchmark,
            metrics=metrics,
            checks=dict(checks or {}),
            quick=quick,
            version=__version__,
            git_rev=git_rev(),
            host=host_fingerprint(),
            created_at=datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
        )

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "benchmark": self.benchmark,
            "version": self.version,
            "git_rev": self.git_rev,
            "host": dict(self.host),
            "quick": self.quick,
            "created_at": self.created_at,
            "checks": dict(self.checks),
            "metrics": {k: dict(v) for k, v in self.metrics.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchSnapshot":
        if "benchmark" not in data or "metrics" not in data:
            raise ReproError("not a bench snapshot: missing "
                             "'benchmark'/'metrics'")
        return cls(
            benchmark=str(data["benchmark"]),
            metrics={k: dict(v) for k, v in data["metrics"].items()},
            checks=dict(data.get("checks", {})),
            quick=bool(data.get("quick", False)),
            schema=int(data.get("schema", 0)),
            version=data.get("version"),
            git_rev=data.get("git_rev"),
            host=dict(data.get("host", {})),
            created_at=data.get("created_at"),
        )

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def read(cls, path) -> "BenchSnapshot":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.from_dict(json.load(fh))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read bench snapshot {path}: {exc}"
                             ) from None


def _timed(fn):
    """``(wall_s, cpu_s, result)`` of one call."""
    w0, c0 = perf_counter(), process_time()
    result = fn()
    return perf_counter() - w0, process_time() - c0, result


def _best_of(fn, rounds: int = 3):
    """Minimum wall/CPU over several rounds (scheduler-noise robust)."""
    wall = cpu = float("inf")
    for _ in range(rounds):
        w, c, _ = _timed(fn)
        wall, cpu = min(wall, w), min(cpu, c)
    return wall, cpu


# -- benchmark bodies --------------------------------------------------

def bench_flow(quick: bool = True) -> BenchSnapshot:
    """Reference vs compiled permutation-MLOAD evaluation."""
    import numpy as np

    from repro.flow.engine import BatchFlowEngine
    from repro.flow.loads import link_loads
    from repro.flow.metrics import max_link_load
    from repro.routing.compiled import compile_scheme
    from repro.routing.factory import make_scheme
    from repro.topology.variants import m_port_n_tree
    from repro.traffic.permutations import (permutation_matrix,
                                            random_permutation)

    xgft = m_port_n_tree(4, 2) if quick else m_port_n_tree(8, 3)
    samples = 32 if quick else 128
    scheme = make_scheme(xgft, "disjoint:4")
    rng = np.random.default_rng(2012)
    perms = np.stack([random_permutation(xgft.n_procs, rng)
                      for _ in range(samples)])

    def reference():
        return np.array([
            max_link_load(link_loads(xgft, scheme, permutation_matrix(p)))
            for p in perms
        ])

    engine = BatchFlowEngine(compile_scheme(xgft, scheme))
    reference_result = reference()          # warm + parity sample
    batch_result = engine.permutation_mloads(perms)
    parity = bool(np.allclose(batch_result, reference_result, atol=1e-9))

    ref_wall, ref_cpu = _best_of(reference)
    compile_wall, compile_cpu = _best_of(
        lambda: BatchFlowEngine(compile_scheme(xgft, scheme)))
    batch_wall, batch_cpu = _best_of(
        lambda: engine.permutation_mloads(perms))

    metrics = {
        "reference_eval": {
            "wall_s": ref_wall, "cpu_s": ref_cpu,
            "perms_per_s": samples / ref_wall if ref_wall > 0 else 0.0,
        },
        "compile": {"wall_s": compile_wall, "cpu_s": compile_cpu},
        "compiled_eval": {
            "wall_s": batch_wall, "cpu_s": batch_cpu,
            "perms_per_s": samples / batch_wall if batch_wall > 0 else 0.0,
            "speedup_vs_reference": (ref_wall / batch_wall
                                     if batch_wall > 0 else float("inf")),
        },
    }
    return BenchSnapshot.create("flow", metrics,
                                checks={"parity_ok": parity}, quick=quick)


def bench_flit(quick: bool = True) -> BenchSnapshot:
    """Serial vs parallel vs warm-cache flit sweep grid, plus the
    reference-vs-batched engine gate on the 8-port 3-tree."""
    from repro.flit.batched import make_flit_simulator
    from repro.flit.config import FlitConfig
    from repro.flit.engine import FlitSimulator
    from repro.flit.workload import UniformRandom
    from repro.routing.factory import make_scheme
    from repro.runner.cache import ResultCache
    from repro.runner.sweep import run_sweeps
    from repro.topology.variants import m_port_n_tree

    if quick:
        xgft = m_port_n_tree(4, 2)
        loads = (0.2, 0.6)
        config = FlitConfig(warmup_cycles=100, measure_cycles=400,
                            drain_cycles=400, seed=2012)
        jobs = 2
    else:
        xgft = m_port_n_tree(8, 3)
        loads = (0.2, 0.4, 0.6, 0.8)
        config = FlitConfig(warmup_cycles=500, measure_cycles=2500,
                            drain_cycles=2500, seed=2012)
        jobs = 4
    sims = {spec: FlitSimulator(xgft, make_scheme(xgft, spec), config)
            for spec in ("d-mod-k", "disjoint:4")}
    n_points = len(sims) * len(loads)

    serial_wall, serial_cpu, serial = _timed(
        lambda: run_sweeps(sims, loads=loads))
    parallel_wall, parallel_cpu, parallel = _timed(
        lambda: run_sweeps(sims, loads=loads, n_jobs=jobs))

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        _timed(lambda: run_sweeps(sims, loads=loads,
                                  cache=ResultCache(cache_dir)))
        warm_wall, warm_cpu, warm = _timed(
            lambda: run_sweeps(sims, loads=loads,
                               cache=ResultCache(cache_dir)))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    def _equal(a, b):
        for key in a:  # bit-exact, NaN-tolerant SweepResult comparison
            for ra, rb in zip(a[key].runs, b[key].runs):
                for f in ra.__dataclass_fields__:
                    va, vb = getattr(ra, f), getattr(rb, f)
                    if va != vb and not (va != va and vb != vb):
                        return False
        return True

    # Reference vs batched engine.  The >= FLIT_ENGINE_SPEEDUP gate is
    # defined on the 8-port 3-tree, so this leg keeps that topology even
    # in quick mode and shortens the windows instead.
    eng_xgft = m_port_n_tree(8, 3)
    eng_cfg = (FlitConfig(warmup_cycles=200, measure_cycles=1000,
                          drain_cycles=1000, seed=2012)
               if quick else config)
    eng_loads = (0.2, 0.6) if quick else loads
    eng_scheme = make_scheme(eng_xgft, "disjoint:4")
    ref_sim = make_flit_simulator("reference", eng_xgft, eng_scheme, eng_cfg)
    bat_sim = make_flit_simulator("batched", eng_xgft, eng_scheme, eng_cfg)

    def _engine_runs(sim):
        return [sim.run(UniformRandom(load)) for load in eng_loads]

    ref_runs = _engine_runs(ref_sim)
    bat_runs = _engine_runs(bat_sim)   # warm-up: absorbs the one-time
    # native-kernel compile so the timed rounds see steady state
    engine_parity = all(
        all((getattr(ra, f) == getattr(rb, f)
             or (getattr(ra, f) != getattr(ra, f)
                 and getattr(rb, f) != getattr(rb, f)))
            for f in ra.__dataclass_fields__)
        for ra, rb in zip(ref_runs, bat_runs))
    eng_ref_wall, eng_ref_cpu = _best_of(lambda: _engine_runs(ref_sim),
                                         rounds=2 if quick else 3)
    eng_bat_wall, eng_bat_cpu = _best_of(lambda: _engine_runs(bat_sim),
                                         rounds=2 if quick else 3)
    engine_speedup = (eng_ref_wall / eng_bat_wall
                      if eng_bat_wall > 0 else float("inf"))

    metrics = {
        "serial": {
            "wall_s": serial_wall, "cpu_s": serial_cpu,
            "points_per_s": (n_points / serial_wall
                             if serial_wall > 0 else 0.0),
        },
        "parallel": {
            "wall_s": parallel_wall, "cpu_s": parallel_cpu,
            "jobs": jobs,
            "speedup_vs_serial": (serial_wall / parallel_wall
                                  if parallel_wall > 0 else float("inf")),
        },
        "warm_cache": {
            "wall_s": warm_wall, "cpu_s": warm_cpu,
            "replay_speedup": (serial_wall / warm_wall
                               if warm_wall > 0 else float("inf")),
        },
        "engine_reference": {
            "wall_s": eng_ref_wall, "cpu_s": eng_ref_cpu,
        },
        "engine_batched": {
            "wall_s": eng_bat_wall, "cpu_s": eng_bat_cpu,
            "speedup_vs_reference": engine_speedup,
        },
    }
    checks = {
        "parallel_parity_ok": _equal(serial, parallel),
        "cache_parity_ok": _equal(serial, warm),
        "engine_parity_ok": engine_parity,
        "engine_speedup_ok": engine_speedup >= FLIT_ENGINE_SPEEDUP,
    }
    return BenchSnapshot.create("flit", metrics, checks=checks, quick=quick)


def measure_obs_overhead(*, quick: bool = True, rounds: int = 7,
                         reps: int = 5) -> dict:
    """Recorder overhead on the flow hot path (the <5 % budget).

    Returns raw/disabled/enabled best-of timings plus the derived
    overhead fractions and the budget verdict.  Shared by
    ``benchmarks/bench_obs_overhead.py`` (which *asserts* the budget)
    and :func:`bench_obs` (which snapshots the measured value).
    """
    from repro.flow.loads import link_loads
    from repro.flow.metrics import max_link_load
    from repro.flow.simulator import FlowSimulator
    from repro.obs.recorder import Recorder, use_recorder
    from repro.routing.factory import make_scheme
    from repro.topology.variants import m_port_n_tree
    from repro.traffic.permutations import (permutation_matrix,
                                            random_permutation)

    xgft = m_port_n_tree(4, 2) if quick else m_port_n_tree(8, 3)
    sim = FlowSimulator(xgft)
    scheme = make_scheme(xgft, "disjoint:8")
    tm = permutation_matrix(random_permutation(xgft.n_procs, 0))

    def raw():
        return max_link_load(link_loads(xgft, scheme, tm))

    def disabled():
        return sim.max_load(scheme, tm)  # ambient recorder is the no-op

    def enabled():
        with use_recorder(Recorder()):
            return sim.max_load(scheme, tm)

    raw(), disabled(), enabled()  # warm caches outside the timings

    def timed(fn):
        t0 = perf_counter()
        for _ in range(reps):
            fn()
        return (perf_counter() - t0) / reps

    # Interleave the three variants within each round so clock-speed
    # drift (turbo decay, a noisy neighbour) hits them symmetrically —
    # measuring all raw rounds first would bias the overhead ratio.
    t_raw = t_disabled = t_enabled = float("inf")
    for _ in range(rounds):
        t_raw = min(t_raw, timed(raw))
        t_disabled = min(t_disabled, timed(disabled))
        t_enabled = min(t_enabled, timed(enabled))
    disabled_overhead = t_disabled / t_raw - 1.0
    return {
        "raw_s": t_raw,
        "disabled_s": t_disabled,
        "enabled_s": t_enabled,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": t_enabled / t_raw - 1.0,
        "budget": OBS_OVERHEAD_BUDGET,
        "within_budget": disabled_overhead <= OBS_OVERHEAD_BUDGET,
    }


def bench_obs(quick: bool = True) -> BenchSnapshot:
    """Observability overhead: disabled and enabled recorder cost.

    Always measures on the full-size topology: the hot-path call is
    sub-millisecond either way, and the quick (4x2) variant is so short
    that scheduler noise dwarfs the 5 % budget the check enforces.
    """
    measured = measure_obs_overhead(quick=False, rounds=9, reps=7)
    metrics = {
        "flow_hot_path_raw": {
            "wall_s": measured["raw_s"], "cpu_s": measured["raw_s"],
        },
        "flow_hot_path_disabled_recorder": {
            "wall_s": measured["disabled_s"], "cpu_s": measured["disabled_s"],
            "overhead_fraction": measured["disabled_overhead"],
            "budget_fraction": measured["budget"],
        },
        "flow_hot_path_enabled_recorder": {
            "wall_s": measured["enabled_s"], "cpu_s": measured["enabled_s"],
            "overhead_fraction": measured["enabled_overhead"],
        },
    }
    return BenchSnapshot.create(
        "obs", metrics,
        checks={"disabled_overhead_within_budget": measured["within_budget"]},
        quick=quick)


def bench_churn(quick: bool = True) -> BenchSnapshot:
    """Incremental re-routing vs from-scratch recompile under churn.

    Always measures on the 8-port 3-tree: that is where the acceptance
    gate states its numbers (a single cable failure must recompute
    >=10x fewer pairs than a full recompile, bit-identically).  ``quick``
    only shortens the event stream.
    """
    import numpy as np

    from repro.faults.churn import (ChurnEvent, ChurnSpec,
                                    IncrementalDegradedScheme,
                                    generate_trace)
    from repro.faults.degraded import DegradedFabric
    from repro.faults.scheme import DegradedScheme
    from repro.faults.spec import samplable_cables
    from repro.routing.factory import make_scheme
    from repro.topology.variants import m_port_n_tree

    xgft = m_port_n_tree(8, 3)
    n_events = 8 if quick else 32
    base = make_scheme(xgft, "disjoint:4")
    trace = generate_trace(xgft, ChurnSpec(n_events=n_events, seed=2012))

    def all_pairs_by_level():
        n = xgft.n_procs
        keys = np.arange(n * n, dtype=np.int64)
        s, d = np.divmod(keys, n)
        k_arr = xgft.nca_level(s, d)
        return [(k, s[k_arr == k], d[k_arr == k])
                for k in range(1, xgft.h + 1) if (k_arr == k).any()]

    groups = all_pairs_by_level()

    prepare_wall, prepare_cpu = _best_of(
        lambda: IncrementalDegradedScheme(base))

    def replay_once():
        inc = IncrementalDegradedScheme(base)
        w0, c0 = perf_counter(), process_time()
        stats = inc.replay(trace)
        return perf_counter() - w0, process_time() - c0, (inc, stats)

    inc_wall = inc_cpu = float("inf")
    inc = stats = None
    for _ in range(3):
        w, c, (inc, stats) = replay_once()
        inc_wall, inc_cpu = min(inc_wall, w), min(inc_cpu, c)
    pairs_recomputed = sum(st.pairs_recomputed for st in stats)

    def full_once():
        fabric = DegradedFabric(xgft)
        w0, c0 = perf_counter(), process_time()
        scheme = None
        for event in trace:
            event.apply(fabric)
            scheme = DegradedScheme(base, fabric)
            for k, s, d in groups:
                scheme.path_index_matrix(s, d, k)
                scheme.path_weight_matrix(s, d, k)
        return perf_counter() - w0, process_time() - c0, scheme

    full_wall = full_cpu = float("inf")
    full = None
    for _ in range(3):
        w, c, full = full_once()
        full_wall, full_cpu = min(full_wall, w), min(full_cpu, c)

    # Differential check: after the whole stream, incremental state is
    # bit-identical to the from-scratch recompile, every level.
    equivalence = True
    for k, s, d in groups:
        if not (np.array_equal(inc.path_index_matrix(s, d, k),
                               full.path_index_matrix(s, d, k))
                and np.array_equal(inc.path_weight_matrix(s, d, k),
                                   full.path_weight_matrix(s, d, k))):
            equivalence = False

    # Acceptance gate: one cable failure touches >=10x fewer pairs than
    # a full recompile.  The first samplable cable is a level-1 cable,
    # the common case (a leaf uplink dying).
    single = IncrementalDegradedScheme(base)
    gate = single.apply_event(
        ChurnEvent("fail", "cable", samplable_cables(xgft)[0]))
    reduction = gate.pairs_total / max(1, gate.pairs_recomputed)

    metrics = {
        "prepare": {"wall_s": prepare_wall, "cpu_s": prepare_cpu},
        "incremental_replay": {
            "wall_s": inc_wall, "cpu_s": inc_cpu,
            "events": len(trace),
            "pairs_recomputed": pairs_recomputed,
            "events_per_s": len(trace) / inc_wall if inc_wall > 0 else 0.0,
        },
        "full_recompile": {
            "wall_s": full_wall, "cpu_s": full_cpu,
            "events": len(trace),
            "speedup_vs_incremental": (full_wall / inc_wall
                                       if inc_wall > 0 else float("inf")),
        },
    }
    checks = {
        "equivalence_ok": equivalence,
        "pairs_reduction_ok": bool(reduction >= CHURN_PAIRS_REDUCTION),
    }
    metrics["incremental_replay"]["single_cable_pairs_reduction"] = reduction
    return BenchSnapshot.create("churn", metrics, checks=checks, quick=quick)


BENCHMARKS = {"flow": bench_flow, "flit": bench_flit, "obs": bench_obs,
              "churn": bench_churn}


def run_benchmarks(names=None, *, quick: bool = False
                   ) -> dict[str, BenchSnapshot]:
    """Run the named benchmarks (default: all) and return snapshots."""
    selected = list(names) if names else list(BENCHMARKS)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise ReproError(f"unknown benchmark(s) {unknown}; "
                         f"available: {sorted(BENCHMARKS)}")
    return {name: BENCHMARKS[name](quick=quick) for name in selected}


def write_snapshots(snapshots: dict[str, BenchSnapshot],
                    out_dir=".") -> list[Path]:
    """Write each snapshot to its ``BENCH_*.json`` file under
    ``out_dir``; returns the written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, snap in snapshots.items():
        path = out / SNAPSHOT_FILES[name]
        snap.write(path)
        paths.append(path)
    return paths


# -- the regression gate -----------------------------------------------

@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current wall time."""

    name: str
    baseline_wall_s: float
    current_wall_s: float

    @property
    def comparable(self) -> bool:
        """Whether the baseline is above timer resolution.  A phase that
        took (effectively) zero time in the baseline cannot express a
        meaningful growth ratio — 0.1 ms to 0.4 ms is jitter, not a 4x
        regression — so such phases never fail the gate."""
        return self.baseline_wall_s >= MIN_COMPARABLE_WALL_S

    @property
    def ratio(self) -> float:
        if self.baseline_wall_s <= 0:
            return float("inf") if self.current_wall_s > 0 else 1.0
        return self.current_wall_s / self.baseline_wall_s


@dataclass
class SnapshotComparison:
    """The verdict of :func:`compare_snapshots` for one benchmark."""

    benchmark: str
    threshold: float
    deltas: list[MetricDelta]
    failed_checks: list[str]
    missing_metrics: list[str]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas
                if d.comparable and d.ratio > 1.0 + self.threshold]

    @property
    def not_comparable(self) -> list[MetricDelta]:
        """Phases whose baseline is below timer resolution (see
        :data:`MIN_COMPARABLE_WALL_S`); excluded from the gate."""
        return [d for d in self.deltas if not d.comparable]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.failed_checks

    def render(self) -> str:
        def verdict(d: MetricDelta) -> str:
            if not d.comparable:
                return "not comparable (sub-resolution baseline)"
            return "REGRESSED" if d.ratio > 1.0 + self.threshold else "ok"

        rows = [[d.name, f"{d.baseline_wall_s:.4f}",
                 f"{d.current_wall_s:.4f}",
                 f"{d.ratio:.2f}x" if d.comparable else "n/a",
                 verdict(d)]
                for d in sorted(
                    self.deltas,
                    key=lambda d: -(d.ratio if d.comparable else 0.0))]
        out = format_table(
            ["metric", "baseline s", "current s", "ratio", "verdict"],
            rows, title=f"{self.benchmark}  (threshold "
                        f"+{self.threshold:.0%})")
        notes = []
        if self.failed_checks:
            notes.append("failed checks: " + ", ".join(self.failed_checks))
        if self.missing_metrics:
            notes.append("metrics not in both snapshots: "
                         + ", ".join(self.missing_metrics))
        return out + ("\n" + "\n".join(notes) if notes else "")


def compare_snapshots(baseline, current, *,
                      threshold: float = DEFAULT_THRESHOLD
                      ) -> SnapshotComparison:
    """Compare two snapshots; flags wall-time growth beyond ``threshold``.

    ``baseline`` / ``current`` accept :class:`BenchSnapshot` instances,
    raw dicts, or file paths.  Metrics present in only one snapshot are
    reported but never fail the gate (renamed metrics should not block
    unrelated work); a check that was true in the baseline and false in
    the current snapshot always fails it.
    """
    def coerce(obj) -> BenchSnapshot:
        if isinstance(obj, BenchSnapshot):
            return obj
        if isinstance(obj, dict):
            return BenchSnapshot.from_dict(obj)
        return BenchSnapshot.read(obj)

    base, cur = coerce(baseline), coerce(current)
    if base.benchmark != cur.benchmark:
        raise ReproError(
            f"snapshot mismatch: baseline is {base.benchmark!r}, "
            f"current is {cur.benchmark!r}")
    deltas = []
    missing = sorted(set(base.metrics) ^ set(cur.metrics))
    for name in base.metrics:
        if name not in cur.metrics:
            continue
        b, c = base.metrics[name], cur.metrics[name]
        if "wall_s" not in b or "wall_s" not in c:
            continue
        deltas.append(MetricDelta(name, float(b["wall_s"]),
                                  float(c["wall_s"])))
    failed = sorted(
        name for name, ok in cur.checks.items()
        if not ok and base.checks.get(name, True))
    return SnapshotComparison(cur.benchmark, threshold, deltas, failed,
                              missing)
