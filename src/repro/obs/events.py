"""JSONL event/metrics sink: one JSON object per line.

The run log format is deliberately boring: the first line is the run
manifest (``"type": "manifest"``), followed by the recorder's event
stream in emission order (``"convergence_round"``, ``"flit_interval"``,
...), and a final ``"type": "metrics"`` line holding the aggregated
counters/timers/histograms.  Anything that reads JSON Lines can consume
it; :func:`read_jsonl` round-trips it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO


def _jsonable(obj):
    """Fallback serializer: numpy scalars and other number-likes become
    plain ints/floats; everything else becomes its ``str``."""
    import numbers

    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    return str(obj)


class JsonlSink:
    """Append-only JSON Lines writer.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "run.jsonl")
    >>> with JsonlSink(path) as sink:
    ...     sink.write({"type": "demo", "x": 1})
    >>> read_jsonl(path)
    [{'type': 'demo', 'x': 1}]
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")

    def write(self, obj: dict) -> None:
        if self._fh is None:
            raise ValueError(f"sink {self.path} is closed")
        self._fh.write(json.dumps(obj, default=_jsonable,
                                  separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSON Lines file back into a list of objects (blank lines
    are skipped)."""
    out = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def write_run(sink: JsonlSink, manifest, recorder) -> None:
    """Emit the standard run log: manifest line, event stream, metrics.

    ``manifest`` is a :class:`repro.obs.manifest.RunManifest`;
    ``recorder`` any recorder (the null recorder yields an empty stream
    and empty metrics).
    """
    sink.write({"type": "manifest", **manifest.to_dict()})
    for event in recorder.events:
        sink.write(event)
    sink.write({"type": "metrics", **recorder.metrics()})
