"""Traffic matrices and workload generators.

The paper evaluates permutation traffic (flow level) and uniform random
traffic (flit level); this package also provides the Theorem 2 adversarial
construction and the classic synthetic patterns used in the fat-tree
routing literature (shift, transpose, bit patterns, hotspot).
"""

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.permutations import (
    derangement,
    random_permutation,
    permutation_matrix,
    sample_permutations,
)
from repro.traffic.synthetic import (
    all_to_all,
    bit_complement,
    bit_reversal,
    hotspot,
    shift_pattern,
    transpose_pattern,
    uniform_expected,
)
from repro.traffic.adversarial import (
    adversarial_permutation,
    suggest_theorem2_topology,
    theorem2_pattern,
)
from repro.traffic.collectives import (
    recursive_doubling,
    schedule_cost,
    shift_all_to_all,
)

__all__ = [
    "TrafficMatrix",
    "random_permutation",
    "derangement",
    "permutation_matrix",
    "sample_permutations",
    "all_to_all",
    "uniform_expected",
    "shift_pattern",
    "transpose_pattern",
    "bit_reversal",
    "bit_complement",
    "hotspot",
    "theorem2_pattern",
    "suggest_theorem2_topology",
    "adversarial_permutation",
    "shift_all_to_all",
    "recursive_doubling",
    "schedule_cost",
]
