"""Collective-communication schedules as traffic-matrix sequences.

HPC applications exercise fat-trees through collectives; the paper's
reference [17] (Zahavi et al.) optimizes fat-tree routing for *shift
all-to-all*: the all-to-all exchange executed as ``N-1`` phases, phase
``r`` being the cyclic-shift permutation ``i -> (i + r) mod N``.  With
synchronized phases, the collective's completion time is proportional to
the *sum over phases of the maximum link load*, which makes the schedule
a natural flow-level benchmark for routing schemes: a single hot phase
(one bad stride) delays the whole collective.

Also provided: recursive-doubling exchange phases (power-of-two nodes)
and a helper to score a schedule under a routing scheme.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import TrafficError
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import shift_pattern


def shift_all_to_all(n_procs: int, *, amount: float = 1.0) -> Iterator[TrafficMatrix]:
    """The ``N-1`` cyclic-shift phases of an all-to-all exchange.

    Phase ``r`` (``1 <= r < N``) sends ``amount`` units from every node
    ``i`` to ``(i + r) mod N``.
    """
    if n_procs < 2:
        raise TrafficError("all-to-all needs at least two nodes")
    for stride in range(1, n_procs):
        yield shift_pattern(n_procs, stride, amount=amount)


def recursive_doubling(n_procs: int, *, amount: float = 1.0) -> Iterator[TrafficMatrix]:
    """The ``log2(N)`` pairwise-exchange phases of recursive doubling.

    Phase ``b`` pairs node ``i`` with ``i XOR 2**b`` — the classic
    allreduce/allgather schedule.  Requires a power-of-two node count.
    """
    bits = int(n_procs).bit_length() - 1
    if n_procs <= 1 or (1 << bits) != n_procs:
        raise TrafficError(
            f"recursive doubling needs a power-of-two node count, got {n_procs}"
        )
    import numpy as np

    for b in range(bits):
        src = np.arange(n_procs)
        yield TrafficMatrix(n_procs, src, src ^ (1 << b),
                            np.full(n_procs, amount))


def schedule_cost(xgft, scheme, phases) -> tuple[float, float]:
    """Score a phased schedule under a routing scheme.

    Returns ``(total, worst)``: the sum over phases of the maximum link
    load (proportional to completion time with synchronized phases) and
    the single worst phase's load.  The optimal total for shift
    all-to-all on a full-bisection XGFT is ``N - 1`` (every phase load
    1), achieved by UMULTI.
    """
    from repro.flow.loads import link_loads
    from repro.flow.metrics import max_link_load

    total = 0.0
    worst = 0.0
    for tm in phases:
        mload = max_link_load(link_loads(xgft, scheme, tm))
        total += mload
        worst = max(worst, mload)
    return total, worst
