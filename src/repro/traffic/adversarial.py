"""The Theorem 2 adversarial traffic construction.

Theorem 2 exhibits XGFTs and a traffic matrix on which d-mod-k's maximum
link load is ``prod(m_i, i<h)`` times the optimum: every processing node
of the first height-``(h-1)`` subtree sends one unit to a destination
whose id is a multiple of ``W(h)``, so d-mod-k's port choice
``(d // W(j)) mod w_{j+1}`` is 0 at every level and the whole subtree's
egress funnels through a single link.  UMULTI spreads the same traffic
over all ``W(h)`` egress links.

The construction requires enough distinct multiples of ``W(h)`` outside
the first subtree, i.e. roughly ``m_h >= W(h) + 2``;
:func:`theorem2_pattern` validates this and
:func:`suggest_theorem2_topology` builds a topology where the bound is
tight.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrafficError
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix


def theorem2_pattern(xgft: XGFT) -> TrafficMatrix:
    """The paper's Theorem 2 traffic matrix for ``xgft``.

    Sources are the ``M(h-1)`` processing nodes of the first height-
    ``(h-1)`` subtree; source ``j`` sends one unit to ``(A + j) * W(h)``
    where ``A`` is the smallest integer with ``A * W(h) >= M(h-1)``.

    Raises
    ------
    TrafficError
        If the destinations do not fit in the topology (the theorem is
        existential: only sufficiently "wide-bottom" XGFTs admit it).
    """
    h = xgft.h
    if h < 1:
        raise TrafficError("theorem 2 needs at least one switch level")
    n_src = xgft.M(h - 1)
    wh = xgft.W(h)
    a = -(-n_src // wh)  # ceil(M(h-1) / W(h))
    sources = np.arange(n_src)
    destinations = (a + sources) * wh
    if destinations.max() >= xgft.n_procs:
        raise TrafficError(
            f"theorem 2 construction infeasible on {xgft!r}: needs destination "
            f"{int(destinations.max())} but only {xgft.n_procs} processing nodes; "
            f"use suggest_theorem2_topology() for a feasible instance"
        )
    # All destinations are >= A*W(h) >= M(h-1): outside the first subtree,
    # and they are distinct multiples of W(h) — each in a distinct
    # height-(h-1) subtree per the theorem's premise when m_h >= W(h)+1.
    return TrafficMatrix(xgft.n_procs, sources, destinations)


def theorem2_bound(xgft: XGFT) -> float:
    """The guaranteed d-mod-k/optimal load ratio on the Theorem 2 pattern:
    ``M(h-1) / max(1, M(h-1)/W(h))`` — equal to ``W(h)`` when
    ``M(h-1) >= W(h)`` (the regime the theorem targets)."""
    n_src = xgft.M(xgft.h - 1)
    return n_src / max(1.0, n_src / xgft.W(xgft.h))


def adversarial_permutation(xgft: XGFT) -> np.ndarray:
    """A *permutation* realizing the Theorem 2 hotspot.

    The theorem's traffic matrix is not a permutation (only one subtree
    sends), but the same mechanism embeds into the paper's permutation
    traffic model: every processing node of the first height-``(h-1)``
    subtree sends to a distinct destination that is a multiple of
    ``W(h)`` outside the subtree — so d-mod-k funnels the whole
    subtree's egress through one link — and all remaining nodes are
    matched up arbitrarily (here: a cyclic shift among themselves, which
    adds at most one unit anywhere).

    Returns the permutation array; raises :class:`TrafficError` when the
    topology lacks enough multiples of ``W(h)`` (same feasibility regime
    as :func:`theorem2_pattern`).
    """
    h = xgft.h
    if h < 1:
        raise TrafficError("adversarial permutation needs a switch level")
    n = xgft.n_procs
    n_src = xgft.M(h - 1)
    wh = xgft.W(h)
    a = -(-n_src // wh)
    hot_dests = [(a + j) * wh for j in range(n_src)]
    if hot_dests and hot_dests[-1] >= n:
        raise TrafficError(
            f"adversarial permutation infeasible on {xgft!r}: needs node "
            f"{hot_dests[-1]} but only {n} exist"
        )
    perm = np.full(n, -1, dtype=np.int64)
    perm[:n_src] = hot_dests
    rest_sources = np.arange(n_src, n)
    rest_dests = np.array(sorted(set(range(n)) - set(hot_dests)), dtype=np.int64)
    # Cyclic shift among the leftovers keeps the permutation property
    # without concentrating any additional traffic.
    perm[rest_sources] = np.roll(rest_dests, 1)
    return perm


def suggest_theorem2_topology(h: int = 2, w: int = 4) -> XGFT:
    """A small XGFT on which :func:`theorem2_pattern` is feasible and the
    d-mod-k performance ratio is exactly ``prod(w_i) = w**(h-1)``.

    Uses ``m_i = w`` below the top and a top level wide enough
    (``m_h = w**(h-1) + 2``) to host all the adversarial destinations.
    """
    if h < 2:
        raise TrafficError("need h >= 2 for a non-trivial theorem 2 instance")
    wh_total = w ** (h - 1)  # prod of w_i with w_1 = 1
    ms = (w,) * (h - 1) + (wh_total + 2,)
    ws = (1,) + (w,) * (h - 1)
    return XGFT(h, ms, ws)
