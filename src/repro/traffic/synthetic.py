"""Classic synthetic traffic patterns.

These patterns are standard in the interconnection-network literature
(Dally & Towles; the paper's references use shift all-to-all [Zahavi] and
uniform traffic).  They exercise the routing heuristics under structured
(non-random) load and power the pattern-ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrafficError
from repro.traffic.matrix import TrafficMatrix


def _require_positive(n_procs: int) -> None:
    if n_procs < 1:
        raise TrafficError(f"n_procs must be >= 1, got {n_procs}")


def all_to_all(n_procs: int, *, total_per_node: float = 1.0) -> TrafficMatrix:
    """Every node sends equally to every other node; each source emits
    ``total_per_node`` units in total."""
    _require_positive(n_procs)
    if n_procs == 1:
        return TrafficMatrix.empty(1)
    s, d = np.nonzero(~np.eye(n_procs, dtype=bool))
    amount = total_per_node / (n_procs - 1)
    return TrafficMatrix(n_procs, s, d, np.full(len(s), amount))


def uniform_expected(n_procs: int, *, load: float = 1.0) -> TrafficMatrix:
    """Expected traffic matrix of uniform random traffic at offered load
    ``load`` (flits/cycle/node): the flow-level counterpart of the flit
    simulator's uniform workload, including self-destinations (each node
    picks any node uniformly, itself included)."""
    _require_positive(n_procs)
    s, d = np.nonzero(np.ones((n_procs, n_procs), dtype=bool))
    return TrafficMatrix(n_procs, s, d, np.full(len(s), load / n_procs))


def shift_pattern(n_procs: int, stride: int, *, amount: float = 1.0) -> TrafficMatrix:
    """Cyclic shift: node ``i`` sends to ``(i + stride) mod n``.

    The building block of shift all-to-all schedules [Zahavi et al.];
    stresses a single NCA level determined by ``stride``.
    """
    _require_positive(n_procs)
    src = np.arange(n_procs)
    return TrafficMatrix(n_procs, src, (src + stride) % n_procs,
                         np.full(n_procs, amount))


def _require_power_of_two(n_procs: int) -> int:
    bits = int(n_procs).bit_length() - 1
    if n_procs <= 0 or (1 << bits) != n_procs:
        raise TrafficError(f"pattern requires a power-of-two node count, got {n_procs}")
    return bits


def bit_reversal(n_procs: int, *, amount: float = 1.0) -> TrafficMatrix:
    """Node ``i`` sends to the bit-reversal of ``i`` (power-of-two N)."""
    bits = _require_power_of_two(n_procs)
    src = np.arange(n_procs)
    dst = np.zeros(n_procs, dtype=np.int64)
    for b in range(bits):
        dst |= ((src >> b) & 1) << (bits - 1 - b)
    return TrafficMatrix(n_procs, src, dst, np.full(n_procs, amount))


def bit_complement(n_procs: int, *, amount: float = 1.0) -> TrafficMatrix:
    """Node ``i`` sends to ``~i`` (power-of-two N): every flow crosses
    the topmost level — the bisection stress test."""
    _require_power_of_two(n_procs)
    src = np.arange(n_procs)
    return TrafficMatrix(n_procs, src, n_procs - 1 - src, np.full(n_procs, amount))


def transpose_pattern(n_procs: int, *, amount: float = 1.0) -> TrafficMatrix:
    """Matrix-transpose: with ``n = q*q`` nodes viewed as a q x q grid,
    node ``(r, c)`` sends to node ``(c, r)``."""
    _require_positive(n_procs)
    q = int(round(n_procs**0.5))
    if q * q != n_procs:
        raise TrafficError(f"transpose requires a square node count, got {n_procs}")
    src = np.arange(n_procs)
    r, c = src // q, src % q
    return TrafficMatrix(n_procs, src, c * q + r, np.full(n_procs, amount))


def hotspot(
    n_procs: int,
    hot_nodes,
    *,
    hot_fraction: float = 0.5,
    total_per_node: float = 1.0,
) -> TrafficMatrix:
    """Uniform background plus a concentrated fraction to hot nodes.

    Each source sends ``hot_fraction`` of its ``total_per_node`` traffic
    split across ``hot_nodes`` and the rest uniformly to all other nodes.
    """
    _require_positive(n_procs)
    hot_nodes = np.unique(np.asarray(hot_nodes, dtype=np.int64))
    if len(hot_nodes) == 0:
        raise TrafficError("need at least one hot node")
    if hot_nodes.min() < 0 or hot_nodes.max() >= n_procs:
        raise TrafficError("hot nodes out of range")
    if not 0.0 <= hot_fraction <= 1.0:
        raise TrafficError(f"hot_fraction must be in [0, 1], got {hot_fraction}")

    background = all_to_all(n_procs,
                            total_per_node=total_per_node * (1.0 - hot_fraction))
    src = np.repeat(np.arange(n_procs), len(hot_nodes))
    dst = np.tile(hot_nodes, n_procs)
    keep = src != dst
    amount = total_per_node * hot_fraction / len(hot_nodes)
    hot = TrafficMatrix(n_procs, src[keep], dst[keep],
                        np.full(keep.sum(), amount))
    return background + hot
