"""Permutation traffic.

The paper's flow-level experiments use *permutation traffic*: "each
processing node sends messages to another processing node (possibly
itself)" — i.e. a uniformly random permutation, fixed points allowed, one
unit of traffic per pair.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import TrafficError
from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import as_generator


def random_permutation(n_procs: int, seed=None) -> np.ndarray:
    """A uniformly random permutation of ``0..n_procs-1`` (fixed points
    allowed, matching the paper's model)."""
    rng = as_generator(seed)
    return rng.permutation(n_procs)


def derangement(n_procs: int, seed=None, *, max_tries: int = 1000) -> np.ndarray:
    """A uniformly random permutation without fixed points (every node
    sends to a *different* node), via rejection sampling.

    The acceptance probability tends to ``1/e``, so this terminates
    quickly; ``max_tries`` guards pathological inputs.
    """
    if n_procs == 1:
        raise TrafficError("no derangement exists for a single node")
    rng = as_generator(seed)
    for _ in range(max_tries):
        perm = rng.permutation(n_procs)
        if not np.any(perm == np.arange(n_procs)):
            return perm
    raise TrafficError("failed to sample a derangement")  # pragma: no cover


def permutation_matrix(perm: np.ndarray, amount: float = 1.0) -> TrafficMatrix:
    """Traffic matrix of a permutation: node ``i`` sends ``amount`` units
    to ``perm[i]``."""
    perm = np.asarray(perm, dtype=np.int64)
    n = len(perm)
    if sorted(perm.tolist()) != list(range(n)):
        raise TrafficError("input is not a permutation")
    return TrafficMatrix(n, np.arange(n), perm, np.full(n, amount))


def sample_permutations(n_procs: int, count: int, seed=None) -> Iterator[TrafficMatrix]:
    """Yield ``count`` independent random-permutation traffic matrices."""
    rng = as_generator(seed)
    for _ in range(count):
        yield permutation_matrix(random_permutation(n_procs, rng))
