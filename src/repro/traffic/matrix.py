"""Sparse traffic matrices.

A traffic matrix ``TM`` assigns an amount ``tm[s, d]`` of traffic to every
ordered SD pair (Section 3.2).  The evaluated topologies reach 3456
processing nodes, where a dense N x N matrix is wasteful; traffic is
stored as coalesced ``(src, dst, amount)`` triples instead, which is also
the exact form the vectorized flow-level evaluator consumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrafficError


class TrafficMatrix:
    """Immutable sparse traffic matrix over ``n_procs`` processing nodes.

    Construction coalesces duplicate pairs (amounts add) and drops
    explicit zeros.  Self-pairs (``s == d``) are retained — they are part
    of the paper's permutation model ("possibly itself") — but carry no
    network traffic and are ignored by the simulators.
    """

    __slots__ = ("n_procs", "src", "dst", "amount")

    def __init__(self, n_procs: int, src, dst, amount=None):
        n_procs = int(n_procs)
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if amount is None:
            amount = np.ones(len(src), dtype=np.float64)
        else:
            amount = np.asarray(amount, dtype=np.float64).ravel()
            if len(amount) == 1 and len(src) > 1:
                amount = np.full(len(src), amount[0])
        if not (len(src) == len(dst) == len(amount)):
            raise TrafficError("src, dst and amount must have equal length")
        if len(src) and (src.min() < 0 or src.max() >= n_procs
                         or dst.min() < 0 or dst.max() >= n_procs):
            raise TrafficError(f"node ids out of range [0, {n_procs})")
        if np.any(amount < 0):
            raise TrafficError("traffic amounts must be non-negative")

        # Coalesce duplicates and drop zeros.
        keys = src * n_procs + dst
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        amount = amount[order]
        unique_keys, starts = np.unique(keys, return_index=True)
        sums = np.add.reduceat(amount, starts) if len(keys) else amount
        keep = sums > 0
        unique_keys = unique_keys[keep]
        sums = sums[keep]

        self.n_procs = n_procs
        self.src = unique_keys // n_procs
        self.dst = unique_keys % n_procs
        self.amount = sums
        self.src.setflags(write=False)
        self.dst.setflags(write=False)
        self.amount.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, matrix) -> "TrafficMatrix":
        """Build from a dense ``(n, n)`` array."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise TrafficError(f"expected a square matrix, got shape {matrix.shape}")
        src, dst = np.nonzero(matrix)
        return cls(matrix.shape[0], src, dst, matrix[src, dst])

    @classmethod
    def from_pairs(cls, n_procs: int, pairs, amount: float = 1.0) -> "TrafficMatrix":
        """Build from an iterable of ``(src, dst)`` pairs, each carrying
        ``amount`` units."""
        pairs = list(pairs)
        src = [p[0] for p in pairs]
        dst = [p[1] for p in pairs]
        return cls(n_procs, src, dst, np.full(len(pairs), amount))

    @classmethod
    def empty(cls, n_procs: int) -> "TrafficMatrix":
        return cls(n_procs, [], [], [])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_pairs(self) -> int:
        """Number of distinct pairs with positive traffic."""
        return len(self.src)

    @property
    def total(self) -> float:
        """Total traffic volume (including self-pairs)."""
        return float(self.amount.sum())

    def network_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(src, dst, amount)`` triples with ``src != dst`` — the
        pairs that actually load the network."""
        mask = self.src != self.dst
        return self.src[mask], self.dst[mask], self.amount[mask]

    def __getitem__(self, pair: tuple[int, int]) -> float:
        s, d = pair
        key = s * self.n_procs + d
        keys = self.src * self.n_procs + self.dst
        i = np.searchsorted(keys, key)
        if i < len(keys) and keys[i] == key:
            return float(self.amount[i])
        return 0.0

    def to_dense(self) -> np.ndarray:
        """Dense ``(n, n)`` array (only for small ``n``)."""
        out = np.zeros((self.n_procs, self.n_procs))
        out[self.src, self.dst] = self.amount
        return out

    def row_sums(self) -> np.ndarray:
        """Per-source egress volume."""
        return np.bincount(self.src, weights=self.amount, minlength=self.n_procs)

    def col_sums(self) -> np.ndarray:
        """Per-destination ingress volume."""
        return np.bincount(self.dst, weights=self.amount, minlength=self.n_procs)

    def is_permutation(self) -> bool:
        """True if every node sends to exactly one node with unit traffic
        and every node receives from exactly one node."""
        if self.n_pairs != self.n_procs:
            return False
        if not np.allclose(self.amount, 1.0):
            return False
        return (len(np.unique(self.src)) == self.n_procs
                and len(np.unique(self.dst)) == self.n_procs)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with all amounts multiplied by ``factor``."""
        if factor < 0:
            raise TrafficError("scale factor must be non-negative")
        return TrafficMatrix(self.n_procs, self.src, self.dst, self.amount * factor)

    def __add__(self, other: "TrafficMatrix") -> "TrafficMatrix":
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        if other.n_procs != self.n_procs:
            raise TrafficError("cannot add traffic matrices of different sizes")
        return TrafficMatrix(
            self.n_procs,
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
            np.concatenate([self.amount, other.amount]),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TrafficMatrix)
            and self.n_procs == other.n_procs
            and np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
            and np.allclose(self.amount, other.amount)
        )

    def __hash__(self):  # pragma: no cover - mutable-free but unhashable by design
        raise TypeError("TrafficMatrix is not hashable")

    def __repr__(self) -> str:
        return (f"TrafficMatrix(n_procs={self.n_procs}, pairs={self.n_pairs}, "
                f"total={self.total:g})")
