"""Command-line interface: ``python -m repro <command>`` / ``xgft-repro``.

Commands
--------
* ``info <xgft-spec>`` — describe a topology;
* ``route <xgft-spec> <scheme> <src> <dst>`` — print a pair's route set;
* ``figure4a..d | table1 | figure5 | theorems | resources`` — regenerate
  a paper artifact (``--fidelity fast|normal|full``);
* ``list`` — list registered experiments;
* ``report <path...>`` — aggregate ``--log-json`` JSONL run logs
  (files or directories) into a cross-run summary: per-phase
  p50/p95/p99 wall times, counter totals, span waterfalls
  (``--format text|json|prometheus``);
* ``bench`` — run the perf benchmarks (flow engine, flit sweep, obs
  overhead) and write ``BENCH_*.json`` snapshots; ``--check`` compares
  against the committed baselines and fails on regression
  (``--quick`` for the CI-sized protocol).

Every experiment subcommand also accepts the telemetry options
(:mod:`repro.obs`): ``--seed N`` for a reproducible invocation,
``--log-json PATH`` to write a JSONL run log (manifest line, event
stream, metrics line), ``--profile`` to print a timer/counter report,
and ``--quiet`` to suppress the rendered result.  Engine-aware
experiments accept ``--engine``: flow-level permutation studies take
``compiled`` (compile routes once, batch-evaluate rounds) and flit-level
sweeps (``table1``, ``figure5``) take ``batched`` (the calendar-queue
flit kernel, bit-identical to the reference engine but several times
faster); ``reference`` is the default everywhere.
Fault-aware experiments (``fault-sweep``) accept ``--fault-rate R[,R...]``
(link failure rate grid), ``--fault-links ID[,ID...]`` (explicit failed
cables) and ``--fault-seed N`` (fault sampler seed).  Churn-aware
experiments (``churn-sweep``) accept ``--churn-events N`` (fail/repair
stream length) and ``--churn-seed N`` (trace seed, independent of the
traffic ``--seed``).  Flit-level sweep
experiments (``table1``, ``figure5``) accept ``--jobs N`` (parallel grid
fan-out over a process pool, bit-identical to serial), ``--cache`` /
``--no-cache`` (replay completed sweep points from the on-disk result
cache, making interrupted runs resumable) and ``--cache-dir DIR``
(cache location, default ``.repro-cache/``).

Topology specs: ``mport:8x3`` (8-port 3-tree), ``kary:4x2`` (4-ary
2-tree), or an explicit ``xgft:3;4,4,8;1,4,4``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import __version__
from repro.errors import ReproError
from repro.experiments.registry import EXPERIMENTS, run_instrumented
from repro.obs import JsonlSink, Recorder, get_recorder, render_report, write_run
from repro.obs.bench import DEFAULT_THRESHOLD
from repro.routing.factory import available_schemes, make_scheme
from repro.topology.variants import k_ary_n_tree, m_port_n_tree
from repro.topology.xgft import XGFT


def parse_topology(spec: str) -> XGFT:
    """Parse a topology spec string (see module docstring).

    >>> parse_topology("mport:8x3")
    XGFT(3; 4,4,8; 1,4,4)
    >>> parse_topology("xgft:2;4,8;1,4")
    XGFT(2; 4,8; 1,4)
    """
    kind, _, rest = spec.partition(":")
    kind = kind.lower()
    try:
        if kind == "mport":
            m, n = rest.split("x")
            return m_port_n_tree(int(m), int(n))
        if kind == "kary":
            k, n = rest.split("x")
            return k_ary_n_tree(int(k), int(n))
        if kind == "xgft":
            h_str, ms, ws = rest.split(";")
            return XGFT(int(h_str),
                        [int(x) for x in ms.split(",")],
                        [int(x) for x in ws.split(",")])
    except (ValueError, ReproError) as exc:
        raise ReproError(f"bad topology spec {spec!r}: {exc}") from None
    raise ReproError(
        f"unknown topology kind {kind!r}; use mport:MxN, kary:KxN or "
        f"xgft:h;m1,..;w1,.."
    )


def _cmd_info(args) -> int:
    xgft = parse_topology(args.topology)
    print(xgft.describe())
    return 0


def _cmd_route(args) -> int:
    xgft = parse_topology(args.topology)
    scheme = make_scheme(xgft, args.scheme, seed=args.seed)
    rs = scheme.route(args.src, args.dst)
    print(f"{scheme.label} routes {args.src} -> {args.dst} "
          f"(NCA level {rs.nca_level}, {rs.num_paths} path(s)):")
    for path, frac in zip(rs.paths(xgft), rs.fractions):
        print(f"  [{frac:.3f}] Path {path.index}: {path.describe(xgft)}")
    return 0


def _cmd_list(_args) -> int:
    for name in sorted(EXPERIMENTS):
        print(f"{name:10s} {EXPERIMENTS[name].description}")
    print("\nschemes:", ", ".join(available_schemes()))
    return 0


def _parse_csv(value, cast, flag: str):
    """Parse a comma-separated option value; None passes through."""
    if value is None:
        return None
    try:
        return tuple(cast(part) for part in str(value).split(",") if part)
    except ValueError as exc:
        raise ReproError(f"bad {flag} value {value!r}: {exc}") from None


# -- argparse type validators -----------------------------------------
# Bad values fail at parse time with a typed usage error instead of
# surfacing later as a numpy broadcast error or a dead process pool.

def _arg_jobs(value: str) -> int:
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _arg_count(value: str) -> int:
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if n < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {n}")
    return n


def _arg_fault_rates(value: str) -> tuple[float, ...]:
    try:
        rates = tuple(float(p) for p in value.split(",") if p)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {value!r}")
    for r in rates:
        if not 0.0 <= r <= 1.0:
            raise argparse.ArgumentTypeError(
                f"failure rates are fractions in [0, 1], got {r}")
    return rates


def _arg_fault_links(value: str) -> tuple[int, ...]:
    try:
        links = tuple(int(p) for p in value.split(",") if p)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated cable ids, got {value!r}")
    for link in links:
        if link < 0:
            raise argparse.ArgumentTypeError(
                f"cable ids are >= 0, got {link}")
    return links


def _cmd_report(args) -> int:
    import json as _json

    from repro.obs.export import (aggregate_runs, merged_recorder,
                                  render_cross_run_report, to_prometheus,
                                  to_wide_row)

    runs = aggregate_runs(args.paths)
    if not runs:
        print("error: no run logs found", file=sys.stderr)
        return 2
    if args.format == "prometheus":
        print(to_prometheus(merged_recorder(runs)), end="")
    elif args.format == "json":
        print(_json.dumps({
            "runs": [{"path": r.path, "manifest": r.manifest} for r in runs],
            "merged": to_wide_row(merged_recorder(runs)),
        }, indent=2, default=str))
    else:
        print(render_cross_run_report(runs))
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.bench import (SNAPSHOT_FILES, compare_snapshots,
                                 run_benchmarks, write_snapshots)

    names = _parse_csv(args.only, str, "--only")
    snapshots = run_benchmarks(names, quick=args.quick)
    for name, snap in snapshots.items():
        failed = [k for k, ok in snap.checks.items() if not ok]
        rows = ", ".join(
            f"{m}={v['wall_s'] * 1e3:.1f}ms" for m, v in snap.metrics.items())
        print(f"bench {name}: {rows}"
              + (f"  [FAILED: {', '.join(failed)}]" if failed else ""))
    if not args.no_write:
        for path in write_snapshots(snapshots, args.out_dir):
            print(f"wrote {path}")
    if not args.check:
        return 0
    status = 0
    for name, snap in snapshots.items():
        baseline = os.path.join(args.baseline_dir, SNAPSHOT_FILES[name])
        if not os.path.exists(baseline):
            print(f"bench {name}: no baseline at {baseline}, skipping "
                  f"comparison")
            continue
        comparison = compare_snapshots(baseline, snap,
                                       threshold=args.threshold)
        print(comparison.render())
        if not comparison.ok:
            status = 1
    if status:
        print("error: perf regression against committed baseline "
              "(rerun `repro bench --quick` to refresh baselines if the "
              "slowdown is intended)", file=sys.stderr)
    return status


def _cmd_experiment(args) -> int:
    want_obs = bool(args.log_json or args.profile)
    rec = Recorder() if want_obs else get_recorder()
    # Open the sink before the (possibly hours-long) run so a bad path
    # fails immediately rather than after the experiment finished.
    try:
        sink = JsonlSink(args.log_json) if args.log_json else None
    except OSError as exc:
        print(f"error: cannot open --log-json file: {exc}", file=sys.stderr)
        return 2
    try:
        run = run_instrumented(
            args.experiment,
            fidelity_name=args.fidelity,
            seed=args.seed,
            recorder=rec,
            argv=getattr(args, "_argv", None),
            engine=args.engine,
            fault_rate=args.fault_rate,
            fault_links=args.fault_links,
            fault_seed=args.fault_seed,
            jobs=args.jobs,
            cache=args.cache,
            cache_dir=args.cache_dir,
            churn_events=args.churn_events,
            churn_seed=args.churn_seed,
        )
        if not args.quiet:
            print(run.result.render())
        if sink is not None:
            write_run(sink, run.manifest, rec)
    finally:
        if sink is not None:
            sink.close()
    if args.profile:
        print(render_report(rec, title=f"run telemetry: {args.experiment} "
                                       f"({run.manifest.wall_time_s:.2f}s)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xgft-repro",
        description="Limited multi-path routing on extended generalized "
                    "fat-trees (IPDPS'12 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="describe a topology")
    p_info.add_argument("topology", help="e.g. mport:8x3 or xgft:2;4,8;1,4")
    p_info.set_defaults(func=_cmd_info)

    p_route = sub.add_parser("route", help="print a pair's route set")
    p_route.add_argument("topology")
    p_route.add_argument("scheme", help="e.g. d-mod-k, disjoint:4")
    p_route.add_argument("src", type=int)
    p_route.add_argument("dst", type=int)
    p_route.add_argument("--seed", type=int, default=0)
    p_route.set_defaults(func=_cmd_route)

    p_list = sub.add_parser("list", help="list experiments and schemes")
    p_list.set_defaults(func=_cmd_list)

    p_report = sub.add_parser(
        "report", help="aggregate JSONL run logs into a cross-run summary")
    p_report.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="run-log files or directories of *.jsonl (from --log-json)")
    p_report.add_argument(
        "--format", choices=("text", "json", "prometheus"), default="text",
        help="text summary (default), merged wide-row JSON, or Prometheus "
             "text exposition of the merged metrics")
    p_report.set_defaults(func=_cmd_report)

    p_bench = sub.add_parser(
        "bench", help="run perf benchmarks, write/check BENCH_*.json")
    p_bench.add_argument(
        "--quick", action="store_true",
        help="CI-sized protocol (small topology/grids, seconds not minutes)")
    p_bench.add_argument(
        "--only", metavar="NAME[,NAME...]", default=None,
        help="run a subset of benchmarks (flow, flit, obs)")
    p_bench.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="directory for the BENCH_*.json snapshots (default: .)")
    p_bench.add_argument(
        "--no-write", action="store_true",
        help="measure and compare without writing snapshot files")
    p_bench.add_argument(
        "--check", action="store_true",
        help="compare against the committed baselines and exit 1 on "
             "regression beyond --threshold")
    p_bench.add_argument(
        "--baseline-dir", metavar="DIR", default=".",
        help="where the baseline BENCH_*.json files live (default: .)")
    p_bench.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD, metavar="F",
        help="relative wall-time growth that counts as a regression "
             f"(default {DEFAULT_THRESHOLD})")
    p_bench.set_defaults(func=_cmd_bench)

    # Telemetry/reproducibility options shared by every experiment
    # subcommand (they go after the subcommand name).
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="experiment RNG seed (recorded in the run manifest)")
    obs_parent.add_argument(
        "--log-json", metavar="PATH", default=None,
        help="write a JSONL run log: manifest, events, metrics")
    obs_parent.add_argument(
        "--profile", action="store_true",
        help="print a timer/counter/convergence report after the run")
    obs_parent.add_argument(
        "--quiet", action="store_true",
        help="suppress the rendered result (use with --log-json)")
    obs_parent.add_argument(
        "--engine", choices=("reference", "compiled", "batched"),
        default=None,
        help="simulation backend: flow experiments take 'compiled' "
             "(compile routes once, batch-evaluate rounds), flit "
             "experiments (table1, figure5) take 'batched' (calendar-"
             "queue kernel, bit-identical to the reference); 'reference' "
             "is the default everywhere")
    obs_parent.add_argument(
        "--fault-rate", metavar="R[,R...]", default=None,
        type=_arg_fault_rates,
        help="link failure rate grid for fault-aware experiments, e.g. "
             "0,0.02,0.05 (fractions in [0, 1] of non-critical cables "
             "failed)")
    obs_parent.add_argument(
        "--fault-links", metavar="ID[,ID...]", default=None,
        type=_arg_fault_links,
        help="explicit failed cables (up-link ids) instead of random "
             "sampling; only fault-aware experiments accept this")
    obs_parent.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="fault-sampler seed, independent of the traffic --seed")
    obs_parent.add_argument(
        "--jobs", type=_arg_jobs, default=None, metavar="N",
        help="worker processes for flit sweep grids (table1, figure5); "
             "results are bit-identical to a serial run for a fixed seed")
    obs_parent.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="replay completed flit sweep points from the on-disk result "
             "cache and store new ones (resumes interrupted sweeps); "
             "--no-cache forces recomputation")
    obs_parent.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result-cache directory (default .repro-cache/; implies "
             "--cache unless --no-cache is given)")
    obs_parent.add_argument(
        "--churn-events", type=_arg_count, default=None, metavar="N",
        help="fail/repair event-stream length for churn-aware "
             "experiments (churn-sweep); default set by --fidelity")
    obs_parent.add_argument(
        "--churn-seed", type=int, default=None, metavar="N",
        help="churn-trace seed, independent of the traffic --seed")

    for name, exp in EXPERIMENTS.items():
        p_exp = sub.add_parser(name, help=exp.description,
                               parents=[obs_parent])
        p_exp.add_argument("--fidelity", choices=("fast", "normal", "full"),
                           default="normal")
        p_exp.set_defaults(func=_cmd_experiment, experiment=name)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    args._argv = tuple(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
