"""Flit-level simulation configuration.

The paper's simulator models virtual cut-through (VCT) switching with
credit-based flow control and a single virtual channel, "to closely
resemble InfiniBand networks", with Poisson message arrivals, fixed
packet and message sizes, and finite input/output buffers.  The exact
sizes were lost to OCR; the defaults below are documented substitutions
(DESIGN.md Section 2) and everything is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

#: how a multi-path route set is exercised by the traffic
PATH_SELECTION_MODES = ("per-message", "per-packet", "round-robin")

#: switch microarchitectures the engine can model
SWITCH_MODELS = ("input-fifo", "output-queued")


@dataclass(frozen=True)
class FlitConfig:
    """Parameters of one flit-level run.

    Attributes
    ----------
    packet_flits:
        Flits per packet; a link transmits one flit per cycle, so this is
        also a packet's serialization latency.
    packets_per_message:
        Fixed message size in packets (the paper uses fixed-size
        messages).
    buffer_packets:
        Input-buffer capacity per switch port *per virtual channel*, in
        packets (= the credit count per channel/VC).
    virtual_channels:
        Number of virtual channels per physical channel.  The paper
        evaluates routing with a single VC; more VCs give each physical
        link several independent FIFO buffers sharing its bandwidth,
        which relieves head-of-line blocking in the ``input-fifo``
        switch model (see the VC ablation benchmark).  A packet is
        assigned a free VC each time it wins an output port.
    wire_delay:
        Link propagation delay in cycles.
    routing_delay:
        Header processing time at a switch before the packet can compete
        for its output port.
    warmup_cycles / measure_cycles:
        Statistics are collected for messages created inside the
        measurement window ``[warmup, warmup + measure)``; the run then
        drains in-flight traffic up to ``drain_cycles`` extra cycles.
    drain_cycles:
        Extra simulated time after the window to let measured messages
        complete (beyond saturation some never do; they are reported as
        undelivered rather than biasing the delay average silently).
    path_selection:
        ``per-packet`` (default: the traffic fractions ``f_{i,j}`` are
        realized at packet granularity), ``per-message`` or
        ``round-robin`` (ablation modes).
    switch_model:
        ``input-fifo`` models single-VC FIFO input buffers with
        head-of-line blocking; ``output-queued`` (default) lets any
        buffered packet compete for its output port (per-output FIFO
        queues), which matches the paper's observed behaviour — its
        simulator buffers packets at both inputs and outputs.  The
        input-FIFO model is kept as an ablation: it reverses part of the
        multi-path advantage because concentrated (single-path) routing
        confines HoL blocking to fewer buffers.
    seed:
        Workload RNG seed.
    obs_interval:
        Telemetry observation-interval length in cycles for the
        per-interval trace (:mod:`repro.obs`); 0 (default) derives
        ~20 intervals from ``measure_cycles``.  Only consulted when a
        recording recorder is active.
    """

    packet_flits: int = 16
    packets_per_message: int = 4
    buffer_packets: int = 4
    virtual_channels: int = 1
    wire_delay: int = 1
    routing_delay: int = 1
    warmup_cycles: int = 2_000
    measure_cycles: int = 10_000
    drain_cycles: int = 20_000
    path_selection: str = "per-packet"
    switch_model: str = "output-queued"
    seed: int = 0
    obs_interval: int = 0

    def __post_init__(self):
        for name in ("packet_flits", "packets_per_message", "buffer_packets",
                     "virtual_channels"):
            if getattr(self, name) < 1:
                raise SimulationError(f"{name} must be >= 1")
        for name in ("wire_delay", "routing_delay"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be >= 0")
        for name in ("warmup_cycles", "measure_cycles", "drain_cycles",
                     "obs_interval"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be >= 0")
        if self.path_selection not in PATH_SELECTION_MODES:
            raise SimulationError(
                f"path_selection must be one of {PATH_SELECTION_MODES}, "
                f"got {self.path_selection!r}"
            )
        if self.switch_model not in SWITCH_MODELS:
            raise SimulationError(
                f"switch_model must be one of {SWITCH_MODELS}, "
                f"got {self.switch_model!r}"
            )

    @property
    def message_flits(self) -> int:
        return self.packet_flits * self.packets_per_message

    @property
    def end_of_window(self) -> int:
        return self.warmup_cycles + self.measure_cycles

    @property
    def horizon(self) -> int:
        return self.end_of_window + self.drain_cycles

    def scaled(self, **overrides) -> "FlitConfig":
        """A copy with some fields replaced (dataclasses.replace shim
        with validation)."""
        from dataclasses import replace

        return replace(self, **overrides)
