"""Workload models for the flit-level simulator.

Message arrivals are Poisson (exponential inter-arrival times) with a
mean set by the *offered load*, expressed as flits per cycle per node
normalized to link capacity — offered load 1.0 means every host tries to
inject one flit every cycle.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import SimulationError


class Workload(ABC):
    """Destination model + offered load for one run."""

    def __init__(self, load: float):
        if not 0.0 < load <= 1.0:
            raise SimulationError(f"offered load must be in (0, 1], got {load}")
        self.load = load

    def mean_interarrival(self, message_flits: int) -> float:
        """Mean cycles between message creations at one host."""
        return message_flits / self.load

    @abstractmethod
    def pick_destination(self, src: int, n_procs: int, rng: random.Random) -> int:
        """Destination of the next message from ``src`` (never ``src``)."""


class UniformRandom(Workload):
    """Uniform random traffic (the paper's flit-level workload): every
    other node is an equally likely destination."""

    name = "uniform"

    def pick_destination(self, src: int, n_procs: int, rng: random.Random) -> int:
        d = rng.randrange(n_procs - 1)
        return d + 1 if d >= src else d


class FixedPermutation(Workload):
    """Permutation traffic at the flit level: host ``i`` always sends to
    ``perm[i]`` (fixed points inject no traffic)."""

    name = "permutation"

    def __init__(self, load: float, perm):
        super().__init__(load)
        self.perm = np.asarray(perm, dtype=np.int64)
        if sorted(self.perm.tolist()) != list(range(len(self.perm))):
            raise SimulationError("perm is not a permutation")

    def pick_destination(self, src: int, n_procs: int, rng: random.Random) -> int:
        if len(self.perm) != n_procs:
            raise SimulationError(
                f"permutation is over {len(self.perm)} nodes, network has {n_procs}"
            )
        dst = int(self.perm[src])
        return -1 if dst == src else dst  # -1: host stays silent


class HotspotWorkload(Workload):
    """Uniform traffic with a fraction of messages redirected to a small
    hot set — used by ablation benches to stress ejection links."""

    name = "hotspot"

    def __init__(self, load: float, hot_nodes, hot_fraction: float = 0.2):
        super().__init__(load)
        self.hot_nodes = sorted(set(int(x) for x in hot_nodes))
        if not self.hot_nodes:
            raise SimulationError("need at least one hot node")
        if not 0.0 <= hot_fraction <= 1.0:
            raise SimulationError("hot_fraction must be in [0, 1]")
        self.hot_fraction = hot_fraction

    def pick_destination(self, src: int, n_procs: int, rng: random.Random) -> int:
        if rng.random() < self.hot_fraction:
            choices = [h for h in self.hot_nodes if h != src]
            if choices:
                return rng.choice(choices)
        d = rng.randrange(n_procs - 1)
        return d + 1 if d >= src else d
