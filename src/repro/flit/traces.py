"""Trace-driven flit-level workloads.

A *trace* is an explicit list of timed message injections ``(cycle,
src, dst)``.  Traces make flit runs exactly repeatable across schemes
(identical arrivals, only routing differs — removing workload noise
from A/B comparisons) and let application-level schedules, such as the
phased collectives in :mod:`repro.traffic.collectives`, be replayed on
the dynamic network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SimulationError
from repro.flit.workload import Workload


@dataclass(frozen=True)
class TraceEntry:
    """One message injection."""

    cycle: int
    src: int
    dst: int


def synthesize_trace(
    workload: Workload,
    n_procs: int,
    message_flits: int,
    horizon: int,
    *,
    seed: int = 0,
) -> list[TraceEntry]:
    """Pre-draw a stochastic workload into a concrete trace.

    Reproduces the engine's own arrival process (Poisson gaps, the
    workload's destination model) so a recorded trace behaves like the
    live workload — but can then be replayed identically under several
    routing schemes.
    """
    rng = random.Random(seed)
    mean_gap = workload.mean_interarrival(message_flits)
    rate = 1.0 / mean_gap
    entries: list[TraceEntry] = []
    for src in range(n_procs):
        # Float arrival clock, floored once per message — the same
        # unbiased arrival process as the live engine (flooring every
        # gap would understate the requested injection rate).
        clock = rng.expovariate(rate)
        t = int(clock) + 1
        while t < horizon:
            dst = workload.pick_destination(src, n_procs, rng)
            if dst >= 0:
                entries.append(TraceEntry(t, src, dst))
            clock += rng.expovariate(rate)
            t = int(clock) + 1
    entries.sort(key=lambda e: (e.cycle, e.src))
    return entries


def phased_trace(
    phases: Iterable,
    messages_per_phase: int,
    phase_gap: int,
    *,
    start: int = 1,
) -> list[TraceEntry]:
    """Compile a phased schedule (e.g. shift all-to-all) into a trace.

    Each phase is a permutation-like :class:`~repro.traffic.matrix.
    TrafficMatrix`; every network pair of the phase injects
    ``messages_per_phase`` back-to-back messages at the phase start, and
    phases are ``phase_gap`` cycles apart.
    """
    if messages_per_phase < 1 or phase_gap < 1:
        raise SimulationError("messages_per_phase and phase_gap must be >= 1")
    entries: list[TraceEntry] = []
    t = start
    for tm in phases:
        src, dst, _ = tm.network_pairs()
        for s, d in zip(src, dst):
            for _ in range(messages_per_phase):
                entries.append(TraceEntry(t, int(s), int(d)))
        t += phase_gap
    entries.sort(key=lambda e: (e.cycle, e.src))
    return entries


class TraceWorkload(Workload):
    """Replays a fixed trace through the engine.

    The engine polls each host's next injection; this adapter serves the
    per-host sub-trace in order, ignoring the Poisson clock except as a
    polling tick.  Because polling granularity is the engine's
    injection process, the adapter exposes :meth:`entries_for` so the
    simulator can instead schedule exact injection events — which
    :meth:`repro.flit.engine.FlitSimulator.run_trace` does.
    """

    name = "trace"

    def __init__(self, entries: Sequence[TraceEntry]):
        super().__init__(load=1.0)  # nominal; unused for exact replay
        self.entries = tuple(entries)
        for e in self.entries:
            if e.cycle < 0 or e.src == e.dst:
                raise SimulationError(f"bad trace entry {e}")

    def pick_destination(self, src: int, n_procs: int, rng: random.Random) -> int:
        raise SimulationError(
            "TraceWorkload must be run via FlitSimulator.run_trace()"
        )
