"""Statistics collection for flit-level runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FlitRunResult:
    """Outcome of one flit-level run at a fixed offered load.

    All rates are normalized flits/cycle/node, so 1.0 is full link
    capacity at every host.

    Attributes
    ----------
    offered_load:
        The workload's target injection rate.
    injected_load:
        Rate actually *created* inside the measurement window (equals
        offered up to Poisson noise; sources are never throttled because
        injection queues are unbounded).
    throughput:
        Rate *delivered* inside the measurement window — the paper's
        aggregate-throughput metric.  Tracks offered load below
        saturation and flattens/decays beyond it.
    mean_delay / p95_delay / max_delay:
        Message latency statistics (creation to tail delivery) over
        measured messages that completed; NaN when none did.
    messages_measured / messages_completed:
        Window accounting; a completion ratio well below 1 flags
        operation beyond saturation.
    sim_cycles:
        Total simulated cycles including drain.
    events:
        Engine events processed (performance diagnostic).
    """

    offered_load: float
    injected_load: float
    throughput: float
    mean_delay: float
    p95_delay: float
    max_delay: float
    messages_measured: int
    messages_completed: int
    sim_cycles: int
    events: int

    @property
    def completion_ratio(self) -> float:
        if self.messages_measured == 0:
            return 1.0
        return self.messages_completed / self.messages_measured

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: delivered rate noticeably below
        offered, or a meaningful share of measured messages never
        finished draining."""
        return (self.throughput < 0.92 * self.offered_load
                or self.completion_ratio < 0.98)

    def summary(self) -> str:
        return (f"load={self.offered_load:.2f} thr={self.throughput:.3f} "
                f"delay={self.mean_delay:.1f} "
                f"done={self.messages_completed}/{self.messages_measured}")


def delay_stats(delays: list[int]) -> tuple[float, float, float]:
    """(mean, p95, max) of a delay list; NaNs when empty."""
    if not delays:
        nan = float("nan")
        return nan, nan, nan
    arr = np.asarray(delays, dtype=np.float64)
    return float(arr.mean()), float(np.percentile(arr, 95)), float(arr.max())
