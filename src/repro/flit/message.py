"""Messages and packets for the flit-level engine.

Messages are the unit of delay measurement (created at a host, delivered
when the tail flit of their last packet reaches the destination); packets
are the unit of switching and flow control.  Individual flits are never
materialized — virtual cut-through lets the engine reason about packets
with flit-time arithmetic, which is what makes the simulation tractable
in Python (see DESIGN.md Section 7).
"""

from __future__ import annotations


class Message:
    """One application message.

    ``packets_remaining`` counts undelivered packets; the message is
    complete when it reaches zero, at which point ``delivered_at`` holds
    the tail-arrival cycle of the last packet.
    """

    __slots__ = ("uid", "src", "dst", "created_at", "packets_remaining",
                 "delivered_at", "measured")

    def __init__(self, uid: int, src: int, dst: int, created_at: int,
                 n_packets: int, measured: bool):
        self.uid = uid
        self.src = src
        self.dst = dst
        self.created_at = created_at
        self.packets_remaining = n_packets
        self.delivered_at = -1
        self.measured = measured

    @property
    def delay(self) -> int:
        """Creation-to-full-delivery latency in cycles (-1 if in flight)."""
        if self.delivered_at < 0:
            return -1
        return self.delivered_at - self.created_at


class Packet:
    """One packet in flight.

    ``path`` is the tuple of directed channel (link) ids from source host
    to destination host; ``hop`` indexes the next channel to traverse.
    ``holding`` is the channel whose receive buffer currently stores the
    packet (-1 while still in the source's unbounded injection queue) —
    its credit is released when the packet's tail leaves that buffer.
    """

    __slots__ = ("message", "path", "hop", "holding")

    def __init__(self, message: Message, path: tuple[int, ...]):
        self.message = message
        self.path = path
        self.hop = 0
        self.holding = -1

    @property
    def next_channel(self) -> int:
        return self.path[self.hop]

    @property
    def at_last_hop(self) -> bool:
        return self.hop == len(self.path) - 1
