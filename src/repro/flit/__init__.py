"""Flit-level simulation: virtual cut-through with credit flow control.

Event-driven, packet-granular with flit-time arithmetic (see
:mod:`repro.flit.engine`).  Workloads inject Poisson message streams;
sweeps reproduce the paper's delay-vs-load curves and maximum-throughput
tables.
"""

from repro.flit.batched import (
    BatchedFlitSimulator,
    ENGINES,
    flit_engine_class,
    make_flit_simulator,
)
from repro.flit.config import FlitConfig, PATH_SELECTION_MODES
from repro.flit.engine import FlitSimulator
from repro.flit.message import Message, Packet
from repro.flit.stats import FlitRunResult, delay_stats
from repro.flit.sweep import SweepResult, default_loads, load_sweep
from repro.flit.traces import (
    TraceEntry,
    TraceWorkload,
    phased_trace,
    synthesize_trace,
)
from repro.flit.workload import (
    FixedPermutation,
    HotspotWorkload,
    UniformRandom,
    Workload,
)

__all__ = [
    "FlitConfig",
    "PATH_SELECTION_MODES",
    "FlitSimulator",
    "BatchedFlitSimulator",
    "ENGINES",
    "flit_engine_class",
    "make_flit_simulator",
    "Message",
    "Packet",
    "FlitRunResult",
    "delay_stats",
    "SweepResult",
    "default_loads",
    "load_sweep",
    "Workload",
    "UniformRandom",
    "FixedPermutation",
    "HotspotWorkload",
    "TraceEntry",
    "TraceWorkload",
    "synthesize_trace",
    "phased_trace",
]
