"""Event-driven virtual cut-through network engine.

Models the paper's flit-level simulator: virtual cut-through (VCT)
switching with credit-based flow control between switches and a single
virtual channel, "to closely resemble InfiniBand networks".

Switch model
------------
* Every directed channel terminates in a FIFO *input buffer* of
  ``buffer_packets`` slots at the receiving switch; the sender holds one
  credit per free slot and a packet may only start crossing a channel
  when a credit is available (VCT reserves a full packet slot so a
  blocked packet can sit in place).
* Only the packet at the *head* of an input buffer can be forwarded
  (single VC, FIFO buffers) — head-of-line blocking is modeled, which is
  the contention mechanism limited multi-path routing attacks.
* Buffers are read at link rate: after a head packet starts leaving, the
  next packet becomes eligible ``packet_flits`` cycles later.
* Each output port serves competing input buffers in request (FIFO)
  order and transmits one flit per cycle, so a packet occupies the port
  for ``packet_flits`` cycles.
* Cut-through: a header can be forwarded as soon as it has arrived
  (``wire_delay`` + ``routing_delay`` after the upstream transmission
  started) — latency per hop is a couple of cycles, not a packet time.
* Hosts have unbounded injection queues (delay includes source
  queueing) and sink packets at link rate.

Granularity: packets with flit-time arithmetic.  Individual flits carry
no extra information under cut-through, so events are O(packets x hops),
independent of packet size — the property that keeps a Python flit-level
study tractable (DESIGN.md Section 7).  Blocking propagates through
credits, producing tree saturation beyond the knee exactly as in the
paper's discussion.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.flit.config import FlitConfig
from repro.flit.message import Message, Packet
from repro.flit.stats import FlitRunResult, delay_stats
from repro.obs.recorder import get_recorder
from repro.flit.workload import Workload
from repro.routing.base import RoutingScheme
from repro.routing.vectorized import compile_routes
from repro.topology.xgft import XGFT

# Event kinds (heap entries are (time, seq, kind, payload)).
_INJECT = 0       # payload: host id
_HEADER = 1       # payload: Packet — header arrived at next input buffer
_PORT_FREE = 2    # payload: channel id — output port finished a packet
_CREDIT = 3       # payload: channel id — downstream slot freed
_DELIVER = 4      # payload: Packet — tail reached the destination host
_HEAD_READY = 5   # payload: buffer id — buffer read port free for next head


class _Fifo:
    """Append-only FIFO with an amortized O(1) pop-from-front."""

    __slots__ = ("items", "head")

    def __init__(self):
        self.items: list = []
        self.head = 0

    def push(self, item) -> None:
        self.items.append(item)

    def pop(self):
        item = self.items[self.head]
        self.head += 1
        if self.head > 64 and self.head * 2 > len(self.items):
            del self.items[: self.head]
            self.head = 0
        return item

    def peek(self):
        return self.items[self.head]

    def __len__(self) -> int:
        return len(self.items) - self.head


def free_vc(credits: list, channel: int, n_vcs: int) -> int:
    """A sub-channel (virtual channel lane) of ``channel`` holding a
    downstream credit, or -1 when every VC is exhausted.

    VCs are scanned in lane order, so lane 0 is preferred while it has
    credits — the deterministic tie-break both engines share.
    """
    base = channel * n_vcs
    for v in range(n_vcs):
        if credits[base + v] > 0:
            return base + v
    return -1


class FlitSimulator:
    """Flit-level simulator bound to one topology and routing scheme.

    Route sets for all SD pairs are compiled once (vectorized) and reused
    across runs, so load sweeps only pay the event loop.

    >>> from repro.topology import m_port_n_tree
    >>> from repro.routing import make_scheme
    >>> from repro.flit import FlitConfig, FlitSimulator, UniformRandom
    >>> xgft = m_port_n_tree(4, 2)
    >>> sim = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"),
    ...                     FlitConfig(warmup_cycles=200, measure_cycles=500))
    >>> result = sim.run(UniformRandom(0.2))
    >>> result.throughput > 0
    True
    """

    def __init__(self, xgft: XGFT, scheme: RoutingScheme, config: FlitConfig,
                 *, compiled=None, degraded=None):
        if scheme.xgft != xgft:
            raise SimulationError("scheme was built for a different topology")
        self.xgft = xgft
        self.scheme = scheme
        self.config = config
        # Degraded fabrics: failed channels carry zero credits (below),
        # and the route table — compiled from a fault-aware scheme —
        # never references them.  When the scheme is a DegradedScheme the
        # fabric is picked up from it automatically.
        if degraded is None:
            degraded = getattr(scheme, "degraded", None)
        if degraded is not None and degraded.xgft != xgft:
            raise SimulationError(
                "degraded fabric was built for a different topology")
        self.degraded = degraded
        if compiled is not None:
            # Reuse an existing compiled plan's incidence instead of
            # re-deriving every pair's link sequence.
            if compiled.xgft != xgft:
                raise SimulationError(
                    "compiled plan was built for a different topology")
            self.routes = compiled.route_table()
        else:
            self.routes = compile_routes(xgft, scheme)
        if self.degraded is not None and not self.degraded.is_pristine:
            link_ok = self.degraded.link_ok
            for paths in self.routes.values():
                for path in paths:
                    for c in path:
                        if not link_ok[c]:
                            raise SimulationError(
                                f"route table references failed channel {c}; "
                                f"wrap the scheme in DegradedScheme first")
        self._n_procs = xgft.n_procs
        self._n_channels = xgft.n_links

    @classmethod
    def from_tables(
        cls,
        n_hosts: int,
        n_channels: int,
        routes: dict[int, list[tuple[int, ...]]],
        config: FlitConfig,
    ) -> "FlitSimulator":
        """Build a simulator from precompiled routes on an arbitrary
        channel graph (e.g. :func:`repro.fabric.evaluate.
        compile_flit_routes` for a — possibly degraded — discovered
        fabric).

        ``routes`` maps pair keys ``src * n_hosts + dst`` to non-empty
        lists of channel-id paths; every ordered host pair that the
        workload can produce must be present.

        Keys and channel ids are validated up front: a route referencing
        a channel ``>= n_channels`` (or a key implying a negative or
        out-of-range src/dst) would otherwise surface mid-event-loop as
        a raw ``IndexError`` on the credit list, long after the bad
        table was accepted.
        """
        if n_hosts < 1 or n_channels < 1:
            raise SimulationError("need at least one host and one channel")
        n_pairs = n_hosts * n_hosts
        for key, paths in routes.items():
            if not 0 <= key < n_pairs:
                raise SimulationError(
                    f"pair key {key} outside [0, {n_pairs}); keys are "
                    f"src * n_hosts + dst with src, dst in [0, {n_hosts})")
            if not paths:
                raise SimulationError(f"pair key {key} has no paths")
            for path in paths:
                for c in path:
                    if not 0 <= c < n_channels:
                        raise SimulationError(
                            f"route for pair key {key} references channel "
                            f"{c} outside [0, {n_channels})")
        sim = cls.__new__(cls)
        sim.xgft = None
        sim.scheme = None
        sim.config = config
        sim.routes = routes
        sim.degraded = None
        sim._n_procs = n_hosts
        sim._n_channels = n_channels
        return sim

    # ------------------------------------------------------------------
    def run_trace(self, entries, *, seed: int | None = None) -> FlitRunResult:
        """Replay an explicit injection trace (see :mod:`repro.flit.traces`).

        Every ``(cycle, src, dst)`` entry becomes one message at exactly
        that cycle, regardless of the measurement window (entries inside
        ``[warmup, warmup+measure)`` are the measured ones).  The seed
        only affects path selection randomness.
        """
        return self.run(None, seed=seed, _trace=tuple(entries))

    def run(self, workload: Workload | None, *, seed: int | None = None,
            recorder=None, _trace=None) -> FlitRunResult:
        """Simulate ``workload`` and return window statistics.

        ``recorder`` (default: the ambient :func:`repro.obs.
        get_recorder`) receives, when enabled, a ``flit_interval`` event
        per observation interval (injected/delivered flits, credit
        stalls, total buffer occupancy), an end-to-end message-delay
        histogram, and run totals.  With the no-op recorder the event
        loop pays a single integer comparison per event.
        """
        if workload is None and _trace is None:
            raise SimulationError("need a workload or a trace")
        cfg = self.config
        rec = recorder if recorder is not None else get_recorder()
        record = rec.enabled
        n_procs = self._n_procs
        n_channels = self._n_channels
        rng = random.Random(cfg.seed if seed is None else seed)

        packet_flits = cfg.packet_flits
        wire = cfg.wire_delay
        route_delay = cfg.routing_delay
        warmup = cfg.warmup_cycles
        window_end = cfg.end_of_window
        horizon = cfg.horizon
        per_packet = cfg.path_selection == "per-packet"
        round_robin = cfg.path_selection == "round-robin"
        input_fifo = cfg.switch_model == "input-fifo"

        # Sub-channel id for (channel c, virtual channel v): c*V + v.
        # Buffer ids: 0..n_channels*V-1 = the input buffer of sub-channel
        # b; then n_channels*V..+n_procs-1 = host injection queues.
        n_vcs = cfg.virtual_channels
        n_sub = n_channels * n_vcs
        n_buffers = n_sub + n_procs
        buffers = [_Fifo() for _ in range(n_buffers)]
        read_free = [0] * n_buffers      # buffer read port free time
        head_pending = [False] * n_buffers  # current head already requested

        busy_until = [0] * n_channels    # physical output port free time
        credits = [cfg.buffer_packets] * n_sub
        if self.degraded is not None and not self.degraded.is_pristine:
            # A failed channel never grants credits: even if a stray
            # route referenced it, no packet could start crossing.
            for c, ok in enumerate(self.degraded.link_ok):
                if not ok:
                    base = c * n_vcs
                    for v in range(n_vcs):
                        credits[base + v] = 0
        requests: list[_Fifo] = [_Fifo() for _ in range(n_channels)]
        rr_state: dict[int, int] = {}

        heap: list[tuple[int, int, int, object]] = []
        seq = 0

        def push(time: int, kind: int, payload) -> None:
            nonlocal seq
            heappush(heap, (time, seq, kind, payload))
            seq += 1

        # Arrival process: per-host Poisson with mean gap ``mean_gap``.
        # Arrival times accumulate as floats and are floored once per
        # message (+1 keeps the first arrival >= cycle 1): flooring each
        # gap independently (the old ``int(gap) + 1`` per draw) adds an
        # expected half cycle per message, biasing the injected load low
        # by load/(2*mean_gap) — ~15% at high load with short messages.
        inject_clock = [0.0] * n_procs
        if _trace is None:
            mean_gap = workload.mean_interarrival(cfg.message_flits)
            rate = 1.0 / mean_gap
            for host in range(n_procs):
                inject_clock[host] = rng.expovariate(rate)
                push(int(inject_clock[host]) + 1, _INJECT, host)
        else:
            rate = 0.0
            for entry in _trace:
                push(entry.cycle, _INJECT, (entry.src, entry.dst))

        # Window statistics.
        delays: list[int] = []
        messages_measured = 0
        messages_completed = 0
        flits_created = 0
        flits_delivered = 0
        next_uid = 0
        events = 0
        now = 0

        # Telemetry: per-interval trace state.  With recording off,
        # next_mark sits past the horizon so the per-event check is one
        # dead integer comparison.
        obs_interval = cfg.obs_interval or max(1, cfg.measure_cycles // 20)
        next_mark = obs_interval if record else horizon + 1
        interval_injected = 0   # all flits, not only measured-window ones
        interval_delivered = 0
        last_stalls = 0
        credit_stalls = 0

        def transmit(pkt: Packet, c: int, sub: int, t: int) -> None:
            """Common bookkeeping once ``pkt`` wins output channel ``c``
            on sub-channel (VC) ``sub``."""
            credits[sub] -= 1
            busy_until[c] = t + packet_flits
            push(t + packet_flits, _PORT_FREE, c)
            if pkt.holding >= 0:
                # Tail leaves the previous input buffer once fully read out.
                push(t + packet_flits, _CREDIT, pkt.holding)
            pkt.holding = sub
            if pkt.hop == len(pkt.path) - 1:
                push(t + wire + packet_flits, _DELIVER, pkt)
            else:
                push(t + wire + route_delay, _HEADER, pkt)

        def request_head(b: int, t: int) -> None:
            """input-fifo: register the head of buffer ``b`` with its
            output port once the buffer read port is free."""
            if head_pending[b] or len(buffers[b]) == 0:
                return
            if read_free[b] > t:
                # Buffer read port still streaming the previous packet out;
                # retry when it frees (idempotent thanks to head_pending).
                push(read_free[b], _HEAD_READY, b)
                return
            head_pending[b] = True
            pkt: Packet = buffers[b].peek()
            c = pkt.path[pkt.hop]
            requests[c].push(b)
            serve(c, t)

        def serve_input_fifo(c: int, t: int) -> None:
            """Transmit the oldest requesting buffer's head on ``c`` if
            the port is free and a downstream credit (any VC) exists."""
            if busy_until[c] > t or len(requests[c]) == 0:
                return
            sub = free_vc(credits, c, n_vcs)
            if sub < 0:
                nonlocal credit_stalls
                credit_stalls += 1
                return
            b = requests[c].pop()
            pkt: Packet = buffers[b].pop()
            head_pending[b] = False
            read_free[b] = t + packet_flits
            if len(buffers[b]):
                push(read_free[b], _HEAD_READY, b)
            transmit(pkt, c, sub, t)

        def serve_output_queued(c: int, t: int) -> None:
            """output-queued: any buffered packet bound for ``c`` may go
            (no head-of-line coupling between different outputs)."""
            if busy_until[c] > t or len(requests[c]) == 0:
                return
            sub = free_vc(credits, c, n_vcs)
            if sub < 0:
                nonlocal credit_stalls
                credit_stalls += 1
                return
            transmit(requests[c].pop(), c, sub, t)

        serve = serve_input_fifo if input_fifo else serve_output_queued

        def enqueue(pkt: Packet, t: int) -> None:
            """Hand a packet (header) to its next forwarding stage."""
            if input_fifo:
                b = pkt.holding if pkt.holding >= 0 else n_sub + pkt.message.src
                buffers[b].push(pkt)
                request_head(b, t)
            else:
                c = pkt.path[pkt.hop]
                requests[c].push(pkt)
                serve(c, t)

        while heap:
            now, _, kind, payload = heappop(heap)
            if now > horizon:
                break
            events += 1

            while now >= next_mark:  # flush observation intervals
                rec.event(
                    "flit_interval",
                    t=next_mark,
                    injected=interval_injected,
                    delivered=interval_delivered,
                    credit_stalls=credit_stalls - last_stalls,
                    occupancy=sum(len(b) for b in buffers),
                )
                interval_injected = 0
                interval_delivered = 0
                last_stalls = credit_stalls
                next_mark += obs_interval

            if kind == _INJECT:
                if type(payload) is tuple:  # trace replay: explicit dest
                    host, dst = payload
                    reschedule = False
                else:
                    host = payload
                    dst = workload.pick_destination(host, n_procs, rng)
                    reschedule = True
                if dst >= 0:
                    if record:
                        interval_injected += cfg.message_flits
                    measured = warmup <= now < window_end
                    msg = Message(next_uid, host, dst, now,
                                  cfg.packets_per_message, measured)
                    next_uid += 1
                    if measured:
                        messages_measured += 1
                        flits_created += cfg.message_flits
                    paths = self.routes[host * n_procs + dst]
                    if round_robin:
                        key = host * n_procs + dst
                        base = rr_state.get(key, 0)
                        rr_state[key] = (base + cfg.packets_per_message) % len(paths)
                    elif not per_packet:
                        path = paths[rng.randrange(len(paths))]
                    for i in range(cfg.packets_per_message):
                        if per_packet:
                            path = paths[rng.randrange(len(paths))]
                        elif round_robin:
                            path = paths[(base + i) % len(paths)]
                        enqueue(Packet(msg, path), now)
                if reschedule:
                    clock = inject_clock[host] + rng.expovariate(rate)
                    inject_clock[host] = clock
                    nxt = int(clock) + 1
                    if nxt < window_end:
                        push(nxt, _INJECT, host)

            elif kind == _HEADER:
                pkt = payload
                pkt.hop += 1
                enqueue(pkt, now)

            elif kind == _PORT_FREE:
                serve(payload, now)

            elif kind == _CREDIT:
                credits[payload] += 1
                serve(payload // n_vcs, now)

            elif kind == _HEAD_READY:
                request_head(payload, now)

            else:  # _DELIVER
                pkt = payload
                credits[pkt.holding] += 1  # host drains at link rate
                serve(pkt.holding // n_vcs, now)
                msg = pkt.message
                msg.packets_remaining -= 1
                if record:
                    interval_delivered += packet_flits
                if warmup <= now < window_end:
                    flits_delivered += packet_flits
                if msg.packets_remaining == 0:
                    msg.delivered_at = now
                    if msg.measured:
                        messages_completed += 1
                        delays.append(msg.delay)

        if record:
            rec.count("flit.runs", 1)
            rec.count("flit.events", events)
            rec.count("flit.flits_injected", flits_created)
            rec.count("flit.flits_delivered", flits_delivered)
            rec.count("flit.credit_stalls", credit_stalls)
            rec.count("flit.messages_measured", messages_measured)
            rec.count("flit.messages_completed", messages_completed)
            for d in delays:
                rec.observe("flit.message_delay", d)

        mean_delay, p95_delay, max_delay = delay_stats(delays)
        denom = cfg.measure_cycles * n_procs
        injected = flits_created / denom if denom else 0.0
        return FlitRunResult(
            offered_load=workload.load if workload is not None else injected,
            injected_load=injected,
            throughput=flits_delivered / denom if denom else 0.0,
            mean_delay=mean_delay,
            p95_delay=p95_delay,
            max_delay=max_delay,
            messages_measured=messages_measured,
            messages_completed=messages_completed,
            sim_cycles=min(now, horizon),
            events=events,
        )
