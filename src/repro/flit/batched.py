"""Batched calendar-queue flit engine, bit-identical to the reference.

``BatchedFlitSimulator`` produces exactly the event sequence of
:class:`repro.flit.engine.FlitSimulator` — same results, same telemetry,
bit for bit — but restructures *how* the sequence is produced, trading
the reference's readable object/heap/closure style for flat batch-built
state (the ROADMAP's "native-speed flit engine" item, built with the
dual-implementation-plus-parity pattern of the flow split and the churn
differential oracle):

* **Injection plan (phase A).**  Every RNG draw in the reference happens
  while processing an ``_INJECT`` event, and the relative order of
  inject events is independent of the network simulation (each host's
  next arrival depends only on its own Poisson clock).  The plan
  therefore pre-walks the injection process alone — a small heap over
  hosts replicating the reference's draw order exactly (destination,
  path choices, arrival clock, per pop) — and materializes flat
  per-message and per-packet arrays: creation cycle, measured flag, and
  one route tuple per packet.  Phase B is then RNG-free.

* **Calendar queue (phase B).**  The reference orders events by
  ``(time, seq)`` with ``seq`` a global push counter.  A per-cycle
  bucket appended in push order and drained in order reproduces that
  order exactly: ties share a bucket, and append order *is* seq order.
  O(log n) heap churn with tuple allocation becomes an O(1) append of
  one packed int (``kind | payload << 3``) through a pre-bound
  ``list.append`` table.  Buckets extend ``wire + packet + routing``
  cycles past the horizon (the farthest any event schedules ahead), so
  the hot path never range-checks a push; events parked in that slack
  zone are exactly the reference's "pushed past the horizon, never
  popped" events and only matter for the ``sim_cycles`` clamp.

* **Flat state and event fusion.**  Packets and messages live in
  parallel lists indexed by dense ids (packet ``j`` of message ``m`` is
  ``m * packets_per_message + j``) instead of per-packet objects, and
  the adjacent ``_PORT_FREE``/``_CREDIT`` pair that ``transmit`` pushes
  back-to-back at the same cycle is fused into a single bucket entry
  (still counted as two events, preserving the ``events`` statistic).

Numpy carries the order-insensitive bulk work (stable trace ordering,
plan summaries, :func:`~repro.flit.stats.delay_stats`); per-event state
stays in python lists because scalar list indexing beats ndarray item
access several-fold, and the event sequence — which the bit-parity
contract freezes, down to FIFO arbitration order — is irreducibly
sequential.  The payoff is wall-clock: the packed-int kernel runs the
8-port 3-tree ≥5x faster than the reference (gated by ``repro bench
--only flit``), which is what extends the flit axis to the 16-port
(1024-proc) trees the related work evaluates.

Parity contract: every :class:`~repro.flit.stats.FlitRunResult` field,
the ``flit.*`` recorder counters, the message-delay histogram, and the
per-interval ``flit_interval`` telemetry are bit-identical to the
reference for any seed, config, scheme, or trace;
``tests/flit/test_engine_parity.py`` enforces this differentially.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappop, heappush

import numpy as np

from repro.errors import SimulationError
from repro.flit import native
from repro.flit.config import FlitConfig
from repro.flit.engine import FlitSimulator, free_vc
from repro.flit.stats import FlitRunResult, delay_stats
from repro.flit.workload import Workload
from repro.obs.recorder import get_recorder

# Packed event kinds (low 3 bits of a bucket entry; payload above).
_HEADER = 0      # payload: packet id
_PORTCREDIT = 1  # payload: channel | (holding+1) << cbits (fused pair)
_DELIVER = 2     # payload: packet id
_INJECT = 3      # payload: injection-plan event id
_HEAD_READY = 4  # payload: buffer id (input-fifo only)

#: Densest calendar the engine will allocate (one bucket per cycle up
#: front); configs past this fall back to the reference's sparse heap,
#: where a per-cycle structure would dwarf the event set.
_DENSE_HORIZON_LIMIT = 262_144

#: Registered flit engines, mirroring the flow layer's selector.
ENGINES = ("reference", "batched")


def flit_engine_class(engine: str) -> type[FlitSimulator]:
    """The simulator class for ``engine`` (see :data:`ENGINES`)."""
    if engine == "reference":
        return FlitSimulator
    if engine == "batched":
        return BatchedFlitSimulator
    raise SimulationError(
        f"unknown flit engine {engine!r}; choose from {ENGINES}")


def make_flit_simulator(engine: str, xgft, scheme, config: FlitConfig, *,
                        compiled=None, degraded=None) -> FlitSimulator:
    """Build the selected engine's simulator (shared ``--engine`` path)."""
    return flit_engine_class(engine)(
        xgft, scheme, config, compiled=compiled, degraded=degraded)


class BatchedFlitSimulator(FlitSimulator):
    """Drop-in, bit-identical, faster :class:`FlitSimulator`.

    Construction (route compilation, degraded-fabric validation,
    :meth:`from_tables`) is inherited unchanged; only :meth:`run` is
    replaced by the plan/kernel split described in the module docstring.

    >>> from repro.topology import m_port_n_tree
    >>> from repro.routing import make_scheme
    >>> from repro.flit import FlitConfig, FlitSimulator, UniformRandom
    >>> xgft = m_port_n_tree(4, 2)
    >>> cfg = FlitConfig(warmup_cycles=200, measure_cycles=500)
    >>> ref = FlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
    >>> fast = BatchedFlitSimulator(xgft, make_scheme(xgft, "d-mod-k"), cfg)
    >>> fast.run(UniformRandom(0.2)) == ref.run(UniformRandom(0.2))
    True
    """

    # ------------------------------------------------------------------
    def _injection_plan(self, workload: Workload | None, rng: random.Random,
                        trace):
        """Phase A: replay the arrival process alone, in the reference's
        exact draw order, into flat arrays.

        Returns ``(ev_cycle, ev_msg, ev_child, n_initial, msg_src,
        msg_created, msg_measured, pkt_path, pkt_last, overflow)``:
        injection events in *push order* (cycle, message id or -1 for a
        silent poll, successor event id or -1), per-message and
        per-packet state, and whether any event lands past the horizon
        (which pins ``sim_cycles`` to the horizon, as in the reference).
        """
        cfg = self.config
        n_procs = self._n_procs
        routes = self.routes
        ppm = cfg.packets_per_message
        warmup = cfg.warmup_cycles
        window_end = cfg.end_of_window
        horizon = cfg.horizon
        per_packet = cfg.path_selection == "per-packet"
        round_robin = cfg.path_selection == "round-robin"

        ev_cycle: list[int] = []
        ev_msg: list[int] = []
        ev_child: list[int] = []
        msg_src: list[int] = []
        msg_created: list[int] = []
        msg_measured: list[bool] = []
        pkt_path: list[tuple[int, ...]] = []
        pkt_last: list[int] = []
        rr_state: dict[int, int] = {}
        overflow = False
        randrange = rng.randrange

        def emit_message(host: int, dst: int, cyc: int) -> None:
            msg_src.append(host)
            msg_created.append(cyc)
            msg_measured.append(warmup <= cyc < window_end)
            paths = routes[host * n_procs + dst]
            n_paths = len(paths)
            if round_robin:
                key = host * n_procs + dst
                base = rr_state.get(key, 0)
                rr_state[key] = (base + ppm) % n_paths
                for j in range(ppm):
                    path = paths[(base + j) % n_paths]
                    pkt_path.append(path)
                    pkt_last.append(len(path) - 1)
            elif per_packet:
                for _ in range(ppm):
                    path = paths[randrange(n_paths)]
                    pkt_path.append(path)
                    pkt_last.append(len(path) - 1)
            else:
                path = paths[randrange(n_paths)]
                last = len(path) - 1
                for _ in range(ppm):
                    pkt_path.append(path)
                    pkt_last.append(last)

        if trace is not None:
            n_initial = len(trace)
            ev_cycle = [e.cycle for e in trace]
            ev_msg = [-1] * n_initial
            ev_child = [-1] * n_initial
            # Stable sort = the heap's (cycle, push seq) tie-break.
            if n_initial:
                order = np.argsort(
                    np.fromiter((e.cycle for e in trace), dtype=np.int64,
                                count=n_initial),
                    kind="stable")
                for i in order.tolist():
                    cyc = ev_cycle[i]
                    if cyc > horizon:
                        overflow = True
                        break
                    dst = trace[i].dst
                    if dst >= 0:
                        ev_msg[i] = len(msg_src)
                        emit_message(trace[i].src, dst, cyc)
        else:
            mean_gap = workload.mean_interarrival(cfg.message_flits)
            rate = 1.0 / mean_gap
            expovariate = rng.expovariate
            clock = [0.0] * n_procs
            ev_host: list[int] = []
            heap: list[tuple[int, int]] = []
            for host in range(n_procs):
                clock[host] = expovariate(rate)
                cyc = int(clock[host]) + 1
                ev_cycle.append(cyc)
                ev_msg.append(-1)
                ev_child.append(-1)
                ev_host.append(host)
                heappush(heap, (cyc, host))
            n_initial = n_procs
            while heap:
                cyc, e = heappop(heap)
                if cyc > horizon:
                    overflow = True
                    break
                host = ev_host[e]
                dst = workload.pick_destination(host, n_procs, rng)
                if dst >= 0:
                    ev_msg[e] = len(msg_src)
                    emit_message(host, dst, cyc)
                nclock = clock[host] + expovariate(rate)
                clock[host] = nclock
                nxt = int(nclock) + 1
                if nxt < window_end:
                    cid = len(ev_cycle)
                    ev_cycle.append(nxt)
                    ev_msg.append(-1)
                    ev_child.append(-1)
                    ev_host.append(host)
                    ev_child[e] = cid
                    heappush(heap, (nxt, cid))

        return (ev_cycle, ev_msg, ev_child, n_initial, msg_src, msg_created,
                msg_measured, pkt_path, pkt_last, overflow)

    # ------------------------------------------------------------------
    def _initial_credits(self) -> list[int]:
        n_vcs = self.config.virtual_channels
        credits = [self.config.buffer_packets] * (self._n_channels * n_vcs)
        if self.degraded is not None and not self.degraded.is_pristine:
            for c, ok in enumerate(self.degraded.link_ok):
                if not ok:
                    base = c * n_vcs
                    for v in range(n_vcs):
                        credits[base + v] = 0
        return credits

    def _calendar(self, n_initial, ev_cycle):
        """Preallocated per-cycle buckets with a pre-bound append table,
        a ``slack`` overrun zone, and the initial inject events placed
        in push order (initial arrivals are the only unbounded times)."""
        cfg = self.config
        horizon = cfg.horizon
        slack = cfg.wire_delay + cfg.packet_flits + cfg.routing_delay
        buckets: list[list[int]] = [[] for _ in range(horizon + slack + 1)]
        bucket_append = [b.append for b in buckets]
        for e in range(n_initial):
            cyc = ev_cycle[e]
            if cyc <= horizon:
                bucket_append[cyc](_INJECT | e << 3)
        return buckets, bucket_append, slack

    # ------------------------------------------------------------------
    def run(self, workload: Workload | None, *, seed: int | None = None,
            recorder=None, _trace=None) -> FlitRunResult:
        """Simulate ``workload``; see :meth:`FlitSimulator.run`.

        Same contract, same bits; only the clock time differs.
        """
        if workload is None and _trace is None:
            raise SimulationError("need a workload or a trace")
        cfg = self.config
        if cfg.horizon > _DENSE_HORIZON_LIMIT:
            # A per-cycle calendar would be bigger than the event set;
            # the sparse reference heap is the right structure there.
            return FlitSimulator.run(self, workload, seed=seed,
                                     recorder=recorder, _trace=_trace)
        rec = recorder if recorder is not None else get_recorder()
        rng = random.Random(cfg.seed if seed is None else seed)
        plan = self._injection_plan(workload, rng, _trace)
        if cfg.switch_model == "input-fifo":
            stats = self._kernel_fifo(rec, plan)
        elif not rec.enabled and native.available():
            # Telemetry off: phase B is flat arrays in, flat arrays out,
            # so the compiled kernel can take it verbatim.  A recording
            # recorder needs the python kernels' interval hooks.
            slack = cfg.wire_delay + cfg.packet_flits + cfg.routing_delay
            stats = native.run_oq(plan, cfg, self._n_channels,
                                  self._initial_credits(), slack)
        elif cfg.virtual_channels == 1:
            stats = self._kernel_oq1(rec, plan)
        else:
            stats = self._kernel_oq(rec, plan)
        return self._finish(rec, workload, *stats)

    # ------------------------------------------------------------------
    def _kernel_oq1(self, rec, plan):
        """Phase B, output-queued switch model, single VC (the default
        and benchmarked configuration).

        The hot loop is fully inlined — the serve/transmit block appears
        at every call site instead of behind a function — because at the
        event rates the 5x gate demands, a python call per event is the
        budget.  With one VC the sub-channel *is* the channel, and a
        serve directly after a credit return can never stall (the
        returned credit is there), which drops two branches from the
        credit/deliver sites.  The parity suite pins every inlined copy
        to the reference.
        """
        (ev_cycle, ev_msg, ev_child, n_initial, _msg_src, msg_created,
         msg_measured, pkt_path, pkt_last, overflow) = plan
        cfg = self.config
        record = rec.enabled
        n_channels = self._n_channels
        pf = cfg.packet_flits
        wire_pf = cfg.wire_delay + pf
        wire_rd = cfg.wire_delay + cfg.routing_delay
        warmup = cfg.warmup_cycles
        window_end = cfg.end_of_window
        horizon = cfg.horizon
        ppm = cfg.packets_per_message
        message_flits = cfg.message_flits

        n_msgs = len(msg_created)
        pkt_hop = [0] * (n_msgs * ppm)
        pkt_holding = [-1] * (n_msgs * ppm)
        msg_remaining = [ppm] * n_msgs

        busy_until = [0] * n_channels
        credits = self._initial_credits()
        requests = [deque() for _ in range(n_channels)]
        req_append = [q.append for q in requests]

        cbits = n_channels.bit_length()
        cmask = (1 << cbits) - 1
        buckets, bucket_append, slack = self._calendar(n_initial, ev_cycle)

        delays: list[int] = []
        delays_append = delays.append
        messages_measured = sum(msg_measured)
        flits_created = messages_measured * message_flits
        messages_completed = 0
        flits_delivered = 0
        credit_stalls = 0
        events = 0
        last_t = 0

        obs_interval = cfg.obs_interval or max(1, cfg.measure_cycles // 20)
        next_mark = obs_interval if record else horizon + 1
        interval_injected = 0
        interval_delivered = 0
        last_stalls = 0

        t = 0
        while t <= horizon:
            bucket = buckets[t]
            if not bucket:
                t += 1
                continue
            last_t = t
            # Flush observation intervals.  ``now`` is constant across a
            # bucket, so the reference's per-event check can only fire
            # on the bucket's first event — checking once per bucket is
            # exact, not an approximation.
            while t >= next_mark:
                rec.event(
                    "flit_interval",
                    t=next_mark,
                    injected=interval_injected,
                    delivered=interval_delivered,
                    credit_stalls=credit_stalls - last_stalls,
                    occupancy=0,  # output-queued: input FIFOs unused
                )
                interval_injected = 0
                interval_delivered = 0
                last_stalls = credit_stalls
                next_mark += obs_interval
            # A list iterator observes same-cycle appends (the iterator
            # re-checks the live length), which is exactly the heap's
            # behavior for events pushed at the current cycle.
            for ev in bucket:
                kind = ev & 7

                if kind == 1:  # fused _PORT_FREE + _CREDIT
                    payload = ev >> 3
                    c = payload & cmask
                    if busy_until[c] <= t:
                        q = requests[c]
                        if q:
                            if credits[c] > 0:
                                p2 = q.popleft()
                                credits[c] -= 1
                                tt = t + pf
                                busy_until[c] = tt
                                bucket_append[tt](_PORTCREDIT | (
                                    c | (pkt_holding[p2] + 1) << cbits) << 3)
                                pkt_holding[p2] = c
                                if pkt_hop[p2] == pkt_last[p2]:
                                    bucket_append[t + wire_pf](
                                        _DELIVER | p2 << 3)
                                else:
                                    bucket_append[t + wire_rd](
                                        _HEADER | p2 << 3)
                            else:
                                credit_stalls += 1
                    h1 = payload >> cbits
                    if h1:
                        events += 1  # the fused _CREDIT half
                        c = h1 - 1  # single VC: sub-channel == channel
                        credits[c] += 1
                        if busy_until[c] <= t:
                            q = requests[c]
                            if q:
                                # The returned credit is available, so
                                # this serve cannot stall.
                                p2 = q.popleft()
                                credits[c] -= 1
                                tt = t + pf
                                busy_until[c] = tt
                                bucket_append[tt](_PORTCREDIT | (
                                    c | (pkt_holding[p2] + 1) << cbits) << 3)
                                pkt_holding[p2] = c
                                if pkt_hop[p2] == pkt_last[p2]:
                                    bucket_append[t + wire_pf](
                                        _DELIVER | p2 << 3)
                                else:
                                    bucket_append[t + wire_rd](
                                        _HEADER | p2 << 3)

                elif kind == 0:  # _HEADER: arrival at the next output
                    p = ev >> 3
                    hop = pkt_hop[p] + 1
                    pkt_hop[p] = hop
                    c = pkt_path[p][hop]
                    req_append[c](p)
                    if busy_until[c] <= t:
                        if credits[c] > 0:
                            p2 = requests[c].popleft()
                            credits[c] -= 1
                            tt = t + pf
                            busy_until[c] = tt
                            bucket_append[tt](_PORTCREDIT | (
                                c | (pkt_holding[p2] + 1) << cbits) << 3)
                            pkt_holding[p2] = c
                            if pkt_hop[p2] == pkt_last[p2]:
                                bucket_append[t + wire_pf](_DELIVER | p2 << 3)
                            else:
                                bucket_append[t + wire_rd](_HEADER | p2 << 3)
                        else:
                            credit_stalls += 1

                elif kind == 2:  # _DELIVER: tail reached the host
                    p = ev >> 3
                    c = pkt_holding[p]
                    credits[c] += 1  # host drains at link rate
                    if busy_until[c] <= t:
                        q = requests[c]
                        if q:
                            # Serve after a credit return: cannot stall.
                            p2 = q.popleft()
                            credits[c] -= 1
                            tt = t + pf
                            busy_until[c] = tt
                            bucket_append[tt](_PORTCREDIT | (
                                c | (pkt_holding[p2] + 1) << cbits) << 3)
                            pkt_holding[p2] = c
                            if pkt_hop[p2] == pkt_last[p2]:
                                bucket_append[t + wire_pf](_DELIVER | p2 << 3)
                            else:
                                bucket_append[t + wire_rd](_HEADER | p2 << 3)
                    m = p // ppm
                    rem = msg_remaining[m] - 1
                    msg_remaining[m] = rem
                    if record:
                        interval_delivered += pf
                    if warmup <= t < window_end:
                        flits_delivered += pf
                    if not rem and msg_measured[m]:
                        messages_completed += 1
                        delays_append(t - msg_created[m])

                else:  # kind == 3: _INJECT (no _HEAD_READY in this model)
                    e = ev >> 3
                    m = ev_msg[e]
                    if m >= 0:
                        if record:
                            interval_injected += message_flits
                        pb = m * ppm
                        for pj in range(pb, pb + ppm):
                            c = pkt_path[pj][0]
                            req_append[c](pj)
                            if busy_until[c] <= t:
                                if credits[c] > 0:
                                    p2 = requests[c].popleft()
                                    credits[c] -= 1
                                    tt = t + pf
                                    busy_until[c] = tt
                                    bucket_append[tt](_PORTCREDIT | (
                                        c | (pkt_holding[p2] + 1) << cbits
                                    ) << 3)
                                    pkt_holding[p2] = c
                                    if pkt_hop[p2] == pkt_last[p2]:
                                        bucket_append[t + wire_pf](
                                            _DELIVER | p2 << 3)
                                    else:
                                        bucket_append[t + wire_rd](
                                            _HEADER | p2 << 3)
                                else:
                                    credit_stalls += 1
                    child = ev_child[e]
                    if child >= 0:
                        bucket_append[ev_cycle[child]](_INJECT | child << 3)
            events += len(bucket)
            buckets[t] = None
            bucket_append[t] = None
            t += 1

        for tt in range(horizon + 1, horizon + slack + 1):
            if buckets[tt]:
                overflow = True  # pushed past the horizon, never popped
                break
        return (delays, messages_measured, messages_completed, flits_created,
                flits_delivered, credit_stalls, events,
                horizon if overflow else last_t)

    # ------------------------------------------------------------------
    def _kernel_oq(self, rec, plan):
        """Phase B, output-queued switch model, multiple VCs.

        The VC scan makes full inlining a poor trade; this kernel keeps
        the reference's closure structure over the flat arrays and the
        calendar queue, which is where the bulk of the win lives.
        """
        (ev_cycle, ev_msg, ev_child, n_initial, _msg_src, msg_created,
         msg_measured, pkt_path, pkt_last, overflow) = plan
        cfg = self.config
        record = rec.enabled
        n_channels = self._n_channels
        pf = cfg.packet_flits
        wire_pf = cfg.wire_delay + pf
        wire_rd = cfg.wire_delay + cfg.routing_delay
        warmup = cfg.warmup_cycles
        window_end = cfg.end_of_window
        horizon = cfg.horizon
        n_vcs = cfg.virtual_channels
        ppm = cfg.packets_per_message
        message_flits = cfg.message_flits

        n_msgs = len(msg_created)
        pkt_hop = [0] * (n_msgs * ppm)
        pkt_holding = [-1] * (n_msgs * ppm)
        msg_remaining = [ppm] * n_msgs

        busy_until = [0] * n_channels
        credits = self._initial_credits()
        requests = [deque() for _ in range(n_channels)]

        cbits = n_channels.bit_length()
        cmask = (1 << cbits) - 1
        buckets, bucket_append, slack = self._calendar(n_initial, ev_cycle)

        delays: list[int] = []
        messages_measured = sum(msg_measured)
        flits_created = messages_measured * message_flits
        messages_completed = 0
        flits_delivered = 0
        credit_stalls = 0
        events = 0
        last_t = 0

        obs_interval = cfg.obs_interval or max(1, cfg.measure_cycles // 20)
        next_mark = obs_interval if record else horizon + 1
        interval_injected = 0
        interval_delivered = 0
        last_stalls = 0

        def serve(c: int, t: int) -> None:
            nonlocal credit_stalls
            if busy_until[c] > t or not requests[c]:
                return
            sub = free_vc(credits, c, n_vcs)
            if sub < 0:
                credit_stalls += 1
                return
            p = requests[c].popleft()
            credits[sub] -= 1
            busy_until[c] = t + pf
            bucket_append[t + pf](
                _PORTCREDIT | (c | (pkt_holding[p] + 1) << cbits) << 3)
            pkt_holding[p] = sub
            if pkt_hop[p] == pkt_last[p]:
                bucket_append[t + wire_pf](_DELIVER | p << 3)
            else:
                bucket_append[t + wire_rd](_HEADER | p << 3)

        t = 0
        while t <= horizon:
            bucket = buckets[t]
            if not bucket:
                t += 1
                continue
            last_t = t
            while t >= next_mark:  # flush observation intervals
                rec.event(
                    "flit_interval",
                    t=next_mark,
                    injected=interval_injected,
                    delivered=interval_delivered,
                    credit_stalls=credit_stalls - last_stalls,
                    occupancy=0,  # output-queued: input FIFOs unused
                )
                interval_injected = 0
                interval_delivered = 0
                last_stalls = credit_stalls
                next_mark += obs_interval
            for ev in bucket:  # iterator observes same-cycle appends
                kind = ev & 7
                if kind == 0:  # _HEADER
                    p = ev >> 3
                    hop = pkt_hop[p] + 1
                    pkt_hop[p] = hop
                    c = pkt_path[p][hop]
                    requests[c].append(p)
                    serve(c, t)
                elif kind == 1:  # fused _PORT_FREE + _CREDIT
                    payload = ev >> 3
                    serve(payload & cmask, t)
                    h1 = payload >> cbits
                    if h1:
                        events += 1  # the fused _CREDIT half
                        h = h1 - 1
                        credits[h] += 1
                        serve(h // n_vcs, t)
                elif kind == 2:  # _DELIVER
                    p = ev >> 3
                    h = pkt_holding[p]
                    credits[h] += 1
                    serve(h // n_vcs, t)
                    m = p // ppm
                    rem = msg_remaining[m] - 1
                    msg_remaining[m] = rem
                    if record:
                        interval_delivered += pf
                    if warmup <= t < window_end:
                        flits_delivered += pf
                    if not rem and msg_measured[m]:
                        messages_completed += 1
                        delays.append(t - msg_created[m])
                else:  # _INJECT
                    e = ev >> 3
                    m = ev_msg[e]
                    if m >= 0:
                        if record:
                            interval_injected += message_flits
                        pb = m * ppm
                        for pj in range(pb, pb + ppm):
                            c = pkt_path[pj][0]
                            requests[c].append(pj)
                            serve(c, t)
                    child = ev_child[e]
                    if child >= 0:
                        bucket_append[ev_cycle[child]](_INJECT | child << 3)
            events += len(bucket)
            buckets[t] = None
            bucket_append[t] = None
            t += 1

        for tt in range(horizon + 1, horizon + slack + 1):
            if buckets[tt]:
                overflow = True
                break
        return (delays, messages_measured, messages_completed, flits_created,
                flits_delivered, credit_stalls, events,
                horizon if overflow else last_t)

    # ------------------------------------------------------------------
    def _kernel_fifo(self, rec, plan):
        """Phase B, input-fifo switch model.

        Head-of-line bookkeeping (buffer read ports, head requests)
        makes full inlining a poor trade here; the kernel keeps the
        reference's closure structure over the flat arrays and the
        calendar queue.
        """
        (ev_cycle, ev_msg, ev_child, n_initial, msg_src, msg_created,
         msg_measured, pkt_path, pkt_last, overflow) = plan
        cfg = self.config
        record = rec.enabled
        n_procs = self._n_procs
        n_channels = self._n_channels
        pf = cfg.packet_flits
        wire_pf = cfg.wire_delay + pf
        wire_rd = cfg.wire_delay + cfg.routing_delay
        warmup = cfg.warmup_cycles
        window_end = cfg.end_of_window
        horizon = cfg.horizon
        n_vcs = cfg.virtual_channels
        ppm = cfg.packets_per_message
        message_flits = cfg.message_flits

        n_msgs = len(msg_created)
        pkt_hop = [0] * (n_msgs * ppm)
        pkt_holding = [-1] * (n_msgs * ppm)
        msg_remaining = [ppm] * n_msgs

        n_sub = n_channels * n_vcs
        n_buffers = n_sub + n_procs
        buffers = [deque() for _ in range(n_buffers)]
        read_free = [0] * n_buffers
        head_pending = [False] * n_buffers
        busy_until = [0] * n_channels
        credits = self._initial_credits()
        requests = [deque() for _ in range(n_channels)]  # of buffer ids

        cbits = n_channels.bit_length()
        cmask = (1 << cbits) - 1
        buckets, bucket_append, slack = self._calendar(n_initial, ev_cycle)

        delays: list[int] = []
        messages_measured = sum(msg_measured)
        flits_created = messages_measured * message_flits
        messages_completed = 0
        flits_delivered = 0
        credit_stalls = 0
        events = 0
        last_t = 0

        obs_interval = cfg.obs_interval or max(1, cfg.measure_cycles // 20)
        next_mark = obs_interval if record else horizon + 1
        interval_injected = 0
        interval_delivered = 0
        last_stalls = 0

        def serve(c: int, t: int) -> None:
            nonlocal credit_stalls
            if busy_until[c] > t or not requests[c]:
                return
            sub = free_vc(credits, c, n_vcs)
            if sub < 0:
                credit_stalls += 1
                return
            b = requests[c].popleft()
            buf = buffers[b]
            p = buf.popleft()
            head_pending[b] = False
            read_free[b] = t + pf
            if buf:
                bucket_append[t + pf](_HEAD_READY | b << 3)
            credits[sub] -= 1
            busy_until[c] = t + pf
            bucket_append[t + pf](
                _PORTCREDIT | (c | (pkt_holding[p] + 1) << cbits) << 3)
            pkt_holding[p] = sub
            if pkt_hop[p] == pkt_last[p]:
                bucket_append[t + wire_pf](_DELIVER | p << 3)
            else:
                bucket_append[t + wire_rd](_HEADER | p << 3)

        def request_head(b: int, t: int) -> None:
            if head_pending[b] or not buffers[b]:
                return
            rf = read_free[b]
            if rf > t:
                bucket_append[rf](_HEAD_READY | b << 3)
                return
            head_pending[b] = True
            p = buffers[b][0]
            c = pkt_path[p][pkt_hop[p]]
            requests[c].append(b)
            serve(c, t)

        t = 0
        while t <= horizon:
            bucket = buckets[t]
            if not bucket:
                t += 1
                continue
            last_t = t
            while t >= next_mark:  # flush observation intervals
                rec.event(
                    "flit_interval",
                    t=next_mark,
                    injected=interval_injected,
                    delivered=interval_delivered,
                    credit_stalls=credit_stalls - last_stalls,
                    occupancy=sum(len(b) for b in buffers),
                )
                interval_injected = 0
                interval_delivered = 0
                last_stalls = credit_stalls
                next_mark += obs_interval
            for ev in bucket:  # iterator observes same-cycle appends
                kind = ev & 7
                if kind == 0:  # _HEADER
                    p = ev >> 3
                    pkt_hop[p] += 1
                    b = pkt_holding[p]  # input buffer of the crossed link
                    buffers[b].append(p)
                    request_head(b, t)
                elif kind == 1:  # fused _PORT_FREE + _CREDIT
                    payload = ev >> 3
                    serve(payload & cmask, t)
                    h1 = payload >> cbits
                    if h1:
                        events += 1  # the fused _CREDIT half
                        h = h1 - 1
                        credits[h] += 1
                        serve(h // n_vcs, t)
                elif kind == 2:  # _DELIVER
                    p = ev >> 3
                    h = pkt_holding[p]
                    credits[h] += 1
                    serve(h // n_vcs, t)
                    m = p // ppm
                    rem = msg_remaining[m] - 1
                    msg_remaining[m] = rem
                    if record:
                        interval_delivered += pf
                    if warmup <= t < window_end:
                        flits_delivered += pf
                    if not rem and msg_measured[m]:
                        messages_completed += 1
                        delays.append(t - msg_created[m])
                elif kind == 3:  # _INJECT
                    e = ev >> 3
                    m = ev_msg[e]
                    if m >= 0:
                        if record:
                            interval_injected += message_flits
                        src_b = n_sub + msg_src[m]
                        pb = m * ppm
                        for pj in range(pb, pb + ppm):
                            buffers[src_b].append(pj)
                            request_head(src_b, t)
                    child = ev_child[e]
                    if child >= 0:
                        bucket_append[ev_cycle[child]](_INJECT | child << 3)
                else:  # _HEAD_READY
                    request_head(ev >> 3, t)
            events += len(bucket)
            buckets[t] = None
            bucket_append[t] = None
            t += 1

        for tt in range(horizon + 1, horizon + slack + 1):
            if buckets[tt]:
                overflow = True
                break
        return (delays, messages_measured, messages_completed, flits_created,
                flits_delivered, credit_stalls, events,
                horizon if overflow else last_t)

    # ------------------------------------------------------------------
    def _finish(self, rec, workload, delays, messages_measured,
                messages_completed, flits_created, flits_delivered,
                credit_stalls, events, sim_cycles) -> FlitRunResult:
        cfg = self.config
        if rec.enabled:
            rec.count("flit.runs", 1)
            rec.count("flit.events", events)
            rec.count("flit.flits_injected", flits_created)
            rec.count("flit.flits_delivered", flits_delivered)
            rec.count("flit.credit_stalls", credit_stalls)
            rec.count("flit.messages_measured", messages_measured)
            rec.count("flit.messages_completed", messages_completed)
            for d in delays:
                rec.observe("flit.message_delay", d)
        mean_delay, p95_delay, max_delay = delay_stats(delays)
        denom = cfg.measure_cycles * self._n_procs
        injected = flits_created / denom if denom else 0.0
        return FlitRunResult(
            offered_load=workload.load if workload is not None else injected,
            injected_load=injected,
            throughput=flits_delivered / denom if denom else 0.0,
            mean_delay=mean_delay,
            p95_delay=p95_delay,
            max_delay=max_delay,
            messages_measured=messages_measured,
            messages_completed=messages_completed,
            sim_cycles=min(sim_cycles, cfg.horizon),
            events=events,
        )
