/* Native phase-B kernel for the batched flit engine (output-queued).
 *
 * Compiled on demand by repro.flit.native and loaded through ctypes;
 * when no C compiler is available the python kernels in
 * repro.flit.batched run instead.  This file must mirror those kernels
 * event for event: phase A (repro.flit.batched._injection_plan) has
 * already drawn every random number, so the work here is pure integer
 * event processing — same calendar-queue order, same fused
 * port-free/credit events, same counters — and the differential parity
 * suite (tests/flit/test_engine_parity.py) pins it to the reference
 * engine bit for bit.
 *
 * Data layout notes:
 *  - Per-output request queues are intrusive singly-linked lists over
 *    the packet id space (a packet waits in at most one queue), so
 *    enqueue/dequeue are pointer writes with no allocation.
 *  - Calendar buckets are intrusive lists over an event-node arena
 *    sized up front: pushes = plan events + 2 per transmit, and a
 *    packet transmits at most once per hop of its route, so the bound
 *    is exact and the arena never grows.
 *  - Buckets extend `slack` cycles past the horizon so pushes are never
 *    range-checked; anything parked there is a reference "pushed past
 *    the horizon, never popped" event (it only pins sim_cycles).
 */
#include <stdint.h>
#include <stdlib.h>

typedef int64_t i64;

enum {
    EV_HEADER = 0,     /* payload: packet id */
    EV_PORTCREDIT = 1, /* payload: channel | (holding+1) << cbits */
    EV_DELIVER = 2,    /* payload: packet id */
    EV_INJECT = 3      /* payload: injection-plan event id */
};

enum {
    P_N_PLAN = 0,
    P_N_INITIAL = 1,
    P_N_MSGS = 2,
    P_PPM = 3,
    P_N_CHANNELS = 4,
    P_N_VCS = 5,
    P_PF = 6,
    P_WIRE_PF = 7,
    P_WIRE_RD = 8,
    P_WARMUP = 9,
    P_WINDOW_END = 10,
    P_HORIZON = 11,
    P_SLACK = 12,
    P_CBITS = 13,
    P_OVERFLOW_IN = 14,
    P_COUNT = 15
};

enum {
    O_MESSAGES_COMPLETED = 0,
    O_FLITS_DELIVERED = 1,
    O_CREDIT_STALLS = 2,
    O_EVENTS = 3,
    O_LAST_T = 4,
    O_OVERFLOW = 5,
    O_N_DELAYS = 6,
    O_COUNT = 7
};

typedef struct {
    /* network + packet state */
    i64 *busy_until;
    i64 *credits;
    i64 *q_head;
    i64 *q_tail;
    i64 *next_pkt;
    i64 *pkt_hop;
    i64 *pkt_holding;
    const i64 *pkt_off;
    const i64 *pkt_path;
    /* calendar queue */
    i64 *node_ev;
    i64 *node_next;
    i64 n_nodes;
    i64 *bucket_head;
    i64 *bucket_tail;
    /* config */
    i64 n_vcs;
    i64 pf;
    i64 wire_pf;
    i64 wire_rd;
    i64 cbits;
    /* counters */
    i64 credit_stalls;
} Ctx;

static void push(Ctx *x, i64 tt, i64 ev)
{
    i64 i = x->n_nodes++;
    x->node_ev[i] = ev;
    x->node_next[i] = -1;
    if (x->bucket_tail[tt] < 0)
        x->bucket_head[tt] = i;
    else
        x->node_next[x->bucket_tail[tt]] = i;
    x->bucket_tail[tt] = i;
}

static void enqueue(Ctx *x, i64 c, i64 p)
{
    x->next_pkt[p] = -1;
    if (x->q_tail[c] < 0)
        x->q_head[c] = p;
    else
        x->next_pkt[x->q_tail[c]] = p;
    x->q_tail[c] = p;
}

/* One arbitration attempt at output `c`: head packet wins if the port
 * is idle and any VC of `c` holds a downstream credit (lane order is
 * the shared deterministic tie-break). */
static void serve(Ctx *x, i64 c, i64 t)
{
    i64 p, sub, hop, base, v;
    if (x->busy_until[c] > t)
        return;
    p = x->q_head[c];
    if (p < 0)
        return;
    sub = -1;
    base = c * x->n_vcs;
    for (v = 0; v < x->n_vcs; v++) {
        if (x->credits[base + v] > 0) {
            sub = base + v;
            break;
        }
    }
    if (sub < 0) {
        x->credit_stalls++;
        return;
    }
    x->q_head[c] = x->next_pkt[p];
    if (x->q_head[c] < 0)
        x->q_tail[c] = -1;
    x->credits[sub]--;
    x->busy_until[c] = t + x->pf;
    push(x, t + x->pf,
         EV_PORTCREDIT | ((c | (x->pkt_holding[p] + 1) << x->cbits) << 3));
    x->pkt_holding[p] = sub;
    hop = x->pkt_hop[p];
    if (hop == x->pkt_off[p + 1] - x->pkt_off[p] - 1)
        push(x, t + x->wire_pf, EV_DELIVER | p << 3);
    else
        push(x, t + x->wire_rd, EV_HEADER | p << 3);
}

long run_oq(const i64 *params,
            const i64 *ev_cycle, const i64 *ev_msg, const i64 *ev_child,
            const i64 *msg_created, const uint8_t *msg_measured,
            const i64 *pkt_off, const i64 *pkt_path,
            i64 *credits, i64 *delays, i64 *out)
{
    const i64 n_plan = params[P_N_PLAN];
    const i64 n_initial = params[P_N_INITIAL];
    const i64 n_msgs = params[P_N_MSGS];
    const i64 ppm = params[P_PPM];
    const i64 n_channels = params[P_N_CHANNELS];
    const i64 warmup = params[P_WARMUP];
    const i64 window_end = params[P_WINDOW_END];
    const i64 horizon = params[P_HORIZON];
    const i64 slack = params[P_SLACK];
    const i64 cbits = params[P_CBITS];
    const i64 cmask = ((i64)1 << cbits) - 1;
    const i64 n_pkts = n_msgs * ppm;
    const i64 n_buckets = horizon + slack + 1;
    const i64 cap = n_plan + 2 * (n_pkts ? pkt_off[n_pkts] : 0) + 8;
    const i64 pf = params[P_PF];

    i64 *msg_remaining = NULL;
    i64 t, e, p, m, i, ev, kind, payload, c, h1, last_t, events, overflow;
    i64 n_delays, messages_completed, flits_delivered;
    long rc = 1;
    Ctx x;

    x.n_vcs = params[P_N_VCS];
    x.pf = pf;
    x.wire_pf = params[P_WIRE_PF];
    x.wire_rd = params[P_WIRE_RD];
    x.cbits = cbits;
    x.credit_stalls = 0;
    x.n_nodes = 0;
    x.pkt_off = pkt_off;
    x.pkt_path = pkt_path;
    x.credits = credits;

    x.busy_until = calloc(n_channels ? n_channels : 1, sizeof(i64));
    x.q_head = malloc((n_channels ? n_channels : 1) * sizeof(i64));
    x.q_tail = malloc((n_channels ? n_channels : 1) * sizeof(i64));
    x.next_pkt = malloc((n_pkts ? n_pkts : 1) * sizeof(i64));
    x.pkt_hop = calloc(n_pkts ? n_pkts : 1, sizeof(i64));
    x.pkt_holding = malloc((n_pkts ? n_pkts : 1) * sizeof(i64));
    msg_remaining = malloc((n_msgs ? n_msgs : 1) * sizeof(i64));
    x.node_ev = malloc(cap * sizeof(i64));
    x.node_next = malloc(cap * sizeof(i64));
    x.bucket_head = malloc(n_buckets * sizeof(i64));
    x.bucket_tail = malloc(n_buckets * sizeof(i64));
    if (!x.busy_until || !x.q_head || !x.q_tail || !x.next_pkt ||
        !x.pkt_hop || !x.pkt_holding || !msg_remaining || !x.node_ev ||
        !x.node_next || !x.bucket_head || !x.bucket_tail)
        goto done;

    for (i = 0; i < n_channels; i++)
        x.q_head[i] = x.q_tail[i] = -1;
    for (p = 0; p < n_pkts; p++)
        x.pkt_holding[p] = -1;
    for (m = 0; m < n_msgs; m++)
        msg_remaining[m] = ppm;
    for (i = 0; i < n_buckets; i++)
        x.bucket_head[i] = x.bucket_tail[i] = -1;

    /* Initial inject events in plan (= reference push) order; initial
     * arrival cycles are the only unbounded times, hence the guard. */
    for (e = 0; e < n_initial; e++) {
        if (ev_cycle[e] <= horizon)
            push(&x, ev_cycle[e], EV_INJECT | e << 3);
    }

    last_t = 0;
    events = 0;
    n_delays = 0;
    messages_completed = 0;
    flits_delivered = 0;
    overflow = params[P_OVERFLOW_IN];

    for (t = 0; t <= horizon; t++) {
        i = x.bucket_head[t];
        if (i < 0)
            continue;
        last_t = t;
        /* Follow next-links; same-cycle pushes extend the tail and are
         * picked up naturally, matching the heap's behavior. */
        while (i >= 0) {
            ev = x.node_ev[i];
            events++;
            kind = ev & 7;
            if (kind == EV_PORTCREDIT) {
                payload = ev >> 3;
                serve(&x, payload & cmask, t);
                h1 = payload >> cbits;
                if (h1) {
                    events++; /* the fused credit half */
                    x.credits[h1 - 1]++;
                    serve(&x, (h1 - 1) / x.n_vcs, t);
                }
            } else if (kind == EV_HEADER) {
                p = ev >> 3;
                c = pkt_path[pkt_off[p] + (++x.pkt_hop[p])];
                enqueue(&x, c, p);
                serve(&x, c, t);
            } else if (kind == EV_DELIVER) {
                c = x.pkt_holding[p = ev >> 3];
                x.credits[c]++; /* host drains at link rate */
                serve(&x, c / x.n_vcs, t);
                m = p / ppm;
                if (warmup <= t && t < window_end)
                    flits_delivered += pf;
                if (--msg_remaining[m] == 0 && msg_measured[m]) {
                    messages_completed++;
                    delays[n_delays++] = t - msg_created[m];
                }
            } else { /* EV_INJECT */
                e = ev >> 3;
                m = ev_msg[e];
                if (m >= 0) {
                    for (p = m * ppm; p < m * ppm + ppm; p++) {
                        c = pkt_path[pkt_off[p]];
                        enqueue(&x, c, p);
                        serve(&x, c, t);
                    }
                }
                if (ev_child[e] >= 0)
                    push(&x, ev_cycle[ev_child[e]],
                         EV_INJECT | ev_child[e] << 3);
            }
            i = x.node_next[i];
        }
    }

    for (t = horizon + 1; t < n_buckets; t++) {
        if (x.bucket_head[t] >= 0) {
            overflow = 1; /* pushed past the horizon, never popped */
            break;
        }
    }

    out[O_MESSAGES_COMPLETED] = messages_completed;
    out[O_FLITS_DELIVERED] = flits_delivered;
    out[O_CREDIT_STALLS] = x.credit_stalls;
    out[O_EVENTS] = events;
    out[O_LAST_T] = last_t;
    out[O_OVERFLOW] = overflow;
    out[O_N_DELAYS] = n_delays;
    rc = 0;

done:
    free(x.busy_until);
    free(x.q_head);
    free(x.q_tail);
    free(x.next_pkt);
    free(x.pkt_hop);
    free(x.pkt_holding);
    free(msg_remaining);
    free(x.node_ev);
    free(x.node_next);
    free(x.bucket_head);
    free(x.bucket_tail);
    return rc;
}
