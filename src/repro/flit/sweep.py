"""Offered-load sweeps and saturation detection.

The paper "varies the offered load till the network reaches saturation
where the throughput drops sharply", reporting delay-vs-load curves
(Figure 5) and the maximum aggregate throughput per scheme (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.flit.batched import make_flit_simulator
from repro.flit.config import FlitConfig
from repro.flit.stats import FlitRunResult
from repro.flit.workload import UniformRandom, Workload
from repro.obs.recorder import get_recorder
from repro.routing.base import RoutingScheme
from repro.topology.xgft import XGFT


@dataclass(frozen=True)
class SweepResult:
    """All run results of one scheme across offered loads."""

    scheme_label: str
    runs: tuple[FlitRunResult, ...]

    @property
    def loads(self) -> tuple[float, ...]:
        return tuple(r.offered_load for r in self.runs)

    @property
    def throughputs(self) -> tuple[float, ...]:
        return tuple(r.throughput for r in self.runs)

    @property
    def delays(self) -> tuple[float, ...]:
        return tuple(r.mean_delay for r in self.runs)

    @property
    def max_throughput(self) -> float:
        """The paper's Table 1 metric: the best delivered rate achieved
        at any offered load."""
        return max(self.throughputs) if self.runs else 0.0

    def saturation_load(self) -> float:
        """Lowest offered load at which the network is saturated (falls
        back to the highest load swept when it never saturates)."""
        for r in self.runs:
            if r.saturated:
                return r.offered_load
        return self.runs[-1].offered_load if self.runs else 0.0


def default_loads(step: float = 0.1, max_load: float = 1.0) -> tuple[float, ...]:
    """Evenly spaced offered loads ``step, 2*step, ..., max_load``."""
    count = int(round(max_load / step))
    return tuple(round(step * i, 10) for i in range(1, count + 1))


def load_sweep(
    xgft: XGFT,
    scheme: RoutingScheme,
    config: FlitConfig,
    *,
    loads: Sequence[float] | None = None,
    workload_factory: Callable[[float], Workload] = UniformRandom,
    repeats: int = 1,
    n_jobs: int = 1,
    pool=None,
    cache=None,
    engine: str = "reference",
) -> SweepResult:
    """Run ``scheme`` at each offered load with fresh Poisson workloads.

    ``repeats > 1`` averages several seeds per load point (results keep
    the mean of each statistic).  Routes are compiled once and shared by
    all runs.

    ``n_jobs > 1`` fans the (load, repeat) grid out over a process pool
    (:mod:`repro.runner`); ``pool`` reuses an externally owned
    :class:`~repro.runner.pool.PersistentPool` and ``cache`` replays
    completed points from an on-disk
    :class:`~repro.runner.cache.ResultCache`.  Per-point seeds are
    identical to the serial path (``config.seed + 1000 * repeat``), so
    every execution mode returns bit-identical results.

    ``engine`` selects the flit backend (:data:`repro.flit.batched.
    ENGINES`); the batched engine is bit-identical to the reference, so
    it changes only wall-clock time — in every execution mode.
    """
    rec = get_recorder()
    sim = make_flit_simulator(engine, xgft, scheme, config)
    if n_jobs > 1 or pool is not None or cache is not None:
        # Lazy import: repro.runner.sweep imports this module.
        from repro.runner.sweep import run_sweeps

        return run_sweeps(
            {scheme.label: sim}, loads=loads, repeats=repeats,
            workload_factory=workload_factory, n_jobs=n_jobs, pool=pool,
            cache=cache,
        )[scheme.label]
    results = []
    for load in (loads if loads is not None else default_loads()):
        with rec.timer("flit.load_point"):
            runs = [
                sim.run(workload_factory(load), seed=config.seed + 1000 * rep)
                for rep in range(repeats)
            ]
        merged = _merge_runs(runs)
        if rec.enabled:
            rec.event(
                "flit_load_point",
                scheme=scheme.label,
                offered_load=merged.offered_load,
                throughput=merged.throughput,
                mean_delay=merged.mean_delay,
                completion_ratio=merged.completion_ratio,
                saturated=merged.saturated,
            )
        results.append(merged)
    return SweepResult(scheme.label, tuple(results))


def _merge_runs(runs: list[FlitRunResult]) -> FlitRunResult:
    if len(runs) == 1:
        return runs[0]

    def mean(attr: str) -> float:
        vals = [getattr(r, attr) for r in runs]
        vals = [v for v in vals if v == v]  # drop NaNs
        return float(np.mean(vals)) if vals else float("nan")

    # Python's max() is order-sensitive around NaN (NaN wins every
    # comparison it appears first in and loses every one it appears
    # second in), so a saturated repeat could silently poison — or be
    # silently dropped from — the merged maximum depending on run
    # order.  Take the max over the finite repeats; NaN only when every
    # repeat delivered nothing.
    max_delays = np.asarray([r.max_delay for r in runs], dtype=np.float64)
    with np.errstate(invalid="ignore"):
        max_delay = (float(np.nanmax(max_delays))
                     if np.any(~np.isnan(max_delays)) else float("nan"))

    return FlitRunResult(
        offered_load=runs[0].offered_load,
        injected_load=mean("injected_load"),
        throughput=mean("throughput"),
        mean_delay=mean("mean_delay"),
        p95_delay=mean("p95_delay"),
        max_delay=max_delay,
        messages_measured=sum(r.messages_measured for r in runs),
        messages_completed=sum(r.messages_completed for r in runs),
        sim_cycles=max(r.sim_cycles for r in runs),
        events=sum(r.events for r in runs),
    )
