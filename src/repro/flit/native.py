"""On-demand compiled phase-B kernel for the batched flit engine.

:mod:`repro.flit.batched` splits a run into an injection plan (phase A,
where every random draw happens) and pure integer event processing
(phase B).  Phase B has no python left in its contract — flat arrays in,
flat arrays out — so when a C compiler is present this module compiles
``kernel.c`` (shipped alongside, mirrored line for line from the python
kernels) into a shared library once per machine, caches it under
``~/.cache/repro-flit`` keyed by source hash, and loads it with ctypes.

Everything degrades gracefully: no compiler, a failed build, or
``REPRO_FLIT_NATIVE=0`` simply means the pure-python kernels run
(correct, ~3.5x the reference; the native path is ~20x).  The parity
suite exercises both paths, so the fallback is not a lesser citizen.
No third-party packages are involved — just ``ctypes`` and a cc.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from itertools import chain

import numpy as np

_SOURCE = os.path.join(os.path.dirname(__file__), "kernel.c")

# params[] layout — must match the P_* enum in kernel.c.
_P_COUNT = 15
# out[] layout — must match the O_* enum in kernel.c.
_O_COUNT = 7

_lib = None
_load_attempted = False


def _cache_dir() -> str:
    root = os.environ.get("REPRO_KERNEL_CACHE")
    if not root:
        root = os.path.join(
            os.environ.get("XDG_CACHE_HOME")
            or os.path.join(os.path.expanduser("~"), ".cache"),
            "repro-flit")
    os.makedirs(root, exist_ok=True)
    return root


def _compile_and_load():
    with open(_SOURCE, "rb") as fh:
        source = fh.read()
    digest = hashlib.sha256(source).hexdigest()[:16]
    so_path = os.path.join(_cache_dir(), f"kernel-{digest}.so")
    if not os.path.exists(so_path):
        cc = next(
            (c for c in ("cc", "gcc", "clang") if shutil.which(c)), None)
        if cc is None:
            return None
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=os.path.dirname(so_path))
        os.close(fd)
        try:
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", tmp, _SOURCE],
                check=True, capture_output=True, timeout=120)
            os.replace(tmp, so_path)  # atomic: concurrent builds collapse
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    lib = ctypes.CDLL(so_path)
    i64p = ctypes.POINTER(ctypes.c_int64)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    lib.run_oq.restype = ctypes.c_long
    lib.run_oq.argtypes = [i64p] * 4 + [i64p, u8p] + [i64p] * 5
    return lib


def available() -> bool:
    """Whether the compiled kernel can be used (cached after first call)."""
    global _lib, _load_attempted
    if not _load_attempted:
        _load_attempted = True
        if os.environ.get("REPRO_FLIT_NATIVE", "1").lower() not in (
                "0", "false", "off"):
            try:
                _lib = _compile_and_load()
            except Exception:
                _lib = None  # any build/load failure -> python kernels
    return _lib is not None


def _i64(values) -> np.ndarray:
    a = np.ascontiguousarray(values, dtype=np.int64)
    return a if a.size else np.zeros(1, dtype=np.int64)


def _ptr(a: np.ndarray):
    return a.ctypes.data_as(
        ctypes.POINTER(ctypes.c_uint8) if a.dtype == np.uint8
        else ctypes.POINTER(ctypes.c_int64))


def run_oq(plan, cfg, n_channels: int, initial_credits: list,
           slack: int) -> tuple:
    """Run phase B natively; returns the python kernels' stats tuple."""
    (ev_cycle, ev_msg, ev_child, n_initial, _msg_src, msg_created,
     msg_measured, pkt_path, pkt_last, overflow) = plan
    n_msgs = len(msg_created)
    pkt_off = np.zeros(len(pkt_last) + 1, dtype=np.int64)
    np.cumsum(np.asarray(pkt_last, dtype=np.int64) + 1, out=pkt_off[1:])

    params = np.zeros(_P_COUNT, dtype=np.int64)
    params[0] = len(ev_cycle)
    params[1] = n_initial
    params[2] = n_msgs
    params[3] = cfg.packets_per_message
    params[4] = n_channels
    params[5] = cfg.virtual_channels
    params[6] = cfg.packet_flits
    params[7] = cfg.wire_delay + cfg.packet_flits
    params[8] = cfg.wire_delay + cfg.routing_delay
    params[9] = cfg.warmup_cycles
    params[10] = cfg.end_of_window
    params[11] = cfg.horizon
    params[12] = slack
    params[13] = n_channels.bit_length()
    params[14] = 1 if overflow else 0

    credits = _i64(initial_credits)
    delays = np.zeros(max(n_msgs, 1), dtype=np.int64)
    out = np.zeros(_O_COUNT, dtype=np.int64)
    arrays = (params, _i64(ev_cycle), _i64(ev_msg), _i64(ev_child),
              _i64(msg_created),
              np.ascontiguousarray(
                  np.frombuffer(bytes(msg_measured), dtype=np.uint8)
                  if n_msgs else np.zeros(1, dtype=np.uint8)),
              _i64(pkt_off),
              _i64(np.fromiter(chain.from_iterable(pkt_path),
                               dtype=np.int64, count=int(pkt_off[-1]))),
              credits, delays, out)
    rc = _lib.run_oq(*map(_ptr, arrays))
    if rc != 0:
        raise MemoryError("native flit kernel allocation failed")

    messages_measured = sum(msg_measured)
    return (delays[:out[6]].tolist(), messages_measured,
            int(out[0]), messages_measured * cfg.message_flits,
            int(out[1]), int(out[2]), int(out[3]),
            cfg.horizon if out[5] else int(out[4]))
