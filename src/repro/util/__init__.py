"""Shared utilities: mixed-radix codecs, RNG plumbing, text rendering."""

from repro.util.radix import (
    MixedRadix,
    digits_of,
    from_digits,
    prefix_products,
)
from repro.util.rng import as_generator, spawn_generators
from repro.util.tables import format_table
from repro.util.ascii_chart import AsciiChart

__all__ = [
    "MixedRadix",
    "digits_of",
    "from_digits",
    "prefix_products",
    "as_generator",
    "spawn_generators",
    "format_table",
    "AsciiChart",
]
