"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an ``int``, or a ``numpy.random.Generator``; these helpers
normalize it.  Experiments spawn independent child generators so that
parallel or repeated sub-runs are reproducible and uncorrelated.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state);
    anything else is fed to ``numpy.random.default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so results are stable
    for a fixed ``seed`` regardless of how many children are consumed.
    """
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own bit stream.
        seed = int(seed.integers(0, 2**63 - 1))
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


#: registry of named substream keys — fixing the key per purpose (instead
#: of positional spawning) means adding a new consumer never shifts the
#: draws of an existing one.
SUBSTREAMS = {
    "fault-links": 1,
    "fault-switches": 2,
    "fault-order": 3,
    "churn-trace": 4,
}


def substream(seed, name: str) -> np.random.Generator:
    """A named, statistically independent child stream of ``seed``.

    Every stochastic subsystem that samples *alongside* others (fault
    injection next to permutation sampling, link faults next to switch
    faults) must draw from its own named substream rather than a shared
    generator: the draws then depend only on ``(seed, name)``, never on
    how many values other consumers happened to take first.  Names are
    registered in :data:`SUBSTREAMS` so two purposes can never collide.
    """
    key = SUBSTREAMS.get(name)
    if key is None:
        raise KeyError(
            f"unregistered substream {name!r}; add it to repro.util.rng.SUBSTREAMS"
        )
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63 - 1))
    ss = np.random.SeedSequence(seed, spawn_key=(key,))
    return np.random.default_rng(ss)
