"""Mixed-radix integer codecs.

XGFT node labels, path indices and port sequences are all mixed-radix
numbers.  This module centralizes the encode/decode logic, in both scalar
and NumPy-vectorized forms, so the rest of the library never re-derives
radix arithmetic.

Conventions
-----------
A *little-endian* digit vector ``(a_0, a_1, ..., a_{n-1})`` over radices
``(r_0, r_1, ..., r_{n-1})`` encodes the integer::

    value = a_0 + r_0 * (a_1 + r_1 * (a_2 + ...))

i.e. ``a_0`` is the least significant digit.  ``prefix_products(r)`` gives
the place values ``P`` with ``P[i] = r_0 * ... * r_{i-1}`` (``P[0] = 1``)
and one extra final entry ``P[n] = prod(r)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def prefix_products(radices: Sequence[int]) -> tuple[int, ...]:
    """Place values for a little-endian mixed-radix system.

    Returns a tuple of length ``len(radices) + 1`` whose ``i``-th entry is
    the product of the first ``i`` radices (so entry 0 is 1 and the last
    entry is the total capacity of the system).

    >>> prefix_products((4, 4, 8))
    (1, 4, 16, 128)
    """
    out = [1]
    for r in radices:
        if r <= 0:
            raise ValueError(f"radices must be positive, got {radices!r}")
        out.append(out[-1] * r)
    return tuple(out)


def digits_of(value: int, radices: Sequence[int]) -> tuple[int, ...]:
    """Decompose ``value`` into little-endian digits over ``radices``.

    >>> digits_of(63, (4, 4, 4))
    (3, 3, 3)
    >>> digits_of(7, (1, 4, 2))   # degenerate radix-1 digit is always 0
    (0, 3, 1)
    """
    digits = []
    v = int(value)
    if v < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    for r in radices:
        digits.append(v % r)
        v //= r
    if v != 0:
        raise ValueError(f"value {value} does not fit in radices {tuple(radices)!r}")
    return tuple(digits)


def from_digits(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Inverse of :func:`digits_of`.

    >>> from_digits((3, 3, 3), (4, 4, 4))
    63
    """
    if len(digits) != len(radices):
        raise ValueError("digits and radices must have equal length")
    value = 0
    for a, r in zip(reversed(digits), reversed(radices)):
        if not 0 <= a < r:
            raise ValueError(f"digit {a} out of range for radix {r}")
        value = value * r + a
    return value


class MixedRadix:
    """A fixed mixed-radix system with scalar and vectorized codecs.

    Parameters
    ----------
    radices:
        Little-endian digit radices; digit ``i`` takes values in
        ``[0, radices[i])``.
    """

    __slots__ = ("radices", "places", "capacity")

    def __init__(self, radices: Sequence[int]):
        self.radices = tuple(int(r) for r in radices)
        self.places = prefix_products(self.radices)
        self.capacity = self.places[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MixedRadix({self.radices!r})"

    def __len__(self) -> int:
        return len(self.radices)

    def encode(self, digits: Sequence[int]) -> int:
        """Scalar encode; validates digit ranges."""
        return from_digits(digits, self.radices)

    def decode(self, value: int) -> tuple[int, ...]:
        """Scalar decode; validates ``value < capacity``."""
        return digits_of(value, self.radices)

    def digit(self, value: np.ndarray | int, i: int):
        """Digit ``i`` of ``value`` (vectorized: accepts arrays)."""
        return (value // self.places[i]) % self.radices[i]

    def decode_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized decode: shape ``(..., n_digits)`` little-endian."""
        values = np.asarray(values)
        out = np.empty(values.shape + (len(self.radices),), dtype=np.int64)
        for i in range(len(self.radices)):
            out[..., i] = self.digit(values, i)
        return out

    def encode_array(self, digits: np.ndarray) -> np.ndarray:
        """Vectorized encode of a ``(..., n_digits)`` digit array."""
        digits = np.asarray(digits)
        if digits.shape[-1] != len(self.radices):
            raise ValueError("last axis must match number of radices")
        value = np.zeros(digits.shape[:-1], dtype=np.int64)
        for i, place in enumerate(self.places[:-1]):
            value += digits[..., i] * place
        return value
