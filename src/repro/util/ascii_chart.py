"""Terminal line charts.

The paper's figures are line plots (max link load vs K; delay vs offered
load).  There is no plotting dependency available offline, so experiments
render series as compact ASCII scatter/line charts.  Precision is not the
point — the *shape* (ordering of heuristics, crossovers, saturation knees)
is what the reproduction compares.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


class AsciiChart:
    """Accumulate named (x, y) series and render them to a text grid.

    Parameters
    ----------
    width, height:
        Plot-area size in character cells (axes add a margin).
    """

    def __init__(self, width: int = 64, height: int = 18):
        if width < 8 or height < 4:
            raise ValueError("chart too small to render")
        self.width = width
        self.height = height
        self._series: dict[str, tuple[list[float], list[float]]] = {}

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Add a named series; points with non-finite y are dropped."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        keep_x, keep_y = [], []
        for x, y in zip(xs, ys):
            if y == y and y not in (float("inf"), float("-inf")):
                keep_x.append(float(x))
                keep_y.append(float(y))
        self._series[name] = (keep_x, keep_y)

    @property
    def series(self) -> Mapping[str, tuple[list[float], list[float]]]:
        return dict(self._series)

    def render(self, *, title: str | None = None, xlabel: str = "", ylabel: str = "") -> str:
        """Render all series onto one grid with a legend."""
        pts = [(x, y) for xs, ys in self._series.values() for x, y in zip(xs, ys)]
        if not pts:
            return "(empty chart)"
        xmin = min(p[0] for p in pts)
        xmax = max(p[0] for p in pts)
        ymin = min(p[1] for p in pts)
        ymax = max(p[1] for p in pts)
        if xmax == xmin:
            xmax = xmin + 1.0
        if ymax == ymin:
            ymax = ymin + 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        legend = []
        for idx, (name, (xs, ys)) in enumerate(self._series.items()):
            marker = _MARKERS[idx % len(_MARKERS)]
            legend.append(f"{marker}={name}")
            for x, y in zip(xs, ys):
                col = round((x - xmin) / (xmax - xmin) * (self.width - 1))
                row = round((y - ymin) / (ymax - ymin) * (self.height - 1))
                grid[self.height - 1 - row][col] = marker

        lines = []
        if title:
            lines.append(title)
        ytop = f"{ymax:.3g}"
        ybot = f"{ymin:.3g}"
        margin = max(len(ytop), len(ybot), len(ylabel))
        for r, row in enumerate(grid):
            if r == 0:
                label = ytop
            elif r == self.height - 1:
                label = ybot
            elif r == self.height // 2 and ylabel:
                label = ylabel
            else:
                label = ""
            lines.append(f"{label.rjust(margin)} |" + "".join(row))
        lines.append(" " * margin + " +" + "-" * self.width)
        xleft = f"{xmin:.3g}"
        xright = f"{xmax:.3g}"
        pad = self.width - len(xleft) - len(xright)
        xaxis = xleft + (xlabel.center(pad) if pad > 0 else "") + xright
        lines.append(" " * margin + "  " + xaxis)
        lines.append("legend: " + "  ".join(legend))
        return "\n".join(lines)
