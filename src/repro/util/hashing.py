"""Deterministic vectorized hashing (splitmix64).

Randomized routing must be a *pure function* of the SD pair: the same pair
must get the same route set every time it is queried, across scalar and
vectorized code paths, while still looking uniformly random.  Seeding a
``numpy`` generator per pair would be slow, so random schemes derive their
choices from a counter-based splitmix64 hash of ``(seed, s, d, slot)``.
All operations are NumPy ``uint64`` arithmetic and fully vectorized.
"""

from __future__ import annotations

import numpy as np

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x) -> np.ndarray:
    """The splitmix64 finalizer: a high-quality 64-bit mixing function.

    Accepts any integer array (or scalar); returns ``uint64``.
    """
    with np.errstate(over="ignore"):
        z = np.asarray(x, dtype=np.uint64) + _GAMMA
        z = (z ^ (z >> np.uint64(30))) * _M1
        z = (z ^ (z >> np.uint64(27))) * _M2
        return z ^ (z >> np.uint64(31))


def hash_combine(*parts) -> np.ndarray:
    """Combine several integer arrays into one well-mixed uint64 stream.

    Broadcasting applies across parts, so e.g. ``hash_combine(seed,
    pair_ids[:, None], slots[None, :])`` yields a 2-D key matrix.
    """
    acc = np.uint64(0x243F6A8885A308D3)  # pi digits: arbitrary non-zero init
    with np.errstate(over="ignore"):
        for part in parts:
            acc = splitmix64(np.asarray(part, dtype=np.uint64) ^ acc)
    return acc


def hash_uniform(*parts) -> np.ndarray:
    """Map hashed keys to float64 uniforms in ``[0, 1)``."""
    bits = hash_combine(*parts)
    return (bits >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))


def hash_mod(n, *parts) -> np.ndarray:
    """Map hashed keys to integers in ``[0, n)``.

    Uses the multiply-shift trick on the top 53 bits; the bias is
    O(n / 2^53), negligible for the path counts used here.
    """
    return np.minimum((hash_uniform(*parts) * n).astype(np.int64), n - 1)
