"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned ASCII so results are readable in a terminal
and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(cell: object, floatfmt: str) -> str:
    if isinstance(cell, float):
        return format(cell, floatfmt)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``floatfmt``; all other cells with ``str``.

    >>> print(format_table(["K", "load"], [[1, 4.0], [2, 2.5]]))
    K  load
    -  -----
    1  4.000
    2  2.500
    """
    str_rows = [[_fmt(c, floatfmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
