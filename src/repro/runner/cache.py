"""On-disk result cache for flit sweep runners (content-hash keyed JSONL).

A full flit-level sweep costs minutes to hours per scheme; an
interrupted Figure 5 / Table 1 run used to recompute every completed
(scheme, load, repeat) point from scratch.  :class:`ResultCache` makes
sweeps resumable: each point's :class:`~repro.flit.stats.FlitRunResult`
is stored under a SHA-256 *content hash* of everything that determines
it —

* the topology (its canonical ``repr``),
* the routing scheme (label, ``repr`` and construction seed),
* the full :class:`~repro.flit.config.FlitConfig` field set,
* the workload family and offered load,
* the per-point workload seed, and
* the library code version (``repro.__version__``).

Change any input and the key changes, so a stale entry can never be
returned.  Generic records (:meth:`ResultCache.get_record` /
:meth:`ResultCache.put_record`, e.g. churn-sweep step MLOADs) get the
same guarantee even when the *caller's* key omits the version: the
on-disk key is re-derived from the caller's key plus the cache's code
version and the record-schema constant (:data:`RECORD_SCHEMA`), so a
version or schema change renames every entry rather than trusting each
call site to remember.  The code version is additionally stored as a
plain field on every entry: entries written by a different version are
skipped at load time and reported through the
``runner.cache_invalidated`` telemetry counter, which is how an upgrade
shows up as a cold cache rather than as silence.

Storage is a single append-only JSON Lines file per cache directory
(default ``.repro-cache/flit-runs.jsonl``) — crash-tolerant (a torn
trailing line from an interrupt is skipped and counted) and trivially
inspectable with ``jq``.  Floats round-trip exactly through JSON
(``repr``-based encoding), so a cache replay is bit-identical to the
original computation; NaN statistics (e.g. ``mean_delay`` beyond
saturation) are preserved via JSON's non-strict ``NaN`` literal.

Telemetry: ``runner.cache_hit`` / ``runner.cache_miss`` per probe,
``runner.cache_store`` per write, ``runner.cache_invalidated`` /
``runner.cache_corrupt`` at load time.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict

from repro.errors import RunnerError
from repro.flit.stats import FlitRunResult
from repro.obs.recorder import get_recorder

#: default cache directory (gitignored)
DEFAULT_CACHE_DIR = ".repro-cache"

#: version of the record payload shapes stored via :meth:`ResultCache.
#: put_record`; bump when a stored dict's fields change meaning so old
#: entries miss instead of being replayed into the new shape
RECORD_SCHEMA = 1

_FILENAME = "flit-runs.jsonl"


def _code_version() -> str:
    # Imported lazily: repro/__init__ transitively imports this module.
    from repro import __version__

    return __version__


def cache_key(parts: dict) -> str:
    """Content hash of a JSON-able dict of key parts.

    Canonicalized with sorted keys and compact separators so key
    equality is insensitive to dict construction order; non-JSON values
    fall back to ``repr``.
    """
    canon = json.dumps(parts, sort_keys=True, separators=(",", ":"),
                       default=repr)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ResultCache:
    """Append-only JSONL cache of :class:`FlitRunResult` values.

    >>> import tempfile
    >>> from repro.flit.stats import FlitRunResult
    >>> cache = ResultCache(tempfile.mkdtemp())
    >>> key = cache_key({"load": 0.2, "seed": 0})
    >>> cache.get(key) is None
    True
    >>> cache.put(key, FlitRunResult(0.2, 0.2, 0.19, 40.0, 55.0, 80.0,
    ...                              100, 100, 1000, 5000))
    >>> cache.get(key).throughput
    0.19

    The JSONL file is read once (lazily) per instance and indexed in
    memory; :meth:`put` appends to the file and updates the index, so a
    long sweep can interleave probes and stores freely.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR, *,
                 version: str | None = None, filename: str = _FILENAME):
        self.directory = str(directory)
        if os.path.exists(self.directory) and not os.path.isdir(self.directory):
            raise RunnerError(
                f"cache directory {self.directory!r} exists and is not a "
                f"directory")
        self.version = version if version is not None else _code_version()
        self.path = os.path.join(self.directory, filename)
        self._index: dict[str, dict] | None = None
        #: entries skipped at load time because they were written by a
        #: different code version (0 until the file is first read)
        self.stale_entries = 0

    def __repr__(self) -> str:
        return f"ResultCache({self.directory!r}, version={self.version!r})"

    def _load(self) -> dict[str, dict]:
        if self._index is not None:
            return self._index
        index: dict[str, dict] = {}
        stale = 0
        corrupt = 0
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        key = entry["key"]
                        result = entry["result"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        corrupt += 1  # torn tail write from an interrupt
                        continue
                    if entry.get("version") != self.version:
                        stale += 1
                        continue
                    index[key] = result
        self.stale_entries = stale
        rec = get_recorder()
        if stale:
            rec.count("runner.cache_invalidated", stale)
        if corrupt:
            rec.count("runner.cache_corrupt", corrupt)
        self._index = index
        return index

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return self.record_key(key) in self._load()

    def record_key(self, key: str) -> str:
        """The on-disk key for a caller key: re-hashed together with the
        cache's code version and :data:`RECORD_SCHEMA`.

        Callers like the churn sweep hash only their own inputs; folding
        the version/schema in here means a library upgrade or a payload
        shape change invalidates *every* record, whether or not the call
        site remembered to include a version part.
        """
        return cache_key({"key": key, "version": self.version,
                          "schema": RECORD_SCHEMA})

    def get_record(self, key: str) -> dict | None:
        """The raw cached record for ``key``, or ``None`` on a miss.

        The generic layer under :meth:`get`: any JSON-able dict payload
        (flit run points, churn-sweep step MLOADs) shares the same file,
        index, versioning and telemetry.
        """
        entry = self._load().get(self.record_key(key))
        rec = get_recorder()
        if entry is None:
            rec.count("runner.cache_miss")
            return None
        rec.count("runner.cache_hit")
        return entry

    def put_record(self, key: str, record: dict) -> None:
        """Persist a raw JSON-able dict under ``key`` (idempotent)."""
        index = self._load()
        skey = self.record_key(key)
        if skey in index:
            return
        index[skey] = record
        os.makedirs(self.directory, exist_ok=True)
        line = json.dumps({"key": skey, "version": self.version,
                           "result": record})
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        get_recorder().count("runner.cache_store")

    def get(self, key: str) -> FlitRunResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        entry = self.get_record(key)
        if entry is None:
            return None
        return FlitRunResult(**entry)

    def put(self, key: str, result: FlitRunResult) -> None:
        """Persist ``result`` under ``key`` (idempotent)."""
        self.put_record(key, asdict(result))
