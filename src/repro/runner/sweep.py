"""Parallel, resumable offered-load sweeps over (scheme x load x repeat).

The paper's flit-level artifacts — Figure 5's delay curves and Table 1's
maximum-throughput cells — are grids of *independent* simulator runs:
one per (scheme, offered load, repeat) point.  :func:`run_sweeps` fans
that grid out:

* **determinism** — every point's seed comes from :func:`point_seed`,
  the exact formula the serial :func:`repro.flit.sweep.load_sweep` uses
  (``config.seed + 1000 * repeat``), and the flit engine is a pure
  function of ``(workload, seed)``; parallel and serial runs therefore
  produce bit-identical :class:`~repro.flit.sweep.SweepResult` values;
* **pool lifecycle** — one :class:`~repro.runner.pool.PersistentPool`
  serves every point of every scheme: the simulators (with their
  compiled route tables) ship to each worker once as a pool context,
  not once per task;
* **resumability** — with a :class:`~repro.runner.cache.ResultCache`,
  each point is probed before it is scheduled and stored after it is
  computed, so re-running an interrupted sweep replays the completed
  points from disk and only simulates the remainder.  A fully warm
  cache performs zero simulator runs.

Telemetry: ``runner.points_total`` / ``runner.points_computed``
counters, plus the pool and cache counters of the underlying layers;
each merged load point emits the same ``flit_load_point`` event as the
serial sweep.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Mapping, Sequence

from repro.errors import RunnerError
from repro.flit.engine import FlitSimulator
from repro.flit.stats import FlitRunResult
from repro.flit.sweep import SweepResult, _merge_runs, default_loads
from repro.flit.workload import UniformRandom, Workload
from repro.obs.recorder import get_recorder
from repro.obs.trace import span
from repro.runner.cache import ResultCache, cache_key
from repro.runner.pool import PersistentPool, load_context


def point_seed(config, rep: int) -> int:
    """The serial sweep's per-repeat workload seed (shared here so
    parallel and cached replays reproduce serial runs bit for bit)."""
    return config.seed + 1000 * rep


def point_key(label: str, sim: FlitSimulator, load: float, rep: int,
              workload_factory=UniformRandom) -> str:
    """Cache key for one (scheme, load, repeat) grid point."""
    scheme = sim.scheme
    if sim.xgft is not None:
        topology = repr(sim.xgft)
    else:  # from_tables simulators: identified by their table shape
        topology = f"tables:{sim._n_procs}h:{sim._n_channels}c"
    return cache_key({
        "kind": "flit_run",
        "code_version": _version(),
        "topology": topology,
        "scheme": scheme.label if scheme is not None else label,
        "scheme_repr": repr(scheme) if scheme is not None else None,
        "scheme_seed": getattr(scheme, "seed", None),
        "config": asdict(sim.config),
        "workload": getattr(workload_factory, "__qualname__",
                            repr(workload_factory)),
        "load": load,
        "seed": point_seed(sim.config, rep),
    })


def _version() -> str:
    from repro import __version__

    return __version__


def _flit_point_task(token: str, label: str, load: float, seed: int):
    """Pool worker: simulate one grid point against the shipped context.

    Runs under whatever recorder the pool's task wrapper installed
    (:meth:`~repro.runner.pool.PersistentPool.submit_task` builds a
    per-task recorder and ships its snapshot back), so the simulator's
    ``flit.*`` counters/histograms and this ``flit.point`` span land in
    the parent recorder.
    """
    ctx = load_context(token)
    sim: FlitSimulator = ctx["sims"][label]
    workload: Workload = ctx["workload_factory"](load)
    rec = get_recorder()
    with span("flit.point", scheme=label, load=load, seed=seed):
        with rec.timer("flit.point_eval"):
            return sim.run(workload, seed=seed)


def run_sweeps(
    sims: Mapping[str, FlitSimulator],
    *,
    loads: Sequence[float] | None = None,
    repeats: int = 1,
    workload_factory=UniformRandom,
    n_jobs: int = 1,
    pool: PersistentPool | None = None,
    cache: ResultCache | None = None,
) -> dict[str, SweepResult]:
    """Sweep every simulator in ``sims`` across ``loads``.

    Parameters
    ----------
    sims:
        Mapping of a caller-chosen key to a ready
        :class:`FlitSimulator`.  Keys only need to be unique within the
        call (e.g. ``"random:2@seed1"``); each returned
        :class:`SweepResult` carries the scheme's own label when the
        simulator has one.
    loads, repeats, workload_factory:
        As in :func:`repro.flit.sweep.load_sweep`; ``repeats > 1``
        averages per-load statistics over per-repeat seeds.
    n_jobs:
        Worker processes.  1 runs inline; results are identical either
        way for a fixed seed.
    pool:
        Optional externally owned :class:`PersistentPool` (kept open —
        the caller closes it).  When ``None`` and ``n_jobs > 1`` a
        private pool is created for this call and closed afterwards.
    cache:
        Optional :class:`ResultCache`; hit points skip simulation
        entirely and computed points are stored for future runs.

    Returns the per-key :class:`SweepResult` dict (insertion order of
    ``sims``).
    """
    if repeats < 1:
        raise RunnerError(f"repeats must be >= 1, got {repeats}")
    if n_jobs < 1:
        raise RunnerError(f"n_jobs must be >= 1, got {n_jobs}")
    rec = get_recorder()
    load_list = tuple(loads) if loads is not None else default_loads()
    labels = list(sims)

    # 1. Plan the grid and replay cached points.
    points = [(label, load, rep)
              for label in labels for load in load_list
              for rep in range(repeats)]
    rec.count("runner.points_total", len(points))
    results: dict[tuple, FlitRunResult] = {}
    keys: dict[tuple, str] = {}
    pending: list[tuple] = []
    for point in points:
        label, load, rep = point
        if cache is not None:
            key = point_key(label, sims[label], load, rep, workload_factory)
            keys[point] = key
            hit = cache.get(key)
            if hit is not None:
                results[point] = hit
                continue
        pending.append(point)

    # 2. Compute the misses.
    if pending:
        if pool is not None or n_jobs > 1:
            owned = None
            use = pool
            if use is None:
                use = owned = PersistentPool(n_jobs)
            try:
                with span("runner.run_sweeps", points=len(pending),
                          schemes=len(labels)):
                    token = use.put_context({
                        "sims": dict(sims),
                        "workload_factory": workload_factory,
                    })
                    futures = [
                        (point, use.submit_task(
                            _flit_point_task, token, point[0], point[1],
                            point_seed(sims[point[0]].config, point[2])))
                        for point in pending
                    ]
                    for point, future in futures:
                        result, snapshot = future.result()
                        results[point] = result
                        if snapshot is not None:
                            rec.merge(snapshot)
            finally:
                if owned is not None:
                    owned.close()
        else:
            for label in labels:
                sim = sims[label]
                for load in load_list:
                    todo = [p for p in pending
                            if p[0] == label and p[1] == load]
                    if not todo:
                        continue
                    with rec.timer("flit.load_point"):
                        for point in todo:
                            results[point] = sim.run(
                                workload_factory(load),
                                seed=point_seed(sim.config, point[2]))
        rec.count("runner.points_computed", len(pending))
        if cache is not None:
            for point in pending:
                cache.put(keys[point], results[point])

    # 3. Merge repeats and assemble per-key sweeps (serial semantics).
    out: dict[str, SweepResult] = {}
    for label in labels:
        sim = sims[label]
        scheme_label = sim.scheme.label if sim.scheme is not None else label
        merged_runs = []
        for load in load_list:
            merged = _merge_runs(
                [results[(label, load, rep)] for rep in range(repeats)])
            if rec.enabled:
                rec.event(
                    "flit_load_point",
                    scheme=scheme_label,
                    offered_load=merged.offered_load,
                    throughput=merged.throughput,
                    mean_delay=merged.mean_delay,
                    completion_ratio=merged.completion_ratio,
                    saturated=merged.saturated,
                )
            merged_runs.append(merged)
        out[label] = SweepResult(scheme_label, tuple(merged_runs))
    return out
