"""Parallel execution layer: persistent pools, result caching, fan-out.

``repro.runner`` is the wall-clock infrastructure under the paper's
panel-scale experiments:

* :class:`~repro.runner.pool.PersistentPool` — a reusable process pool
  whose workers receive large immutable payloads (compiled plans, route
  tables) once per worker via spill-file contexts instead of once per
  task;
* :class:`~repro.runner.cache.ResultCache` — an on-disk JSONL cache of
  flit run results keyed by a content hash of every input plus the code
  version, making interrupted sweeps resumable;
* :func:`~repro.runner.sweep.run_sweeps` — deterministic fan-out of
  offered-load sweeps over (scheme x load x repeat) grid points,
  bit-identical to the serial path for a fixed seed.

``run_sweeps`` is exposed lazily so that importing the pool (which the
flow-sampling layer does at import time) does not drag the flit stack
in with it.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from repro.runner.pool import PersistentPool, load_context

__all__ = [
    "PersistentPool",
    "load_context",
    "ResultCache",
    "cache_key",
    "DEFAULT_CACHE_DIR",
    "run_sweeps",
    "point_seed",
    "point_key",
]


def __getattr__(name):
    if name in ("run_sweeps", "point_seed", "point_key"):
        from repro.runner import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
