"""Persistent process pools with one-shot context shipping.

Every parallel layer in this codebase fans the same few kilobytes-to-
megabytes of immutable state — a compiled routing plan, a route table, a
dict of flit simulators — out to worker processes, then streams many
small tasks against it.  Rebuilding a ``ProcessPoolExecutor`` per
adaptive round (the pre-runner behaviour of
:class:`repro.flow.sampling.PermutationStudy`) pays process start-up per
round; shipping the state inside every task argument pays its pickle
cost per task.  :class:`PersistentPool` removes both:

* the executor is created once (lazily, at the first submit) and reused
  for as many rounds, schemes, seeds and load points as the owner keeps
  the pool alive;
* large payloads are registered once with :meth:`PersistentPool.
  put_context`, which spills a pickle to a private temp directory and
  returns a small string *token*.  Tasks carry the token; a worker
  resolves it with :func:`load_context`, unpickling the spill file at
  most once per worker process and caching the object for the worker's
  lifetime.

On fork-based platforms contexts registered before the workers start are
inherited directly from the parent's memory and the spill file is never
read; the file path is the start-method-agnostic fallback (spawn,
forkserver, or contexts registered after the first submit).

Context payloads are treated as immutable by the parent.  Workers may
cache *derived* objects onto a dict payload (e.g. an engine built from a
plan) — such mutations stay process-local.

Telemetry (through the ambient :mod:`repro.obs` recorder):
``runner.pool_created`` (executor constructions — the pool-churn
metric), ``runner.context_spilled`` (payload registrations) and
``runner.pool_tasks`` (submitted tasks).  :meth:`PersistentPool.
submit_task` additionally carries the parent's trace context
(:mod:`repro.obs.trace`) into the worker and runs the task under a
per-task :class:`~repro.obs.Recorder`, shipping its ``snapshot()`` back
alongside the result — so worker-side timers, counters, histograms and
spans (including ``runner.context_load`` spill-file unpickle time)
merge into the parent recorder instead of vanishing into the worker
process's no-op default.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor

from repro.errors import RunnerError
from repro.obs.recorder import Recorder, get_recorder, use_recorder
from repro.obs.trace import current_trace_context, span, trace_context

# -- worker-process state ----------------------------------------------
_WORKER_DIR: str | None = None
_WORKER_CACHE: dict[str, object] = {}
#: parent-side registry so task functions also resolve inline (n_jobs=1,
#: tests) and so forked workers inherit already-registered payloads.
_PARENT_CONTEXTS: dict[str, object] = {}

_POOL_SEQ = 0


def _init_worker(context_dir: str) -> None:
    """Pool initializer: remember where spilled contexts live."""
    global _WORKER_DIR
    _WORKER_DIR = context_dir
    _WORKER_CACHE.clear()


def load_context(token: str):
    """Resolve a context token to its payload (worker or parent side).

    Workers unpickle the spill file once and cache the object for the
    lifetime of the process, so a payload crosses the process boundary
    at most once per worker no matter how many tasks reference it.
    """
    obj = _WORKER_CACHE.get(token)
    if obj is not None:
        return obj
    obj = _PARENT_CONTEXTS.get(token)
    if obj is not None:
        return obj
    if _WORKER_DIR is not None:
        path = os.path.join(_WORKER_DIR, f"{token}.ctx")
        if os.path.exists(path):
            with get_recorder().timer("runner.context_load"):
                with open(path, "rb") as fh:
                    obj = pickle.load(fh)
            get_recorder().count("runner.context_loads")
            _WORKER_CACHE[token] = obj
            return obj
    raise RunnerError(f"unknown pool context {token!r}")


class PersistentPool:
    """A reusable ``ProcessPoolExecutor`` with one-shot context shipping.

    >>> from repro.runner.pool import PersistentPool, load_context
    >>> with PersistentPool(2) as pool:
    ...     token = pool.put_context({"base": 40})
    ...     load_context(token)["base"]  # resolves inline in the parent too
    40

    The executor is created lazily at the first :meth:`submit` and torn
    down by :meth:`close` (or the context manager exit).  A closed pool
    may be reused — the next submit starts a fresh generation with its
    own context directory.

    Owners that hand the pool to several consumers (a study's seed
    family, a multi-scheme sweep) keep one set of worker processes alive
    across all of them; each consumer registers its own context and the
    workers cache every context they have seen.
    """

    def __init__(self, n_jobs: int):
        if n_jobs < 1:
            raise RunnerError(f"n_jobs must be >= 1, got {n_jobs}")
        global _POOL_SEQ
        _POOL_SEQ += 1
        self.n_jobs = int(n_jobs)
        self._instance = _POOL_SEQ
        self._seq = 0
        self._dir: str | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._tokens: list[str] = []
        self._finalizer = None

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return f"PersistentPool(n_jobs={self.n_jobs}, {state})"

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._executor is not None

    def _ensure_dir(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-pool-")
            # Belt and braces: remove the spill directory at GC /
            # interpreter exit even if the owner forgets to close().
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._dir, ignore_errors=True)
        return self._dir

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                initializer=_init_worker,
                initargs=(self._ensure_dir(),),
            )
            get_recorder().count("runner.pool_created")
        return self._executor

    def close(self) -> None:
        """Shut the workers down and drop every registered context."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for token in self._tokens:
            _PARENT_CONTEXTS.pop(token, None)
        self._tokens.clear()
        if self._finalizer is not None:
            self._finalizer()  # rmtree now rather than at GC
            self._finalizer = None
        self._dir = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- work ----------------------------------------------------------
    def put_context(self, payload) -> str:
        """Register ``payload`` for worker-side lookup; returns its token.

        The payload is pickled exactly once (to the pool's spill
        directory); subsequent tasks reference it by token.  Tokens are
        unique across pools and generations, so a stale token can never
        silently alias a newer payload.
        """
        token = f"c{self._instance}g{self._seq}"
        self._seq += 1
        directory = self._ensure_dir()
        tmp = os.path.join(directory, f"{token}.tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, os.path.join(directory, f"{token}.ctx"))
        _PARENT_CONTEXTS[token] = payload
        self._tokens.append(token)
        get_recorder().count("runner.context_spilled")
        return token

    def submit(self, fn, /, *args):
        """Submit ``fn(*args)`` to the pool; returns a Future."""
        future = self._ensure_executor().submit(fn, *args)
        get_recorder().count("runner.pool_tasks")
        return future

    def submit_task(self, fn, /, *args):
        """Submit ``fn(*args)`` under the ambient telemetry context.

        The returned Future resolves to ``(result, snapshot)``.  When
        the ambient recorder is enabled at submit time, the task runs
        worker-side under its own per-task :class:`~repro.obs.Recorder`
        — with the parent's trace context adopted, so worker spans
        parent under the submitting span — and ``snapshot`` is that
        recorder's JSON-safe state for the parent to
        :meth:`~repro.obs.Recorder.merge`.  When disabled, the task
        runs under the no-op recorder (an enabled recorder inherited
        across ``fork`` cannot slow the worker down) and ``snapshot``
        is ``None``.
        """
        rec = get_recorder()
        ctx = current_trace_context() if rec.enabled else None
        future = self._ensure_executor().submit(
            _run_task, fn, args, ctx, rec.enabled)
        rec.count("runner.pool_tasks")
        return future


def _run_task(fn, args, trace_ctx, record: bool):
    """Worker-side wrapper behind :meth:`PersistentPool.submit_task`.

    Builds the per-task recorder, adopts the parent's trace context,
    wraps the task in a ``runner.task`` span, and ships the recorder
    snapshot back with the result.
    """
    if not record:
        with use_recorder(None):
            return fn(*args), None
    rec = Recorder()
    with use_recorder(rec), trace_context(trace_ctx):
        with span("runner.task", task=getattr(fn, "__name__", str(fn))):
            result = fn(*args)
    return result, rec.snapshot()
