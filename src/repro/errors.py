"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Invalid XGFT parameters or a malformed topology query."""


class RoutingError(ReproError):
    """Invalid routing request (unknown scheme, bad path index, ...)."""


class TrafficError(ReproError):
    """Invalid traffic matrix or traffic-pattern parameters."""


class SimulationError(ReproError):
    """Flow- or flit-level simulation misconfiguration."""


class ResourceError(ReproError):
    """InfiniBand-style resource exhaustion (LID address space, ...)."""
