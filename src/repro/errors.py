"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Invalid XGFT parameters or a malformed topology query."""


class RoutingError(ReproError):
    """Invalid routing request (unknown scheme, bad path index, ...)."""


class FaultError(ReproError):
    """Invalid fault specification (bad rates, unknown elements, ...)."""


class DisconnectedPairError(RoutingError):
    """An SD pair has no surviving shortest path on a degraded fabric.

    Carries the pair so sweeps can report *which* traffic was stranded.
    """

    def __init__(self, src: int, dst: int, message: str | None = None):
        self.src = int(src)
        self.dst = int(dst)
        super().__init__(
            message
            or f"no surviving shortest path from {src} to {dst} on the "
               f"degraded fabric"
        )


class TrafficError(ReproError):
    """Invalid traffic matrix or traffic-pattern parameters."""


class SimulationError(ReproError):
    """Flow- or flit-level simulation misconfiguration."""


class RunnerError(ReproError):
    """Parallel-runner misuse (bad pool parameters, unknown context,
    malformed cache directory, ...)."""


class ResourceError(ReproError):
    """InfiniBand-style resource exhaustion (LID address space, ...)."""
