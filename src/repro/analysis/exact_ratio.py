"""Exact oblivious performance ratios via linear programming.

The oblivious ratio ``PERF(r) = max_TM MLOAD(r, TM) / OLOAD(TM)``
(Section 3.2, after Applegate & Cohen) looks like a search over an
infinite set, but on XGFTs it is exactly computable:

* routing is oblivious, so each directed link's load is *linear* in the
  traffic matrix: ``load_l(TM) = sum_{s,d} tm_{s,d} * phi_l(s,d)`` where
  ``phi_l`` is the fraction of the pair's traffic the scheme puts on
  ``l``;
* ``OLOAD(TM) = ML(TM)`` (Lemma 1 + Theorem 1) is a maximum of *linear*
  subtree-boundary expressions, so ``OLOAD(TM) <= 1`` is a finite set of
  linear constraints.

Hence ``PERF(r) = max_l  LP{ maximize phi_l . tm  :  tm >= 0,
boundary constraints }`` — one small LP per link (scipy's HiGGS solves
each in milliseconds on the topologies where this is tractable).

This turns Theorem 1 into an *exact* statement checked over all traffic
matrices: ``exact_oblivious_ratio(xgft, UMulti(xgft)) == 1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.flow.loads import link_loads
from repro.routing.base import RoutingScheme
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class ExactRatioResult:
    """The exact oblivious ratio with its witnesses.

    ``worst_link`` is a maximizing link id and ``witness`` a traffic
    matrix achieving the ratio (scaled so ``OLOAD = 1``).
    """

    ratio: float
    worst_link: int
    witness: TrafficMatrix


def _pair_fractions(xgft: XGFT, scheme: RoutingScheme) -> tuple[np.ndarray, ...]:
    """phi as a dense (n_pairs, n_links) matrix plus the pair index
    arrays.  Built by evaluating unit traffic for all pairs at once per
    NCA group via the existing vectorized kernel — one row per pair."""
    n = xgft.n_procs
    pairs_s, pairs_d = np.divmod(np.arange(n * n, dtype=np.int64), n)
    keep = pairs_s != pairs_d
    pairs_s, pairs_d = pairs_s[keep], pairs_d[keep]
    n_pairs = len(pairs_s)
    phi = np.zeros((n_pairs, xgft.n_links))
    for row in range(n_pairs):
        tm = TrafficMatrix(n, [pairs_s[row]], [pairs_d[row]], [1.0])
        phi[row] = link_loads(xgft, scheme, tm)
    return phi, pairs_s, pairs_d


def _boundary_constraints(
    xgft: XGFT, pairs_s: np.ndarray, pairs_d: np.ndarray
) -> np.ndarray:
    """Rows of A for ``ML(TM) <= 1``: for every subtree, egress and
    ingress volume each at most ``TL(k) = W(k+1)``; normalized so the
    right-hand side is 1."""
    rows = []
    for k in range(xgft.h):
        tl = xgft.W(k + 1)
        for st in range(xgft.n_subtrees(k)):
            in_st_s = (pairs_s // xgft.M(k)) == st
            in_st_d = (pairs_d // xgft.M(k)) == st
            rows.append((in_st_s & ~in_st_d).astype(float) / tl)
            rows.append((in_st_d & ~in_st_s).astype(float) / tl)
    return np.array(rows)


def exact_oblivious_ratio(
    xgft: XGFT,
    scheme: RoutingScheme,
    *,
    max_pairs: int = 2000,
) -> ExactRatioResult:
    """Compute ``PERF(scheme)`` exactly (small topologies).

    Raises :class:`ReproError` when the pair count exceeds ``max_pairs``
    (the LP family would get slow); use the empirical estimators in
    :mod:`repro.analysis.ratio` at scale.
    """
    from scipy.optimize import linprog  # lazy: scipy is test/analysis only

    n = xgft.n_procs
    if n * (n - 1) > max_pairs:
        raise ReproError(
            f"{n * (n - 1)} SD pairs exceed max_pairs={max_pairs}; exact "
            f"ratios are for small topologies"
        )
    phi, pairs_s, pairs_d = _pair_fractions(xgft, scheme)
    a_ub = _boundary_constraints(xgft, pairs_s, pairs_d)
    b_ub = np.ones(len(a_ub))

    best = ExactRatioResult(0.0, -1, TrafficMatrix.empty(n))
    # Symmetry: many links are equivalent; deduplicate identical phi
    # columns to cut the LP count.
    unique_cols: dict[bytes, int] = {}
    for link in range(xgft.n_links):
        key = phi[:, link].tobytes()
        if key not in unique_cols:
            unique_cols[key] = link
    for link in unique_cols.values():
        c = phi[:, link]
        if not c.any():
            continue
        res = linprog(-c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None),
                      method="highs")
        if not res.success:  # pragma: no cover - defensive
            raise ReproError(f"LP failed for link {link}: {res.message}")
        value = -res.fun
        if value > best.ratio:
            witness = TrafficMatrix(n, pairs_s, pairs_d, res.x)
            best = ExactRatioResult(float(value), link, witness)
    return best
