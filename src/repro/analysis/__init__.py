"""Analytical results: bounds, theorem validators, oblivious-ratio search."""

from repro.analysis.ci import ConfidenceInterval, confidence_interval, z_value
from repro.analysis.theorems import (
    check_lemma1,
    check_theorem1,
    check_theorem2,
    TheoremReport,
)
from repro.analysis.ratio import empirical_oblivious_ratio, worst_case_permutation
from repro.analysis.exact_ratio import ExactRatioResult, exact_oblivious_ratio

__all__ = [
    "ExactRatioResult",
    "exact_oblivious_ratio",
    "ConfidenceInterval",
    "confidence_interval",
    "z_value",
    "check_lemma1",
    "check_theorem1",
    "check_theorem2",
    "TheoremReport",
    "empirical_oblivious_ratio",
    "worst_case_permutation",
]
