"""Executable validators for the paper's analytical results.

Each check runs the actual simulators against the statement of a lemma or
theorem and reports the measured quantities; tests assert the reports, and
the theorem benchmark regenerates them for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flow.loads import link_loads
from repro.flow.metrics import max_link_load, ml_lower_bound
from repro.routing.base import RoutingScheme
from repro.routing.heuristics import UMulti
from repro.routing.modk import DModK
from repro.topology.xgft import XGFT
from repro.traffic.adversarial import theorem2_bound, theorem2_pattern
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class TheoremReport:
    """Outcome of one theorem validation run."""

    name: str
    holds: bool
    measured: float
    bound: float
    detail: str

    def __str__(self) -> str:
        status = "OK " if self.holds else "FAIL"
        return f"[{status}] {self.name}: measured={self.measured:.6g} " \
               f"bound={self.bound:.6g} ({self.detail})"


def check_lemma1(xgft: XGFT, scheme: RoutingScheme, tm: TrafficMatrix) -> TheoremReport:
    """Lemma 1: no routing can beat ``ML(TM)`` — verify
    ``MLOAD(scheme, TM) >= ML(TM)`` (up to float tolerance)."""
    mload = max_link_load(link_loads(xgft, scheme, tm))
    bound = ml_lower_bound(xgft, tm)
    holds = mload >= bound - 1e-9
    return TheoremReport(
        "Lemma 1 (ML lower bound)", holds, mload, bound,
        f"scheme={scheme.label}",
    )


def check_theorem1(xgft: XGFT, tm: TrafficMatrix) -> TheoremReport:
    """Theorem 1: UMULTI achieves the lower bound exactly —
    ``MLOAD(UMULTI, TM) == ML(TM)`` for every traffic matrix."""
    mload = max_link_load(link_loads(xgft, UMulti(xgft), tm))
    bound = ml_lower_bound(xgft, tm)
    holds = abs(mload - bound) <= 1e-9 * max(1.0, bound)
    return TheoremReport(
        "Theorem 1 (UMULTI optimal)", holds, mload, bound, f"tm={tm!r}",
    )


def check_theorem2(xgft: XGFT) -> TheoremReport:
    """Theorem 2: on the adversarial pattern, d-mod-k's performance ratio
    reaches the predicted ``M(h-1) / max(1, M(h-1)/W(h))`` factor."""
    tm = theorem2_pattern(xgft)
    mload = max_link_load(link_loads(xgft, DModK(xgft), tm))
    opt = ml_lower_bound(xgft, tm)
    ratio = mload / opt if opt else float("inf")
    bound = theorem2_bound(xgft)
    holds = ratio >= bound - 1e-9
    return TheoremReport(
        "Theorem 2 (d-mod-k pathology)", holds, ratio, bound,
        f"MLOAD={mload:g} OLOAD={opt:g} on {xgft!r}",
    )
