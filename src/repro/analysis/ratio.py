"""Empirical oblivious-ratio estimation.

The oblivious performance ratio ``PERF(r)`` maximizes ``PERF(r, TM)``
over *all* traffic matrices — not computable exactly in general, but a
useful lower bound comes from searching a family of hard instances:
random permutations, the structured patterns, and the Theorem 2
construction when feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrafficError
from repro.flow.metrics import performance_ratio
from repro.routing.base import RoutingScheme
from repro.topology.xgft import XGFT
from repro.traffic.adversarial import theorem2_pattern
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.traffic.synthetic import bit_complement, shift_pattern
from repro.util.rng import as_generator


@dataclass(frozen=True)
class RatioEstimate:
    """A lower bound on the oblivious performance ratio and its witness."""

    ratio: float
    witness: str


def worst_case_permutation(
    xgft: XGFT,
    scheme: RoutingScheme,
    *,
    samples: int = 200,
    seed=None,
    engine: str = "reference",
) -> tuple[float, np.ndarray]:
    """The worst performance ratio among ``samples`` random permutations;
    returns ``(ratio, permutation)``.

    Both engines draw the identical permutation stream for a fixed
    ``seed``; ``"compiled"`` evaluates all MLOADs in one batched call.
    """
    rng = as_generator(seed)
    n = xgft.n_procs
    perms = [random_permutation(n, rng) for _ in range(samples)]
    if not perms:
        return 0.0, np.arange(n)
    if engine == "compiled":
        # Local imports: repro.flow imports this module's package peers.
        from repro.flow.engine import BatchFlowEngine
        from repro.flow.metrics import max_link_load, optimal_load
        from repro.routing.compiled import compile_scheme

        mloads = BatchFlowEngine(compile_scheme(xgft, scheme)) \
            .permutation_mloads(np.stack(perms))
        ratios = np.empty(len(perms))
        for i, perm in enumerate(perms):
            opt = optimal_load(xgft, permutation_matrix(perm))
            ratios[i] = mloads[i] / opt if opt > 0 else 1.0
        best = int(np.argmax(ratios))
        return float(ratios[best]), perms[best]
    best = 0.0
    best_perm = np.arange(n)
    for perm in perms:
        ratio = performance_ratio(xgft, scheme, permutation_matrix(perm))
        if ratio > best:
            best, best_perm = ratio, perm
    return best, best_perm


def empirical_oblivious_ratio(
    xgft: XGFT,
    scheme: RoutingScheme,
    *,
    permutation_samples: int = 100,
    seed=None,
    engine: str = "reference",
) -> RatioEstimate:
    """Search hard traffic instances for the largest performance ratio.

    This is a *lower bound* on ``PERF(scheme)``; for UMULTI it returns
    1.0 exactly (Theorem 1).  ``engine`` selects the evaluator for the
    random-permutation sweep (the handful of structured candidates stay
    on the closed-form path either way).
    """
    candidates: list[tuple[str, TrafficMatrix]] = []
    n = xgft.n_procs
    for stride in {1, xgft.M(max(xgft.h - 1, 1)), n // 2 or 1}:
        candidates.append((f"shift({stride})", shift_pattern(n, stride)))
    if n & (n - 1) == 0 and n > 1:
        candidates.append(("bit_complement", bit_complement(n)))
    try:
        candidates.append(("theorem2", theorem2_pattern(xgft)))
    except TrafficError:
        pass  # construction infeasible on this topology

    best = RatioEstimate(1.0, "identity")
    for name, tm in candidates:
        ratio = performance_ratio(xgft, scheme, tm)
        if ratio > best.ratio:
            best = RatioEstimate(ratio, name)

    perm_ratio, _ = worst_case_permutation(
        xgft, scheme, samples=permutation_samples, seed=seed, engine=engine
    )
    if perm_ratio > best.ratio:
        best = RatioEstimate(perm_ratio, "random permutation")
    return best
