"""Confidence intervals and the paper's adaptive stopping rule.

Section 5: "we first sample random permutations and compute the average
maximum permutation load ... compute the confidence interval with 99%
confidence level.  If the confidence interval is less than 1% of the
average, we stop ... otherwise we double the number of samples and
repeat."
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

import numpy as np

# Two-sided normal quantiles for the confidence levels used in practice;
# scipy is an optional dependency so the common cases are tabulated.
_Z_TABLE = {0.90: 1.6448536269514722, 0.95: 1.959963984540054,
            0.99: 2.5758293035489004, 0.999: 3.2905267314918945}


def z_value(confidence: float) -> float:
    """Two-sided standard-normal quantile for ``confidence``.

    Uses a small table for common levels and falls back to
    ``scipy.special.ndtri`` for anything else.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    for level, z in _Z_TABLE.items():
        if abs(confidence - level) < 1e-12:
            return z
    from scipy.special import ndtri  # lazy: optional dependency

    return float(ndtri(0.5 + confidence / 2.0))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean estimate with its symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n_samples: int

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf for zero mean)."""
        if self.mean == 0.0:
            return 0.0 if self.half_width == 0.0 else float("inf")
        return self.half_width / abs(self.mean)

    def meets(self, rel_precision: float) -> bool:
        """True once the interval is tighter than ``rel_precision`` of
        the mean (the paper uses 0.01)."""
        return self.relative_half_width <= rel_precision


def confidence_interval(samples, confidence: float = 0.99) -> ConfidenceInterval:
    """Normal-approximation CI of the sample mean.

    With fewer than 2 samples the half-width is infinite (never meets a
    precision target), forcing the adaptive loop to keep sampling.
    """
    arr = np.asarray(samples, dtype=np.float64)
    n = len(arr)
    if n == 0:
        return ConfidenceInterval(float("nan"), float("inf"), confidence, 0)
    mean = float(arr.mean())
    if n == 1:
        return ConfidenceInterval(mean, float("inf"), confidence, 1)
    std = float(arr.std(ddof=1))
    half = z_value(confidence) * std / sqrt(n)
    return ConfidenceInterval(mean, half, confidence, n)
