"""Batched flow-level evaluation over compiled routing plans.

The reference evaluator (:func:`repro.flow.loads.link_loads`) recomputes
the routing decision for every traffic matrix.  :class:`BatchFlowEngine`
consumes a :class:`~repro.routing.compiled.CompiledScheme` instead:
evaluating a traffic matrix is one CSR row-gather plus one
``np.bincount``, and a *batch* of B permutations is evaluated in a
single stacked bincount keyed by ``batch_index * n_links + link_id``,
returning a ``(B,)`` MLOAD vector.  This is the permutation-study hot
path: the adaptive protocol draws whole rounds (64, 128, ... samples)
which the engine folds into a handful of NumPy calls.
"""

from __future__ import annotations

import numpy as np

from repro.obs.recorder import get_recorder
from repro.routing.compiled import CompiledScheme
from repro.traffic.matrix import TrafficMatrix

#: soft cap on the scratch ``(chunk, n_links)`` load matrix (floats)
_BATCH_BUDGET = 1 << 23


def _duplicate_columns(table: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Equivalence classes of identical columns of a 2-D int table.

    Returns ``(keep, inverse)``: the first column of each class and, for
    every column, its class index.  A full lexicographic unique over
    ``n_pairs``-long columns would dominate engine setup, so candidate
    classes come from a small row sample and only candidates are
    verified exactly.
    """
    n_rows, width = table.shape
    sample = table[:: max(1, n_rows // 64)]
    _, cand = np.unique(sample.T, axis=0, return_inverse=True)
    cand = cand.ravel()
    keep: list[int] = []
    inverse = np.empty(width, dtype=np.int64)
    buckets: dict[int, list[int]] = {}
    for col in range(width):
        for rep in buckets.get(int(cand[col]), ()):
            if np.array_equal(table[:, col], table[:, rep]):
                inverse[col] = inverse[rep]
                break
        else:
            buckets.setdefault(int(cand[col]), []).append(col)
            inverse[col] = len(keep)
            keep.append(col)
    return np.asarray(keep, dtype=np.int64), inverse


class BatchFlowEngine:
    """Evaluates traffic against one compiled routing plan.

    >>> from repro.topology import m_port_n_tree
    >>> from repro.routing import make_scheme
    >>> from repro.routing.compiled import compile_scheme
    >>> import numpy as np
    >>> xgft = m_port_n_tree(4, 2)
    >>> eng = BatchFlowEngine(compile_scheme(xgft, make_scheme(xgft, "umulti")))
    >>> perms = np.stack([np.roll(np.arange(8), r) for r in (1, 2)])
    >>> eng.permutation_mloads(perms)
    array([1., 1.])
    """

    def __init__(self, plan: CompiledScheme):
        self.plan = plan
        self.xgft = plan.xgft
        self._n = plan.xgft.n_procs
        self._n_links = plan.xgft.n_links
        self._indptr = plan.indptr
        self._row_counts = np.diff(plan.indptr)
        self._link_ids = plan.link_ids
        self._link_weights = plan.link_weights
        # Dense per-level tables for the permutation batch path: every
        # row of a level has the same width, so a batch evaluation is
        # plain 2-D fancy indexing — no variable-length CSR gather.
        # Entries sharing a weight are folded into one *unweighted*
        # bincount times a scalar (uniform fractions -> one group).
        n2 = self._n * self._n
        self._levels = []
        self._level_of_key = np.full(n2, -1, dtype=np.int8)
        for lv in plan.levels.values():
            row_of_key = np.zeros(n2, dtype=np.int64)
            row_of_key[lv.keys] = np.arange(lv.n_pairs, dtype=np.int64)
            self._level_of_key[lv.keys] = len(self._levels)
            links_flat = lv.links.reshape(lv.n_pairs, lv.width)
            if lv.pair_weights is not None:
                # Masked (degraded) plan: weights differ per pair, so no
                # column structure to exploit — one weighted bincount.
                self._levels.append(
                    (row_of_key, links_flat, None, lv.pair_link_weights())
                )
                continue
            # Merge (path, hop) columns that name the same link for
            # *every* pair — e.g. all paths share the terminal links when
            # w_1 = 1, and UMULTI's full fan-out shares each level-l link
            # among W(k)/W(l+1) paths.  Their weights add.
            keep, inverse = _duplicate_columns(links_flat)
            links_flat = np.ascontiguousarray(links_flat[:, keep])
            col_weights = np.bincount(inverse, weights=lv.link_weights)
            width = links_flat.shape[1]
            groups = []
            for w in np.unique(col_weights):
                cols = np.flatnonzero(col_weights == w)
                groups.append((float(w), None if len(cols) == width
                               else cols))
            self._levels.append((row_of_key, links_flat, groups, None))

    @property
    def label(self) -> str:
        return self.plan.label

    def _gather(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flat incidence indices for the CSR rows ``keys`` (in order),
        plus each row's entry count.  Self-pairs are empty rows and so
        vanish here — no masking needed."""
        starts = self._indptr[keys]
        counts = self._row_counts[keys]
        ends = np.cumsum(counts)
        total = int(ends[-1]) if len(ends) else 0
        idx = (np.arange(total, dtype=np.int64)
               + np.repeat(starts - (ends - counts), counts))
        return idx, counts

    # -- single traffic matrix ----------------------------------------
    def link_loads(self, tm: TrafficMatrix) -> np.ndarray:
        """Directed-link load vector for ``tm`` — parity with the
        reference :func:`repro.flow.loads.link_loads` to 1e-9."""
        if tm.n_procs != self._n:
            raise ValueError(
                f"traffic matrix is over {tm.n_procs} nodes but plan was "
                f"compiled for {self._n}"
            )
        keys = tm.src * self._n + tm.dst
        idx, counts = self._gather(keys)
        weights = self._link_weights[idx] * np.repeat(tm.amount, counts)
        return np.bincount(self._link_ids[idx], weights=weights,
                           minlength=self._n_links).astype(np.float64)

    # -- permutation batches ------------------------------------------
    def _batch_loads(self, perms: np.ndarray) -> np.ndarray:
        """(B, n_links) load matrix for unit-traffic permutations."""
        b, n = perms.shape
        keys = (np.arange(n, dtype=np.int64)[None, :] * n + perms).ravel()
        bases = (np.repeat(np.arange(b, dtype=np.int64), n) * self._n_links)
        lvl = self._level_of_key[keys]
        total = b * self._n_links
        loads = np.zeros(total)
        for i, (row_of_key, links_flat, groups, pair_w) in enumerate(self._levels):
            sel = lvl == i
            if not sel.any():
                continue
            rows = row_of_key[keys[sel]]
            combined = links_flat[rows] + bases[sel][:, None]
            if groups is None:  # masked plan: per-pair weights
                loads += np.bincount(combined.ravel(),
                                     weights=pair_w[rows].ravel(),
                                     minlength=total)
                continue
            for weight, cols in groups:
                flat = (combined if cols is None else combined[:, cols]).ravel()
                loads += weight * np.bincount(flat, minlength=total)
        return loads.reshape(b, self._n_links)

    def permutation_mloads(self, perms: np.ndarray) -> np.ndarray:
        """MLOAD of each unit-traffic permutation in ``perms``.

        ``perms`` is a ``(B, n_procs)`` int array (each row a permutation
        of ``0..n-1``; fixed points allowed, they carry no traffic).
        Evaluated in chunks sized so the scratch load matrix stays within
        a fixed budget.
        """
        perms = np.atleast_2d(np.asarray(perms, dtype=np.int64))
        b = perms.shape[0]
        if perms.shape[1] != self._n:
            raise ValueError(
                f"permutations are over {perms.shape[1]} nodes but plan was "
                f"compiled for {self._n}"
            )
        out = np.empty(b, dtype=np.float64)
        if self._n_links == 0 or b == 0:
            out[:] = 0.0
            return out
        rec = get_recorder()
        chunk = max(1, _BATCH_BUDGET // self._n_links)
        with rec.timer("flow.batch_eval"):
            for i in range(0, b, chunk):
                out[i:i + chunk] = self._batch_loads(perms[i:i + chunk]).max(axis=1)
        if rec.enabled:
            rec.count("flow.batch_permutations", b)
            rec.count("flow.batch_eval_calls")
        return out
