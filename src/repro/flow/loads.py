"""Vectorized per-link load accumulation.

For every SD pair and every path the routing scheme assigns it, the pair's
traffic times the path's fraction is added to each directed link on the
path.  Everything is closed-form arithmetic on path indices (see
DESIGN.md Section 6), so the whole evaluation is a handful of NumPy
expressions per tree level — no per-pair Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import RoutingScheme
from repro.routing.enumeration import path_codec
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix


def _accumulate_group(
    xgft: XGFT,
    scheme: RoutingScheme,
    k: int,
    s: np.ndarray,
    d: np.ndarray,
    amount: np.ndarray,
    ids_out: list[np.ndarray],
    weights_out: list[np.ndarray],
) -> None:
    """Emit (link id, weight) arrays for pairs whose NCA level is ``k``."""
    idx = scheme.path_index_matrix(s, d, k)  # (n, P)
    # Fault-aware schemes carry per-pair fractions (renormalized around
    # failed paths, 0 on padding entries); pristine schemes share one
    # per-level fraction vector.
    frac_matrix = scheme.path_weight_matrix(s, d, k)
    if frac_matrix is None:
        frac_matrix = scheme.fractions(k)[None, :]
    weights = (amount[:, None] * frac_matrix).ravel()
    codec = path_codec(xgft, k)

    # Accumulated low digits sum_{j<l} p_j W(j), per (pair, path).
    low = np.zeros_like(idx)
    for l in range(k):
        port = (idx // codec.strides[l]) % xgft.w[l]
        up_node = low + xgft.W(l) * (s // xgft.M(l))[:, None]
        up_ids = xgft.up_link_id(l, up_node, port)
        low = low + port * xgft.W(l)
        down_parent = low + xgft.W(l + 1) * (d // xgft.M(l + 1))[:, None]
        child_digit = ((d // xgft.M(l)) % xgft.m[l])[:, None]
        down_ids = xgft.down_link_id(l, down_parent,
                                     np.broadcast_to(child_digit, down_parent.shape))
        ids_out.append(up_ids.ravel())
        weights_out.append(weights)
        ids_out.append(down_ids.ravel())
        weights_out.append(weights)


def link_loads(xgft: XGFT, scheme: RoutingScheme, tm: TrafficMatrix) -> np.ndarray:
    """Directed-link load vector (length ``xgft.n_links``) produced by
    routing ``tm`` with ``scheme``.

    Self-pairs carry no network traffic and are ignored.  Pairs are
    grouped by NCA level so each group shares a path codec and a path
    count, keeping the computation fully vectorized.
    """
    if tm.n_procs != xgft.n_procs:
        raise ValueError(
            f"traffic matrix is over {tm.n_procs} nodes but topology has "
            f"{xgft.n_procs}"
        )
    s, d, amount = tm.network_pairs()
    ids_out: list[np.ndarray] = []
    weights_out: list[np.ndarray] = []
    if len(s):
        k_arr = xgft.nca_level(s, d)
        for k in range(1, xgft.h + 1):
            mask = k_arr == k
            if not mask.any():
                continue
            _accumulate_group(
                xgft, scheme, k, s[mask], d[mask], amount[mask],
                ids_out, weights_out,
            )
    if not ids_out:
        return np.zeros(xgft.n_links)
    all_ids = np.concatenate(ids_out)
    all_weights = np.concatenate(weights_out)
    return np.bincount(all_ids, weights=all_weights, minlength=xgft.n_links)
