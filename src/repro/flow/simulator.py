"""Flow-level simulator facade.

Bundles the link-load evaluation and metrics into one object with a
result type that carries per-level breakdowns — convenient for examples,
experiments and the CLI.

Two evaluation engines are available (see ``docs/architecture.md``):

* ``"reference"`` — the original closed-form evaluator
  (:func:`repro.flow.loads.link_loads`), which re-derives the routing
  decision per traffic matrix.  Simple, memory-light, the spec.
* ``"compiled"`` — routes are compiled once per scheme
  (:func:`repro.routing.compiled.compile_scheme`) and every evaluation
  is a gather + bincount over the cached incidence
  (:class:`repro.flow.engine.BatchFlowEngine`).  Much faster when the
  same scheme is evaluated against many traffic matrices.

Both agree to 1e-9 on every scheme family; the parity suite in
``tests/flow/test_engine.py`` enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flow.engine import BatchFlowEngine
from repro.flow.loads import link_loads
from repro.flow.metrics import max_link_load, optimal_load
from repro.obs.recorder import get_recorder
from repro.routing.base import RoutingScheme
from repro.routing.compiled import CompiledScheme, compile_scheme
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix

ENGINES = ("reference", "compiled")


@dataclass(frozen=True)
class FlowResult:
    """Outcome of routing one traffic matrix at the flow level.

    Attributes
    ----------
    loads:
        Directed-link load vector (length ``n_links``).
    max_load:
        ``MLOAD`` — the paper's headline flow-level metric.
    optimal:
        ``OLOAD`` (exact).
    ratio:
        ``PERF = max_load / optimal`` (1.0 when there is no traffic).
    per_level_max:
        Maximum load among the links of each level boundary
        ``(0..h-1)``, split by direction — diagnostic for *where* a
        heuristic leaves contention (the shift-1 weakness is visible
        here as high lower-level loads).
    """

    loads: np.ndarray
    max_load: float
    optimal: float
    ratio: float
    per_level_max: tuple[tuple[float, float], ...]

    def bottleneck_level(self, rel_tol: float = 1e-9) -> int:
        """Boundary level containing a maximally loaded link.

        The comparison uses a relative tolerance: per-level maxima and
        the global maximum may come from different float summation
        orders, so exact equality can miss the true bottleneck.

        >>> import numpy as np
        >>> third = 0.1 + 0.1 + 0.1     # 0.30000000000000004 != 0.3
        >>> res = FlowResult(np.array([third]), third, third, 1.0,
        ...                  ((0.25, 0.0), (0.3, 0.0)))
        >>> res.bottleneck_level()      # exact equality would miss level 1
        1
        """
        tol = rel_tol * max(abs(self.max_load), 1.0)
        for level, (up, down) in enumerate(self.per_level_max):
            if max(up, down) >= self.max_load - tol:
                return level
        return 0  # pragma: no cover - empty network


class FlowSimulator:
    """Evaluate routing schemes on one topology at the flow level.

    Parameters
    ----------
    xgft:
        Topology under test.
    engine:
        ``"reference"`` (default) re-derives routes per evaluation;
        ``"compiled"`` compiles each scheme once on first use and serves
        every subsequent evaluation from the cached incidence.

    >>> from repro.topology import m_port_n_tree
    >>> from repro.routing import make_scheme
    >>> from repro.traffic import shift_pattern
    >>> xgft = m_port_n_tree(8, 2)
    >>> sim = FlowSimulator(xgft)
    >>> res = sim.evaluate(make_scheme(xgft, "umulti"),
    ...                    shift_pattern(xgft.n_procs, 16))
    >>> res.ratio
    1.0
    """

    def __init__(self, xgft: XGFT, *, engine: str = "reference"):
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.xgft = xgft
        self.engine = engine
        # Per-boundary (up, down) link-id slices, precomputed once — the
        # link layout is contiguous per level, so per-evaluate boolean
        # masking is unnecessary.
        self._boundary_slices = tuple(
            xgft.boundary_link_slices(l) for l in range(xgft.h)
        )
        self._batch_engines: dict[RoutingScheme, BatchFlowEngine] = {}

    def batch_engine(self, scheme: RoutingScheme | CompiledScheme) -> BatchFlowEngine:
        """The cached :class:`BatchFlowEngine` for ``scheme``, compiling
        the plan on first use."""
        eng = self._batch_engines.get(scheme)
        if eng is None:
            plan = scheme if isinstance(scheme, CompiledScheme) \
                else compile_scheme(self.xgft, scheme)
            eng = BatchFlowEngine(plan)
            self._batch_engines[scheme] = eng
        return eng

    def _link_loads(self, scheme, tm: TrafficMatrix) -> np.ndarray:
        if self.engine == "compiled":
            return self.batch_engine(scheme).link_loads(tm)
        return link_loads(self.xgft, scheme, tm)

    def evaluate(
        self,
        scheme: RoutingScheme | CompiledScheme,
        tm: TrafficMatrix,
        *,
        optimal: float | None = None,
    ) -> FlowResult:
        """Route ``tm`` with ``scheme`` and collect all metrics.

        ``optimal`` short-circuits the OLOAD computation when the caller
        already knows it — e.g. permutation studies, where the optimal
        is invariant across samples and hoisted out of the loop.
        """
        loads = self._link_loads(scheme, tm)
        mload = max_link_load(loads)
        opt = optimal_load(self.xgft, tm) if optimal is None else float(optimal)
        per_level = []
        for up_slice, down_slice in self._boundary_slices:
            up = loads[up_slice]
            down = loads[down_slice]
            per_level.append(
                (float(up.max()) if len(up) else 0.0,
                 float(down.max()) if len(down) else 0.0)
            )
        ratio = mload / opt if opt > 0 else 1.0
        return FlowResult(loads, mload, opt, ratio, tuple(per_level))

    def max_load(self, scheme, tm: TrafficMatrix) -> float:
        """Just ``MLOAD`` — the cheap path used by the sampling loops."""
        rec = get_recorder()
        if not rec.enabled:
            return max_link_load(self._link_loads(scheme, tm))
        with rec.timer("flow.max_load"):
            mload = max_link_load(self._link_loads(scheme, tm))
        rec.count("flow.max_load_calls")
        return mload

    def permutation_mloads(self, scheme, perms: np.ndarray) -> np.ndarray:
        """MLOAD of a ``(B, n_procs)`` batch of permutations.

        Under the compiled engine this is one stacked evaluation; the
        reference engine falls back to a scalar loop (kept as the
        comparison baseline for the parity tests and benchmarks).
        """
        if self.engine == "compiled":
            return self.batch_engine(scheme).permutation_mloads(perms)
        from repro.traffic.permutations import permutation_matrix

        perms = np.atleast_2d(np.asarray(perms, dtype=np.int64))
        return np.array([
            max_link_load(link_loads(self.xgft, scheme, permutation_matrix(p)))
            for p in perms
        ])
