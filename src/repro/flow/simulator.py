"""Flow-level simulator facade.

Bundles the link-load evaluation and metrics into one object with a
result type that carries per-level breakdowns — convenient for examples,
experiments and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flow.loads import link_loads
from repro.flow.metrics import max_link_load, optimal_load
from repro.obs.recorder import get_recorder
from repro.routing.base import RoutingScheme
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class FlowResult:
    """Outcome of routing one traffic matrix at the flow level.

    Attributes
    ----------
    loads:
        Directed-link load vector (length ``n_links``).
    max_load:
        ``MLOAD`` — the paper's headline flow-level metric.
    optimal:
        ``OLOAD`` (exact).
    ratio:
        ``PERF = max_load / optimal`` (1.0 when there is no traffic).
    per_level_max:
        Maximum load among the links of each level boundary
        ``(0..h-1)``, split by direction — diagnostic for *where* a
        heuristic leaves contention (the shift-1 weakness is visible
        here as high lower-level loads).
    """

    loads: np.ndarray
    max_load: float
    optimal: float
    ratio: float
    per_level_max: tuple[tuple[float, float], ...]

    def bottleneck_level(self, rel_tol: float = 1e-9) -> int:
        """Boundary level containing a maximally loaded link.

        The comparison uses a relative tolerance: per-level maxima and
        the global maximum may come from different float summation
        orders, so exact equality can miss the true bottleneck.

        >>> import numpy as np
        >>> third = 0.1 + 0.1 + 0.1     # 0.30000000000000004 != 0.3
        >>> res = FlowResult(np.array([third]), third, third, 1.0,
        ...                  ((0.25, 0.0), (0.3, 0.0)))
        >>> res.bottleneck_level()      # exact equality would miss level 1
        1
        """
        tol = rel_tol * max(abs(self.max_load), 1.0)
        for level, (up, down) in enumerate(self.per_level_max):
            if max(up, down) >= self.max_load - tol:
                return level
        return 0  # pragma: no cover - empty network


class FlowSimulator:
    """Evaluate routing schemes on one topology at the flow level.

    >>> from repro.topology import m_port_n_tree
    >>> from repro.routing import make_scheme
    >>> from repro.traffic import shift_pattern
    >>> xgft = m_port_n_tree(8, 2)
    >>> sim = FlowSimulator(xgft)
    >>> res = sim.evaluate(make_scheme(xgft, "umulti"),
    ...                    shift_pattern(xgft.n_procs, 16))
    >>> res.ratio
    1.0
    """

    def __init__(self, xgft: XGFT):
        self.xgft = xgft
        self._levels = xgft.link_levels()
        self._is_up = xgft.link_is_up()

    def evaluate(self, scheme: RoutingScheme, tm: TrafficMatrix) -> FlowResult:
        """Route ``tm`` with ``scheme`` and collect all metrics."""
        loads = link_loads(self.xgft, scheme, tm)
        mload = max_link_load(loads)
        opt = optimal_load(self.xgft, tm)
        per_level = []
        for l in range(self.xgft.h):
            sel = self._levels == l
            up = loads[sel & self._is_up]
            down = loads[sel & ~self._is_up]
            per_level.append(
                (float(up.max()) if len(up) else 0.0,
                 float(down.max()) if len(down) else 0.0)
            )
        ratio = mload / opt if opt > 0 else 1.0
        return FlowResult(loads, mload, opt, ratio, tuple(per_level))

    def max_load(self, scheme: RoutingScheme, tm: TrafficMatrix) -> float:
        """Just ``MLOAD`` — the cheap path used by the sampling loops."""
        rec = get_recorder()
        if not rec.enabled:
            return max_link_load(link_loads(self.xgft, scheme, tm))
        with rec.timer("flow.max_load"):
            mload = max_link_load(link_loads(self.xgft, scheme, tm))
        rec.count("flow.max_load_calls")
        return mload
