"""Flow-level routing metrics (Section 3.2 of the paper).

* ``MLOAD(r, TM)`` — maximum directed-link load under routing ``r``.
* ``ML(TM)`` — Lemma 1's lower bound on any routing's maximum load:
  for every sub-XGFT ``st_k``, the traffic crossing its boundary must
  share its ``TL(k) = W(k+1)`` one-directional links.
* ``OLOAD(TM)`` — the optimal load.  By Theorem 1, UMULTI achieves
  ``ML(TM)`` exactly (every link is a boundary link of exactly one
  subtree and UMULTI spreads boundary traffic evenly), so
  ``OLOAD(TM) == ML(TM)`` on XGFTs and we compute it in closed form.
* ``PERF(r, TM) = MLOAD / OLOAD >= 1`` — the performance ratio.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import RoutingScheme
from repro.topology.xgft import XGFT
from repro.traffic.matrix import TrafficMatrix


def max_link_load(loads: np.ndarray) -> float:
    """``MLOAD``: the largest entry of a link-load vector (0 if empty)."""
    return float(loads.max()) if len(loads) else 0.0


def ml_lower_bound(xgft: XGFT, tm: TrafficMatrix) -> float:
    """Lemma 1's bound ``ML(TM) = max_k max_{st_k} MT(TM, st_k) / W(k+1)``.

    ``MT`` is the larger of the subtree's egress and ingress volume.
    Height-0 subtrees are single processing nodes, so the bound includes
    the terminal-link constraint ``max(row, col) / w_1``.
    """
    s, d, amount = tm.network_pairs()
    if len(s) == 0:
        return 0.0
    best = 0.0
    for k in range(xgft.h):  # subtree heights 0 .. h-1
        mk = xgft.M(k)
        n_subtrees = xgft.n_subtrees(k)
        ss = s // mk
        dd = d // mk
        cross = ss != dd
        if not cross.any():
            continue
        out = np.bincount(ss[cross], weights=amount[cross], minlength=n_subtrees)
        inn = np.bincount(dd[cross], weights=amount[cross], minlength=n_subtrees)
        mt = max(out.max(), inn.max())
        best = max(best, mt / xgft.W(k + 1))
    return float(best)


def optimal_load(xgft: XGFT, tm: TrafficMatrix) -> float:
    """``OLOAD(TM)``: the minimum achievable maximum link load.

    Exactly ``ML(TM)`` on XGFTs (Lemma 1 gives >=, Theorem 1's UMULTI
    achieves it).
    """
    return ml_lower_bound(xgft, tm)


def permutation_optimal_load(xgft: XGFT) -> float:
    """``OLOAD`` of unit-traffic permutation traffic, computed once.

    For a (non-identity) permutation every node sends and receives at
    most one unit, so the height-``k`` term of Lemma 1 is at most
    ``M(k) / W(k+1)`` and the terminal term is exactly ``1 / w_1``.  The
    witness realizing every bound simultaneously is the cyclic shift by
    ``M(h-1)``: it moves each node's top digit, so every subtree at
    every height ``k < h`` exports all of its ``M(k)`` units.  On the
    paper's topologies (``M(k) <= W(k+1) / w_1``, e.g. every m-port
    n-tree) the terminal term dominates and *every* non-identity
    permutation attains the same OLOAD — which is why permutation
    studies hoist this value out of the per-sample loop.

    >>> from repro.topology import m_port_n_tree
    >>> permutation_optimal_load(m_port_n_tree(8, 3))
    1.0
    """
    from repro.traffic.synthetic import shift_pattern  # local: avoid cycle

    if xgft.h == 0 or xgft.n_procs < 2:
        return 0.0
    stride = xgft.M(xgft.h - 1)
    return optimal_load(xgft, shift_pattern(xgft.n_procs, stride))


def load_imbalance(loads: np.ndarray) -> float:
    """Coefficient of variation of the *used* links' loads.

    0 means perfectly even use of every loaded link; large values mean a
    few links carry most of the traffic.  Complements MLOAD: two
    routings with equal maximum load can still differ in how evenly the
    rest of the network is used (the disjoint-vs-shift-1 story below the
    maximum).
    """
    used = loads[loads > 0]
    if len(used) == 0:
        return 0.0
    mean = used.mean()
    return float(used.std() / mean) if mean > 0 else 0.0


def gini_coefficient(loads: np.ndarray) -> float:
    """Gini coefficient of the link-load distribution (all links).

    0 = perfectly equal loads, ->1 = all traffic on one link.  Uses the
    standard mean-absolute-difference form, computed via the sorted
    cumulative sum.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if len(loads) == 0 or loads.sum() == 0:
        return 0.0
    sorted_loads = np.sort(loads)
    n = len(sorted_loads)
    cum = np.cumsum(sorted_loads)
    # G = (n + 1 - 2 * sum(cum) / cum[-1]) / n
    return float((n + 1 - 2 * cum.sum() / cum[-1]) / n)


def performance_ratio(
    xgft: XGFT,
    scheme: RoutingScheme,
    tm: TrafficMatrix,
    *,
    loads: np.ndarray | None = None,
) -> float:
    """``PERF(r, TM) = MLOAD(r, TM) / OLOAD(TM)``.

    Returns 1.0 for an empty traffic matrix (any routing is trivially
    optimal).  Pass precomputed ``loads`` to avoid re-routing.
    """
    from repro.flow.loads import link_loads  # local import: avoid cycle

    if loads is None:
        loads = link_loads(xgft, scheme, tm)
    opt = optimal_load(xgft, tm)
    if opt == 0.0:
        return 1.0
    return max_link_load(loads) / opt
