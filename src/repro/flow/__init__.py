"""Flow-level simulation: exact link loads under a routing scheme.

At the flow level a routing scheme plus a traffic matrix determine every
link's load in closed form; the "simulation" is a vectorized evaluation.
Metrics follow Section 3.2: maximum link load (MLOAD), the optimal load
(OLOAD, computed exactly via Lemma 1 + Theorem 1) and performance ratios.
"""

from repro.flow.engine import BatchFlowEngine
from repro.flow.loads import link_loads
from repro.flow.metrics import (
    max_link_load,
    ml_lower_bound,
    optimal_load,
    performance_ratio,
    permutation_optimal_load,
)
from repro.flow.simulator import ENGINES, FlowResult, FlowSimulator
from repro.flow.sampling import PermutationStudy, PermutationStudyResult

__all__ = [
    "link_loads",
    "max_link_load",
    "ml_lower_bound",
    "optimal_load",
    "performance_ratio",
    "permutation_optimal_load",
    "BatchFlowEngine",
    "ENGINES",
    "FlowSimulator",
    "FlowResult",
    "PermutationStudy",
    "PermutationStudyResult",
]
