"""Adaptive permutation-load studies (the paper's flow-level protocol).

For a topology and a routing scheme, sample random permutations, measure
the maximum link load of each, and stop once the 99 % confidence interval
is within 1 % of the running average (doubling the sample count each
round, per Section 5).  Randomized routing schemes are averaged over
several seeds, matching "the results are the average of five random
seeds".
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.ci import ConfidenceInterval, confidence_interval
from repro.flow.simulator import FlowSimulator
from repro.routing.base import RoutingScheme
from repro.topology.xgft import XGFT
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.util.rng import as_generator


def _worker_mloads(xgft: XGFT, scheme: RoutingScheme, seed: int,
                   count: int) -> list[float]:
    """Process-pool worker: sample ``count`` permutation max loads.

    Module-level so it pickles; every argument is a plain picklable
    object (XGFT/schemes carry only tuples and ints).
    """
    sim = FlowSimulator(xgft)
    rng = np.random.default_rng(seed)
    return [
        sim.max_load(scheme, permutation_matrix(
            random_permutation(xgft.n_procs, rng)))
        for _ in range(count)
    ]


@dataclass(frozen=True)
class PermutationStudyResult:
    """Average maximum permutation load for one scheme.

    ``samples`` holds every individual permutation's MLOAD so callers can
    re-analyze (histograms, ratios); ``interval`` is the final CI.
    """

    scheme_label: str
    interval: ConfidenceInterval
    samples: np.ndarray
    converged: bool

    @property
    def mean(self) -> float:
        return self.interval.mean


class PermutationStudy:
    """Runs the adaptive sampling protocol on one topology.

    Parameters
    ----------
    xgft:
        Topology under test.
    initial_samples:
        First-round sample count (doubles each round).
    rel_precision, confidence:
        Stopping rule: stop when the ``confidence`` CI half-width is below
        ``rel_precision`` of the mean (paper: 1 % at 99 %).
    max_samples:
        Hard cap so studies terminate on noisy configurations; the result
        reports ``converged=False`` when the cap bites.
    n_jobs:
        Worker processes for sampling.  1 (default) runs inline;
        more spread each round's samples over a process pool — useful on
        the 3456-node panels where one sample costs milliseconds.
        Results are reproducible for a fixed ``(seed, n_jobs)`` pair.
    """

    def __init__(
        self,
        xgft: XGFT,
        *,
        initial_samples: int = 64,
        rel_precision: float = 0.01,
        confidence: float = 0.99,
        max_samples: int = 4096,
        seed=None,
        n_jobs: int = 1,
    ):
        if initial_samples < 2:
            raise ValueError("need at least 2 initial samples for a CI")
        if max_samples < initial_samples:
            raise ValueError("max_samples must be >= initial_samples")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.xgft = xgft
        self.sim = FlowSimulator(xgft)
        self.initial_samples = initial_samples
        self.rel_precision = rel_precision
        self.confidence = confidence
        self.max_samples = max_samples
        self.n_jobs = n_jobs
        self._seed = seed

    def _mload_samples(self, scheme: RoutingScheme, count: int, rng) -> list[float]:
        if count <= 0:
            return []
        if self.n_jobs == 1:
            out = []
            for _ in range(count):
                perm = random_permutation(self.xgft.n_procs, rng)
                out.append(self.sim.max_load(scheme, permutation_matrix(perm)))
            return out
        # Parallel: split the round into per-worker chunks with
        # independent child seeds drawn from the study's stream.
        jobs = min(self.n_jobs, count)
        base, extra = divmod(count, jobs)
        chunks = [base + (1 if i < extra else 0) for i in range(jobs)]
        seeds = [int(rng.integers(0, 2**62)) for _ in chunks]
        out = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_worker_mloads, self.xgft, scheme, seed, chunk)
                for seed, chunk in zip(seeds, chunks) if chunk
            ]
            for future in futures:
                out.extend(future.result())
        return out

    def run(self, scheme: RoutingScheme) -> PermutationStudyResult:
        """Average max permutation load of ``scheme`` under the adaptive
        stopping rule."""
        rng = as_generator(self._seed)
        samples: list[float] = []
        target = self.initial_samples
        while True:
            samples.extend(self._mload_samples(scheme, target - len(samples), rng))
            interval = confidence_interval(samples, self.confidence)
            if interval.meets(self.rel_precision):
                return PermutationStudyResult(
                    scheme.label, interval, np.asarray(samples), True
                )
            if len(samples) >= self.max_samples:
                return PermutationStudyResult(
                    scheme.label, interval, np.asarray(samples), False
                )
            target = min(2 * len(samples), self.max_samples)

    def run_seed_family(
        self,
        make_scheme: Callable[[int], RoutingScheme],
        seeds: Sequence[int] = (0, 1, 2, 3, 4),
    ) -> PermutationStudyResult:
        """Average a randomized scheme over several routing seeds.

        Each seed's scheme runs the full adaptive protocol; the pooled
        samples form the reported result (the paper averages five seeds).
        """
        all_samples: list[float] = []
        label = None
        converged = True
        for seed in seeds:
            scheme = make_scheme(seed)
            label = scheme.label
            result = self.run(scheme)
            converged = converged and result.converged
            all_samples.extend(result.samples.tolist())
        interval = confidence_interval(all_samples, self.confidence)
        return PermutationStudyResult(
            label or "random", interval, np.asarray(all_samples), converged
        )
