"""Adaptive permutation-load studies (the paper's flow-level protocol).

For a topology and a routing scheme, sample random permutations, measure
the maximum link load of each, and stop once the 99 % confidence interval
is within 1 % of the running average (doubling the sample count each
round, per Section 5).  Randomized routing schemes are averaged over
several seeds, matching "the results are the average of five random
seeds".
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.ci import ConfidenceInterval, confidence_interval
from repro.flow.simulator import FlowSimulator
from repro.obs.recorder import Recorder, get_recorder, use_recorder
from repro.routing.base import RoutingScheme
from repro.topology.xgft import XGFT
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.util.rng import as_generator


def _worker_mloads(xgft: XGFT, scheme: RoutingScheme, seed: int,
                   count: int, record: bool = False):
    """Process-pool worker: sample ``count`` permutation max loads.

    Module-level so it pickles; every argument is a plain picklable
    object (XGFT/schemes carry only tuples and ints).  Returns
    ``(loads, recorder_snapshot_or_None)``: when ``record`` is set the
    worker runs under its own :class:`~repro.obs.Recorder` and ships its
    state back for the parent to merge.
    """
    sim = FlowSimulator(xgft)
    rng = np.random.default_rng(seed)

    def draw() -> list[float]:
        return [
            sim.max_load(scheme, permutation_matrix(
                random_permutation(xgft.n_procs, rng)))
            for _ in range(count)
        ]

    if not record:
        return draw(), None
    rec = Recorder()
    with use_recorder(rec), rec.timer("flow.sampling.worker"):
        loads = draw()
    rec.count("flow.samples", count)
    return loads, rec.snapshot()


@dataclass(frozen=True)
class PermutationStudyResult:
    """Average maximum permutation load for one scheme.

    ``samples`` holds every individual permutation's MLOAD so callers can
    re-analyze (histograms, ratios); ``interval`` is the final CI.
    """

    scheme_label: str
    interval: ConfidenceInterval
    samples: np.ndarray
    converged: bool

    @property
    def mean(self) -> float:
        return self.interval.mean


class PermutationStudy:
    """Runs the adaptive sampling protocol on one topology.

    Parameters
    ----------
    xgft:
        Topology under test.
    initial_samples:
        First-round sample count (doubles each round).
    rel_precision, confidence:
        Stopping rule: stop when the ``confidence`` CI half-width is below
        ``rel_precision`` of the mean (paper: 1 % at 99 %).
    max_samples:
        Hard cap so studies terminate on noisy configurations; the result
        reports ``converged=False`` when the cap bites.
    n_jobs:
        Worker processes for sampling.  1 (default) runs inline;
        more spread each round's samples over a process pool — useful on
        the 3456-node panels where one sample costs milliseconds.
        Results are reproducible for a fixed ``(seed, n_jobs)`` pair.
    recorder:
        Optional :class:`repro.obs.Recorder`.  ``None`` (default) uses
        the ambient recorder (:func:`repro.obs.get_recorder`) at run
        time.  When recording is enabled, each adaptive round emits a
        ``convergence_round`` event (scheme, samples, running mean, CI
        half-width) and pool workers merge their recorder state back
        into this one.
    """

    def __init__(
        self,
        xgft: XGFT,
        *,
        initial_samples: int = 64,
        rel_precision: float = 0.01,
        confidence: float = 0.99,
        max_samples: int = 4096,
        seed=None,
        n_jobs: int = 1,
        recorder=None,
    ):
        if initial_samples < 2:
            raise ValueError("need at least 2 initial samples for a CI")
        if max_samples < initial_samples:
            raise ValueError("max_samples must be >= initial_samples")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.xgft = xgft
        self.sim = FlowSimulator(xgft)
        self.initial_samples = initial_samples
        self.rel_precision = rel_precision
        self.confidence = confidence
        self.max_samples = max_samples
        self.n_jobs = n_jobs
        self._seed = seed
        self._recorder = recorder

    def _mload_samples(self, scheme: RoutingScheme, count: int, rng,
                       rec) -> list[float]:
        if count <= 0:
            return []
        if self.n_jobs == 1:
            out = []
            for _ in range(count):
                perm = random_permutation(self.xgft.n_procs, rng)
                out.append(self.sim.max_load(scheme, permutation_matrix(perm)))
            rec.count("flow.samples", count)
            return out
        # Parallel: split the round into per-worker chunks with
        # independent child seeds drawn from the study's stream.
        jobs = min(self.n_jobs, count)
        base, extra = divmod(count, jobs)
        chunks = [base + (1 if i < extra else 0) for i in range(jobs)]
        seeds = [int(rng.integers(0, 2**62)) for _ in chunks]
        out = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_worker_mloads, self.xgft, scheme, seed, chunk,
                            rec.enabled)
                for seed, chunk in zip(seeds, chunks) if chunk
            ]
            for future in futures:
                loads, snapshot = future.result()
                out.extend(loads)
                if snapshot is not None:
                    rec.merge(snapshot)
        return out

    def run(self, scheme: RoutingScheme) -> PermutationStudyResult:
        """Average max permutation load of ``scheme`` under the adaptive
        stopping rule."""
        rec = self._recorder if self._recorder is not None else get_recorder()
        rng = as_generator(self._seed)
        samples: list[float] = []
        target = self.initial_samples
        round_index = 0
        with use_recorder(rec):
            while True:
                with rec.timer("flow.sampling.round"):
                    samples.extend(self._mload_samples(
                        scheme, target - len(samples), rng, rec))
                interval = confidence_interval(samples, self.confidence)
                if rec.enabled:
                    rec.event(
                        "convergence_round",
                        scheme=scheme.label,
                        round=round_index,
                        n_samples=interval.n_samples,
                        mean=interval.mean,
                        half_width=interval.half_width,
                        rel_half_width=interval.relative_half_width,
                    )
                round_index += 1
                if interval.meets(self.rel_precision):
                    converged = True
                    break
                if len(samples) >= self.max_samples:
                    converged = False
                    break
                target = min(2 * len(samples), self.max_samples)
        if rec.enabled:
            rec.count("flow.studies", 1)
        return PermutationStudyResult(
            scheme.label, interval, np.asarray(samples), converged
        )

    def run_seed_family(
        self,
        make_scheme: Callable[[int], RoutingScheme],
        seeds: Sequence[int] = (0, 1, 2, 3, 4),
    ) -> PermutationStudyResult:
        """Average a randomized scheme over several routing seeds.

        Each seed's scheme runs the full adaptive protocol; the pooled
        samples form the reported result (the paper averages five seeds).
        """
        all_samples: list[float] = []
        label = None
        converged = True
        for seed in seeds:
            scheme = make_scheme(seed)
            label = scheme.label
            result = self.run(scheme)
            converged = converged and result.converged
            all_samples.extend(result.samples.tolist())
        interval = confidence_interval(all_samples, self.confidence)
        return PermutationStudyResult(
            label or "random", interval, np.asarray(all_samples), converged
        )
