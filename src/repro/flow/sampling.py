"""Adaptive permutation-load studies (the paper's flow-level protocol).

For a topology and a routing scheme, sample random permutations, measure
the maximum link load of each, and stop once the 99 % confidence interval
is within 1 % of the running average (doubling the sample count each
round, per Section 5).  Randomized routing schemes are averaged over
several seeds, matching "the results are the average of five random
seeds".

Engines
-------
With ``engine="compiled"`` the scheme is compiled once per study run
(:func:`repro.routing.compiled.compile_scheme`) and each adaptive round
is evaluated as one batched call
(:meth:`repro.flow.engine.BatchFlowEngine.permutation_mloads`); with
``n_jobs > 1`` the *compiled plan* — not the scheme — ships to the pool
workers, so workers skip route construction entirely.  Both engines
consume the identical permutation stream for a fixed seed, so their
samples agree to float tolerance.

Pool lifecycle
--------------
Parallel sampling runs on a :class:`repro.runner.pool.PersistentPool`:
one set of worker processes serves *every* adaptive round of a run (and
every run of a seed family), and the evaluation context — the compiled
plan or the (topology, scheme) pair — ships to each worker once per run
rather than once per task.  A study created without an external
``pool`` owns its pool and closes it when the outermost unit of work
finishes (the run, or the whole seed family); use the study as a
context manager to keep the pool warm across several ``run()`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.ci import ConfidenceInterval, confidence_interval
from repro.flow.engine import BatchFlowEngine
from repro.flow.metrics import permutation_optimal_load
from repro.flow.simulator import ENGINES, FlowSimulator
from repro.obs.recorder import get_recorder, use_recorder
from repro.obs.trace import span
from repro.routing.base import RoutingScheme
from repro.routing.compiled import CompiledScheme, compile_scheme
from repro.runner.pool import PersistentPool, load_context
from repro.topology.xgft import XGFT
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.util.rng import as_generator


def _worker_mloads(xgft: XGFT, scheme: RoutingScheme, seed: int,
                   count: int) -> list[float]:
    """Process-pool worker: sample ``count`` permutation max loads.

    Module-level so it pickles; every argument is a plain picklable
    object (XGFT/schemes carry only tuples and ints).  Records into the
    ambient recorder — inert inline, the per-task recorder when run
    through :meth:`~repro.runner.pool.PersistentPool.submit_task`
    (which ships the snapshot back for the parent to merge).
    """
    sim = FlowSimulator(xgft)
    rng = np.random.default_rng(seed)
    rec = get_recorder()
    with rec.timer("flow.sampling.worker"):
        loads = [
            sim.max_load(scheme, permutation_matrix(
                random_permutation(xgft.n_procs, rng)))
            for _ in range(count)
        ]
    rec.count("flow.samples", count)
    return loads


def _worker_batch_mloads(plan: CompiledScheme, seed: int,
                         count: int) -> list[float]:
    """Compiled-engine pool worker: evaluate ``count`` permutations in
    one batched call against a precompiled routing plan.

    Draws the same permutation stream as :func:`_worker_mloads` for the
    same seed, so reference and compiled parallel runs agree sample for
    sample.  Recorder handling mirrors the reference worker exactly
    (same timer name, same ``flow.samples`` counter) so merged
    telemetry is engine-independent.
    """
    engine = BatchFlowEngine(plan)
    rng = np.random.default_rng(seed)
    n = plan.xgft.n_procs
    rec = get_recorder()
    with rec.timer("flow.sampling.worker"):
        perms = np.stack([random_permutation(n, rng) for _ in range(count)])
        loads = engine.permutation_mloads(perms).tolist()
    rec.count("flow.samples", count)
    return loads


def _pool_sample_task(token: str, seed: int, count: int) -> list[float]:
    """Persistent-pool worker: dispatch to the engine the study's
    context was built for.

    The context (compiled plan, or topology + scheme) crosses the
    process boundary at most once per worker
    (:func:`repro.runner.pool.load_context`); per-task arguments are
    three scalars.  Delegates to the classic workers so samples are
    identical to the historical per-round-pool implementation.
    """
    ctx = load_context(token)
    with span("flow.sample_chunk", engine=ctx["engine"], count=count):
        if ctx["engine"] == "compiled":
            return _worker_batch_mloads(ctx["plan"], seed, count)
        return _worker_mloads(ctx["xgft"], ctx["scheme"], seed, count)


@dataclass(frozen=True)
class PermutationStudyResult:
    """Average maximum permutation load for one scheme.

    ``samples`` holds every individual permutation's MLOAD so callers can
    re-analyze (histograms, ratios); ``interval`` is the final CI.
    ``optimal`` is the permutation OLOAD, computed once per study
    (invariant across samples — see
    :func:`repro.flow.metrics.permutation_optimal_load`).
    """

    scheme_label: str
    interval: ConfidenceInterval
    samples: np.ndarray
    converged: bool
    optimal: float = 0.0

    @property
    def mean(self) -> float:
        return self.interval.mean

    @property
    def mean_ratio(self) -> float:
        """Average ``PERF`` over the samples (1.0 when OLOAD unknown)."""
        return self.mean / self.optimal if self.optimal > 0 else 1.0


class PermutationStudy:
    """Runs the adaptive sampling protocol on one topology.

    Parameters
    ----------
    xgft:
        Topology under test.
    initial_samples:
        First-round sample count (doubles each round).
    rel_precision, confidence:
        Stopping rule: stop when the ``confidence`` CI half-width is below
        ``rel_precision`` of the mean (paper: 1 % at 99 %).
    max_samples:
        Hard cap so studies terminate on noisy configurations; the result
        reports ``converged=False`` when the cap bites.
    n_jobs:
        Worker processes for sampling.  1 (default) runs inline;
        more spread each round's samples over a process pool — useful on
        the 3456-node panels where one sample costs milliseconds.
        Results are reproducible for a fixed ``(seed, n_jobs)`` pair.
        The pool persists across adaptive rounds (and across the runs of
        a seed family); see the module docstring for its lifecycle.
    pool:
        Optional externally owned
        :class:`~repro.runner.pool.PersistentPool` shared with other
        studies or runners.  The study never closes an external pool.
        Chunking (and therefore the sample stream) is still governed by
        ``n_jobs``, not by the pool's worker count.
    engine:
        ``"reference"`` evaluates one permutation at a time through
        :class:`FlowSimulator`; ``"compiled"`` compiles the scheme once
        per :meth:`run` and evaluates whole rounds as single batched
        calls (ships the compiled plan to pool workers).
    recorder:
        Optional :class:`repro.obs.Recorder`.  ``None`` (default) uses
        the ambient recorder (:func:`repro.obs.get_recorder`) at run
        time.  When recording is enabled, each adaptive round emits a
        ``convergence_round`` event (scheme, samples, running mean, CI
        half-width) and pool workers merge their recorder state back
        into this one.
    """

    def __init__(
        self,
        xgft: XGFT,
        *,
        initial_samples: int = 64,
        rel_precision: float = 0.01,
        confidence: float = 0.99,
        max_samples: int = 4096,
        seed=None,
        n_jobs: int = 1,
        engine: str = "reference",
        recorder=None,
        pool: PersistentPool | None = None,
    ):
        if initial_samples < 2:
            raise ValueError("need at least 2 initial samples for a CI")
        if max_samples < initial_samples:
            raise ValueError("max_samples must be >= initial_samples")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.xgft = xgft
        self.sim = FlowSimulator(xgft)
        self.initial_samples = initial_samples
        self.rel_precision = rel_precision
        self.confidence = confidence
        self.max_samples = max_samples
        self.n_jobs = n_jobs
        self.engine = engine
        self._seed = seed
        self._recorder = recorder
        self._perm_optimal: float | None = None
        self._external_pool = pool
        self._owned_pool: PersistentPool | None = None
        self._scope_depth = 0
        self._ctx_token: str | None = None

    @property
    def permutation_optimal(self) -> float:
        """Permutation-traffic OLOAD, computed once per study and shared
        by every sample (hoisted out of the per-matrix work)."""
        if self._perm_optimal is None:
            self._perm_optimal = permutation_optimal_load(self.xgft)
        return self._perm_optimal

    # -- pool lifecycle ------------------------------------------------
    def _study_pool(self) -> PersistentPool:
        """The pool parallel rounds submit to (external wins; an owned
        one is created lazily and reused until :meth:`close`)."""
        if self._external_pool is not None:
            return self._external_pool
        if self._owned_pool is None:
            self._owned_pool = PersistentPool(self.n_jobs)
        return self._owned_pool

    def close(self) -> None:
        """Shut down the study-owned worker pool (external pools are the
        caller's to close).  Idempotent; a later run re-creates it."""
        if self._owned_pool is not None:
            self._owned_pool.close()
            self._owned_pool = None

    def __enter__(self) -> "PermutationStudy":
        """Keep the owned pool warm across several ``run()`` calls."""
        self._scope_depth += 1
        return self

    def __exit__(self, *exc) -> None:
        self._scope_depth -= 1
        if self._scope_depth == 0:
            self.close()

    def _mload_samples(self, scheme: RoutingScheme, count: int, rng,
                       rec, batch: BatchFlowEngine | None) -> list[float]:
        if count <= 0:
            return []
        if self.n_jobs == 1:
            # Both engines consume the identical permutation stream.
            perms = [random_permutation(self.xgft.n_procs, rng)
                     for _ in range(count)]
            if batch is not None:
                out = batch.permutation_mloads(np.stack(perms)).tolist()
            else:
                out = [self.sim.max_load(scheme, permutation_matrix(p))
                       for p in perms]
            rec.count("flow.samples", count)
            return out
        # Parallel: split the round into per-worker chunks with
        # independent child seeds drawn from the study's stream.  The
        # chunk/seed arithmetic is what fixes the sample stream for a
        # given (seed, n_jobs) — the persistent pool underneath carries
        # no randomness, so it matches the historical per-round pools.
        jobs = min(self.n_jobs, count)
        base, extra = divmod(count, jobs)
        chunks = [base + (1 if i < extra else 0) for i in range(jobs)]
        seeds = [int(rng.integers(0, 2**62)) for _ in chunks]
        out = []
        pool = self._study_pool()
        futures = [
            pool.submit_task(_pool_sample_task, self._ctx_token, seed, chunk)
            for seed, chunk in zip(seeds, chunks) if chunk
        ]
        for future in futures:
            loads, snapshot = future.result()
            out.extend(loads)
            if snapshot is not None:
                rec.merge(snapshot)
        return out

    def run(self, scheme: RoutingScheme | CompiledScheme) -> PermutationStudyResult:
        """Average max permutation load of ``scheme`` under the adaptive
        stopping rule."""
        rec = self._recorder if self._recorder is not None else get_recorder()
        rng = as_generator(self._seed)
        samples: list[float] = []
        target = self.initial_samples
        round_index = 0
        try:
            with use_recorder(rec), span("flow.study", scheme=scheme.label):
                batch = None
                if self.engine == "compiled" or isinstance(scheme, CompiledScheme):
                    # Compile once; every round reuses the plan.
                    batch = BatchFlowEngine(compile_scheme(self.xgft, scheme))
                if self.n_jobs > 1:
                    # Ship the evaluation context to the pool once per
                    # run; every round's tasks reference it by token.
                    ctx = ({"engine": "compiled", "plan": batch.plan}
                           if batch is not None else
                           {"engine": "reference", "xgft": self.xgft,
                            "scheme": scheme})
                    self._ctx_token = self._study_pool().put_context(ctx)
                optimal = self.permutation_optimal
                while True:
                    with rec.timer("flow.sampling.round"):
                        samples.extend(self._mload_samples(
                            scheme, target - len(samples), rng, rec, batch))
                    interval = confidence_interval(samples, self.confidence)
                    if rec.enabled:
                        rec.event(
                            "convergence_round",
                            scheme=scheme.label,
                            round=round_index,
                            n_samples=interval.n_samples,
                            mean=interval.mean,
                            half_width=interval.half_width,
                            rel_half_width=interval.relative_half_width,
                        )
                    round_index += 1
                    if interval.meets(self.rel_precision):
                        converged = True
                        break
                    if len(samples) >= self.max_samples:
                        converged = False
                        break
                    target = min(2 * len(samples), self.max_samples)
        finally:
            self._ctx_token = None
            if self._scope_depth == 0:
                self.close()
        if rec.enabled:
            rec.count("flow.studies", 1)
        return PermutationStudyResult(
            scheme.label, interval, np.asarray(samples), converged,
            optimal=optimal,
        )

    def run_seed_family(
        self,
        make_scheme: Callable[[int], RoutingScheme],
        seeds: Sequence[int] = (0, 1, 2, 3, 4),
    ) -> PermutationStudyResult:
        """Average a randomized scheme over several routing seeds.

        Each seed's scheme runs the full adaptive protocol; the pooled
        samples form the reported result (the paper averages five seeds).
        """
        all_samples: list[float] = []
        label = None
        converged = True
        with self:  # one worker pool spans every seed's run
            for seed in seeds:
                scheme = make_scheme(seed)
                label = scheme.label
                result = self.run(scheme)
                converged = converged and result.converged
                all_samples.extend(result.samples.tolist())
        interval = confidence_interval(all_samples, self.confidence)
        return PermutationStudyResult(
            label or "random", interval, np.asarray(all_samples), converged,
            optimal=self.permutation_optimal,
        )
