"""Seeded fault models over an XGFT.

A :class:`FaultSpec` describes *what* fails — random cable failures,
random switch failures, and/or explicit named elements — and
:meth:`FaultSpec.sample` turns it into a concrete
:class:`~repro.faults.degraded.DegradedFabric`.

Sampling discipline
-------------------
All randomness flows through named :func:`repro.util.rng.substream`
streams derived from the spec's seed: cable faults and switch faults
draw from *independent* streams, so enabling one never perturbs the
sample of the other, and nothing touches module-level ``random`` /
``np.random`` state.  Two interleaved simulations therefore reproduce
their solo results exactly (the regression suite pins this).

Critical elements
-----------------
By default random sampling only draws elements whose individual loss
cannot disconnect the fabric: a single switch at level ``l`` is a
single point of failure iff ``W(l) == 1`` (it is some host's only
level-``l`` ancestor), and a single cable crossing boundary ``l`` iff
``W(l+1) == 1``.  Losing such an element is host attrition, not
degraded routing, and is a different failure class; pass
``spare_critical=False`` (or name the element explicitly) to study it —
disconnected pairs then raise
:class:`~repro.errors.DisconnectedPairError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError
from repro.faults.degraded import DegradedFabric
from repro.obs.recorder import get_recorder
from repro.topology.xgft import XGFT
from repro.util.rng import substream


def samplable_cables(xgft: XGFT, *, spare_critical: bool = True) -> np.ndarray:
    """Up-link ids of the cables eligible for random failure."""
    out = []
    for l in range(xgft.h):
        if spare_critical and xgft.W(l + 1) < 2:
            continue
        up_slice, _ = xgft.boundary_link_slices(l)
        out.append(np.arange(up_slice.start, up_slice.stop, dtype=np.int64))
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out)


def samplable_switches(
    xgft: XGFT, *, spare_critical: bool = True
) -> list[tuple[int, int]]:
    """``(level, index)`` pairs of the switches eligible for random failure."""
    out: list[tuple[int, int]] = []
    for l in range(1, xgft.h + 1):
        if spare_critical and xgft.W(l) < 2:
            continue
        out.extend((l, i) for i in range(xgft.level_size(l)))
    return out


@dataclass(frozen=True)
class FaultSpec:
    """A reproducible description of which fabric elements fail.

    Attributes
    ----------
    link_rate:
        Fraction of eligible cables to fail (``round(rate * n)`` of
        them, sampled without replacement).
    switch_rate:
        Fraction of eligible switches to fail.
    links:
        Explicit cable (up-link) ids to fail, in addition to sampling.
    switches:
        Explicit ``(level, index)`` switches to fail.
    seed:
        Root seed of the named sampling substreams.
    spare_critical:
        Restrict *random* sampling to elements whose loss cannot
        disconnect any host (see module docstring).  Explicit lists are
        never filtered.
    """

    link_rate: float = 0.0
    switch_rate: float = 0.0
    links: tuple[int, ...] = ()
    switches: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    seed: int = 0
    spare_critical: bool = True

    def __post_init__(self):
        for name, rate in (("link_rate", self.link_rate),
                           ("switch_rate", self.switch_rate)):
            if not 0.0 <= rate < 1.0:
                raise FaultError(f"{name} must be in [0, 1), got {rate}")
        object.__setattr__(self, "links", tuple(int(x) for x in self.links))
        object.__setattr__(
            self, "switches",
            tuple((int(l), int(i)) for l, i in self.switches),
        )

    @property
    def is_trivial(self) -> bool:
        """True when the spec cannot fail anything."""
        return (self.link_rate == 0.0 and self.switch_rate == 0.0
                and not self.links and not self.switches)

    def sample(self, xgft: XGFT) -> DegradedFabric:
        """Draw the concrete degraded fabric this spec describes.

        Pure function of ``(spec, xgft)``: repeated calls return equal
        fabrics.  Under an enabled recorder a ``faults_injected`` event
        and ``faults.*`` counters document the damage.
        """
        cables = set(self.links)
        switches = set(self.switches)
        if self.link_rate > 0.0:
            pool = samplable_cables(xgft, spare_critical=self.spare_critical)
            count = int(round(self.link_rate * len(pool)))
            if count:
                rng = substream(self.seed, "fault-links")
                cables.update(
                    int(c) for c in rng.choice(pool, size=count, replace=False)
                )
        if self.switch_rate > 0.0:
            pool_s = samplable_switches(xgft, spare_critical=self.spare_critical)
            count = int(round(self.switch_rate * len(pool_s)))
            if count:
                rng = substream(self.seed, "fault-switches")
                picks = rng.choice(len(pool_s), size=count, replace=False)
                switches.update(pool_s[int(i)] for i in picks)
        degraded = DegradedFabric(
            xgft, failed_cables=cables, failed_switches=switches
        )
        rec = get_recorder()
        if rec.enabled:
            rec.count("faults.fabrics_sampled")
            rec.count("faults.cables_failed", degraded.n_failed_cables)
            rec.count("faults.switches_failed", degraded.n_failed_switches)
            rec.event(
                "faults_injected",
                topology=repr(xgft),
                link_rate=self.link_rate,
                switch_rate=self.switch_rate,
                seed=self.seed,
                cables=list(degraded.failed_cables),
                switches=[list(sw) for sw in degraded.failed_switches],
                n_failed_links=degraded.n_failed_links,
                alive_fraction=degraded.alive_fraction,
            )
        return degraded
