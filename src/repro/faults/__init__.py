"""Fault injection and degraded-fabric routing (``repro.faults``).

The layer has three pieces, composed left to right::

    FaultSpec --sample--> DegradedFabric --DegradedScheme--> routing stack

* :class:`~repro.faults.spec.FaultSpec` — a seeded, reproducible
  description of what fails (random cables/switches, explicit lists);
* :class:`~repro.faults.degraded.DegradedFabric` — the concrete link
  liveness mask every consumer reads;
* :class:`~repro.faults.scheme.DegradedScheme` — any routing scheme
  filtered through the mask, with per-pair fraction renormalization and
  typed :class:`~repro.errors.DisconnectedPairError` on stranded pairs.

Both flow engines, the flit engine and the LFT compiler accept the
wrapped scheme transparently; see ``docs/architecture.md``.

For *streaming* faults — rolling fail/repair event streams applied in
place with per-event incremental re-routing — see
:mod:`repro.faults.churn` (:class:`ChurnSpec` / :func:`generate_trace`
/ :class:`IncrementalDegradedScheme`).
"""

from repro.errors import DisconnectedPairError, FaultError
from repro.faults.churn import (
    ChurnEvent,
    ChurnSpec,
    ChurnTrace,
    IncrementalDegradedScheme,
    RerouteStats,
    generate_trace,
)
from repro.faults.degraded import DegradedFabric, cable_links, switch_links
from repro.faults.scheme import DegradedScheme, select_surviving
from repro.faults.spec import FaultSpec, samplable_cables, samplable_switches

__all__ = [
    "ChurnEvent",
    "ChurnSpec",
    "ChurnTrace",
    "DegradedFabric",
    "DegradedScheme",
    "DisconnectedPairError",
    "FaultError",
    "FaultSpec",
    "IncrementalDegradedScheme",
    "RerouteStats",
    "cable_links",
    "generate_trace",
    "samplable_cables",
    "samplable_switches",
    "select_surviving",
    "switch_links",
]
