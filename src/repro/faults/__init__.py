"""Fault injection and degraded-fabric routing (``repro.faults``).

The layer has three pieces, composed left to right::

    FaultSpec --sample--> DegradedFabric --DegradedScheme--> routing stack

* :class:`~repro.faults.spec.FaultSpec` — a seeded, reproducible
  description of what fails (random cables/switches, explicit lists);
* :class:`~repro.faults.degraded.DegradedFabric` — the concrete link
  liveness mask every consumer reads;
* :class:`~repro.faults.scheme.DegradedScheme` — any routing scheme
  filtered through the mask, with per-pair fraction renormalization and
  typed :class:`~repro.errors.DisconnectedPairError` on stranded pairs.

Both flow engines, the flit engine and the LFT compiler accept the
wrapped scheme transparently; see ``docs/architecture.md``.
"""

from repro.errors import DisconnectedPairError, FaultError
from repro.faults.degraded import DegradedFabric, cable_links, switch_links
from repro.faults.scheme import DegradedScheme
from repro.faults.spec import FaultSpec, samplable_cables, samplable_switches

__all__ = [
    "DegradedFabric",
    "DegradedScheme",
    "DisconnectedPairError",
    "FaultError",
    "FaultSpec",
    "cable_links",
    "samplable_cables",
    "samplable_switches",
    "switch_links",
]
