"""Streaming fault/repair churn and incremental re-routing.

The fault sweep (:mod:`repro.experiments.fault_sweep`) studies *static*
damage: sample a fabric, recompile the whole
:class:`~repro.faults.scheme.DegradedScheme`, measure.  A plan server
staying warm while links fail and recover cannot afford that — it needs
to apply one event and touch only the pairs the event can affect.  This
module provides that axis:

* :class:`ChurnEvent` — one fail/repair of a cable or switch, applied in
  place to a :class:`~repro.faults.degraded.DegradedFabric`;
* :class:`ChurnSpec` / :class:`ChurnTrace` / :func:`generate_trace` — a
  seeded, reproducible fail/repair event stream (drawn from the named
  ``churn-trace`` RNG substream, so it never perturbs fault-spec or
  traffic sampling), by default conditioned to keep the fabric
  connected after every event;
* :class:`IncrementalDegradedScheme` — a routing scheme that holds its
  full selection state (per NCA level: preference orders, selected path
  indices, renormalized weights) and, per event, recomputes only the
  pairs whose *candidate* paths touch a flipped link, found through the
  transposed link->pairs incidence
  (:func:`repro.routing.compiled.candidate_link_index`).

Correctness contract
--------------------
After any event sequence, the incremental state is **bit-identical** to
a from-scratch ``DegradedScheme`` recompile over the same cumulative
fault set: both run the same row-local selection rule
(:func:`~repro.faults.scheme.select_surviving`), and the candidate index
over-approximates the affected set in both directions — a failure can
only change rows whose candidate paths use a dead link, a repair only
rows whose candidate paths use the resurrected one.  The differential
test layer (``tests/faults/test_churn_equivalence.py``) pins this after
every event of replayed traces.

An event that would strand a pair raises
:class:`~repro.errors.DisconnectedPairError` and is rolled back — the
fabric and the selection state are left exactly as before the event.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import DisconnectedPairError, FaultError
from repro.faults.degraded import DegradedFabric
from repro.faults.scheme import DegradedScheme, select_surviving
from repro.faults.spec import samplable_cables, samplable_switches
from repro.obs.recorder import get_recorder
from repro.routing.base import RouteSet, RoutingScheme
from repro.routing.compiled import candidate_link_index
from repro.topology.xgft import XGFT
from repro.util.rng import substream

#: attempts per failure draw before the generator falls back to a repair
#: (a draw is rejected when it would disconnect a connected-only trace)
_MAX_FAIL_TRIES = 8


@dataclass(frozen=True)
class ChurnEvent:
    """One fail or repair of one fabric element.

    ``element`` is a cable's up-link id (``kind == "cable"``) or a
    ``(level, index)`` pair (``kind == "switch"``).
    """

    action: str  # "fail" | "repair"
    kind: str    # "cable" | "switch"
    element: int | tuple[int, int]

    def __post_init__(self):
        if self.action not in ("fail", "repair"):
            raise FaultError(f"bad churn action {self.action!r}")
        if self.kind not in ("cable", "switch"):
            raise FaultError(f"bad churn element kind {self.kind!r}")
        if self.kind == "switch":
            level, index = self.element
            object.__setattr__(self, "element", (int(level), int(index)))
        else:
            object.__setattr__(self, "element", int(self.element))

    @property
    def label(self) -> str:
        """Compact event tag, e.g. ``-cable:12`` / ``+switch:2/3``."""
        sign = "-" if self.action == "fail" else "+"
        if self.kind == "switch":
            level, index = self.element
            return f"{sign}switch:{level}/{index}"
        return f"{sign}cable:{self.element}"

    def inverse(self) -> "ChurnEvent":
        """The event that exactly undoes this one."""
        action = "repair" if self.action == "fail" else "fail"
        return ChurnEvent(action, self.kind, self.element)

    def apply(self, fabric: DegradedFabric) -> np.ndarray:
        """Apply in place; returns the link ids whose liveness flipped."""
        if self.kind == "switch":
            method = getattr(fabric, f"{self.action}_switch")
            return method(*self.element)
        method = getattr(fabric, f"{self.action}_cable")
        return method(self.element)


@dataclass(frozen=True)
class ChurnSpec:
    """A reproducible description of a fail/repair event stream.

    Attributes
    ----------
    n_events:
        Number of events to generate.
    fail_bias:
        Probability of attempting a failure (vs a repair) when both are
        possible; the first event is always a failure and a repair is
        forced when nothing eligible is left alive.
    switch_fraction:
        Probability that a failure targets a switch rather than a cable
        (only when eligible switches exist).
    seed:
        Root seed of the ``churn-trace`` RNG substream.
    ensure_connected:
        Reject failure draws that would disconnect the fabric (the
        default, matching the fault sweep's connected-fabric
        conditioning); rejected draws fall back to a repair.
    """

    n_events: int = 16
    fail_bias: float = 0.6
    switch_fraction: float = 0.0
    seed: int = 0
    ensure_connected: bool = True

    def __post_init__(self):
        if self.n_events < 0:
            raise FaultError(f"n_events must be >= 0, got {self.n_events}")
        for name, p in (("fail_bias", self.fail_bias),
                        ("switch_fraction", self.switch_fraction)):
            if not 0.0 <= p <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {p}")


@dataclass(frozen=True)
class ChurnTrace:
    """A concrete, replayable event stream over one topology."""

    topology: str
    spec: ChurnSpec
    events: tuple[ChurnEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        return (f"ChurnTrace({self.topology}, seed={self.spec.seed}): "
                + " ".join(e.label for e in self.events))


def generate_trace(xgft: XGFT, spec: ChurnSpec) -> ChurnTrace:
    """Generate the seeded event stream ``spec`` describes on ``xgft``.

    Pure function of ``(xgft, spec)``: the same inputs always yield the
    same trace.  Only non-critical elements (see
    :func:`repro.faults.spec.samplable_cables`) are ever failed; every
    event is valid in sequence (never fails a failed element or repairs
    a live one), and with ``ensure_connected`` the fabric stays
    connected after every event.
    """
    cables = [int(c) for c in samplable_cables(xgft)]
    switches = samplable_switches(xgft)
    if not cables and not switches:
        raise FaultError(
            f"{xgft!r} has no non-critical elements to churn; every "
            f"failure would disconnect a host"
        )
    rng = substream(spec.seed, "churn-trace")
    fabric = DegradedFabric(xgft)
    events: list[ChurnEvent] = []

    def draw_failure() -> ChurnEvent | None:
        for _ in range(_MAX_FAIL_TRIES):
            failed_c = set(fabric.failed_cables)
            failed_s = set(fabric.failed_switches)
            alive_cables = [c for c in cables if c not in failed_c]
            alive_switches = [sw for sw in switches if sw not in failed_s]
            if not alive_cables and not alive_switches:
                return None
            pick_switch = alive_switches and (
                not alive_cables or rng.random() < spec.switch_fraction)
            if pick_switch:
                sw = alive_switches[int(rng.integers(len(alive_switches)))]
                event = ChurnEvent("fail", "switch", sw)
            else:
                cable = alive_cables[int(rng.integers(len(alive_cables)))]
                event = ChurnEvent("fail", "cable", cable)
            event.apply(fabric)
            if spec.ensure_connected and not fabric.is_connected:
                event.inverse().apply(fabric)
                continue
            return event
        return None

    def draw_repair() -> ChurnEvent | None:
        failed = ([("cable", c) for c in fabric.failed_cables]
                  + [("switch", sw) for sw in fabric.failed_switches])
        if not failed:
            return None
        kind, element = failed[int(rng.integers(len(failed)))]
        event = ChurnEvent("repair", kind, element)
        event.apply(fabric)
        return event

    for _ in range(spec.n_events):
        anything_failed = bool(fabric.failed_cables or fabric.failed_switches)
        want_fail = (not anything_failed
                     or rng.random() < spec.fail_bias)
        event = (draw_failure() or draw_repair()) if want_fail else \
                (draw_repair() or draw_failure())
        if event is None:
            break  # nothing left to do in either direction
        events.append(event)
    return ChurnTrace(repr(xgft), spec, tuple(events))


@dataclass(frozen=True)
class RerouteStats:
    """What one applied event cost.

    ``pairs_recomputed`` counts the ordered pairs whose selection was
    re-derived; ``pairs_total`` is the full recompile's workload, so
    ``pairs_total / pairs_recomputed`` is the incremental saving the
    acceptance gate asserts (>=10x for a single cable on the 8-port
    3-tree).
    """

    event: ChurnEvent
    links_changed: int
    pairs_recomputed: int
    pairs_total: int
    seconds: float


@dataclass
class _LevelState:
    """One NCA level's persistent selection state (sorted by pair key)."""

    k: int
    keys: np.ndarray     # (n_pairs,) int64, sorted
    src: np.ndarray      # (n_pairs,) int64
    dst: np.ndarray      # (n_pairs,) int64
    order: np.ndarray    # (n_pairs, X) int64 — base preference order
    idx: np.ndarray      # (n_pairs, P) int64 — current selection
    weights: np.ndarray  # (n_pairs, P) float64 — current fractions


class IncrementalDegradedScheme(RoutingScheme):
    """A routing scheme that re-routes around churn one event at a time.

    Serves the same query surface as
    :class:`~repro.faults.scheme.DegradedScheme` from persistent per-level
    tables; :meth:`apply_event` updates those tables in place, touching
    only the pairs whose candidate paths cross a flipped link.  On a
    pristine fabric it is a transparent proxy, exactly like the
    from-scratch wrapper.
    """

    def __init__(self, base: RoutingScheme,
                 fabric: DegradedFabric | None = None):
        if not hasattr(base, "path_order_matrix"):
            raise FaultError(
                f"{type(base).__name__} exposes no path preference order; "
                f"wrap the underlying scheme, not a compiled plan"
            )
        if isinstance(base, (DegradedScheme, IncrementalDegradedScheme)):
            raise FaultError("refusing to stack degraded wrappers; wrap the "
                             "pristine base scheme")
        if fabric is None:
            fabric = DegradedFabric(base.xgft)
        elif base.xgft != fabric.xgft:
            raise FaultError(
                "scheme and degraded fabric were built for different topologies"
            )
        super().__init__(base.xgft)
        self.base = base
        self.fabric = fabric
        self.name = base.name
        self._index = candidate_link_index(base.xgft)
        self._levels: dict[int, _LevelState] = {}
        xgft = base.xgft
        n = xgft.n_procs
        keys_all = np.arange(n * n, dtype=np.int64)
        s_all, d_all = np.divmod(keys_all, n)
        k_arr = xgft.nca_level(s_all, d_all)
        for k in range(1, xgft.h + 1):
            mask = k_arr == k
            if not mask.any():
                continue
            s, d, keys = s_all[mask], d_all[mask], keys_all[mask]
            order = np.asarray(base.path_order_matrix(s, d, k),
                               dtype=np.int64)
            alive = fabric.path_alive_matrix(s, d, order, k)
            idx, weights = select_surviving(
                s, d, order, alive, base.paths_per_pair(k))
            self._levels[k] = _LevelState(k, keys, s, d, order, idx, weights)

    def __repr__(self) -> str:
        return f"IncrementalDegradedScheme({self.base!r}, {self.fabric!r})"

    @property
    def label(self) -> str:
        return f"{self.base.label}@{self.fabric.tag}"

    @property
    def n_pairs(self) -> int:
        """Ordered pairs with a network route (the full recompile's
        workload, the denominator of the incremental saving)."""
        return sum(len(st.keys) for st in self._levels.values())

    # -- event application ---------------------------------------------
    def apply_event(self, event: ChurnEvent) -> RerouteStats:
        """Apply one fail/repair event and re-route the affected pairs.

        Atomic: if the event would strand a pair, the fabric mutation is
        rolled back, the selection state is untouched, and the pair's
        :class:`~repro.errors.DisconnectedPairError` propagates.
        """
        rec = get_recorder()
        t0 = perf_counter()
        with rec.timer("faults.reroute.apply"):
            changed = event.apply(self.fabric)
            try:
                recomputed = self._recompute(self._index.pairs(changed))
            except DisconnectedPairError:
                event.inverse().apply(self.fabric)
                raise
        seconds = perf_counter() - t0
        stats = RerouteStats(event, int(changed.size), recomputed,
                             self.n_pairs, seconds)
        if rec.enabled:
            rec.count("faults.reroute.events")
            rec.count("faults.reroute.links_changed", stats.links_changed)
            rec.count("faults.reroute.pairs_recomputed", recomputed)
            rec.observe("faults.reroute.pairs_per_event", recomputed)
        return stats

    def replay(self, events) -> list[RerouteStats]:
        """Apply a whole trace (or any event iterable) in order."""
        return [self.apply_event(event) for event in events]

    def _recompute(self, touched_keys: np.ndarray) -> int:
        """Re-select the rows named by ``touched_keys``; returns how
        many.  All-or-nothing: results are staged per level and only
        committed once every level selected cleanly."""
        staged = []
        count = 0
        for k, st in self._levels.items():
            pos = np.searchsorted(st.keys, touched_keys)
            pos_c = np.minimum(pos, len(st.keys) - 1)
            rows = pos_c[st.keys[pos_c] == touched_keys]
            if not rows.size:
                continue
            s, d, order = st.src[rows], st.dst[rows], st.order[rows]
            alive = self.fabric.path_alive_matrix(s, d, order, k)
            idx, weights = select_surviving(
                s, d, order, alive, st.idx.shape[1])
            staged.append((st, rows, idx, weights))
            count += int(rows.size)
        for st, rows, idx, weights in staged:
            st.idx[rows] = idx
            st.weights[rows] = weights
        return count

    # -- RoutingScheme surface -----------------------------------------
    def paths_per_pair(self, k: int) -> int:
        return self.base.paths_per_pair(k)

    def fractions(self, k: int) -> np.ndarray:
        """The nominal (pristine) fractions; per-pair truth comes from
        :meth:`path_weight_matrix`."""
        return self.base.fractions(k)

    def path_order_matrix(self, s, d, k: int) -> np.ndarray:
        return self.base.path_order_matrix(s, d, k)

    def _rows(self, k: int, s, d) -> np.ndarray:
        try:
            st = self._levels[k]
        except KeyError:
            raise FaultError(
                f"no pairs with NCA level {k} on {self.xgft!r}") from None
        keys = (np.asarray(s, dtype=np.int64) * self.xgft.n_procs
                + np.asarray(d, dtype=np.int64))
        rows = np.searchsorted(st.keys, keys)
        rows_c = np.minimum(rows, len(st.keys) - 1)
        if not np.all(st.keys[rows_c] == keys):
            raise FaultError(
                f"batch contains pairs whose NCA level is not {k}")
        return rows_c

    def path_index_matrix(self, s, d, k: int) -> np.ndarray:
        if self.fabric.is_pristine:
            return self.base.path_index_matrix(s, d, k)
        return self._levels[k].idx[self._rows(k, s, d)]

    def path_weight_matrix(self, s, d, k: int):
        if self.fabric.is_pristine:
            return None
        return self._levels[k].weights[self._rows(k, s, d)]

    def route(self, s: int, d: int) -> RouteSet:
        """One pair's surviving routes (padding filtered out)."""
        if self.fabric.is_pristine:
            return self.base.route(s, d)
        k = self.xgft.nca_level(s, d)
        if k == 0:
            return RouteSet(s, d, 0, (), ())
        row = int(self._rows(int(k), np.array([s]), np.array([d]))[0])
        st = self._levels[int(k)]
        idx, weights = st.idx[row], st.weights[row]
        live = weights > 0.0
        return RouteSet(
            s, d, int(k),
            tuple(int(t) for t in idx[live]),
            tuple(float(f) for f in weights[live]),
        )
