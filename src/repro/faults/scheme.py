"""Fault-aware routing: any scheme, degraded gracefully.

:class:`DegradedScheme` wraps a pristine
:class:`~repro.routing.base.RoutingScheme` and a
:class:`~repro.faults.degraded.DegradedFabric` and re-routes around the
damage using the wrapped scheme's *own* preference order
(:meth:`~repro.routing.base.RoutingScheme.path_order_matrix`): each pair
keeps the first ``min(K, alive)`` surviving paths in that order, with
its traffic fractions renormalized to ``1/alive`` when fewer than ``K``
survive.  A pair whose every shortest path died raises
:class:`~repro.errors.DisconnectedPairError`.

The batch contract stays fixed-width so the vectorized evaluators and
the route compiler keep working unchanged: rows short of ``K`` live
paths are padded with a duplicate of their first live path at weight 0
(:meth:`~repro.routing.base.RoutingScheme.path_weight_matrix` carries
the per-pair weights).  Padding is invisible to load accumulation
(weight 0) and is filtered out wherever concrete path *lists* are
materialized (route sets, flit route tables, LFTs).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DisconnectedPairError, FaultError
from repro.faults.degraded import DegradedFabric
from repro.routing.base import RouteSet, RoutingScheme

_EMPTY = np.empty(0, dtype=np.int64)


def select_surviving(
    s: np.ndarray, d: np.ndarray, order: np.ndarray, alive: np.ndarray,
    p: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Padded ``(idx, weights)`` selection from a preference order.

    Each row keeps the first ``min(p, alive)`` surviving entries of its
    ``order`` row, weights renormalized to ``1/alive``; rows short of
    ``p`` are padded with their first surviving path at weight 0.  This
    is THE re-route rule — :class:`DegradedScheme` (from-scratch) and
    :class:`~repro.faults.churn.IncrementalDegradedScheme` (per-event
    deltas) both call it, which is what makes their results
    bit-identical by construction for identical inputs.  Purely
    row-local, so recomputing a subset of rows gives the same floats as
    recomputing all of them.

    Raises :class:`~repro.errors.DisconnectedPairError` (before any
    output is materialized) if some row has no surviving path.
    """
    counts = alive.sum(axis=1)
    if not counts.all():
        bad = int(np.flatnonzero(counts == 0)[0])
        raise DisconnectedPairError(int(s[bad]), int(d[bad]))
    n = len(order)
    take = np.minimum(counts, p)
    rank = np.cumsum(alive, axis=1)
    sel = alive & (rank <= p)
    rows, cols = np.nonzero(sel)
    pos = rank[rows, cols] - 1
    first = order[np.arange(n), np.argmax(alive, axis=1)]
    idx = np.repeat(first[:, None], p, axis=1)
    idx[rows, pos] = order[rows, cols]
    weights = np.zeros((n, p))
    weights[rows, pos] = 1.0 / take[rows]
    return idx, weights


class DegradedScheme(RoutingScheme):
    """A routing scheme filtered through a degraded fabric.

    On a pristine fabric this is a transparent proxy (bit-identical
    routes and loads); the paper's pristine results are the
    ``rate == 0`` end of every fault sweep.
    """

    def __init__(self, base: RoutingScheme, degraded: DegradedFabric):
        if not hasattr(base, "path_order_matrix"):
            raise FaultError(
                f"{type(base).__name__} exposes no path preference order; "
                f"wrap the underlying scheme, not a compiled plan"
            )
        if isinstance(base, DegradedScheme):
            raise FaultError("refusing to stack degraded wrappers; rebuild "
                             "one wrapper from the combined fault set")
        if base.xgft != degraded.xgft:
            raise FaultError(
                "scheme and degraded fabric were built for different topologies"
            )
        super().__init__(base.xgft)
        self.base = base
        self.degraded = degraded
        self.name = base.name
        # One-entry memo: evaluators ask for path_index_matrix and
        # path_weight_matrix back to back with identical batches.
        self._memo_key: tuple | None = None
        self._memo: tuple[np.ndarray, np.ndarray] | None = None

    def __repr__(self) -> str:
        return f"DegradedScheme({self.base!r}, {self.degraded!r})"

    @property
    def label(self) -> str:
        return f"{self.base.label}@{self.degraded.tag}"

    def paths_per_pair(self, k: int) -> int:
        return self.base.paths_per_pair(k)

    def fractions(self, k: int) -> np.ndarray:
        """The *nominal* (pristine) fractions; per-pair truth comes from
        :meth:`path_weight_matrix`."""
        return self.base.fractions(k)

    # ------------------------------------------------------------------
    def _select(self, s: np.ndarray, d: np.ndarray, k: int):
        """Padded ``(idx, weights)`` matrices for one level-``k`` batch."""
        s = np.asarray(s, dtype=np.int64)
        d = np.asarray(d, dtype=np.int64)
        # The fabric version keys the memo so an in-place fail/repair
        # event on the shared fabric can never serve a stale selection.
        key = (k, self.degraded.version, s.tobytes(), d.tobytes())
        if key == self._memo_key:
            return self._memo
        order = self.base.path_order_matrix(s, d, k)
        alive = self.degraded.path_alive_matrix(s, d, order, k)
        idx, weights = select_surviving(
            s, d, order, alive, self.base.paths_per_pair(k))
        self._memo_key, self._memo = key, (idx, weights)
        return idx, weights

    # -- RoutingScheme surface -----------------------------------------
    def path_index_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        if self.degraded.is_pristine:
            return self.base.path_index_matrix(s, d, k)
        return self._select(s, d, k)[0]

    def path_weight_matrix(self, s: np.ndarray, d: np.ndarray, k: int):
        if self.degraded.is_pristine:
            return None
        return self._select(s, d, k)[1]

    def path_order_matrix(self, s: np.ndarray, d: np.ndarray, k: int) -> np.ndarray:
        return self.base.path_order_matrix(s, d, k)

    def route(self, s: int, d: int) -> RouteSet:
        """One pair's surviving routes (padding filtered out)."""
        if self.degraded.is_pristine:
            return self.base.route(s, d)
        k = self.xgft.nca_level(s, d)
        if k == 0:
            return RouteSet(s, d, 0, (), ())
        idx, weights = self._select(np.array([s]), np.array([d]), k)
        live = weights[0] > 0.0
        return RouteSet(
            s, d, int(k),
            tuple(int(t) for t in idx[0][live]),
            tuple(float(f) for f in weights[0][live]),
        )
