"""The degraded-fabric mask: which parts of an XGFT survive.

A :class:`DegradedFabric` pairs a topology with a boolean liveness mask
over its dense directed-link ids.  Faults come in two physical flavors —
dead cables and dead switches — but both reduce to the link mask:

* a failed *cable* kills both of its directed links;
* a failed *switch* kills every directed link incident to it (a path
  cannot traverse a switch without using one link in and one link out,
  so masking incident links is exactly equivalent to masking the node).

Keeping the mask at link granularity lets every consumer stay
vectorized: path liveness is one gather over
:func:`repro.routing.vectorized.path_link_matrix` output, and the flit
engine zeroes the credits of failed channels.

Cables are identified by their *up-link* id (each physical cable is the
up link plus its paired down link; see :func:`cable_links`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultError
from repro.routing.vectorized import path_link_matrix
from repro.topology.xgft import XGFT


def cable_links(xgft: XGFT, up_link_id: int) -> tuple[int, int]:
    """Both directed link ids of the cable named by ``up_link_id``.

    >>> from repro.topology import m_port_n_tree
    >>> xgft = m_port_n_tree(4, 2)
    >>> up, down = cable_links(xgft, 0)
    >>> xgft.link_ref(down).dst_index == xgft.link_ref(up).src_index
    True
    """
    ref = xgft.link_ref(up_link_id)
    if ref.kind.value != "up":
        raise FaultError(
            f"cables are named by their up-link id; {up_link_id} is a down link"
        )
    l, index = ref.src_level, ref.src_index
    child_digit = (index // xgft.W(l)) % xgft.m[l]
    down = int(xgft.down_link_id(l, ref.dst_index, child_digit))
    return up_link_id, down


def switch_links(xgft: XGFT, level: int, index: int) -> list[int]:
    """Every directed link id incident to the switch ``(level, index)``."""
    if not 1 <= level <= xgft.h:
        raise FaultError(f"switch level {level} out of range [1, {xgft.h}]")
    if not 0 <= index < xgft.level_size(level):
        raise FaultError(
            f"switch index {index} out of range [0, {xgft.level_size(level)}) "
            f"at level {level}"
        )
    out: list[int] = []
    # Links to/from the children across boundary level-1.
    below = level - 1
    up_port = (index // xgft.W(below)) % xgft.w[below]  # child's port to us
    for child_digit in range(xgft.m[below]):
        child = int(xgft.child(level, index, child_digit))
        out.append(int(xgft.up_link_id(below, child, up_port)))
        out.append(int(xgft.down_link_id(below, index, child_digit)))
    # Links to/from the parents across boundary ``level`` (if any).
    if level < xgft.h:
        child_digit = (index // xgft.W(level)) % xgft.m[level]
        for port in range(xgft.w[level]):
            parent = int(xgft.parent(level, index, port))
            out.append(int(xgft.up_link_id(level, index, port)))
            out.append(int(xgft.down_link_id(level, parent, child_digit)))
    return out


class DegradedFabric:
    """An XGFT plus the set of elements that have failed.

    Parameters
    ----------
    xgft:
        The pristine topology.
    failed_cables:
        Up-link ids of dead cables (both directions die).
    failed_switches:
        ``(level, index)`` pairs of dead switches; all incident links die.

    The derived :attr:`link_ok` mask is the single source of truth for
    every consumer (routing, flow engines, flit engine).

    The fabric is *mutable*: :meth:`fail_cable` / :meth:`repair_cable` /
    :meth:`fail_switch` / :meth:`repair_switch` apply one fail/repair
    event in place and return the directed links whose liveness actually
    flipped.  Links are reference-counted per failing element, so a link
    covered by both a dead switch and a dead cable only comes back when
    its *last* cause is repaired.  Every mutation bumps :attr:`version`
    and invalidates the derived caches (:attr:`is_connected`), so no
    consumer can observe a stale answer.
    """

    def __init__(self, xgft: XGFT, *, failed_cables=(), failed_switches=()):
        self.xgft = xgft
        self._connected: bool | None = None
        self._version = 0
        self._cables: set[int] = set()
        self._switches: set[tuple[int, int]] = set()
        # Per-link count of failing elements covering it; alive <=> 0.
        self._dead_refs = np.zeros(xgft.n_links, dtype=np.int32)
        self._link_ok = np.ones(xgft.n_links, dtype=bool)
        self._link_ok.setflags(write=False)
        for cable in sorted({int(c) for c in failed_cables}):
            self.fail_cable(cable)
        for level, index in sorted({(int(l), int(i))
                                    for l, i in failed_switches}):
            self.fail_switch(level, index)

    # -- the mask and the failed-element sets --------------------------
    @property
    def link_ok(self) -> np.ndarray:
        """Read-only boolean liveness mask over directed link ids."""
        return self._link_ok

    @property
    def failed_cables(self) -> tuple[int, ...]:
        return tuple(sorted(self._cables))

    @property
    def failed_switches(self) -> tuple[tuple[int, int], ...]:
        return tuple(sorted(self._switches))

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every applied fail/repair event.
        Consumers caching anything derived from :attr:`link_ok` key
        their cache on it."""
        return self._version

    # -- in-place fail/repair events -----------------------------------
    def _shift(self, links, delta: int) -> np.ndarray:
        """Adjust the failing-element refcount of ``links`` by ``delta``
        and return the link ids whose liveness flipped."""
        links = np.asarray(links, dtype=np.int64)
        before_dead = self._dead_refs[links] > 0
        self._dead_refs[links] += delta
        changed = links[before_dead != (self._dead_refs[links] > 0)]
        if changed.size:
            self._link_ok.setflags(write=True)
            self._link_ok[changed] = delta < 0
            self._link_ok.setflags(write=False)
        self._version += 1
        self._connected = None
        return changed

    def fail_cable(self, up_link_id: int) -> np.ndarray:
        """Fail one cable; returns the newly-dead directed link ids."""
        up_link_id = int(up_link_id)
        links = cable_links(self.xgft, up_link_id)
        if up_link_id in self._cables:
            raise FaultError(f"cable {up_link_id} is already failed")
        self._cables.add(up_link_id)
        return self._shift(links, +1)

    def repair_cable(self, up_link_id: int) -> np.ndarray:
        """Repair one failed cable; returns the resurrected link ids."""
        up_link_id = int(up_link_id)
        links = cable_links(self.xgft, up_link_id)
        if up_link_id not in self._cables:
            raise FaultError(f"cable {up_link_id} is not failed")
        self._cables.discard(up_link_id)
        return self._shift(links, -1)

    def fail_switch(self, level: int, index: int) -> np.ndarray:
        """Fail one switch; returns the newly-dead directed link ids."""
        key = (int(level), int(index))
        links = switch_links(self.xgft, *key)
        if key in self._switches:
            raise FaultError(f"switch {key} is already failed")
        self._switches.add(key)
        return self._shift(links, +1)

    def repair_switch(self, level: int, index: int) -> np.ndarray:
        """Repair one failed switch; returns the resurrected link ids."""
        key = (int(level), int(index))
        links = switch_links(self.xgft, *key)
        if key not in self._switches:
            raise FaultError(f"switch {key} is not failed")
        self._switches.discard(key)
        return self._shift(links, -1)

    # ------------------------------------------------------------------
    @property
    def n_failed_links(self) -> int:
        """Directed links removed (cables count twice)."""
        return int((~self.link_ok).sum())

    @property
    def n_failed_cables(self) -> int:
        return len(self.failed_cables)

    @property
    def n_failed_switches(self) -> int:
        return len(self.failed_switches)

    @property
    def is_pristine(self) -> bool:
        return bool(self.link_ok.all())

    @property
    def alive_fraction(self) -> float:
        """Fraction of directed links still alive."""
        n = self.xgft.n_links
        return float(self.link_ok.sum()) / n if n else 1.0

    @property
    def tag(self) -> str:
        """Short stable identifier used in scheme labels and telemetry."""
        if self.is_pristine:
            return "pristine"
        return f"{self.n_failed_cables}c{self.n_failed_switches}s"

    def __repr__(self) -> str:
        return (f"DegradedFabric({self.xgft!r}, cables={self.n_failed_cables}, "
                f"switches={self.n_failed_switches})")

    def describe(self) -> str:
        """Multi-line human-readable summary of the damage."""
        lines = [repr(self)]
        lines.append(f"  alive links      : {int(self.link_ok.sum())}"
                     f"/{self.xgft.n_links}")
        for cable in self.failed_cables:
            ref = self.xgft.link_ref(cable)
            lines.append(
                f"  dead cable {cable}: level {ref.src_level} node "
                f"{ref.src_index} <-> level {ref.dst_level} node {ref.dst_index}"
            )
        for level, index in self.failed_switches:
            lines.append(
                f"  dead switch {self.xgft.node_label(level, index)}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @property
    def is_connected(self) -> bool:
        """True iff every ordered pair keeps at least one alive shortest
        path.  Independent faults can jointly cover a pair's whole path
        set even when no single fault is critical; sweeps use this to
        resample such fabrics.  Cached after the first call and
        invalidated by every mask mutation (fail/repair events), so the
        answer always reflects the current mask."""
        if self._connected is None:
            self._connected = self._check_connected()
        return self._connected

    def _check_connected(self) -> bool:
        xgft = self.xgft
        if self.is_pristine:
            return True
        n = xgft.n_procs
        keys = np.arange(n * n, dtype=np.int64)
        s, d = np.divmod(keys, n)
        k_arr = xgft.nca_level(s, d)
        for k in range(1, xgft.h + 1):
            mask = k_arr == k
            if not mask.any():
                continue
            x = xgft.W(k)
            idx = np.broadcast_to(np.arange(x, dtype=np.int64),
                                  (int(mask.sum()), x))
            alive = self.path_alive_matrix(s[mask], d[mask], idx, k)
            if not alive.any(axis=1).all():
                return False
        return True

    def path_alive_matrix(
        self, s: np.ndarray, d: np.ndarray, idx: np.ndarray, k: int
    ) -> np.ndarray:
        """Which of the paths in the ``(n, P)`` index matrix ``idx``
        survive: True iff every link of the path is alive."""
        if k == 0:
            return np.ones_like(np.asarray(idx), dtype=bool)
        links = path_link_matrix(self.xgft, s, d, idx, k)
        return self.link_ok[links].all(axis=2)
