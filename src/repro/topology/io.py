"""Topology export helpers (NetworkX graphs, DOT text).

These are conveniences for inspection and for interoperating with graph
tooling; nothing in the simulators depends on them.
"""

from __future__ import annotations

from repro.topology.xgft import XGFT, LinkKind


def to_networkx(xgft: XGFT, *, directed: bool = True):
    """Build a NetworkX graph of the topology.

    Nodes are ``("proc", i)`` for processing nodes and ``("sw", l, i)``
    for switches; edges carry ``link_id``, ``level`` and ``kind``
    attributes.  Requires the optional ``networkx`` dependency.
    """
    import networkx as nx  # imported lazily: optional dependency

    graph = nx.DiGraph() if directed else nx.Graph()

    def _name(level: int, index: int):
        return ("proc", index) if level == 0 else ("sw", level, index)

    for i in range(xgft.n_procs):
        graph.add_node(_name(0, i), level=0, label=xgft.node_label(0, i))
    for l in range(1, xgft.h + 1):
        for i in range(xgft.level_size(l)):
            graph.add_node(_name(l, i), level=l, label=xgft.node_label(l, i))

    for link_id, ref in xgft.iter_links():
        if not directed and ref.kind is LinkKind.DOWN:
            continue  # one undirected edge per cable
        graph.add_edge(
            _name(ref.src_level, ref.src_index),
            _name(ref.dst_level, ref.dst_index),
            link_id=link_id,
            level=ref.level,
            kind=ref.kind.value,
        )
    return graph


def to_dot(xgft: XGFT) -> str:
    """Render the topology as Graphviz DOT text (undirected cables)."""
    lines = ["graph xgft {", "  rankdir=BT;"]
    for l in range(xgft.h + 1):
        names = []
        for i in range(xgft.level_size(l)):
            name = f"L{l}_{i}"
            shape = "circle" if l == 0 else "box"
            lines.append(f'  {name} [shape={shape}, label="{xgft.node_label(l, i)}"];')
            names.append(name)
        lines.append("  { rank=same; " + "; ".join(names) + "; }")
    for _, ref in xgft.iter_links():
        if ref.kind is LinkKind.DOWN:
            continue
        lines.append(
            f"  L{ref.src_level}_{ref.src_index} -- L{ref.dst_level}_{ref.dst_index};"
        )
    lines.append("}")
    return "\n".join(lines)
