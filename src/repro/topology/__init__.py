"""Extended generalized fat-tree topology substrate.

The central class is :class:`repro.topology.XGFT`; constructors for the
common fat-tree variants in the literature (m-port n-trees, k-ary n-trees,
generalized fat trees) are in :mod:`repro.topology.variants`.
"""

from repro.topology.xgft import XGFT, LinkKind, LinkRef
from repro.topology.variants import (
    gft,
    k_ary_n_tree,
    m_port_n_tree,
    slimmed_xgft,
)
from repro.topology.validate import validate_topology

__all__ = [
    "XGFT",
    "LinkKind",
    "LinkRef",
    "gft",
    "k_ary_n_tree",
    "m_port_n_tree",
    "slimmed_xgft",
    "validate_topology",
]
