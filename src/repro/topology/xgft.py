"""Extended generalized fat-trees (XGFT).

An ``XGFT(h; m_1..m_h; w_1..w_h)`` [Ohring et al., IPPS'95] has ``h + 1``
levels of nodes.  Level 0 holds the processing nodes; levels 1..h hold
switches.  Each level-``i`` node (``i < h``) has ``w_{i+1}`` parents and
each level-``i`` node (``i >= 1``) has ``m_i`` children.

Labels
------
A level-``l`` node is identified by the digit tuple ``(a_1, ..., a_h)``
(stored little-endian here; the paper writes it big-endian as
``(l, a_h, ..., a_1)``), where digit ``a_i < w_i`` for ``i <= l`` and
``a_i < m_i`` for ``i > l``.  A level-``l`` node connects to a level-
``(l+1)`` node iff their tuples agree at every digit except digit
``l + 1``.

Within a level, nodes are indexed by the little-endian mixed-radix value
of their digit tuple, so processing node ids coincide with the usual
0..N-1 numbering (digit ``a_i(x) = (x // M(i-1)) mod m_i``).

Ports
-----
Ports are numbered 0-based: a level-``l`` node's up ports are
``0..w_{l+1}-1`` (ordered by the parent's digit ``a_{l+1}``) and its down
ports follow (ordered by the child's digit ``a_{l+1}``).  The paper uses
the same left-to-right order with 1-based numbering.

Directed links
--------------
Every cable is modeled as two directed links (loads and channel buffers
are directional).  Link ids are dense integers laid out per level:
up-links (level ``l`` to ``l+1``) first, then down-links, so flow-level
accumulation can be done with plain integer arithmetic on NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.util.radix import MixedRadix, prefix_products


class LinkKind(Enum):
    """Direction of a link relative to the tree: UP toward the roots."""

    UP = "up"
    DOWN = "down"


@dataclass(frozen=True)
class LinkRef:
    """Human-readable description of one directed link.

    Attributes
    ----------
    kind:
        :attr:`LinkKind.UP` for a level ``l`` -> ``l+1`` link, DOWN for
        the reverse direction.
    level:
        The *lower* endpoint's level ``l`` (so the link crosses the
        ``l``/``l+1`` boundary regardless of direction).
    src_level, src_index, dst_level, dst_index:
        Endpoint coordinates (level, within-level node index).
    port:
        The port number on the *sending* node.
    """

    kind: LinkKind
    level: int
    src_level: int
    src_index: int
    dst_level: int
    dst_index: int
    port: int


class XGFT:
    """An extended generalized fat-tree ``XGFT(h; m_1..m_h; w_1..w_h)``.

    Parameters
    ----------
    h:
        Number of switch levels (>= 1 for a usable network; ``h == 0`` is
        the degenerate single processing node and is accepted for
        completeness).
    m:
        ``(m_1, ..., m_h)`` — children counts per level.
    w:
        ``(w_1, ..., w_h)`` — parent counts per level.

    Notes
    -----
    ``self.m[i]`` / ``self.w[i]`` store the paper's ``m_{i+1}`` /
    ``w_{i+1}``.  Use :meth:`M` and :meth:`W` for the 1-based cumulative
    products ``M(k) = m_1*...*m_k`` and ``W(k) = w_1*...*w_k``.
    """

    def __init__(self, h: int, m: Sequence[int], w: Sequence[int]):
        h = int(h)
        m = tuple(int(x) for x in m)
        w = tuple(int(x) for x in w)
        if h < 0:
            raise TopologyError(f"h must be >= 0, got {h}")
        if len(m) != h or len(w) != h:
            raise TopologyError(
                f"need exactly h={h} entries in m and w, got m={m!r} w={w!r}"
            )
        if any(x < 1 for x in m) or any(x < 1 for x in w):
            raise TopologyError(f"all m_i and w_i must be >= 1, got m={m!r} w={w!r}")
        self.h = h
        self.m = m
        self.w = w
        # Cumulative products, 1-based: _M[k] = m_1*...*m_k, _M[0] = 1.
        self._M = prefix_products(m)
        self._W = prefix_products(w)
        self.n_procs = self._M[h]
        self.n_top_switches = self._W[h]
        self._level_radices = tuple(
            MixedRadix(w[:l] + m[l:]) for l in range(h + 1)
        )
        self._level_sizes = tuple(
            (self.n_procs // self._M[l]) * self._W[l] for l in range(h + 1)
        )
        # Directed-link id layout: for each boundary l (0..h-1) the block of
        # up-links, then the block of down-links.
        counts = [self._level_sizes[l] * w[l] for l in range(h)]
        self._up_base = []
        self._down_base = []
        base = 0
        for l in range(h):
            self._up_base.append(base)
            base += counts[l]
            self._down_base.append(base)
            base += counts[l]
        self.n_links = base
        self._boundary_counts = tuple(counts)

    # ------------------------------------------------------------------
    # Identity / convenience
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        ms = ",".join(map(str, self.m))
        ws = ",".join(map(str, self.w))
        return f"XGFT({self.h}; {ms}; {ws})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XGFT)
            and self.h == other.h
            and self.m == other.m
            and self.w == other.w
        )

    def __hash__(self) -> int:
        return hash((self.h, self.m, self.w))

    def M(self, k: int) -> int:
        """``m_1 * ... * m_k`` (``M(0) == 1``)."""
        return self._M[k]

    def W(self, k: int) -> int:
        """``w_1 * ... * w_k`` (``W(0) == 1``) — number of shortest paths
        between nodes whose nearest common ancestors sit at level ``k``."""
        return self._W[k]

    @property
    def max_paths(self) -> int:
        """Largest shortest-path count between any SD pair (= ``W(h)``)."""
        return self._W[self.h]

    def level_size(self, l: int) -> int:
        """Number of nodes at level ``l``."""
        self._check_level(l)
        return self._level_sizes[l]

    @property
    def n_switches(self) -> int:
        """Total switch count (levels 1..h)."""
        return sum(self._level_sizes[1:]) if self.h else 0

    def _check_level(self, l: int, *, max_level: int | None = None) -> None:
        top = self.h if max_level is None else max_level
        if not 0 <= l <= top:
            raise TopologyError(f"level {l} out of range [0, {top}]")

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def node_radices(self, l: int) -> tuple[int, ...]:
        """Digit radices of a level-``l`` label (little-endian: digit i
        has radix ``w_{i+1}`` if ``i < l`` else ``m_{i+1}``)."""
        self._check_level(l)
        return self._level_radices[l].radices

    def node_digits(self, l: int, index: int) -> tuple[int, ...]:
        """Little-endian digit tuple of node ``index`` at level ``l``."""
        self._check_level(l)
        return self._level_radices[l].decode(index)

    def node_index(self, l: int, digits: Sequence[int]) -> int:
        """Within-level index of the node labeled ``digits`` at level ``l``."""
        self._check_level(l)
        return self._level_radices[l].encode(digits)

    def node_label(self, l: int, index: int) -> str:
        """Paper-style big-endian label string ``(l, a_h, ..., a_1)``."""
        digits = self.node_digits(l, index)
        return "(" + ", ".join(map(str, (l,) + tuple(reversed(digits)))) + ")"

    def proc_digit(self, proc: int | np.ndarray, i: int):
        """Digit ``a_i`` (1-based ``i``) of processing-node id(s)."""
        if not 1 <= i <= self.h:
            raise TopologyError(f"digit index {i} out of range [1, {self.h}]")
        return (proc // self._M[i - 1]) % self.m[i - 1]

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def n_up_ports(self, l: int) -> int:
        """Up ports of a level-``l`` node (0 at the top level)."""
        self._check_level(l)
        return self.w[l] if l < self.h else 0

    def n_down_ports(self, l: int) -> int:
        """Down ports of a level-``l`` node (0 for processing nodes)."""
        self._check_level(l)
        return self.m[l - 1] if l >= 1 else 0

    def n_ports(self, l: int) -> int:
        """Total ports — matches the paper's ``p_i = w_{i+1} + m_i``."""
        return self.n_up_ports(l) + self.n_down_ports(l)

    def parent(self, l: int, index, port):
        """Index (at level ``l+1``) of the parent reached from level-``l``
        node ``index`` via up port ``port``.  Vectorized over arrays.

        The parent's label equals the child's except digit ``l+1`` is
        replaced by ``port`` (with radix ``w_{l+1}``).
        """
        self._check_level(l, max_level=self.h - 1)
        Wl = self._W[l]
        m_next = self.m[l]
        w_next = self.w[l]
        low = index % Wl
        rest = index // Wl
        above = rest // m_next
        return low + Wl * (port + w_next * above)

    def child(self, l: int, index, port):
        """Index (at level ``l-1``) of the child reached from level-``l``
        node ``index`` via down port ``port``.  Vectorized over arrays.

        The child's label equals the parent's except digit ``l`` is
        replaced by ``port`` (with radix ``m_l``).
        """
        self._check_level(l)
        if l < 1:
            raise TopologyError("processing nodes have no children")
        Wl = self._W[l - 1]
        m_here = self.m[l - 1]
        w_here = self.w[l - 1]
        low = index % Wl
        above = index // (Wl * w_here)
        return low + Wl * (port + m_here * above)

    def parents(self, l: int, index: int) -> list[int]:
        """All parents of a node, ordered by up port."""
        return [int(self.parent(l, index, p)) for p in range(self.n_up_ports(l))]

    def children(self, l: int, index: int) -> list[int]:
        """All children of a node, ordered by down port."""
        return [int(self.child(l, index, c)) for c in range(self.n_down_ports(l))]

    def are_connected(self, la: int, ia: int, lb: int, ib: int) -> bool:
        """True iff the two nodes share a cable (levels must differ by 1)."""
        if la > lb:
            la, ia, lb, ib = lb, ib, la, ia
        if lb != la + 1:
            return False
        return ib in self.parents(la, ia)

    # ------------------------------------------------------------------
    # Directed links
    # ------------------------------------------------------------------
    def n_boundary_links(self, l: int) -> int:
        """Directed links crossing the ``l``/``l+1`` boundary, per direction."""
        self._check_level(l, max_level=self.h - 1)
        return self._boundary_counts[l]

    def boundary_link_slices(self, l: int) -> tuple[slice, slice]:
        """``(up, down)`` slices of the dense link-id space covering the
        ``l``/``l+1`` boundary — links are laid out per level, so the
        per-level selections used when slicing load vectors are plain
        slices, not boolean masks."""
        self._check_level(l, max_level=self.h - 1)
        count = self._boundary_counts[l]
        return (
            slice(self._up_base[l], self._up_base[l] + count),
            slice(self._down_base[l], self._down_base[l] + count),
        )

    def up_link_id(self, l: int, index, port):
        """Dense id of the up-link out of level-``l`` node ``index`` via
        ``port``.  Vectorized over arrays."""
        self._check_level(l, max_level=self.h - 1)
        return self._up_base[l] + index * self.w[l] + port

    def down_link_id(self, l: int, parent_index, child_digit):
        """Dense id of the down-link from level-``l+1`` node
        ``parent_index`` to the child whose digit ``a_{l+1}`` is
        ``child_digit``.  Vectorized over arrays."""
        self._check_level(l, max_level=self.h - 1)
        return self._down_base[l] + parent_index * self.m[l] + child_digit

    def link_ref(self, link_id: int) -> LinkRef:
        """Decode a dense link id back into endpoint coordinates."""
        if not 0 <= link_id < self.n_links:
            raise TopologyError(f"link id {link_id} out of range [0, {self.n_links})")
        for l in range(self.h):
            count = self._boundary_counts[l]
            if link_id < self._up_base[l] + count:
                off = link_id - self._up_base[l]
                index, port = divmod(off, self.w[l])
                return LinkRef(
                    kind=LinkKind.UP,
                    level=l,
                    src_level=l,
                    src_index=index,
                    dst_level=l + 1,
                    dst_index=int(self.parent(l, index, port)),
                    port=port,
                )
            if link_id < self._down_base[l] + count:
                off = link_id - self._down_base[l]
                parent_index, child_digit = divmod(off, self.m[l])
                # The sender's down port follows its up ports.
                port = self.n_up_ports(l + 1) + child_digit
                return LinkRef(
                    kind=LinkKind.DOWN,
                    level=l,
                    src_level=l + 1,
                    src_index=parent_index,
                    dst_level=l,
                    dst_index=int(self.child(l + 1, parent_index, child_digit)),
                    port=port,
                )
        raise TopologyError(f"link id {link_id} not found")  # pragma: no cover

    def iter_links(self) -> Iterator[tuple[int, LinkRef]]:
        """Iterate ``(link_id, LinkRef)`` for every directed link."""
        for link_id in range(self.n_links):
            yield link_id, self.link_ref(link_id)

    def link_levels(self) -> np.ndarray:
        """Boundary level of every directed link id (vector of length
        ``n_links``); used to slice load vectors per level."""
        out = np.empty(self.n_links, dtype=np.int64)
        for l in range(self.h):
            count = self._boundary_counts[l]
            out[self._up_base[l] : self._up_base[l] + count] = l
            out[self._down_base[l] : self._down_base[l] + count] = l
        return out

    def link_is_up(self) -> np.ndarray:
        """Boolean vector: True for up-links, False for down-links."""
        out = np.zeros(self.n_links, dtype=bool)
        for l in range(self.h):
            count = self._boundary_counts[l]
            out[self._up_base[l] : self._up_base[l] + count] = True
        return out

    # ------------------------------------------------------------------
    # NCA / path counting (Property 1)
    # ------------------------------------------------------------------
    def nca_level(self, s, d):
        """Level of the nearest common ancestors of processing nodes
        ``s`` and ``d``; 0 iff ``s == d``.  Vectorized over arrays."""
        s_arr = np.asarray(s)
        d_arr = np.asarray(d)
        level = np.zeros(np.broadcast(s_arr, d_arr).shape, dtype=np.int64)
        for k in range(self.h, 0, -1):
            same = (s_arr // self._M[k - 1]) == (d_arr // self._M[k - 1])
            level[(level == 0) & ~same] = k
        if np.isscalar(s) and np.isscalar(d):
            return int(level)
        return level

    def num_shortest_paths(self, s, d):
        """Property 1: ``W(nca_level(s, d))`` shortest paths between a
        pair (1 when ``s == d``: the trivial empty path)."""
        k = self.nca_level(s, d)
        if np.isscalar(k) or getattr(k, "ndim", 1) == 0:
            return self._W[int(k)]
        return np.asarray(self._W)[k]

    def subtree_index(self, k: int, proc):
        """Which height-``k`` subtree a processing node belongs to
        (vectorized).  Subtrees of height ``k`` partition the processing
        nodes into blocks of ``M(k)`` consecutive ids."""
        self._check_level(k)
        return proc // self._M[k]

    def n_subtrees(self, k: int) -> int:
        """Number of height-``k`` sub-XGFTs."""
        self._check_level(k)
        return self.n_procs // self._M[k]

    def subtree_boundary_links(self, k: int) -> int:
        """``TL(k)``: one-directional links connecting a height-``k``
        subtree to the rest of the tree (= ``W(k+1)``)."""
        self._check_level(k, max_level=self.h - 1)
        return self._W[k + 1]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable summary of the topology."""
        lines = [repr(self)]
        lines.append(f"  processing nodes : {self.n_procs}")
        lines.append(f"  switches         : {self.n_switches}")
        for l in range(1, self.h + 1):
            lines.append(f"    level {l}: {self.level_size(l)} "
                         f"({self.n_ports(l)}-port)")
        lines.append(f"  directed links   : {self.n_links}")
        lines.append(f"  max paths per SD : {self.max_paths}")
        return "\n".join(lines)
