"""Structural validation of XGFT instances.

These checks re-derive the topology's structural invariants from first
principles (explicit label matching) rather than from the closed-form
index arithmetic used by :class:`repro.topology.XGFT`, so they guard
against bugs in that arithmetic.  They are O(nodes * ports) and intended
for tests and sanity checks on small/medium instances.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.xgft import XGFT


def _labels_adjacent(xgft: XGFT, l: int, lower: tuple[int, ...], upper: tuple[int, ...]) -> bool:
    """Paper's adjacency rule: tuples match at every digit except l+1."""
    return all(
        a == b for i, (a, b) in enumerate(zip(lower, upper), start=1) if i != l + 1
    )


def validate_topology(xgft: XGFT, *, full: bool = True) -> None:
    """Raise :class:`TopologyError` if the instance violates any XGFT
    structural invariant.

    Checks performed:

    * level sizes match the closed form ``(prod m_{l+1..h}) * W(l)``;
    * parent/child closed-form arithmetic agrees with the label-matching
      adjacency rule (when ``full``);
    * parent/child relations are mutually consistent;
    * every directed link id round-trips through :meth:`XGFT.link_ref`;
    * per-boundary link counts agree from both endpoints' perspectives.
    """
    h = xgft.h
    for l in range(h + 1):
        expected = 1
        for i in range(l):
            expected *= xgft.w[i]
        for i in range(l, h):
            expected *= xgft.m[i]
        if xgft.level_size(l) != expected:
            raise TopologyError(
                f"level {l} size {xgft.level_size(l)} != expected {expected}"
            )

    for l in range(h):
        up = xgft.level_size(l) * xgft.n_up_ports(l)
        down = xgft.level_size(l + 1) * xgft.n_down_ports(l + 1)
        if up != down:
            raise TopologyError(
                f"boundary {l}: {up} up-links but {down} down-link endpoints"
            )
        if up != xgft.n_boundary_links(l):
            raise TopologyError(
                f"boundary {l}: registry says {xgft.n_boundary_links(l)} links, "
                f"counted {up}"
            )

    if full:
        for l in range(h):
            for idx in range(xgft.level_size(l)):
                lower_digits = xgft.node_digits(l, idx)
                for port in range(xgft.n_up_ports(l)):
                    parent = int(xgft.parent(l, idx, port))
                    upper_digits = xgft.node_digits(l + 1, parent)
                    if not _labels_adjacent(xgft, l, lower_digits, upper_digits):
                        raise TopologyError(
                            f"parent arithmetic violates label rule at level {l} "
                            f"node {idx} port {port}"
                        )
                    if upper_digits[l] != port:
                        raise TopologyError(
                            f"parent digit {upper_digits[l]} != up port {port}"
                        )
                    # Mutual consistency: descending through the child's own
                    # digit must return to the child.
                    back = int(xgft.child(l + 1, parent, lower_digits[l]))
                    if back != idx:
                        raise TopologyError(
                            f"child(parent({idx})) = {back} != {idx} at level {l}"
                        )

        for link_id, ref in xgft.iter_links():
            if ref.kind.value == "up":
                again = int(xgft.up_link_id(ref.level, ref.src_index, ref.port))
            else:
                child_digit = ref.port - xgft.n_up_ports(ref.src_level)
                again = int(xgft.down_link_id(ref.level, ref.src_index, child_digit))
            if again != link_id:
                raise TopologyError(f"link id {link_id} does not round-trip ({again})")
