"""Constructors for common fat-tree variants, expressed as XGFTs.

The XGFT family subsumes nearly every fat-tree flavor used in practice
(the paper's Section 2).  These helpers build the exact XGFT instances the
literature maps each variant to, so experiments can be specified in either
vocabulary.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.xgft import XGFT


def m_port_n_tree(m: int, n: int) -> XGFT:
    """An ``m``-port ``n``-tree [Lin, Chung, Huang, IPDPS'04].

    Built from ``m``-port switches; has ``2 * (m/2)**n`` processing nodes.
    Topologically equivalent to
    ``XGFT(n; m/2, ..., m/2, m; 1, m/2, ..., m/2)`` — the paper's
    Section 5 uses 8-, 16- and 24-port 2- and 3-trees.

    >>> m_port_n_tree(8, 3)
    XGFT(3; 4,4,8; 1,4,4)
    """
    if m < 2 or m % 2 != 0:
        raise TopologyError(f"m must be even and >= 2, got {m}")
    if n < 1:
        raise TopologyError(f"n must be >= 1, got {n}")
    half = m // 2
    ms = (half,) * (n - 1) + (m,)
    ws = (1,) + (half,) * (n - 1)
    return XGFT(n, ms, ws)


def k_ary_n_tree(k: int, n: int) -> XGFT:
    """A ``k``-ary ``n``-tree [Petrini & Vanneschi].

    ``k**n`` processing nodes, ``n`` switch levels of radix ``2k``
    switches; equivalent to ``XGFT(n; k,...,k; 1, k, ..., k)``.
    """
    if k < 1 or n < 1:
        raise TopologyError(f"k and n must be >= 1, got k={k} n={n}")
    ms = (k,) * n
    ws = (1,) + (k,) * (n - 1)
    return XGFT(n, ms, ws)


def gft(h: int, m: int, w: int) -> XGFT:
    """A generalized fat tree ``GFT(h; m; w)`` [Ohring et al.]: constant
    arities ``m_i = m`` and ``w_i = w`` at every level."""
    if h < 1:
        raise TopologyError(f"h must be >= 1, got {h}")
    return XGFT(h, (m,) * h, (w,) * h)


def slimmed_xgft(h: int, m: int, w: int, slimming: int) -> XGFT:
    """An XGFT whose top level is *slimmed*: the number of top-level
    parents is reduced by ``slimming`` relative to the full ``w``.

    Slimmed (oversubscribed) fat-trees are a standard cost-reduction;
    they stress routing heuristics because top-level capacity no longer
    matches the lower levels.
    """
    if not 0 <= slimming < w:
        raise TopologyError(f"slimming must be in [0, w), got {slimming}")
    if h < 1:
        raise TopologyError(f"h must be >= 1, got {h}")
    ws = (1,) + (w,) * (h - 2) + (w - slimming,) if h >= 2 else (1,)
    return XGFT(h, (m,) * h, ws)
