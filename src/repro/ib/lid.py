"""LID assignment under an LMC budget.

InfiniBand addresses end-ports with 16-bit Local IDentifiers.  A port
with LID Mask Control value ``lmc`` owns the ``2**lmc`` consecutive LIDs
``base .. base + 2**lmc - 1``; packets to any of them reach the port, and
switches may route each LID differently — which is how multiple paths per
destination are realized (Lin et al.'s multiple-LID scheme, the paper's
reference [10]).  ``lmc`` is capped at 7, so at most 128 paths per
destination exist — the reason unlimited multi-path routing "cannot be
supported on many reasonably sized InfiniBand networks" (e.g. 144 paths
on the 24-port 3-tree).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError
from repro.topology.xgft import XGFT

#: InfiniBand's LMC field is 3 bits.
MAX_LMC = 7

#: first unicast LID (0 is reserved, LIDs below this stay unassigned here)
BASE_LID = 1

#: unicast LID space: 0x0001 .. 0xBFFF (0xC000+ is multicast)
UNICAST_LIDS = 0xBFFF


def lmc_for_paths(k_paths: int) -> int:
    """Smallest LMC exposing at least ``k_paths`` LIDs per destination.

    Raises :class:`ResourceError` when ``k_paths`` exceeds ``2**MAX_LMC``
    (the paper's motivating infeasibility).
    """
    if k_paths < 1:
        raise ResourceError(f"need at least one path, got {k_paths}")
    lmc = (k_paths - 1).bit_length()
    if lmc > MAX_LMC:
        raise ResourceError(
            f"{k_paths} paths per destination need LMC {lmc}, but InfiniBand "
            f"caps LMC at {MAX_LMC} (max {2**MAX_LMC} paths)"
        )
    return lmc


@dataclass(frozen=True)
class LidAssignment:
    """Consecutive-block LID assignment for every processing node.

    Node ``d`` owns LIDs ``base_lid(d) .. base_lid(d) + 2**lmc - 1``.
    """

    n_procs: int
    lmc: int

    @property
    def lids_per_port(self) -> int:
        return 1 << self.lmc

    @property
    def total_lids(self) -> int:
        return self.n_procs * self.lids_per_port

    def base_lid(self, node: int) -> int:
        self._check_node(node)
        return BASE_LID + node * self.lids_per_port

    def lid(self, node: int, offset: int) -> int:
        """The ``offset``-th LID of ``node`` (offset < 2**lmc)."""
        if not 0 <= offset < self.lids_per_port:
            raise ResourceError(
                f"LID offset {offset} out of range [0, {self.lids_per_port})"
            )
        return self.base_lid(node) + offset

    def decode(self, lid: int) -> tuple[int, int]:
        """Inverse of :meth:`lid`: ``(node, offset)``."""
        if not BASE_LID <= lid < BASE_LID + self.total_lids:
            raise ResourceError(f"LID {lid} is unassigned")
        off = lid - BASE_LID
        return off >> self.lmc, off & (self.lids_per_port - 1)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_procs:
            raise ResourceError(f"node {node} out of range [0, {self.n_procs})")


def assign_lids(xgft: XGFT, k_paths: int) -> LidAssignment:
    """LID assignment realizing up to ``k_paths`` paths per destination
    on ``xgft``.

    Raises :class:`ResourceError` if the LMC cap or the unicast LID space
    is exceeded.
    """
    lmc = lmc_for_paths(k_paths)
    assignment = LidAssignment(xgft.n_procs, lmc)
    if assignment.total_lids > UNICAST_LIDS:
        raise ResourceError(
            f"{assignment.total_lids} LIDs needed but the unicast space has "
            f"only {UNICAST_LIDS}"
        )
    return assignment
