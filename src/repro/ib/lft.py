"""Linear forwarding tables (LFTs): destination-LID-based forwarding.

InfiniBand switches forward by indexing a linear table with the packet's
destination LID.  This module compiles LFTs that realize a routing
scheme's path sets and traces packets through them, which validates two
things the paper relies on:

* the heuristics' paths *are* realizable with destination-based
  forwarding (each path index maps to source-independent up-port digits);
* pairs below the top level see *truncated* path diversity: the LFT
  climbs only to the NCA, so a K-path assignment yields the distinct
  level-k digit prefixes of the K full-height indices.  The disjoint
  ordering varies the lowest-level digits first and therefore keeps more
  distinct paths for nearby pairs than shift-1 — quantified by
  :func:`effective_paths` and the ``bench_ib_resources`` ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ResourceError, RoutingError
from repro.ib.lid import LidAssignment, assign_lids
from repro.obs.recorder import get_recorder
from repro.routing.base import RoutingScheme
from repro.routing.enumeration import path_codec
from repro.topology.xgft import XGFT


@dataclass(frozen=True)
class ForwardingTables:
    """Compiled forwarding state for one topology + scheme + LMC.

    Attributes
    ----------
    lids:
        The LID assignment the tables are indexed by.
    up_port:
        ``(h, total_lids)`` int16 array: ``up_port[l, lid-1]`` is the up
        port a level-``l`` node uses for that LID while climbing.  It is
        switch-independent because every scheme here is digit-defined —
        exactly the property that makes the heuristics realizable in
        InfiniBand.
    path_index:
        ``(n_procs, lids_per_port)`` int64 array: the full-height path
        index realized by each (destination, LID-offset).
    """

    xgft: XGFT
    scheme_label: str
    lids: LidAssignment
    up_port: np.ndarray
    path_index: np.ndarray

    def port_for(self, level: int, switch: int, lid: int) -> int:
        """The LFT lookup: output port of ``switch`` (at ``level``) for
        ``lid``.  Up ports are ``0..w-1``; down ports follow, ordered by
        child digit (matching :class:`repro.topology.XGFT`)."""
        node, _ = self.lids.decode(lid)
        xgft = self.xgft
        if level > 0:
            # The high digits of a level-l switch index name the height-l
            # subtree it tops; the destination is below iff they match.
            if node // xgft.M(level) == switch // xgft.W(level):
                child_digit = (node // xgft.M(level - 1)) % xgft.m[level - 1]
                return xgft.n_up_ports(level) + child_digit
        if level == xgft.h:
            raise RoutingError(
                f"top-level switch {switch} asked to route LID {lid} upward"
            )
        return int(self.up_port[level, lid - 1])


def compile_lfts(
    xgft: XGFT, scheme: RoutingScheme, k_paths: int | None = None
) -> ForwardingTables:
    """Compile forwarding tables realizing ``scheme`` on ``xgft``.

    ``k_paths`` defaults to the scheme's top-level path count.  Each
    destination's LID offsets are mapped round-robin onto its full-height
    path set.
    """
    h = xgft.h
    if h < 1 or xgft.m[h - 1] < 2:
        raise ResourceError(
            "LFT compilation needs a topology with top-level pairs (m_h >= 2)"
        )
    if k_paths is None:
        k_paths = scheme.paths_per_pair(h)
    rec = get_recorder()
    with rec.timer("ib.compile_lfts"):
        lids = assign_lids(xgft, k_paths)

        dests = np.arange(xgft.n_procs, dtype=np.int64)
        # A representative source whose NCA with every destination is the
        # top level (only s-mod-k / hashed schemes even look at it).
        reps = (dests + xgft.M(h - 1)) % xgft.n_procs
        full = scheme.path_index_matrix(reps, dests, h)  # (n, P_h)
        pair_w = scheme.path_weight_matrix(reps, dests, h)
        if pair_w is None:
            offsets = np.arange(lids.lids_per_port) % full.shape[1]
            path_index = full[:, offsets]  # (n, lids_per_port)
        else:
            # Fault-aware scheme: rows are padded with weight-0
            # duplicates, so round-robin the LID offsets over each
            # destination's *live* paths only.
            offs = np.arange(lids.lids_per_port)
            path_index = np.empty((len(dests), lids.lids_per_port),
                                  dtype=np.int64)
            for i in range(len(dests)):
                live = full[i][pair_w[i] > 0.0]
                path_index[i] = live[offs % len(live)]

        codec = path_codec(xgft, h)
        total = lids.total_lids
        up_port = np.zeros((h, total), dtype=np.int16)
        flat = path_index.reshape(-1)  # lid-1 -> path index
        for l in range(h):
            up_port[l, :] = (flat // codec.strides[l]) % xgft.w[l]
    if rec.enabled:
        rec.count("ib.lfts_compiled")
        rec.count("ib.lids_assigned", lids.total_lids)
    return ForwardingTables(xgft, scheme.label, lids, up_port, path_index)


def trace_route(
    tables: ForwardingTables, src: int, dst: int, offset: int = 0
) -> list[tuple[int, int]]:
    """Forward a packet from ``src`` to LID ``lid(dst, offset)`` through
    the compiled tables; returns the visited ``(level, index)`` nodes.

    Raises :class:`RoutingError` if the packet loops or misroutes —
    table-driven forwarding must terminate within ``2h`` hops.
    """
    xgft = tables.xgft
    lid = tables.lids.lid(dst, offset)
    level, node = 0, src
    visited = [(level, node)]
    for _ in range(2 * xgft.h + 1):
        if level == 0 and node == dst:
            return visited
        if level == 0 and node != dst:
            port = int(tables.up_port[0, lid - 1])
            node = int(xgft.parent(0, node, port))
            level = 1
        else:
            port = tables.port_for(level, node, lid)
            if port < xgft.n_up_ports(level):
                node = int(xgft.parent(level, node, port))
                level += 1
            else:
                child_digit = port - xgft.n_up_ports(level)
                node = int(xgft.child(level, node, child_digit))
                level -= 1
        visited.append((level, node))
    raise RoutingError(
        f"packet {src}->{dst} (offset {offset}) did not reach its "
        f"destination within {2 * xgft.h + 1} hops: {visited}"
    )


def effective_paths(tables: ForwardingTables, src: int, dst: int) -> int:
    """Number of *distinct* paths the LID realization offers an SD pair.

    Below the top level the LFT only distinguishes the level-``k`` digit
    prefix of each LID's full-height path index, so nearby pairs may see
    fewer than ``lids_per_port`` distinct routes.
    """
    xgft = tables.xgft
    if src == dst:
        return 1
    k = xgft.nca_level(src, dst)
    codec = path_codec(xgft, xgft.h)
    idx = tables.path_index[dst]
    prefix_stride = codec.strides[k - 1]  # place value of the level-(k-1) digit
    return len(np.unique(idx // prefix_stride))
