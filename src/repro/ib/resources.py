"""Address-space accounting: the cost of K paths in InfiniBand terms.

Quantifies the paper's motivation: limited multi-path routing exists
because unlimited multi-path routing exhausts the LID space / LMC budget
on real networks (e.g. 144 paths on the TACC Ranger 24-port 3-tree
exceed the 128-path LMC cap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError
from repro.ib.lid import MAX_LMC, UNICAST_LIDS, lmc_for_paths
from repro.topology.xgft import XGFT


@dataclass(frozen=True)
class ResourceReport:
    """Feasibility of realizing ``k_paths`` per destination on a topology.

    ``feasible`` is False when the LMC cap or unicast LID space is
    exceeded; ``limit_reason`` names the binding constraint.
    """

    topology: str
    k_paths: int
    lmc: int
    lids_per_port: int
    total_lids: int
    lid_space_fraction: float
    feasible: bool
    limit_reason: str

    def row(self) -> tuple:
        """Table row used by the resource benchmark."""
        return (
            self.k_paths,
            self.lmc if self.feasible or self.lmc >= 0 else "-",
            self.lids_per_port,
            self.total_lids,
            self.lid_space_fraction,
            "yes" if self.feasible else f"NO ({self.limit_reason})",
        )


def resource_report(xgft: XGFT, k_paths: int) -> ResourceReport:
    """Account the LID resources ``k_paths`` paths per destination need
    on ``xgft`` (never raises; infeasibility is reported in the result).
    """
    name = repr(xgft)
    try:
        lmc = lmc_for_paths(k_paths)
    except ResourceError:
        lmc = (k_paths - 1).bit_length()
        return ResourceReport(
            name, k_paths, lmc, 1 << lmc, xgft.n_procs * (1 << lmc),
            xgft.n_procs * (1 << lmc) / UNICAST_LIDS, False,
            f"LMC {lmc} > {MAX_LMC}",
        )
    lids_per_port = 1 << lmc
    total = xgft.n_procs * lids_per_port
    if total > UNICAST_LIDS:
        return ResourceReport(
            name, k_paths, lmc, lids_per_port, total,
            total / UNICAST_LIDS, False, "unicast LID space exhausted",
        )
    return ResourceReport(
        name, k_paths, lmc, lids_per_port, total, total / UNICAST_LIDS,
        True, "",
    )
