"""InfiniBand-style realization of multi-path routing.

The paper motivates *limited* multi-path routing with InfiniBand's
resource constraints: each path to a destination needs its own address
(LID), destinations can expose at most ``2**LMC`` LIDs (LMC <= 7, so at
most 128 paths), and switches route by destination-LID lookup in linear
forwarding tables (LFTs).  This package realizes any
:class:`repro.routing.RoutingScheme` in that model:

* :mod:`repro.ib.lid` — LID assignment under an LMC budget;
* :mod:`repro.ib.lft` — per-switch linear forwarding tables compiled from
  the route sets, plus table-driven route tracing (validates that the
  destination-based realization reproduces the scheme's paths);
* :mod:`repro.ib.resources` — address-space accounting (the
  "unlimited multi-path cannot be supported" argument, quantified).
"""

from repro.ib.lid import LidAssignment, assign_lids, lmc_for_paths, MAX_LMC
from repro.ib.lft import ForwardingTables, compile_lfts, effective_paths, trace_route
from repro.ib.resources import ResourceReport, resource_report

__all__ = [
    "MAX_LMC",
    "LidAssignment",
    "assign_lids",
    "lmc_for_paths",
    "ForwardingTables",
    "compile_lfts",
    "trace_route",
    "effective_paths",
    "ResourceReport",
    "resource_report",
]
