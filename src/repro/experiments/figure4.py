"""Figure 4: average maximum link load vs number of paths.

For each panel's topology, sample random permutations under the paper's
adaptive 99 %-CI protocol and report the average maximum link load of
d-mod-k (a flat reference line) and the shift-1 / disjoint / random
heuristics as the per-pair path limit K grows.  Expected shape: every
heuristic decreases gracefully with K and meets the optimum at
``K = max_paths``; on 2-level trees shift-1 == disjoint; on 3-level trees
disjoint < random < shift-1 for most K.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Fidelity, fidelity, heuristic_family, k_grid
from repro.flow.sampling import PermutationStudy
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.util.ascii_chart import AsciiChart
from repro.util.tables import format_table

#: panel name -> (topology, paper's description)
PANELS: dict[str, tuple[XGFT, str]] = {
    "a": (m_port_n_tree(16, 2), "XGFT(2; 8,16; 1,8) = 16-port 2-tree"),
    "b": (m_port_n_tree(16, 3), "XGFT(3; 8,8,16; 1,8,8) = 16-port 3-tree"),
    "c": (m_port_n_tree(24, 2), "XGFT(2; 12,24; 1,12) = 24-port 2-tree"),
    "d": (m_port_n_tree(24, 3), "XGFT(3; 12,12,24; 1,12,12) = 24-port 3-tree"),
}

#: smaller stand-ins with the same structure, used by tests/fast benches
SMALL_PANELS: dict[str, tuple[XGFT, str]] = {
    "a": (m_port_n_tree(8, 2), "XGFT(2; 4,8; 1,4) = 8-port 2-tree"),
    "b": (m_port_n_tree(8, 3), "XGFT(3; 4,4,8; 1,4,4) = 8-port 3-tree"),
}

HEURISTICS = ("shift-1", "disjoint", "random")


@dataclass(frozen=True)
class Figure4Result:
    """One panel's data: per-scheme series of avg max permutation load."""

    panel: str
    topology: str
    ks: tuple[int, ...]
    dmodk: float
    series: dict[str, tuple[float, ...]]
    samples_used: int

    def rows(self) -> list[list]:
        out = []
        for i, k in enumerate(self.ks):
            out.append([k, self.dmodk] + [self.series[h][i] for h in HEURISTICS])
        return out

    def render(self) -> str:
        table = format_table(
            ["K", "d-mod-k", *HEURISTICS], self.rows(),
            title=f"Figure 4({self.panel}): avg max link load, {self.topology}",
        )
        chart = AsciiChart(width=60, height=14)
        chart.add_series("d-mod-k", self.ks, [self.dmodk] * len(self.ks))
        for h in HEURISTICS:
            chart.add_series(h, self.ks, self.series[h])
        return table + "\n\n" + chart.render(
            xlabel="number of paths (K)", ylabel="load"
        )


def run_panel(
    panel: str,
    *,
    fidelity_name: str | Fidelity = "normal",
    topology: XGFT | None = None,
    seed: int = 2012,
    dense_k: bool = False,
    random_seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    n_jobs: int = 1,
    engine: str = "reference",
) -> Figure4Result:
    """Regenerate one Figure 4 panel.

    ``topology`` overrides the panel's default (used by tests to run the
    same protocol on small trees); ``random_seeds`` controls how many
    routing seeds the random heuristic is averaged over (paper: five);
    ``engine`` selects the permutation evaluator (``"compiled"`` batches
    each adaptive round — see ``docs/architecture.md``).
    """
    fid = fidelity(fidelity_name)
    if topology is None:
        xgft, description = PANELS[panel]
    else:
        xgft, description = topology, repr(topology)

    study = PermutationStudy(
        xgft,
        initial_samples=fid.initial_samples,
        max_samples=fid.max_samples,
        rel_precision=fid.rel_precision,
        seed=seed,
        n_jobs=n_jobs,
        engine=engine,
    )
    ks = k_grid(xgft.max_paths, dense=dense_k)

    dmodk_result = study.run(make_scheme(xgft, "d-mod-k"))
    samples = dmodk_result.interval.n_samples
    series: dict[str, list[float]] = {h: [] for h in HEURISTICS}
    for k in ks:
        for h in HEURISTICS:
            schemes = heuristic_family(xgft, h, k, seeds=random_seeds)
            means = []
            for scheme in schemes:
                res = study.run(scheme)
                means.append(res.mean)
                samples += res.interval.n_samples
            series[h].append(float(np.mean(means)))
    return Figure4Result(
        panel=panel,
        topology=description,
        ks=ks,
        dmodk=dmodk_result.mean,
        series={h: tuple(v) for h, v in series.items()},
        samples_used=samples,
    )
