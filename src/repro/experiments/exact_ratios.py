"""Exact oblivious-ratio experiment (LP; small topologies).

Computes ``PERF(scheme)`` exactly for the single-path baselines and the
limited multi-path heuristics across K, exhibiting the ``w_2 / K`` law
on 2-level trees and Theorem 1 as an equality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.exact_ratio import exact_oblivious_ratio
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.util.tables import format_table


@dataclass(frozen=True)
class ExactRatiosResult:
    topology: str
    rows: tuple[tuple[str, float], ...]

    def by_label(self) -> dict[str, float]:
        return {label: ratio for label, ratio in self.rows}

    def render(self) -> str:
        return format_table(
            ["scheme", "exact PERF"], list(self.rows),
            title=f"Exact oblivious performance ratios (LP), {self.topology}",
            floatfmt=".4f",
        )


def run(
    *,
    topology: XGFT | None = None,
    ks: tuple[int, ...] = (2, 3, 4),
    **_ignored,
) -> ExactRatiosResult:
    """Tabulate exact ratios on one (small) topology."""
    xgft = topology if topology is not None else m_port_n_tree(8, 2)
    specs = ["d-mod-k", "s-mod-k"]
    for k in ks:
        if k <= xgft.max_paths:
            specs += [f"shift-1:{k}", f"disjoint:{k}"]
    specs.append("umulti")
    rows = []
    for spec in specs:
        scheme = make_scheme(xgft, spec)
        rows.append((scheme.label, exact_oblivious_ratio(xgft, scheme).ratio))
    return ExactRatiosResult(repr(xgft), tuple(rows))
