"""Analytical-results experiment: run every theorem validator.

Regenerates executable evidence for Section 4.1's claims: Lemma 1's
lower bound, Theorem 1 (UMULTI is optimal for arbitrary traffic) and
Theorem 2 (d-mod-k degrades by the ``prod(w)`` factor on the adversarial
pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.theorems import (
    TheoremReport,
    check_lemma1,
    check_theorem1,
    check_theorem2,
)
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.traffic.adversarial import suggest_theorem2_topology
from repro.traffic.permutations import permutation_matrix, random_permutation
from repro.traffic.synthetic import all_to_all, shift_pattern


@dataclass(frozen=True)
class TheoremsResult:
    reports: tuple[TheoremReport, ...]

    @property
    def all_hold(self) -> bool:
        return all(r.holds for r in self.reports)

    def render(self) -> str:
        lines = ["Analytical results validation"]
        lines += [str(r) for r in self.reports]
        lines.append("ALL HOLD" if self.all_hold else "SOME FAILED")
        return "\n".join(lines)


def run(*, seed: int = 7, samples: int = 5, **_ignored) -> TheoremsResult:
    """Validate the paper's lemma and theorems on several topologies and
    traffic matrices."""
    reports: list[TheoremReport] = []
    topologies = [m_port_n_tree(8, 2), m_port_n_tree(8, 3)]
    for xgft in topologies:
        traffics = [all_to_all(xgft.n_procs), shift_pattern(xgft.n_procs, 1)]
        for i in range(samples):
            perm = random_permutation(xgft.n_procs, seed + i)
            traffics.append(permutation_matrix(perm))
        for tm in traffics:
            reports.append(check_theorem1(xgft, tm))
            for spec in ("d-mod-k", "disjoint:2"):
                reports.append(check_lemma1(xgft, make_scheme(xgft, spec), tm))
    for h, w in ((2, 4), (3, 2), (3, 3)):
        reports.append(check_theorem2(suggest_theorem2_topology(h, w)))
    return TheoremsResult(tuple(reports))
