"""Figure 5: average message delay vs offered load (flit level).

On the 8-port 3-tree under uniform traffic, plot mean message delay
against offered load for the paper's curve set: d-mod-k, disjoint(2),
disjoint(8), shift-1(2), shift-1(8), random(1), random(2), random(8).
Expected shape: hockey-stick curves (tree saturation under virtual
cut-through), multi-path schemes saturating at higher load than
d-mod-k, and disjoint's knee rightmost for equal K.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Fidelity, fidelity
from repro.flit.config import FlitConfig
from repro.flit.sweep import SweepResult, load_sweep
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.util.ascii_chart import AsciiChart
from repro.util.tables import format_table

#: the paper's Figure 5 curve specs
CURVES = (
    "d-mod-k",
    "disjoint:2",
    "disjoint:8",
    "shift-1:2",
    "shift-1:8",
    "random:1",
    "random:2",
    "random:8",
)

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class Figure5Result:
    """Delay-vs-load sweeps per curve."""

    topology: str
    loads: tuple[float, ...]
    sweeps: dict[str, SweepResult]

    def rows(self) -> list[list]:
        out = []
        for i, load in enumerate(self.loads):
            row: list = [load]
            for spec in self.sweeps:
                row.append(self.sweeps[spec].delays[i])
            out.append(row)
        return out

    def render(self) -> str:
        table = format_table(
            ["load", *self.sweeps.keys()], self.rows(),
            title=f"Figure 5: mean message delay (cycles), {self.topology}",
            floatfmt=".1f",
        )
        chart = AsciiChart(width=60, height=16)
        for spec, sweep in self.sweeps.items():
            # Clip the post-saturation explosion so pre-knee shape stays
            # readable; saturation is still visible as the series ending.
            xs, ys = [], []
            for load, delay, run in zip(sweep.loads, sweep.delays, sweep.runs):
                if delay == delay and not run.saturated:
                    xs.append(load)
                    ys.append(delay)
            if xs:
                chart.add_series(spec, xs, ys)
        return table + "\n\n" + chart.render(
            xlabel="offered load", ylabel="delay"
        )


def run(
    *,
    fidelity_name: str | Fidelity = "normal",
    topology: XGFT | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    config: FlitConfig | None = None,
    curves: tuple[str, ...] = CURVES,
    seed: int | None = None,
    n_jobs: int = 1,
    cache=None,
    engine: str = "reference",
) -> Figure5Result:
    """Regenerate Figure 5's delay curves.

    ``seed`` overrides the workload RNG seed (ignored when an explicit
    ``config`` already carries one).  ``n_jobs > 1`` fans the whole
    (curve x load x repeat) grid out over one process pool and ``cache``
    (a :class:`~repro.runner.cache.ResultCache`) replays completed
    points from disk; both return results bit-identical to the serial
    run for a fixed seed.  ``engine`` selects the flit backend
    (``reference`` or the bit-identical, faster ``batched``).
    """
    fid = fidelity(fidelity_name)
    xgft = topology if topology is not None else m_port_n_tree(8, 3)
    cfg = config if config is not None else FlitConfig(
        warmup_cycles=fid.warmup_cycles,
        measure_cycles=fid.measure_cycles,
        drain_cycles=fid.drain_cycles,
        seed=seed if seed is not None else 0,
    )
    if n_jobs > 1 or cache is not None:
        # One grid, one pool: every curve's points share the workers and
        # the shipped route tables (lazy import keeps the serial path
        # free of the runner stack).
        from repro.flit.batched import make_flit_simulator
        from repro.runner.sweep import run_sweeps

        sims = {spec: make_flit_simulator(
                    engine, xgft, make_scheme(xgft, spec), cfg)
                for spec in curves}
        sweeps = run_sweeps(sims, loads=loads, repeats=fid.flit_repeats,
                            n_jobs=n_jobs, cache=cache)
    else:
        sweeps = {}
        for spec in curves:
            scheme = make_scheme(xgft, spec)
            sweeps[spec] = load_sweep(xgft, scheme, cfg, loads=loads,
                                      repeats=fid.flit_repeats, engine=engine)
    return Figure5Result(repr(xgft), tuple(loads), sweeps)
