"""Experiment registry: names the CLI and benchmarks dispatch on."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError


@dataclass(frozen=True)
class Experiment:
    """A named, runnable reproduction target."""

    name: str
    description: str
    runner: Callable[..., object]  # returns a result with .render()


def _figure4_runner(panel: str):
    def run(**kwargs):
        from repro.experiments.figure4 import run_panel

        return run_panel(panel, **kwargs)

    return run


def _table1(**kwargs):
    from repro.experiments import table1

    return table1.run(**kwargs)


def _figure5(**kwargs):
    from repro.experiments import figure5

    return figure5.run(**kwargs)


def _theorems(**kwargs):
    from repro.experiments import theorems

    return theorems.run(**kwargs)


def _resources(**kwargs):
    from repro.experiments import resources

    return resources.run(**kwargs)


def _ratios(**kwargs):
    from repro.experiments import ratios

    return ratios.run(**kwargs)


def _exact_ratios(**kwargs):
    from repro.experiments import exact_ratios

    return exact_ratios.run(**kwargs)


EXPERIMENTS: dict[str, Experiment] = {
    **{
        f"figure4{p}": Experiment(
            f"figure4{p}",
            f"Figure 4({p}): avg max permutation load vs K",
            _figure4_runner(p),
        )
        for p in "abcd"
    },
    "table1": Experiment(
        "table1", "Table 1: max throughput, uniform traffic, flit level", _table1
    ),
    "figure5": Experiment(
        "figure5", "Figure 5: message delay vs offered load, flit level", _figure5
    ),
    "theorems": Experiment(
        "theorems", "Lemma 1 / Theorem 1 / Theorem 2 validation", _theorems
    ),
    "resources": Experiment(
        "resources", "InfiniBand LID budget vs path limit (motivation)", _resources
    ),
    "ratios": Experiment(
        "ratios", "empirical oblivious-ratio lower bounds per scheme", _ratios
    ),
    "exact-ratios": Experiment(
        "exact-ratios", "exact oblivious ratios via LP (small trees)",
        _exact_ratios,
    ),
}


def get_experiment(name: str) -> Experiment:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(name: str, **kwargs):
    """Run a registered experiment and return its result object."""
    return get_experiment(name).runner(**kwargs)
