"""Experiment registry: names the CLI and benchmarks dispatch on.

:func:`run_experiment` is the bare dispatcher; :func:`run_instrumented`
wraps it with the observability layer — it runs the experiment under a
recorder (:mod:`repro.obs`) and returns an :class:`ExperimentRun`
bundling the result with a :class:`~repro.obs.RunManifest` recording the
invocation (experiment, fidelity, seed, argv, versions, wall time,
sample counts) so the run is reproducible from the artifact alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from repro.errors import ReproError
from repro.obs import RunManifest, get_recorder, use_recorder


@dataclass(frozen=True)
class Experiment:
    """A named, runnable reproduction target.

    ``engine_aware`` marks experiments whose runner accepts the
    ``engine`` keyword — the flow-level permutation studies
    (``reference`` / ``compiled``) and the flit-level sweeps
    (``reference`` / ``batched``); the CLI's ``--engine`` flag is only
    forwarded to those, and each runner validates the engine names its
    own layer registers.  ``fault_aware`` marks
    runners accepting the fault-injection keywords (``fault_rate`` /
    ``fault_links`` / ``fault_seed``); the CLI's ``--fault-*`` flags are
    only forwarded to those.  ``runner_aware`` marks runners accepting
    the parallel-execution keywords (``n_jobs`` / ``cache`` — the flit
    sweep grids); the CLI's ``--jobs`` / ``--cache`` / ``--cache-dir``
    flags are only forwarded to those.  ``churn_aware`` marks runners
    accepting the event-stream keywords (``n_events`` / ``churn_seed``);
    the CLI's ``--churn-*`` flags are only forwarded to those.
    """

    name: str
    description: str
    runner: Callable[..., object]  # returns a result with .render()
    engine_aware: bool = False
    fault_aware: bool = False
    runner_aware: bool = False
    churn_aware: bool = False


def _figure4_runner(panel: str):
    def run(**kwargs):
        from repro.experiments.figure4 import run_panel

        return run_panel(panel, **kwargs)

    return run


def _table1(**kwargs):
    from repro.experiments import table1

    return table1.run(**kwargs)


def _figure5(**kwargs):
    from repro.experiments import figure5

    return figure5.run(**kwargs)


def _theorems(**kwargs):
    from repro.experiments import theorems

    return theorems.run(**kwargs)


def _resources(**kwargs):
    from repro.experiments import resources

    return resources.run(**kwargs)


def _ratios(**kwargs):
    from repro.experiments import ratios

    return ratios.run(**kwargs)


def _exact_ratios(**kwargs):
    from repro.experiments import exact_ratios

    return exact_ratios.run(**kwargs)


def _fault_sweep(**kwargs):
    from repro.experiments import fault_sweep

    return fault_sweep.run(**kwargs)


def _churn_sweep(**kwargs):
    from repro.experiments import churn_sweep

    return churn_sweep.run(**kwargs)


EXPERIMENTS: dict[str, Experiment] = {
    **{
        f"figure4{p}": Experiment(
            f"figure4{p}",
            f"Figure 4({p}): avg max permutation load vs K",
            _figure4_runner(p),
            engine_aware=True,
        )
        for p in "abcd"
    },
    "table1": Experiment(
        "table1", "Table 1: max throughput, uniform traffic, flit level",
        _table1, engine_aware=True, runner_aware=True,
    ),
    "figure5": Experiment(
        "figure5", "Figure 5: message delay vs offered load, flit level",
        _figure5, engine_aware=True, runner_aware=True,
    ),
    "theorems": Experiment(
        "theorems", "Lemma 1 / Theorem 1 / Theorem 2 validation", _theorems
    ),
    "resources": Experiment(
        "resources", "InfiniBand LID budget vs path limit (motivation)", _resources
    ),
    "ratios": Experiment(
        "ratios", "empirical oblivious-ratio lower bounds per scheme", _ratios,
        engine_aware=True,
    ),
    "exact-ratios": Experiment(
        "exact-ratios", "exact oblivious ratios via LP (small trees)",
        _exact_ratios,
    ),
    "fault-sweep": Experiment(
        "fault-sweep", "avg max permutation load vs link failure rate",
        _fault_sweep, engine_aware=True, fault_aware=True,
    ),
    "churn-sweep": Experiment(
        "churn-sweep",
        "MLOAD trajectory under streaming fail/repair churn",
        _churn_sweep, runner_aware=True, churn_aware=True,
    ),
}


def get_experiment(name: str) -> Experiment:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(name: str, **kwargs):
    """Run a registered experiment and return its result object."""
    return get_experiment(name).runner(**kwargs)


@dataclass(frozen=True)
class ExperimentRun:
    """An experiment result plus its provenance and telemetry."""

    name: str
    result: object  # the experiment's result (has .render())
    manifest: RunManifest
    recorder: object  # the recorder the run executed under


def run_instrumented(
    name: str,
    *,
    fidelity_name: str = "normal",
    seed: int | None = None,
    recorder=None,
    argv: tuple[str, ...] | None = None,
    engine: str | None = None,
    fault_rate: tuple[float, ...] | None = None,
    fault_links: tuple[int, ...] | None = None,
    fault_seed: int | None = None,
    jobs: int | None = None,
    cache: bool | None = None,
    cache_dir: str | None = None,
    churn_events: int | None = None,
    churn_seed: int | None = None,
    **kwargs,
) -> ExperimentRun:
    """Run an experiment under a recorder and attach a manifest.

    ``seed`` is forwarded to the runner only when given, so each
    experiment keeps its documented default; ``recorder`` defaults to
    the ambient one and is installed as ambient for the duration, so
    every instrumented layer (sampling rounds, the flit engine, scheme
    construction) reports into it.  ``engine`` (``"reference"`` /
    ``"compiled"`` for flow experiments, ``"reference"`` / ``"batched"``
    for flit experiments) is forwarded only to engine-aware experiments;
    requesting a non-reference engine anywhere else is an error rather
    than a silent no-op.  The fault keywords (``fault_rate`` failure-rate
    grid, ``fault_links`` explicit cable ids, ``fault_seed``) mirror
    that contract: forwarded to fault-aware experiments, an error
    elsewhere.  So do the runner keywords: ``jobs`` (worker processes)
    and ``cache`` / ``cache_dir`` (on-disk result cache; ``cache_dir``
    alone implies caching) reach runner-aware experiments as ``n_jobs``
    and a :class:`~repro.runner.cache.ResultCache`, and are an error
    elsewhere (``jobs=1`` / ``cache=False``, the do-nothing values, are
    accepted everywhere).  The churn keywords (``churn_events`` stream
    length, ``churn_seed`` trace seed) reach churn-aware experiments as
    ``n_events`` / ``churn_seed``, and are an error elsewhere.
    """
    rec = recorder if recorder is not None else get_recorder()
    experiment = get_experiment(name)
    if engine is not None:
        if experiment.engine_aware:
            kwargs["engine"] = engine
        elif engine != "reference":
            raise ReproError(
                f"experiment {name!r} does not support --engine {engine}"
            )
    for key, value in (("rates", fault_rate), ("fault_links", fault_links),
                       ("fault_seed", fault_seed)):
        if value is None:
            continue
        if not experiment.fault_aware:
            raise ReproError(
                f"experiment {name!r} does not support fault injection "
                f"(--fault-rate/--fault-links/--fault-seed)"
            )
        kwargs[key] = value
    for key, value in (("n_events", churn_events),
                       ("churn_seed", churn_seed)):
        if value is None:
            continue
        if not experiment.churn_aware:
            raise ReproError(
                f"experiment {name!r} does not support churn replay "
                f"(--churn-events/--churn-seed)"
            )
        kwargs[key] = value
    if jobs is not None:
        if experiment.runner_aware:
            kwargs["n_jobs"] = jobs
        elif jobs != 1:
            raise ReproError(
                f"experiment {name!r} does not support --jobs"
            )
    want_cache = cache if cache is not None else (cache_dir is not None)
    if want_cache:
        if not experiment.runner_aware:
            raise ReproError(
                f"experiment {name!r} does not support --cache/--cache-dir"
            )
        from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache

        kwargs["cache"] = ResultCache(
            cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR)
    manifest = RunManifest.create(
        name, fidelity=fidelity_name, seed=seed,
        argv=tuple(argv) if argv is not None else None,
    )
    if seed is not None:
        kwargs["seed"] = seed
    t0 = perf_counter()
    with use_recorder(rec), rec.timer(f"experiment.{name}"):
        result = run_experiment(name, fidelity_name=fidelity_name, **kwargs)
    manifest.wall_time_s = perf_counter() - t0
    for attr, field in (("samples_used", "samples_used"),
                        ("topology", "topology")):
        value = getattr(result, attr, None)
        if value is not None:
            setattr(manifest, field, value)
    labels = sorted({str(e["scheme"]) for e in rec.events
                     if "scheme" in e})
    if labels:
        manifest.schemes = tuple(labels)
    return ExperimentRun(name, result, manifest, rec)
