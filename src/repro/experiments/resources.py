"""InfiniBand resource experiment: the paper's motivation, quantified.

For each evaluated topology, report the LMC / LID budget each path limit
needs, showing where unlimited multi-path routing becomes unrealizable
(the 24-port 3-tree's 144 paths exceed InfiniBand's 128-path cap) and
also the *effective* path diversity nearby pairs retain under each
heuristic's LID realization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ib.lft import compile_lfts, effective_paths
from repro.ib.resources import ResourceReport, resource_report
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.util.tables import format_table


@dataclass(frozen=True)
class ResourcesResult:
    reports: tuple[ResourceReport, ...]
    diversity_rows: tuple[tuple, ...]

    def render(self) -> str:
        budget = format_table(
            ["topology", "K", "LMC", "LIDs/port", "total LIDs", "feasible"],
            [
                (r.topology, r.k_paths, r.lmc, r.lids_per_port, r.total_lids,
                 "yes" if r.feasible else f"NO ({r.limit_reason})")
                for r in self.reports
            ],
            title="LID budget per path limit",
        )
        diversity = format_table(
            ["scheme", "K", "NCA level", "distinct paths via LFT"],
            list(self.diversity_rows),
            title="Effective path diversity for nearby pairs "
                  "(8-port 3-tree, LID realization)",
        )
        return budget + "\n\n" + diversity


def run(*, ks: tuple[int, ...] = (1, 2, 4, 8, 16, 64, 144), **_ignored) -> ResourcesResult:
    reports = []
    for m, n in ((8, 3), (16, 3), (24, 3)):
        xgft = m_port_n_tree(m, n)
        for k in ks:
            if k <= xgft.max_paths:
                reports.append(resource_report(xgft, k))

    xgft = m_port_n_tree(8, 3)
    # (0, 5) is an NCA-2 pair; (0, 127) is NCA-3 (top level).
    diversity = []
    for spec in ("shift-1", "disjoint"):
        for k in (2, 4, 8):
            tables = compile_lfts(xgft, make_scheme(xgft, f"{spec}:{k}"))
            diversity.append((spec, k, 2, effective_paths(tables, 0, 5)))
            diversity.append((spec, k, 3, effective_paths(tables, 0, 127)))
    return ResourcesResult(tuple(reports), tuple(diversity))
