"""Table 1: maximum throughput under uniform traffic (flit level).

On the 8-port 3-tree (``XGFT(3; 4,4,8; 1,4,4)``), sweep the offered load
per scheme and report the maximum aggregate throughput achieved, for
``K in {1, 2, 4, 8}``.  Surviving paper numbers at K=8: shift-1 67.65 %,
random 69.75 %, disjoint 70.35 %; expected shape: throughput rises with
K for every heuristic, disjoint leads, random(1) trails d-mod-k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Fidelity, fidelity
from repro.flit.config import FlitConfig
from repro.flit.sweep import load_sweep
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.util.tables import format_table

K_VALUES = (1, 2, 4, 8)
HEURISTICS = ("shift-1", "random", "disjoint")
DEFAULT_LOADS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class Table1Result:
    """Max throughput (fraction of capacity) per scheme and K."""

    topology: str
    ks: tuple[int, ...]
    dmodk: float
    cells: dict[str, tuple[float, ...]]  # heuristic -> per-K max throughput

    def rows(self) -> list[list]:
        return [
            [k, self.dmodk] + [self.cells[h][i] for h in HEURISTICS]
            for i, k in enumerate(self.ks)
        ]

    def render(self) -> str:
        return format_table(
            ["Num-Path", "d-mod-k", *HEURISTICS], self.rows(),
            title=f"Table 1: max throughput, uniform traffic, {self.topology}",
            floatfmt=".4f",
        )


def run(
    *,
    fidelity_name: str | Fidelity = "normal",
    topology: XGFT | None = None,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    config: FlitConfig | None = None,
    ks: tuple[int, ...] = K_VALUES,
    random_seeds: tuple[int, ...] = (0, 1),
    seed: int | None = None,
    n_jobs: int = 1,
    cache=None,
    engine: str = "reference",
) -> Table1Result:
    """Regenerate Table 1.

    The random heuristic is averaged over ``random_seeds`` routing seeds
    (the paper uses five; two keep the default run affordable — pass more
    for the full protocol).  ``seed`` overrides the workload RNG seed
    (ignored when an explicit ``config`` already carries one).
    ``n_jobs > 1`` fans every (scheme x K x load x repeat) cell out over
    one process pool and ``cache`` (a
    :class:`~repro.runner.cache.ResultCache`) replays completed points
    from disk; the table is bit-identical to the serial run either way.
    ``engine`` selects the flit backend (``reference`` or the
    bit-identical, faster ``batched``).
    """
    fid = fidelity(fidelity_name)
    xgft = topology if topology is not None else m_port_n_tree(8, 3)
    cfg = config if config is not None else FlitConfig(
        warmup_cycles=fid.warmup_cycles,
        measure_cycles=fid.measure_cycles,
        drain_cycles=fid.drain_cycles,
        seed=seed if seed is not None else 0,
    )

    if n_jobs > 1 or cache is not None:
        # Build the entire cell grid up front and sweep it through one
        # pool.  Keys disambiguate random(K)'s routing seeds ("@s" —
        # the scheme label repeats across seeds, the key must not).
        from repro.flit.batched import make_flit_simulator
        from repro.runner.sweep import run_sweeps

        def sim_for(spec: str, seed: int = 0):
            return make_flit_simulator(
                engine, xgft, make_scheme(xgft, spec, seed=seed), cfg)

        sims = {"d-mod-k": sim_for("d-mod-k")}
        for k in ks:
            for h in HEURISTICS:
                if h == "random":
                    for s in random_seeds:
                        sims[f"random:{k}@{s}"] = sim_for(f"random:{k}", seed=s)
                else:
                    sims[f"{h}:{k}"] = sim_for(f"{h}:{k}")
        sweeps = run_sweeps(sims, loads=loads, repeats=fid.flit_repeats,
                            n_jobs=n_jobs, cache=cache)

        def max_thr(spec: str, seed: int = 0) -> float:
            key = f"{spec}@{seed}" if spec.startswith("random:") else spec
            return sweeps[key].max_throughput
    else:
        def max_thr(spec: str, seed: int = 0) -> float:
            scheme = make_scheme(xgft, spec, seed=seed)
            sweep = load_sweep(xgft, scheme, cfg, loads=loads,
                               repeats=fid.flit_repeats, engine=engine)
            return sweep.max_throughput

    dmodk = max_thr("d-mod-k")
    cells: dict[str, list[float]] = {h: [] for h in HEURISTICS}
    for k in ks:
        for h in HEURISTICS:
            if h == "random":
                vals = [max_thr(f"random:{k}", seed=s) for s in random_seeds]
                cells[h].append(float(np.mean(vals)))
            else:
                cells[h].append(max_thr(f"{h}:{k}"))
    return Table1Result(
        topology=repr(xgft),
        ks=ks,
        dmodk=dmodk,
        cells={h: tuple(v) for h, v in cells.items()},
    )
