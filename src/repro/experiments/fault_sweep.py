"""Fault sweep: average maximum permutation load vs link failure rate.

For each failure rate, sample a *connected* degraded fabric (seeded,
reproducible; fabrics whose combined faults strand a pair are resampled
with the next seed) and rerun the paper's adaptive permutation protocol
for every scheme wrapped in :class:`~repro.faults.DegradedScheme`.
Expected shape: d-mod-k degrades fastest (a single surviving path per
pair concentrates the rerouted traffic), the limited multi-path
heuristics degrade gracefully, and UMULTI's full fan-out is the most
fault-tolerant — the fault-tolerance argument the paper makes
qualitatively, quantified.

Rate 0.0 is the pristine fabric, so every curve's left endpoint must
reproduce the Figure 4 numbers exactly (regression-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultError
from repro.experiments.common import Fidelity, fidelity
from repro.faults import DegradedFabric, DegradedScheme, FaultSpec
from repro.flow.sampling import PermutationStudy
from repro.obs.recorder import get_recorder
from repro.routing.factory import make_scheme
from repro.topology.variants import m_port_n_tree
from repro.topology.xgft import XGFT
from repro.util.ascii_chart import AsciiChart
from repro.util.tables import format_table

#: the sweep's curve specs: single-path baseline, limited multi-path at
#: K in {2, 4}, and the full fan-out upper bound
CURVES = (
    "d-mod-k",
    "shift-1:2",
    "shift-1:4",
    "disjoint:2",
    "disjoint:4",
    "random:2",
    "random:4",
    "umulti",
)

DEFAULT_RATES = (0.0, 0.02, 0.05, 0.10)

#: resample budget per rate before giving up on finding a connected fabric
MAX_FABRIC_TRIES = 64


@dataclass(frozen=True)
class FaultPoint:
    """One sweep point: a degraded fabric and every curve's MLOAD on it."""

    rate: float
    tag: str
    fabric_seed: int
    mloads: dict[str, float]


@dataclass(frozen=True)
class FaultSweepResult:
    """Per-scheme MLOAD as the fabric degrades."""

    topology: str
    curves: tuple[str, ...]
    points: tuple[FaultPoint, ...]
    samples_used: int

    def rows(self) -> list[list]:
        return [
            [p.rate, p.tag] + [p.mloads[c] for c in self.curves]
            for p in self.points
        ]

    def render(self) -> str:
        table = format_table(
            ["rate", "fabric", *self.curves], self.rows(),
            title=f"Fault sweep: avg max permutation load, {self.topology}",
        )
        chart = AsciiChart(width=60, height=14)
        for c in self.curves:
            chart.add_series(
                c, [p.rate for p in self.points],
                [p.mloads[c] for p in self.points],
            )
        return table + "\n\n" + chart.render(
            xlabel="link failure rate", ylabel="load"
        )


def sample_connected_fabric(
    xgft: XGFT,
    link_rate: float,
    seed: int,
    *,
    switch_rate: float = 0.0,
    max_tries: int = MAX_FABRIC_TRIES,
) -> DegradedFabric:
    """A connected degraded fabric at the requested rates.

    Independent faults can jointly cover some pair's whole path set even
    when no single fault is critical; such fabrics are resampled with
    consecutive seeds (counted as ``faults.fabrics_resampled``) so the
    sweep conditions on connectivity, as fabric-management studies do.
    """
    rec = get_recorder()
    for attempt in range(max_tries):
        spec = FaultSpec(link_rate=link_rate, switch_rate=switch_rate,
                         seed=seed + attempt)
        fabric = spec.sample(xgft)
        if fabric.is_connected:
            if rec.enabled and attempt:
                rec.count("faults.fabrics_resampled", attempt)
            return fabric
    raise FaultError(
        f"no connected fabric within {max_tries} seeds at link_rate="
        f"{link_rate} on {xgft!r}; lower the rate"
    )


def run(
    *,
    fidelity_name: str | Fidelity = "normal",
    topology: XGFT | None = None,
    rates: tuple[float, ...] = DEFAULT_RATES,
    curves: tuple[str, ...] = CURVES,
    seed: int = 2012,
    fault_seed: int = 0,
    fault_links: tuple[int, ...] = (),
    n_jobs: int = 1,
    engine: str = "reference",
) -> FaultSweepResult:
    """Run the fault sweep.

    ``rates`` are link failure rates (fraction of non-critical cables
    failed); ``fault_seed`` seeds the fault sampler independently of the
    traffic ``seed``.  ``fault_links`` overrides the random sweep with
    one explicit degraded point (the named cables fail, x-value is the
    resulting failed-cable fraction) — the CLI's ``--fault-links``.
    ``engine`` selects the permutation evaluator exactly as in Figure 4;
    both engines consume the identical permutation stream, so their
    curves agree to float tolerance.
    """
    fid = fidelity(fidelity_name)
    xgft = topology if topology is not None else m_port_n_tree(8, 3)
    rec = get_recorder()

    study = PermutationStudy(
        xgft,
        initial_samples=fid.initial_samples,
        max_samples=fid.max_samples,
        rel_precision=fid.rel_precision,
        seed=seed,
        n_jobs=n_jobs,
        engine=engine,
    )

    if fault_links:
        spec = FaultSpec(links=tuple(fault_links), seed=fault_seed)
        fabric = spec.sample(xgft)
        if not fabric.is_connected:
            raise FaultError(
                f"explicit fault set {tuple(fault_links)} disconnects "
                f"{xgft!r}"
            )
        from repro.faults.spec import samplable_cables
        effective = len(fault_links) / max(1, len(samplable_cables(xgft)))
        fabrics = [(effective, fabric)]
    else:
        fabrics = []
        for rate in rates:
            if rate == 0.0:
                fabrics.append((0.0, DegradedFabric(xgft)))
            else:
                fabrics.append((rate, sample_connected_fabric(
                    xgft, rate, fault_seed)))

    samples = 0
    points = []
    for rate, fabric in fabrics:
        mloads: dict[str, float] = {}
        for spec_name in curves:
            scheme = DegradedScheme(make_scheme(xgft, spec_name), fabric)
            result = study.run(scheme)
            mloads[spec_name] = result.mean
            samples += result.interval.n_samples
        if rec.enabled:
            rec.event(
                "fault_sweep_point",
                topology=repr(xgft),
                rate=rate,
                fabric=fabric.tag,
                fabric_seed=fault_seed,
                mloads={k: round(v, 9) for k, v in mloads.items()},
            )
        points.append(FaultPoint(rate, fabric.tag, fault_seed, mloads))

    return FaultSweepResult(
        topology=repr(xgft),
        curves=tuple(curves),
        points=tuple(points),
        samples_used=samples,
    )
