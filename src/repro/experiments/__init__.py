"""Experiment harness: one module per paper table/figure.

Every experiment has a ``run(...)`` entry point returning a structured
result with a ``render()`` method (ASCII table + chart), and is wired
into :mod:`repro.experiments.registry` for the CLI and the benchmarks.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
